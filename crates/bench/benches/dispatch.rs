//! Functor dispatch and registry-matching microbenchmarks.
//!
//! Measures (a) the per-launch overhead of each execution space (the
//! paper's `athread_spawn` + preset-function matching path vs direct
//! host dispatch), and (b) the linked-list registry lookup vs the
//! SIMD-accelerated key scan (paper §V-B: "we leveraged Sunway
//! architecture features such as LDM ... and SIMD vectorization, for
//! accelerated kernel matching"), as the registry grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kokkos_rs::{parallel_for_1d, registry, Functor1D, RangePolicy, Space, View, View1};

struct Axpy {
    a: f64,
    x: View1<f64>,
    y: View1<f64>,
}
impl Functor1D for Axpy {
    fn operator(&self, i: usize) {
        self.y.set_at(i, self.a * self.x.at(i) + self.y.at(i));
    }
}
kokkos_rs::register_for_1d!(bench_axpy, Axpy);

// Pad the registry with distinct functor types to measure O(n) matching.
macro_rules! pad_functor {
    ($($name:ident),*) => {
        $(
            struct $name;
            impl Functor1D for $name {
                fn operator(&self, _i: usize) {}
            }
        )*
        fn register_pad() {
            $(registry::register_1d::<$name>(stringify!($name));)*
        }
    };
}
pad_functor!(
    P00, P01, P02, P03, P04, P05, P06, P07, P08, P09, P10, P11, P12, P13, P14, P15, P16, P17, P18,
    P19, P20, P21, P22, P23, P24, P25, P26, P27, P28, P29, P30, P31, P32, P33, P34, P35, P36, P37,
    P38, P39, P40, P41, P42, P43, P44, P45, P46, P47, P48, P49, P50, P51, P52, P53, P54, P55, P56,
    P57, P58, P59, P60, P61, P62, P63
);

fn bench_launch_overhead(c: &mut Criterion) {
    bench_axpy();
    let mut g = c.benchmark_group("launch_axpy_4096");
    let n = 4096;
    for (label, space) in [
        ("Serial", Space::serial()),
        ("Threads", Space::threads()),
        ("DeviceSim", Space::device_sim()),
        (
            "SwAthread",
            Space::sw_athread_with(sunway_sim::CgConfig::test_small()),
        ),
    ] {
        let x: View1<f64> = View::host("x", [n]);
        let y: View1<f64> = View::host("y", [n]);
        x.fill(1.0);
        let f = Axpy { a: 1.000001, x, y };
        g.bench_function(label, |b| {
            b.iter(|| parallel_for_1d(&space, RangePolicy::new(n), &f))
        });
    }
    g.finish();
}

fn bench_registry_matching(c: &mut Criterion) {
    bench_axpy();
    register_pad();
    let key = registry::key_of::<Axpy>();
    let mut g = c.benchmark_group("registry_lookup");
    let (len, _, _) = registry::stats();
    g.bench_with_input(BenchmarkId::new("linked_list", len), &key, |b, &k| {
        b.iter(|| registry::lookup(k, registry::KernelKind::For1D))
    });
    g.bench_with_input(BenchmarkId::new("simd_scan", len), &key, |b, &k| {
        b.iter(|| registry::lookup_simd(k, registry::KernelKind::For1D))
    });
    g.finish();
}

criterion_group!(benches, bench_launch_overhead, bench_registry_matching);
criterion_main!(benches);
