//! Halo engine microbenchmarks: the Fig. 5 transposes (naive vs tiled),
//! full 2-D/3-D exchanges per strategy, and batched vs separate
//! multi-field updates.

use criterion::{criterion_group, criterion_main, Criterion};
use halo_exchange::{transpose, FoldKind, Halo2D, Halo3D, Strategy3D};
use kokkos_rs::{View, View3};
use mpi_sim::{CartComm, World};
use std::time::Duration;

fn bench_transpose(c: &mut Criterion) {
    // A realistic east-edge halo strip: 80 levels x 100 rows x 2 cols.
    let (nz, nj, ni) = (80, 100, 2);
    let strip: Vec<f64> = (0..nz * nj * ni).map(|x| x as f64).collect();
    let mut g = c.benchmark_group("halo_transpose_80x100x2");
    g.bench_function("h2v_naive", |b| {
        b.iter(|| transpose::h2v(&strip, nz, nj, ni))
    });
    g.bench_function("h2v_tiled16", |b| {
        b.iter(|| transpose::h2v_tiled(&strip, nz, nj, ni, 16))
    });
    g.bench_function("v2h", |b| {
        let v = transpose::h2v(&strip, nz, nj, ni);
        b.iter(|| transpose::v2h(&v, nz, nj, ni))
    });
    g.finish();
}

fn bench_exchange_strategies(c: &mut Criterion) {
    let mut g = c.benchmark_group("halo3d_exchange_1rank");
    g.sample_size(20);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(3));
    for (label, strategy) in [
        ("horizontal_major", Strategy3D::HorizontalMajor),
        ("transpose", Strategy3D::Transpose),
    ] {
        g.bench_function(label, |b| {
            b.iter(|| {
                World::run(1, |comm| {
                    let cart = CartComm::new(comm.clone(), 1, 1, true);
                    let h = Halo3D::new(Halo2D::new(&cart, 64, 32), 20, strategy);
                    let f: View3<f64> = View::host("f", h.shape());
                    f.fill(1.0);
                    for tag in 0..4 {
                        h.exchange(&f, FoldKind::Scalar, tag * 100);
                    }
                })
            })
        });
    }
    g.finish();
}

fn bench_batched(c: &mut Criterion) {
    let mut g = c.benchmark_group("halo3d_two_fields_2ranks");
    g.sample_size(20);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(3));
    g.bench_function("separate", |b| {
        b.iter(|| {
            World::run(2, |comm| {
                let cart = CartComm::new(comm.clone(), 2, 1, true);
                let h = Halo3D::new(Halo2D::new(&cart, 64, 32), 20, Strategy3D::Transpose);
                let u: View3<f64> = View::host("u", h.shape());
                let v: View3<f64> = View::host("v", h.shape());
                h.exchange(&u, FoldKind::Vector, 0);
                h.exchange(&v, FoldKind::Scalar, 50);
            })
        })
    });
    g.bench_function("batched", |b| {
        b.iter(|| {
            World::run(2, |comm| {
                let cart = CartComm::new(comm.clone(), 2, 1, true);
                let h = Halo3D::new(Halo2D::new(&cart, 64, 32), 20, Strategy3D::Transpose);
                let u: View3<f64> = View::host("u", h.shape());
                let v: View3<f64> = View::host("v", h.shape());
                h.exchange_many(&[(&u, FoldKind::Vector), (&v, FoldKind::Scalar)], 0);
            })
        })
    });
    g.finish();
}

/// Pooled (default) vs freshly-allocating exchange paths on a large tile.
/// The halo is built once per iteration and then exchanged repeatedly, so
/// after the first exchange the pooled path runs entirely out of reused
/// buffers while the `_alloc` reference pays a fresh `vec![0.0; n]` per
/// message.
fn bench_pooled_vs_allocating(c: &mut Criterion) {
    const STEPS: u64 = 32;
    let mut g = c.benchmark_group("halo3d_pooled_512x512x60_2ranks_32x");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(3));
    g.bench_function("pooled", |b| {
        b.iter(|| {
            World::run(2, |comm| {
                let cart = CartComm::new(comm.clone(), 2, 1, true);
                let h = Halo3D::new(Halo2D::new(&cart, 512, 512), 60, Strategy3D::Transpose);
                let f: View3<f64> = View::host("f", h.shape());
                f.fill(1.0);
                for tag in 0..STEPS {
                    h.exchange(&f, FoldKind::Scalar, tag * 100);
                }
            })
        })
    });
    g.bench_function("allocating", |b| {
        b.iter(|| {
            World::run(2, |comm| {
                let cart = CartComm::new(comm.clone(), 2, 1, true);
                let h = Halo3D::new(Halo2D::new(&cart, 512, 512), 60, Strategy3D::Transpose);
                let f: View3<f64> = View::host("f", h.shape());
                f.fill(1.0);
                for tag in 0..STEPS {
                    h.exchange_alloc(&f, FoldKind::Scalar, tag * 100);
                }
            })
        })
    });
    g.finish();
}

/// Plain vs CRC-framed exchange: the integrity layer adds a 4-word header
/// and a CRC32 over the payload per message. The acceptance bar is ≤ 3%
/// overhead on a production-sized tile with no faults in flight.
fn bench_integrity_overhead(c: &mut Criterion) {
    const STEPS: u64 = 32;
    let mut g = c.benchmark_group("halo3d_integrity_512x512x60_2ranks_32x");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(3));
    g.bench_function("plain", |b| {
        b.iter(|| {
            World::run(2, |comm| {
                let cart = CartComm::new(comm.clone(), 2, 1, true);
                let h = Halo3D::new(Halo2D::new(&cart, 512, 512), 60, Strategy3D::Transpose);
                let f: View3<f64> = View::host("f", h.shape());
                f.fill(1.0);
                for step in 0..STEPS {
                    h.exchange(&f, FoldKind::Scalar, step * 100);
                }
            })
        })
    });
    g.bench_function("framed_crc", |b| {
        b.iter(|| {
            World::run(2, |comm| {
                let cart = CartComm::new(comm.clone(), 2, 1, true);
                let h = Halo3D::new(Halo2D::new(&cart, 512, 512), 60, Strategy3D::Transpose)
                    .with_integrity(halo_exchange::IntegrityConfig::default());
                let f: View3<f64> = View::host("f", h.shape());
                f.fill(1.0);
                for step in 0..STEPS {
                    h.begin_step(step);
                    h.try_exchange(&f, FoldKind::Scalar, step * 100).unwrap();
                }
            })
        })
    });
    g.finish();
}

/// Serial vs parallel strip pack/unpack: the same single-rank exchange
/// (pack and unpack dominate — no real network) dispatched over the Serial
/// and Threads execution spaces via `Halo3D::with_space`.
fn bench_pack_spaces(c: &mut Criterion) {
    const STEPS: u64 = 16;
    let mut g = c.benchmark_group("halo3d_pack_512x512x60_1rank_16x");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(3));
    for (label, space) in [
        ("serial", kokkos_rs::Space::serial()),
        ("threads", kokkos_rs::Space::threads()),
    ] {
        g.bench_function(label, |b| {
            b.iter(|| {
                World::run(1, |comm| {
                    let cart = CartComm::new(comm.clone(), 1, 1, true);
                    let h = Halo3D::new(Halo2D::new(&cart, 512, 512), 60, Strategy3D::Transpose)
                        .with_space(space.clone());
                    let f: View3<f64> = View::host("f", h.shape());
                    f.fill(1.0);
                    for tag in 0..STEPS {
                        h.exchange(&f, FoldKind::Scalar, tag * 100);
                    }
                })
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_transpose,
    bench_exchange_strategies,
    bench_batched,
    bench_pooled_vs_allocating,
    bench_integrity_overhead,
    bench_pack_spaces
);
criterion_main!(benches);
