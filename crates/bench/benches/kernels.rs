//! Hotspot kernel benchmarks: one Criterion group per paper table/figure
//! hotspot — `advection_tracer` (the §V-C2 bottleneck), the canuto
//! column kernel (rect vs packed list), the momentum stencil, and one
//! barotropic substep — each on Serial vs Threads.
#![allow(clippy::field_reassign_with_default)]

use criterion::{criterion_group, criterion_main, Criterion};
use kokkos_rs::Space;
use licom::model::{CanutoMode, Model, ModelOptions};
use mpi_sim::World;
use ocean_grid::Resolution;
use std::time::Duration;

/// Build a single-rank model once and time `steps` of the full step loop
/// under the given options/space (the model's own GPTL timers then give
/// the per-kernel split; here we let Criterion time whole steps).
fn run_steps(space: Space, opts: ModelOptions, steps: usize) {
    let cfg = Resolution::Coarse100km.config().scaled_down(6, 10);
    World::run(1, move |comm| {
        let mut m = Model::new(comm, cfg.clone(), space.clone(), opts.clone());
        m.run_steps(steps);
    });
}

fn bench_full_step(c: &mut Criterion) {
    let mut g = c.benchmark_group("model_step_60x36x10");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(3));
    for (label, space) in [("Serial", Space::serial()), ("Threads", Space::threads())] {
        let space2 = space.clone();
        g.bench_function(label, |b| {
            b.iter(|| run_steps(space2.clone(), ModelOptions::default(), 2))
        });
    }
    g.finish();
}

fn bench_canuto_modes(c: &mut Criterion) {
    let mut g = c.benchmark_group("canuto_mode_60x36x10");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(3));
    for mode in [CanutoMode::Rect, CanutoMode::List] {
        let mut opts = ModelOptions::default();
        opts.canuto_mode = mode;
        g.bench_function(format!("{mode:?}"), |b| {
            let opts = opts.clone();
            b.iter(|| run_steps(Space::serial(), opts.clone(), 2))
        });
    }
    g.finish();
}

fn bench_advection_limiters(c: &mut Criterion) {
    let mut g = c.benchmark_group("advection_60x36x10");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(3));
    for limited in [false, true] {
        let mut opts = ModelOptions::default();
        opts.limiter = limited;
        let label = if limited {
            "two_step_shape_preserving"
        } else {
            "upstream_only"
        };
        g.bench_function(label, |b| {
            let opts = opts.clone();
            b.iter(|| run_steps(Space::serial(), opts.clone(), 2))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_full_step,
    bench_canuto_modes,
    bench_advection_limiters
);
criterion_main!(benches);
