//! Message-passing substrate benchmarks: point-to-point ping-pong,
//! deterministic allreduce, and barrier cost — the alpha-beta inputs of
//! the performance model's network term.

use criterion::{criterion_group, criterion_main, Criterion};
use mpi_sim::{ReduceOp, World};
use std::time::Duration;

fn bench_ping_pong(c: &mut Criterion) {
    let mut g = c.benchmark_group("ping_pong");
    g.sample_size(20);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(3));
    for size in [64usize, 4096, 65536] {
        g.bench_function(format!("{size}_f64"), |b| {
            b.iter(|| {
                World::run(2, |comm| {
                    if comm.rank() == 0 {
                        for it in 0..8u64 {
                            comm.send(1, it, vec![1.0f64; size]);
                            let _ = comm.recv::<f64>(1, it);
                        }
                    } else {
                        for it in 0..8u64 {
                            let v = comm.recv::<f64>(0, it);
                            comm.send(0, it, v);
                        }
                    }
                })
            })
        });
    }
    g.finish();
}

fn bench_collectives(c: &mut Criterion) {
    let mut g = c.benchmark_group("collectives_4ranks");
    g.sample_size(20);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(3));
    g.bench_function("allreduce_scalar_x16", |b| {
        b.iter(|| {
            World::run(4, |comm| {
                for i in 0..16 {
                    let _ = comm.allreduce_f64(i as f64 + comm.rank() as f64, ReduceOp::Sum);
                }
            })
        })
    });
    g.bench_function("barrier_x16", |b| {
        b.iter(|| {
            World::run(4, |comm| {
                for _ in 0..16 {
                    comm.barrier();
                }
            })
        })
    });
    g.finish();
}

criterion_group!(benches, bench_ping_pong, bench_collectives);
criterion_main!(benches);
