//! Profiling-hook overhead microbenchmarks.
//!
//! The contract of the `kokkos-profiling` subsystem is that the
//! *disabled* path costs one relaxed atomic load per dispatch — no
//! allocation, no lock, no clock read — so production runs without an
//! attached tool keep PR-1's zero-allocation steady state. This bench
//! measures (a) region push/pop and kernel launch with no tool attached,
//! (b) the same with the aggregating [`Profiler`] attached, and *asserts*
//! an absolute bound on the disabled-path cost so a regression (say, an
//! accidental `Instant::now()` before the enabled check) fails the bench
//! run instead of silently taxing every launch.

use std::sync::Arc;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use kokkos_profiling::{attach, detach, Profiler};
use kokkos_rs::{parallel_for_1d, Functor1D, RangePolicy, Space, View, View1};

struct Nop {
    x: View1<f64>,
}
impl Functor1D for Nop {
    fn operator(&self, i: usize) {
        self.x.set_at(i, i as f64);
    }
}
kokkos_rs::register_for_1d!(bench_profiling_nop, Nop);

/// Upper bound on the mean disabled-path cost of one region guard
/// (push + pop), in nanoseconds. The real cost is two relaxed atomic
/// loads (~1-2 ns); the bound is two orders of magnitude above that to
/// stay robust on loaded CI machines while still catching any
/// allocation, lock or clock read sneaking onto the disabled path.
const DISABLED_REGION_NS_BOUND: f64 = 250.0;

fn assert_disabled_region_overhead() {
    let _serial = kokkos_profiling::test_registry_lock();
    detach(); // ensure no tool from a previous bench
              // Warm up, then measure.
    for _ in 0..10_000 {
        let _r = kokkos_rs::profiling::region("bench_warmup");
    }
    let iters = 1_000_000u32;
    let t0 = Instant::now();
    for _ in 0..iters {
        let _r = kokkos_rs::profiling::region("bench_disabled");
    }
    let per_op = t0.elapsed().as_nanos() as f64 / iters as f64;
    assert!(
        per_op < DISABLED_REGION_NS_BOUND,
        "disabled region guard costs {per_op:.1} ns/op (bound {DISABLED_REGION_NS_BOUND} ns): \
         something expensive leaked onto the disabled path"
    );
    println!("disabled region guard: {per_op:.1} ns/op (bound {DISABLED_REGION_NS_BOUND} ns)");
}

fn bench_region_guard(c: &mut Criterion) {
    assert_disabled_region_overhead();
    let mut g = c.benchmark_group("region_guard");
    g.bench_function("disabled", |b| {
        b.iter(|| {
            let _r = kokkos_rs::profiling::region("bench_region");
        })
    });
    let prof = Arc::new(Profiler::default());
    attach(prof);
    g.bench_function("profiler_attached", |b| {
        b.iter(|| {
            let _r = kokkos_rs::profiling::region("bench_region");
        })
    });
    detach();
    g.finish();
}

fn bench_launch_with_tool(c: &mut Criterion) {
    bench_profiling_nop();
    let n = 1024;
    let mut g = c.benchmark_group("launch_nop_1024");
    for (label, space) in [
        ("Serial", Space::serial()),
        (
            "SwAthread",
            Space::sw_athread_with(sunway_sim::CgConfig::test_small()),
        ),
    ] {
        let x: View1<f64> = View::host("x", [n]);
        let f = Nop { x };
        g.bench_function(format!("{label}/disabled"), |b| {
            b.iter(|| parallel_for_1d(&space, RangePolicy::new(n), &f))
        });
        let prof = Arc::new(Profiler::default());
        attach(prof);
        g.bench_function(format!("{label}/profiled"), |b| {
            b.iter(|| parallel_for_1d(&space, RangePolicy::new(n), &f))
        });
        detach();
    }
    g.finish();
}

criterion_group!(benches, bench_region_guard, bench_launch_with_tool);
criterion_main!(benches);
