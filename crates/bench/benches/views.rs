//! View abstraction overhead: indexed access vs raw slices, layout
//! conversion (`deep_copy` across layouts) and host↔device staging.

use criterion::{criterion_group, criterion_main, Criterion};
use kokkos_rs::{deep_copy, Layout, MemSpace, View, View3};

fn bench_indexing(c: &mut Criterion) {
    let (nz, ny, nx) = (16, 64, 64);
    let v: View3<f64> = View::host("v", [nz, ny, nx]);
    let mut g = c.benchmark_group("indexing_16x64x64");
    g.bench_function("view_at", |b| {
        b.iter(|| {
            let mut s = 0.0;
            for k in 0..nz {
                for j in 0..ny {
                    for i in 0..nx {
                        s += v.at(k, j, i);
                    }
                }
            }
            criterion::black_box(s)
        })
    });
    g.bench_function("raw_slice", |b| {
        let raw = v.as_slice();
        b.iter(|| {
            let mut s = 0.0;
            for &x in raw {
                s += x;
            }
            criterion::black_box(s)
        })
    });
    g.finish();
}

fn bench_deep_copy(c: &mut Criterion) {
    let dims = [16usize, 64, 64];
    let right: View3<f64> = View::new("r", dims, Layout::Right, MemSpace::Host);
    let left: View3<f64> = View::new("l", dims, Layout::Left, MemSpace::Host);
    let device: View3<f64> = right.mirror(MemSpace::Device);
    let mut g = c.benchmark_group("deep_copy_16x64x64");
    g.bench_function("same_layout_memcpy", |b| {
        let dst: View3<f64> = View::new("d", dims, Layout::Right, MemSpace::Host);
        b.iter(|| deep_copy(&dst, &right))
    });
    g.bench_function("layout_conversion", |b| b.iter(|| deep_copy(&left, &right)));
    g.bench_function("host_to_device_staged", |b| {
        b.iter(|| deep_copy(&device, &right))
    });
    g.finish();
}

criterion_group!(benches, bench_indexing, bench_deep_copy);
criterion_main!(benches);
