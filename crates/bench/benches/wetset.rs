//! Wet-fraction sweep: dense masked kernels vs packed active-set
//! launches for the hot kernels — EOS (3-D cells + pressure columns),
//! implicit vertical mixing (tracer columns), and the z-advection pass —
//! at nominal 0% / 35% / 70% land fractions, on Serial and Threads.
//!
//! The dense kernels already early-return on land (or compute harmless
//! values there); the active-set launches skip those points entirely, so
//! the gap measured here is pure iteration-and-mask overhead — exactly
//! the cost the wet-point lists are meant to remove. Measured land
//! fractions per world are printed on stderr at startup; results feed the
//! EXPERIMENTS.md wet-fraction table.
#![allow(clippy::field_reassign_with_default)]

use criterion::{criterion_group, criterion_main, Criterion};
use kokkos_rs::{
    parallel_for_2d, parallel_for_list, ListPolicy, MDRangePolicy2, Space, View, View2,
};
use licom::advect::{FunctorAdvectZ, FunctorAdvectZList};
use licom::eos::{
    compute_density_pressure, compute_density_pressure_active, FunctorEos, FunctorEosList,
    FunctorPressure, FunctorPressureList,
};
use licom::model::{Model, ModelOptions};
use licom::vmix::{FunctorVmixImplicit, FunctorVmixList};
use mpi_sim::World;
use ocean_grid::{Bathymetry, Resolution};
use std::time::Duration;

/// Nominal-land-fraction worlds: an aquaplanet and two rectangular
/// basins sized so land covers ~35% / ~70% of the grid.
fn worlds() -> Vec<(&'static str, Bathymetry)> {
    vec![
        ("land00", Bathymetry::Flat(4000.0)),
        (
            "land35",
            Bathymetry::Basin {
                lon0: 18.0,
                lon1: 342.0,
                lat0: -65.0,
                lat1: 65.0,
                depth: 4000.0,
            },
        ),
        (
            "land70",
            Bathymetry::Basin {
                lon0: 72.0,
                lon1: 288.0,
                lat0: -45.0,
                lat1: 45.0,
                depth: 4000.0,
            },
        ),
    ]
}

/// Build a 60×36×10 single-rank model on the given world and spin it up
/// for a couple of steps so the benched kernels see non-trivial fields.
fn build_model(bathy: Bathymetry) -> Model {
    let cfg = Resolution::Coarse100km.config().scaled_down(6, 10);
    let mut opts = ModelOptions::default();
    opts.bathymetry = bathy;
    World::run(1, move |comm| {
        let mut m = Model::new(comm, cfg.clone(), Space::serial(), opts.clone());
        m.run_steps(2);
        m
    })
    .pop()
    .unwrap()
}

fn bench_wetset(c: &mut Criterion) {
    let spaces = [("Serial", Space::serial()), ("Threads", Space::threads())];
    for (world, bathy) in worlds() {
        let m = build_model(bathy);
        let g = &m.grid;
        let land = 1.0 - g.wet.cols_own.indices.len() as f64 / (g.ny * g.nx) as f64;
        eprintln!("{world}: measured land fraction (owned T columns) = {land:.3}");

        // The same policies the model builds once in `Model::new`.
        let cells_pad = ListPolicy::new(g.wet.cells3_pad.indices.clone());
        let cols_pad = ListPolicy::new(g.wet.cols_pad.indices.clone())
            .with_cost_prefix(g.wet.cols_pad.cost_prefix.clone());
        let cols = ListPolicy::new(g.wet.cols_own.indices.clone())
            .with_cost_prefix(g.wet.cols_own.cost_prefix.clone());
        let zero2: View2<f64> = View::host("bench_zero2", [g.pj, g.pi]);

        let mk_eos = || FunctorEos {
            t: m.state.t[0].clone(),
            s: m.state.s[0].clone(),
            rho: m.state.rho.clone(),
        };
        let mk_p = || FunctorPressure {
            rho: m.state.rho.clone(),
            eta: zero2.clone(),
            pressure: m.state.pressure.clone(),
            dz: g.dz.clone(),
            kmt: g.kmt.clone(),
            nz: g.nz,
        };
        // dt = 0 keeps repeated in-place application numerically inert
        // while running the full instruction mix.
        let mk_vmix = || FunctorVmixImplicit {
            q: m.state.t[0].clone(),
            kcoef: m.state.kh.clone(),
            mask: g.kmt.clone(),
            dz: g.dz.clone(),
            z_t: g.z_t.clone(),
            dt: 0.0,
            nz: g.nz,
        };
        let mk_az = || FunctorAdvectZ {
            q: m.state.work.adv_tmp.clone(),
            q1: m.state.work.adv_tmp.clone(),
            w: m.state.w.clone(),
            kmt: g.kmt.clone(),
            dz: g.dz.clone(),
            dt: 0.0,
            nz: g.nz,
            limited: true,
        };

        let mut grp = c.benchmark_group(format!("wetset_eos_{world}"));
        grp.sample_size(20);
        grp.warm_up_time(Duration::from_millis(500));
        grp.measurement_time(Duration::from_secs(4));
        for (sname, space) in &spaces {
            let (f_eos, f_p) = (mk_eos(), mk_p());
            grp.bench_function(format!("dense_{sname}"), |b| {
                b.iter(|| compute_density_pressure(space, g.pi, g.pj, g.nz, &f_eos, &f_p))
            });
            grp.bench_function(format!("active_{sname}"), |b| {
                b.iter(|| {
                    compute_density_pressure_active(
                        space,
                        &cells_pad,
                        &cols_pad,
                        FunctorEosList { f: mk_eos() },
                        FunctorPressureList {
                            f: mk_p(),
                            pi: g.pi,
                        },
                    )
                })
            });
        }
        grp.finish();

        let mut grp = c.benchmark_group(format!("wetset_vmix_{world}"));
        grp.sample_size(20);
        grp.warm_up_time(Duration::from_millis(500));
        grp.measurement_time(Duration::from_secs(4));
        for (sname, space) in &spaces {
            let f = mk_vmix();
            grp.bench_function(format!("dense_{sname}"), |b| {
                b.iter(|| parallel_for_2d(space, MDRangePolicy2::new([g.ny, g.nx]), &f))
            });
            let fl = FunctorVmixList {
                f: mk_vmix(),
                pi: g.pi,
            };
            grp.bench_function(format!("active_{sname}"), |b| {
                b.iter(|| parallel_for_list(space, &cols, &fl))
            });
        }
        grp.finish();

        let mut grp = c.benchmark_group(format!("wetset_advect_z_{world}"));
        grp.sample_size(20);
        grp.warm_up_time(Duration::from_millis(500));
        grp.measurement_time(Duration::from_secs(4));
        for (sname, space) in &spaces {
            let f = mk_az();
            grp.bench_function(format!("dense_{sname}"), |b| {
                b.iter(|| parallel_for_2d(space, MDRangePolicy2::new([g.ny, g.nx]), &f))
            });
            let fl = FunctorAdvectZList {
                f: mk_az(),
                pi: g.pi,
            };
            grp.bench_function(format!("active_{sname}"), |b| {
                b.iter(|| parallel_for_list(space, &cols, &fl))
            });
        }
        grp.finish();
    }
}

criterion_group!(benches, bench_wetset);
criterion_main!(benches);
