//! Ablation — each optimization of §V, measured on the real model, plus
//! the full-scale optimized-vs-original projection (§VII-C: 2.7× at
//! 2 km, 3.9× at 1 km on Sunway).
//!
//! Measured locally (wall-clock of the real mini-model / simulated-Sunway
//! cycle counts):
//!
//! 1. **canuto load balancing** (Fig. 4): rectangle launch vs packed
//!    wet-column list — CPE busy-cycle balance from the simulated CG
//!    counters, plus wall time;
//! 2. **3-D halo transposes** (Fig. 5): horizontal-major vs transpose
//!    strategy, identical results, message volume unchanged;
//! 3. **batched pack/unpack**: message count reduction;
//! 4. **communication overlap**: wall time with/without.

use bench::banner;
use halo_exchange::Strategy3D;
use licom::model::{CanutoMode, Model, ModelOptions};
use mpi_sim::World;
use ocean_grid::Resolution;
use perf_model::{project, Machine, ProblemSpec, SunwayVariant};

fn timed(
    cfg: &ocean_grid::ModelConfig,
    ranks: usize,
    opts: ModelOptions,
    steps: usize,
) -> (f64, u64, u64) {
    let cfg = cfg.clone();
    let out = World::run_traced(ranks, move |comm| {
        let mut m = Model::new(comm, cfg.clone(), kokkos_rs::Space::serial(), opts.clone());
        m.run_steps(2);
        let t0 = std::time::Instant::now();
        m.run_steps(steps);
        (t0.elapsed().as_secs_f64(), m.checksum())
    });
    let (results, traffic) = out;
    let wall = results.iter().map(|r| r.0).fold(0.0f64, f64::max);
    (wall, results[0].1, traffic.p2p_messages)
}

fn main() {
    let cfg = Resolution::Coarse100km.config().scaled_down(6, 10);
    let steps = 6;

    banner("Ablation 1 (Fig. 4): canuto load balancing across MPI ranks");
    // The paper's Fig. 4: ranks at sea-land boundaries hold very
    // different ocean-column counts. The cross-rank balancer ships
    // surplus columns' (N², S²) inputs to under-loaded ranks. We run a
    // 6-rank world on the Earth-like planet and report the imbalance the
    // balancer sees and removes — with bitwise-identical coefficients.
    {
        let cfg = cfg.clone();
        let reports = World::run(6, move |comm| {
            let opts = ModelOptions {
                canuto_mode: CanutoMode::List,
                ..ModelOptions::default()
            };
            let m = Model::new(comm, cfg.clone(), kokkos_rs::Space::serial(), opts);
            let c = m.state.cur();
            let fields = licom::canuto::CanutoFields {
                rho: m.state.rho.clone(),
                u: m.state.u[c].clone(),
                v: m.state.v[c].clone(),
                km: m.state.km.clone(),
                kh: m.state.kh.clone(),
                kmt: m.grid.kmt.clone(),
                z_t: m.grid.z_t.clone(),
                nz: m.grid.nz,
            };
            let wet: Vec<i32> = m.grid.wet_columns.to_vec();
            licom::canuto::balanced_cross_rank(comm, &fields, &wet, m.grid.pi)
        });
        println!(
            "{:>6} {:>14} {:>10} {:>10}",
            "rank", "wet columns", "sent", "received"
        );
        for (r, rep) in reports.iter().enumerate() {
            println!(
                "{:>6} {:>14} {:>10} {:>10}",
                r, rep.local_columns, rep.columns_sent, rep.columns_received
            );
        }
        println!(
            "wet-column imbalance (max/mean): {:.2} before -> {:.2} after balancing",
            reports[0].imbalance_before, reports[0].imbalance_after
        );
    }
    // Wall time of the two launch shapes on the host (land columns cost
    // real work in the rectangle launch).
    for mode in [CanutoMode::Rect, CanutoMode::List] {
        let opts = ModelOptions {
            canuto_mode: mode,
            ..ModelOptions::default()
        };
        let (wall, checksum, _) = timed(&cfg, 1, opts, steps);
        println!("{mode:?} launch: {wall:.3} s / {steps} steps (checksum {checksum:x})");
    }
    println!("(identical checksums across all canuto modes)");

    banner("Ablation 2 (Fig. 5): 3-D halo strategy");
    for strategy in [Strategy3D::HorizontalMajor, Strategy3D::Transpose] {
        let opts = ModelOptions {
            halo_strategy: strategy,
            ..ModelOptions::default()
        };
        let (wall, checksum, msgs) = timed(&cfg, 4, opts, steps);
        println!(
            "{strategy:?}: {:.3} s / {steps} steps, {msgs} messages, checksum {checksum:x}",
            wall
        );
    }
    println!("(bitwise-identical results; the transpose pays off on strided-DMA");
    println!(" hardware — see the Criterion bench `halo` and the projection below)");

    banner("Ablation 3: batched multi-field halo messages");
    for batched in [false, true] {
        let opts = ModelOptions {
            batched_halo: batched,
            overlap: false,
            ..ModelOptions::default()
        };
        let (wall, checksum, msgs) = timed(&cfg, 4, opts, steps);
        println!(
            "batched={batched}: {msgs} messages, {:.3} s, checksum {checksum:x}",
            wall
        );
    }

    banner("Ablation 4: communication/computation overlap");
    for overlap in [false, true] {
        let opts = ModelOptions {
            overlap,
            ..ModelOptions::default()
        };
        let (wall, checksum, _) = timed(&cfg, 4, opts, steps);
        println!("overlap={overlap}: {:.3} s, checksum {checksum:x}", wall);
    }

    banner("Ablation 5 (SS V-C2): LDM-scratch team launch for the implicit solves");
    // Run the vertical solves through TeamPolicy on the simulated CG: the
    // tridiagonal work arrays live in LDM. Identical results; the
    // simulated counters show the LDM residency.
    for team in [false, true] {
        let cfg = cfg.clone();
        let (checksum, ldm_high_water) = World::run(1, move |comm| {
            let opts = ModelOptions {
                vmix_team: team,
                ..ModelOptions::default()
            };
            let space = kokkos_rs::Space::sw_athread_with(sunway_sim::CgConfig {
                num_cpes: 16,
                host_workers: 8,
                ..sunway_sim::CgConfig::default()
            });
            let mut m = Model::new(comm, cfg.clone(), space.clone(), opts);
            m.run_steps(2);
            let hw = m
                .sunway_counters()
                .map(|c| c.totals.ldm_high_water)
                .unwrap_or(0);
            (m.checksum(), hw)
        })
        .pop()
        .unwrap();
        println!("vmix_team={team}: checksum {checksum:x}, peak LDM residency {ldm_high_water} B");
    }
    println!("(identical checksums; the team launch stages its work arrays in LDM)");

    banner("Full-scale projection: optimized vs original (paper 2.7x / 3.9x)");
    println!(
        "{:<12} {:>12} {:>14} {:>14} {:>10} {:>10}",
        "config", "Sunway CGs", "optimized", "original", "speedup", "paper"
    );
    for (res, devices, paper) in [
        (Resolution::Km2FullDepth, 576_000usize, 2.7),
        (Resolution::Km1, 590_250, 3.9),
    ] {
        let spec = ProblemSpec::from_config(&res.config());
        let m = Machine::sunway_cg();
        let opt = project(&spec, &m, devices, SunwayVariant::Optimized);
        let orig = project(&spec, &m, devices, SunwayVariant::Original);
        println!(
            "{:<12} {:>12} {:>11.3} SYPD {:>11.3} SYPD {:>9.2}x {:>9.1}x",
            res.config().name,
            devices,
            opt.sypd,
            orig.sypd,
            opt.sypd / orig.sypd,
            paper
        );
        println!(
            "{:<12} original-time breakdown: serial pack {:.1}%, compute {:.1}%, network {:.1}%",
            "",
            100.0 * orig.t_serial / orig.t_step,
            100.0 * (orig.t_compute3d + orig.t_compute2d) / orig.t_step,
            100.0 * (orig.t_net_bw + orig.t_net_lat) / orig.t_step
        );
    }
}
