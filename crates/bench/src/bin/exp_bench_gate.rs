//! CI perf-regression gate — the telemetry subsystem end to end.
//!
//! Runs a profiled 4-rank model on every execution space, builds the
//! cross-rank telemetry report (imbalance attribution, halo-wait /
//! compute split, critical path) and writes a schema-validated
//! `BENCH_run.json`, then compares it metric-by-metric against the
//! committed `BENCH_baseline.json` under the tolerance policy in
//! [`bench::gate`]. Timing metrics only fail on >25% regressions;
//! deterministic transport counters must match exactly.
//!
//! ```text
//! exp_bench_gate                      # gate against BENCH_baseline.json
//! exp_bench_gate --write-baseline     # (re)write the baseline and exit 0
//! exp_bench_gate --inject-regression  # self-test: 2x timing, must exit 1
//! exp_bench_gate --baseline P --out P --report P   # override paths
//! exp_bench_gate --assert-below threads.halo_wait_fraction=0.3
//!                                     # hard bound (repeatable): exit 1
//!                                     # if the metric is >= the value
//! exp_bench_gate --trace P            # chrome-trace of one Threads run
//! ```
//!
//! Exit codes: 0 pass, 1 regression / missing metric / failed
//! `--assert-below` bound, 2 usage/IO error.
//!
//! `overlap_efficiency` is measured from the halo engines' in-flight
//! counter: `(compute + inflight) / wall` on rank 0, where `compute` is
//! the leaf-phase sum minus receive-wait and `inflight` accumulates every
//! exchange's begin→done span (concurrent spans add). A fully blocking
//! schedule scores ≈1 (comm serializes with compute); carrying exchanges
//! across kernel work pushes it toward 1 + inflight/wall.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;

use bench::banner;
use bench::gate::{
    compare_metrics, gate_passes, merge_best, render_diff, summary_to_json, validate_summary,
    write_summary,
};
use kokkos_profiling::{
    attach, detach, gather_phases, is_enclosing, parse_json, render_prometheus, CriticalPath,
    ImbalanceReport, Profiler, WaitComputeSplit,
};
use licom::model::{Model, ModelOptions, StepStats};
use mpi_sim::{TrafficSnapshot, World};
use ocean_grid::Resolution;
use perf_model::{predicted_imbalance, predicted_shares, Machine, ProblemSpec};

const RANKS: usize = 4;
const STEPS: usize = 8;
const SPACES: [&str; 4] = ["Serial", "Threads", "DeviceSim", "SwAthread"];

/// Acceptance bound: wait + compute must sum to the measured step wall
/// within this relative error (the ISSUE's ±2%).
const SPLIT_BOUND: f64 = 0.02;

fn space_for(name: &str) -> kokkos_rs::Space {
    if name == "SwAthread" {
        kokkos_rs::Space::sw_athread_with(sunway_sim::CgConfig::bench())
    } else {
        kokkos_rs::Space::from_name(name).expect("known space")
    }
}

struct RankResult {
    stats: StepStats,
    /// This rank's phase profile (phase name → seconds).
    phases: Vec<(String, f64)>,
    /// All ranks' profiles, gathered through the deterministic
    /// allgather — identical on every rank.
    profiles: Vec<Vec<(String, f64)>>,
    daily_loop: f64,
    halo_wait_ns: u64,
    halo_inflight_ns: u64,
    counters: Vec<(String, u64)>,
    traffic: TrafficSnapshot,
    wet_cells: u64,
    monitor: String,
    /// SwAthread only: core-group counter rollup
    /// `[dma_bytes, dma_stall_cycles, cpe_busy_cycles, ldm_high_water]`.
    cg: Option<[f64; 4]>,
}

struct SpaceSummary {
    name: &'static str,
    metrics: Vec<(String, f64)>,
    report: String,
}

fn run_space(space_name: &'static str, cfg: &ocean_grid::ModelConfig) -> SpaceSummary {
    let days = STEPS as f64 * cfg.dt_baroclinic / 86_400.0;
    let run_cfg = cfg.clone();
    let results: Vec<RankResult> = World::run(RANKS, move |comm| {
        let space = space_for(space_name);
        let mut m = Model::new(
            comm,
            run_cfg.clone(),
            space.clone(),
            ModelOptions::default(),
        );
        let stats = m.run_days(days);
        // The model's space clone shares the simulated core group, so the
        // counters here cover every kernel the run launched.
        let cg = match &space {
            kokkos_rs::Space::SwAthread(sw) => {
                let c = sw.counters();
                Some([
                    (c.totals.dma_get_bytes + c.totals.dma_put_bytes) as f64,
                    c.totals.dma_stall_cycles as f64,
                    c.kernel_cycles_mean as f64 * sw.config().num_cpes as f64,
                    c.totals.ldm_high_water as f64,
                ])
            }
            _ => None,
        };
        // Leaf phases only: the enclosing daily_loop/step timers contain
        // them and would double-count every second.
        let phases: Vec<(String, f64)> = m
            .timers
            .phase_seconds()
            .into_iter()
            .filter(|(n, _)| !is_enclosing(n))
            .map(|(n, s)| (n.to_string(), s))
            .collect();
        let profiles = gather_phases(m.comm(), phases.clone());
        RankResult {
            stats,
            phases,
            profiles,
            daily_loop: m.timers.seconds("daily_loop"),
            halo_wait_ns: m.halo_wait_ns(),
            halo_inflight_ns: m.halo_inflight_ns(),
            counters: m
                .timers
                .counters()
                .into_iter()
                .map(|(n, v)| (n.to_string(), v))
                .collect(),
            traffic: m.comm().traffic(),
            wet_cells: m.grid.wet.cells3_own.indices.len() as u64,
            cg,
            monitor: m
                .telemetry()
                .map(|t| t.render())
                .unwrap_or_else(|| "telemetry disabled\n".to_string()),
        }
    });

    let r0 = &results[0];
    let prefix = space_name.to_lowercase();
    let imbalance = ImbalanceReport::from_profiles(&r0.profiles);

    // Halo-wait / compute split, per rank: phase timers must decompose
    // the measured wall within the ±2% bound on every rank.
    let mut split_lines = String::new();
    for (rank, r) in results.iter().enumerate() {
        let phase_sum: f64 = r.phases.iter().map(|(_, s)| s).sum();
        let split = WaitComputeSplit::new(phase_sum, r.halo_wait_ns as f64 * 1e-9, r.daily_loop);
        assert!(
            split.coverage_error() <= SPLIT_BOUND,
            "{space_name} rank {rank}: wait+compute covers wall to {:.2}% (> {:.0}% bound)",
            split.coverage_error() * 100.0,
            SPLIT_BOUND * 100.0
        );
        split_lines.push_str(&format!("rank {rank}: {}", split.render()));
    }

    // Critical path: slowest rank per phase, serialized, vs measured
    // (max across ranks) daily-loop wall.
    let wall_max = results.iter().map(|r| r.daily_loop).fold(0.0, f64::max);
    let critical = CriticalPath::from_report(&imbalance, wall_max);

    // Census-predicted imbalance floor from the wet-point decomposition.
    let wet: Vec<u64> = results.iter().map(|r| r.wet_cells).collect();
    let predicted = predicted_imbalance(&wet);
    let heaviest = &imbalance.phases[0];

    let r0_split = WaitComputeSplit::new(
        r0.phases.iter().map(|(_, s)| s).sum(),
        r0.halo_wait_ns as f64 * 1e-9,
        r0.daily_loop,
    );

    // Measured comm/compute overlap on rank 0: compute (leaf phases
    // minus receive-wait) plus communication-in-flight seconds, over the
    // step-loop wall. Blocking exchanges contribute their whole call
    // span to `inflight` so a dense schedule scores ≈1; split-phase
    // exchanges carried across kernels score the hidden span too.
    let r0_phase_sum: f64 = r0.phases.iter().map(|(_, s)| s).sum();
    let r0_compute = (r0_phase_sum - r0.halo_wait_ns as f64 * 1e-9).max(0.0);
    let overlap_efficiency = if r0.daily_loop > 0.0 {
        (r0_compute + r0.halo_inflight_ns as f64 * 1e-9) / r0.daily_loop
    } else {
        0.0
    };

    let count = |name: &str| -> f64 {
        r0.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v as f64)
            .unwrap_or(0.0)
    };
    let mut metrics = vec![
        (format!("{prefix}.sypd"), r0.stats.sypd),
        (
            format!("{prefix}.mean_step_seconds"),
            r0.daily_loop / STEPS as f64,
        ),
        (
            format!("{prefix}.halo_wait_seconds"),
            r0.halo_wait_ns as f64 * 1e-9 / STEPS as f64,
        ),
        (
            format!("{prefix}.halo_wait_fraction"),
            r0_split.halo_fraction(),
        ),
        (format!("{prefix}.max_over_mean"), heaviest.max_over_mean),
        (format!("{prefix}.overlap_efficiency"), overlap_efficiency),
        // World-cumulative transport totals — unlike the per-step
        // windowed `halo_msgs` counter (whose window boundaries depend
        // on rank scheduling), the end-of-run totals are deterministic.
        (
            format!("{prefix}.p2p_messages_total"),
            r0.traffic.p2p_messages as f64,
        ),
        (
            format!("{prefix}.p2p_bytes_total"),
            r0.traffic.p2p_bytes as f64,
        ),
        (format!("{prefix}.wet_cells"), r0.wet_cells as f64),
        (format!("{prefix}.steps"), r0.stats.steps as f64),
        (
            format!("{prefix}.drift_perf_trips"),
            count("drift_perf_trips"),
        ),
        (
            format!("{prefix}.drift_physics_trips"),
            count("drift_physics_trips"),
        ),
    ];
    // SwAthread's simulated hardware counters: DMA traffic, residual
    // Eq. 1/2 stall fraction, and LDM residency — the direct evidence
    // for the LDM-tiling deliverables, gated direction-aware.
    if let Some([dma_bytes, stall_cycles, busy_cycles, ldm_high]) = r0.cg {
        metrics.push((
            format!("{prefix}.cg_dma_bytes_per_step"),
            dma_bytes / STEPS as f64,
        ));
        metrics.push((
            format!("{prefix}.cg_dma_stall_fraction"),
            stall_cycles / busy_cycles.max(1.0),
        ));
        metrics.push((format!("{prefix}.cg_ldm_high_water"), ldm_high));
    }

    // Full text report for this space (CI uploads it as an artifact).
    let mut report = format!("## space: {space_name}\n\n");
    report.push_str(&imbalance.render());
    report.push('\n');
    report.push_str(&critical.render());
    report.push_str(&split_lines);
    report.push_str(&r0.monitor);
    report.push_str(&format!(
        "census imbalance floor (wet points): {predicted:.3}; measured `{}` max/mean: {:.3}\n",
        heaviest.name, heaviest.max_over_mean
    ));
    let counters: Vec<(&str, u64)> = r0.counters.iter().map(|(n, v)| (n.as_str(), *v)).collect();
    let phases: Vec<(&str, f64)> = r0.phases.iter().map(|(n, s)| (n.as_str(), *s)).collect();
    report.push_str("\n### rank-0 Prometheus exposition\n\n");
    report.push_str(&render_prometheus(&r0.traffic, &counters, &phases));

    SpaceSummary {
        name: space_name,
        metrics,
        report,
    }
}

/// Seeded rank-death scenario: 3 compute + 1 spare, rank 1 dies while
/// attempting step 4 of 6 under the overlap engine, the elastic driver
/// recovers through spare adoption + checkpoint-ring restore. The
/// recovery counters are fully deterministic, so the gate holds them
/// exact; MTTR-style timings ride along as informational metrics.
fn run_elastic_scenario() -> Vec<(String, f64)> {
    use licom::checkpoint::RecoveryPolicy;
    use licom::elastic::{run_elastic, ElasticConfig, ElasticOutcome};
    use mpi_sim::{FaultPlan, RetryPolicy, WorldConfig};

    let cfg = Resolution::Coarse100km.config().scaled_down(8, 6);
    let dir = std::env::temp_dir().join("licom_bench_gate_elastic");
    let _ = std::fs::remove_dir_all(&dir);
    let ecfg = ElasticConfig {
        target_steps: 6,
        ckpt_dir: dir.clone(),
        ring: 3,
        recovery: RecoveryPolicy {
            checkpoint_every: 2,
            max_rollbacks: 8,
        },
    };
    let wc = WorldConfig::new(4)
        .spares(1)
        .faults(FaultPlan::new(0xDEAD_0001).kill(1, 3));
    let (out, traffic) = World::run_cfg(wc, move |comm| {
        let opts = ModelOptions {
            overlap: true,
            retry: RetryPolicy::test_small(),
            ..Default::default()
        };
        match run_elastic(comm, cfg.clone(), kokkos_rs::Space::serial(), opts, &ecfg)
            .expect("gate scenario must recover")
        {
            ElasticOutcome::Completed { stats, .. } => Some(stats),
            ElasticOutcome::Spared | ElasticOutcome::Died => None,
        }
    });
    let _ = std::fs::remove_dir_all(&dir);
    let finished: Vec<_> = out.into_iter().flatten().collect();
    assert_eq!(finished.len(), 3, "all three roles must finish");
    let s = &finished[0];
    vec![
        (
            "elastic.rank_deaths_recovered".to_string(),
            s.rank_deaths_recovered as f64,
        ),
        (
            "elastic.recovery_replay_steps".to_string(),
            s.recovery_replay_steps as f64,
        ),
        (
            "elastic.rank_deaths".to_string(),
            traffic.rank_deaths as f64,
        ),
        (
            "elastic.detection_ms".to_string(),
            finished.iter().map(|s| s.detection_ns).max().unwrap_or(0) as f64 * 1e-6,
        ),
        (
            "elastic.recovery_wall_ms".to_string(),
            finished
                .iter()
                .map(|s| s.recovery_wall_ns)
                .max()
                .unwrap_or(0) as f64
                * 1e-6,
        ),
    ]
}

/// Seeded serving scenario: 48 traffic-gen jobs (mixed grids, mixed
/// priorities, some checkpointing) over 4 workers on the shared Threads
/// pool. Job/step totals are deterministic (exact-gated); throughput
/// and tail latency are wall-clock (band-gated direction-aware).
fn run_server_scenario() -> Vec<(String, f64)> {
    use licom_server::{generate, Server, ServerConfig, TrafficConfig};

    let dir = std::env::temp_dir().join("licom_bench_gate_server");
    let _ = std::fs::remove_dir_all(&dir);
    let server = Server::start(ServerConfig {
        workers: 4,
        ckpt_base: dir.clone(),
        ..ServerConfig::default()
    });
    let traffic = TrafficConfig {
        jobs: 48,
        steps: (3, 6),
        ..TrafficConfig::default()
    };
    let t0 = std::time::Instant::now();
    let handles: Vec<_> = generate(&traffic)
        .into_iter()
        .map(|a| server.submit(a.spec).expect("gate scenario within bounds"))
        .collect();
    let snap = server.join();
    let wall = t0.elapsed().as_secs_f64();
    let _ = std::fs::remove_dir_all(&dir);
    assert_eq!(snap.jobs_failed, 0, "serving scenario must not fail jobs");
    assert_eq!(handles.len() as u64, snap.jobs_completed);
    vec![
        (
            "server.jobs_completed".to_string(),
            snap.jobs_completed as f64,
        ),
        ("server.steps_total".to_string(), snap.steps_total as f64),
        (
            "server.steps_per_sec".to_string(),
            snap.steps_total as f64 / wall.max(1e-9),
        ),
        (
            "server.p99_step_latency_ns".to_string(),
            snap.p99_step_ns as f64,
        ),
        (
            "server.p50_step_latency_ns".to_string(),
            snap.p50_step_ns as f64,
        ),
    ]
}

/// Flight-recorder scenario. Two measurements:
///
/// * `flight.record_ns_per_event` — armed per-event recording cost over
///   a large batch (seqlock ring write + Lamport tick), band-gated and
///   additionally pinned by CI's `--assert-below` ceiling;
///   `flight.disabled_ns_per_event` rides along informationally (the
///   disabled path is one relaxed atomic load).
/// * `flight.dump_events_total` — a fixed event sequence recorded into a
///   fixed-capacity ring and dumped through the post-mortem path; the
///   read-back bundle's event count is deterministic (exact-gated).
fn run_flight_scenario() -> Vec<(String, f64)> {
    use mpi_sim::flight::{self, FlightEventKind};

    const N: u64 = 200_000;
    let timings = World::run(1, |comm| {
        // Disabled path first: no scope armed anywhere, so each call is
        // the single-atomic-load bail-out.
        let t0 = std::time::Instant::now();
        for i in 0..N {
            flight::record(FlightEventKind::KernelBegin, i, 0, 0);
        }
        let disabled_ns = t0.elapsed().as_nanos() as f64 / N as f64;

        let _scope = kokkos_profiling::flight::arm(comm, 4096);
        let t0 = std::time::Instant::now();
        for i in 0..N {
            flight::record(FlightEventKind::KernelBegin, i, 0, 0);
        }
        let armed_ns = t0.elapsed().as_nanos() as f64 / N as f64;
        (armed_ns, disabled_ns)
    });
    let (armed_ns, disabled_ns) = timings[0];

    let dir = std::env::temp_dir().join("licom_bench_gate_flight");
    let _ = std::fs::remove_dir_all(&dir);
    let dump_dir = dir.clone();
    let counts = World::run(1, move |comm| {
        let _scope = kokkos_profiling::flight::arm(comm, 512);
        for i in 0..300u64 {
            flight::record(FlightEventKind::StepBegin, i, 0, 0);
        }
        let path = kokkos_profiling::dump_on_failure(&dump_dir, "bench-gate", comm)
            .expect("first dump of a fresh world claims");
        let bundle = kokkos_profiling::read_bundle(&path).expect("bundle is schema-valid");
        bundle.events.len() as f64
    });
    let _ = std::fs::remove_dir_all(&dir);
    vec![
        ("flight.record_ns_per_event".to_string(), armed_ns),
        ("flight.disabled_ns_per_event".to_string(), disabled_ns),
        ("flight.dump_events_total".to_string(), counts[0]),
    ]
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("exp_bench_gate: {msg}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut write_baseline = false;
    let mut inject = false;
    let repo_root = PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));
    let mut baseline_path = repo_root.join("BENCH_baseline.json");
    let mut out_path = PathBuf::from("BENCH_run.json");
    let mut report_path = PathBuf::from("telemetry_report.txt");
    let mut trace_path: Option<PathBuf> = None;
    let mut assert_below: Vec<(String, f64)> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--write-baseline" => write_baseline = true,
            "--inject-regression" => inject = true,
            "--baseline" => match args.next() {
                Some(p) => baseline_path = PathBuf::from(p),
                None => return fail("--baseline needs a path"),
            },
            "--out" => match args.next() {
                Some(p) => out_path = PathBuf::from(p),
                None => return fail("--out needs a path"),
            },
            "--report" => match args.next() {
                Some(p) => report_path = PathBuf::from(p),
                None => return fail("--report needs a path"),
            },
            "--trace" => match args.next() {
                Some(p) => trace_path = Some(PathBuf::from(p)),
                None => return fail("--trace needs a path"),
            },
            "--assert-below" => match args.next().as_deref().and_then(|s| {
                let (name, val) = s.split_once('=')?;
                Some((name.to_string(), val.parse::<f64>().ok()?))
            }) {
                Some(bound) => assert_below.push(bound),
                None => return fail("--assert-below needs NAME=VALUE"),
            },
            other => return fail(&format!("unknown flag `{other}`")),
        }
    }

    banner("bench gate: telemetry-instrumented 4-rank run on every space");
    let cfg = Resolution::Coarse100km.config().scaled_down(6, 6);
    println!(
        "{RANKS} ranks x {STEPS} steps, {}x{}x{} grid",
        cfg.nx, cfg.ny, cfg.nz
    );

    let mut raw: BTreeMap<String, f64> = BTreeMap::new();
    let mut report = String::from("# licomkpp telemetry report\n\n");
    for space in SPACES {
        banner(&format!("space: {space}"));
        // Two measurement passes, best-of merged direction-aware:
        // contention on a shared runner only ever makes a pass look
        // worse, so the better pass is the truer measurement. The
        // Threads pass optionally records a chrome trace (an attached
        // profiler adds span overhead, so only the requested run pays).
        let first = if let (Some(path), "Threads") = (&trace_path, space) {
            let prof = std::sync::Arc::new(Profiler::default());
            attach(prof.clone());
            let s = run_space(space, &cfg);
            detach();
            match prof.write_trace(path) {
                Ok(()) => println!("wrote trace {}", path.display()),
                Err(e) => return fail(&format!("writing trace {}: {e}", path.display())),
            }
            s
        } else {
            run_space(space, &cfg)
        };
        let second = run_space(space, &cfg);
        assert_eq!(first.name, space);
        let a: BTreeMap<String, f64> = first.metrics.iter().cloned().collect();
        let b: BTreeMap<String, f64> = second.metrics.iter().cloned().collect();
        for (k, v) in merge_best(&a, &b) {
            println!("  {k:<34} {v:.6}");
            raw.insert(k, v);
        }
        report.push_str(&first.report);
        report.push('\n');
    }

    banner("elastic rank-death scenario (exact recovery counters)");
    for (k, v) in run_elastic_scenario() {
        println!("  {k:<34} {v:.6}");
        raw.insert(k, v);
    }

    banner("ensemble-serving scenario (48 jobs over the shared pool)");
    for (k, v) in run_server_scenario() {
        println!("  {k:<34} {v:.6}");
        raw.insert(k, v);
    }

    banner("flight-recorder scenario (armed record cost + deterministic dump)");
    for (k, v) in run_flight_scenario() {
        println!("  {k:<34} {v:.6}");
        raw.insert(k, v);
    }

    // Census shares recap rides the report (predicted-vs-measured, the
    // §VI-C calibration loop).
    let spec = ProblemSpec::from_config(&cfg);
    let shares = predicted_shares(&spec, &Machine::orise(), RANKS);
    report.push_str("## census predicted shares (ORISE, 4 ranks)\n\n");
    for (name, s) in &shares {
        report.push_str(&format!("{name:<20} {:.2}%\n", 100.0 * s));
    }

    let apply_injection = |raw: &BTreeMap<String, f64>| -> BTreeMap<String, f64> {
        let mut m = raw.clone();
        // Derived headline metric: the SwAthread/Threads gap (1.0 =
        // parity). Recomputed here so re-measured retries refresh it.
        if let (Some(&t), Some(&s)) = (m.get("threads.sypd"), m.get("swathread.sypd")) {
            if s > 0.0 && t > 0.0 {
                m.insert("swathread.sypd_ratio_vs_threads".to_string(), t / s);
            }
        }
        if inject {
            for (name, v) in m.iter_mut() {
                if name.ends_with(".mean_step_seconds") || name.ends_with(".halo_wait_seconds") {
                    *v *= 2.0;
                } else if name.ends_with(".sypd") {
                    *v *= 0.5;
                }
            }
        }
        m
    };
    if inject {
        banner("injecting synthetic 2x timing regression (self-test)");
    }
    let mut metrics = apply_injection(&raw);

    let mut diffs = Vec::new();
    if !write_baseline {
        banner(&format!("gate vs {}", baseline_path.display()));
        let baseline = match std::fs::read_to_string(&baseline_path)
            .map_err(|e| e.to_string())
            .and_then(|t| parse_json(&t))
            .and_then(|d| validate_summary(&d))
        {
            Ok(m) => m,
            Err(e) => {
                return fail(&format!(
                    "loading baseline {}: {e} (run with --write-baseline first)",
                    baseline_path.display()
                ))
            }
        };
        diffs = compare_metrics(&baseline, &metrics);
        // Timing-only regressions get the affected spaces re-measured
        // and merged best-of before the verdict sticks — a loaded
        // runner produces one-sided outliers, a real regression
        // persists. Exact-counter failures are never retried.
        let timing_only = |d: &bench::gate::MetricDiff| {
            d.verdict == bench::gate::Verdict::Regressed
                && matches!(
                    bench::gate::policy_for(&d.name).direction,
                    bench::gate::Direction::HigherIsBetter | bench::gate::Direction::LowerIsBetter
                )
        };
        for retry in 1..=2 {
            let retryable = diffs.iter().all(|d| {
                !matches!(
                    d.verdict,
                    bench::gate::Verdict::Regressed | bench::gate::Verdict::Missing
                ) || timing_only(d)
            });
            if gate_passes(&diffs) || !retryable {
                break;
            }
            let suspects: Vec<&'static str> = SPACES
                .iter()
                .copied()
                .filter(|s| {
                    let p = format!("{}.", s.to_lowercase());
                    diffs
                        .iter()
                        .any(|d| timing_only(d) && d.name.starts_with(&p))
                })
                .collect();
            banner(&format!(
                "timing regression — re-measuring {} (retry {retry}/2)",
                suspects.join(", ")
            ));
            for space in suspects {
                let again = run_space(space, &cfg);
                let b: BTreeMap<String, f64> = again.metrics.iter().cloned().collect();
                raw = merge_best(&raw, &b);
            }
            if diffs
                .iter()
                .any(|d| timing_only(d) && d.name.starts_with("server."))
            {
                banner("re-measuring serving scenario");
                let b: BTreeMap<String, f64> = run_server_scenario().into_iter().collect();
                raw = merge_best(&raw, &b);
            }
            if diffs
                .iter()
                .any(|d| timing_only(d) && d.name.starts_with("flight."))
            {
                banner("re-measuring flight scenario");
                let b: BTreeMap<String, f64> = run_flight_scenario().into_iter().collect();
                raw = merge_best(&raw, &b);
            }
            metrics = apply_injection(&raw);
            diffs = compare_metrics(&baseline, &metrics);
        }
    }

    // Write + re-validate the machine-readable summary.
    let doc = summary_to_json(
        &[
            ("nx", cfg.nx as u64),
            ("ny", cfg.ny as u64),
            ("nz", cfg.nz as u64),
            ("ranks", RANKS as u64),
            ("steps", STEPS as u64),
        ],
        &SPACES,
        &metrics,
    );
    if let Err(e) = write_summary(&out_path, &doc) {
        return fail(&format!("writing {}: {e}", out_path.display()));
    }
    let round_trip = match std::fs::read_to_string(&out_path)
        .map_err(|e| e.to_string())
        .and_then(|t| parse_json(&t))
        .and_then(|d| validate_summary(&d))
    {
        Ok(m) => m,
        Err(e) => {
            return fail(&format!(
                "{} failed schema validation: {e}",
                out_path.display()
            ))
        }
    };
    assert_eq!(round_trip, metrics, "run summary must round-trip");
    println!(
        "\nwrote {} (schema-valid, {} metrics)",
        out_path.display(),
        metrics.len()
    );

    if let Err(e) = std::fs::write(&report_path, &report) {
        return fail(&format!("writing {}: {e}", report_path.display()));
    }
    println!("wrote {}", report_path.display());

    if write_baseline {
        if let Err(e) = write_summary(&baseline_path, &doc) {
            return fail(&format!("writing {}: {e}", baseline_path.display()));
        }
        println!("wrote baseline {}", baseline_path.display());
        return ExitCode::SUCCESS;
    }

    // Hard bounds from --assert-below: absolute ceilings independent of
    // the baseline (CI uses them to pin the overlap-engine deliverables).
    let mut bounds_ok = true;
    for (name, bound) in &assert_below {
        match metrics.get(name) {
            Some(&v) if v < *bound => {
                println!("assert-below: {name} = {v:.6} < {bound} (ok)");
            }
            Some(&v) => {
                eprintln!("assert-below FAILED: {name} = {v:.6} >= {bound}");
                bounds_ok = false;
            }
            None => {
                eprintln!("assert-below FAILED: metric `{name}` was not measured");
                bounds_ok = false;
            }
        }
    }

    print!("{}", render_diff(&diffs));
    if gate_passes(&diffs) && bounds_ok {
        println!("\ngate: PASS");
        ExitCode::SUCCESS
    } else {
        println!("\ngate: FAIL (regression beyond tolerance, see above)");
        ExitCode::FAILURE
    }
}
