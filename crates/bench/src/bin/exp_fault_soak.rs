//! Fault soak — the seeded fault matrix (message faults × rank death)
//! crossed with every execution space, under a hard wall-clock budget.
//!
//! Each cell runs the elastic driver on a 3-compute + 1-spare world and
//! must end bitwise identical to the clean run of the same space; rank
//! deaths must be detected as typed `PeerDead` and recovered through
//! survivor consensus + spare adoption + checkpoint-ring restore. The
//! whole matrix must finish inside `--budget-seconds` (default 600) —
//! a hang anywhere in the comm stack blows the budget and fails CI.
//!
//! ```text
//! exp_fault_soak [--budget-seconds N] [--out fault_soak.json]
//! ```
//!
//! Exit codes: 0 pass, 1 divergence/unrecovered death/budget blown.
#![allow(clippy::field_reassign_with_default)]

use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;

use bench::banner;
use licom::checkpoint::RecoveryPolicy;
use licom::elastic::{run_elastic, ElasticConfig, ElasticOutcome, ElasticStats};
use licom::model::ModelOptions;
use mpi_sim::{FaultKind, FaultPlan, FaultRule, MatchSpec, RetryPolicy, World, WorldConfig};
use ocean_grid::Resolution;

const COMPUTE: usize = 3;
const WORLD: usize = 4;
const STEPS: u64 = 6;
const SPACES: [&str; 4] = ["Serial", "Threads", "DeviceSim", "SwAthread"];

fn space_for(name: &str) -> kokkos_rs::Space {
    if name == "SwAthread" {
        kokkos_rs::Space::sw_athread_with(sunway_sim::CgConfig::test_small())
    } else {
        kokkos_rs::Space::from_name(name).expect("known space")
    }
}

fn opts() -> ModelOptions {
    let mut o = ModelOptions::default();
    o.overlap = true;
    o.retry = RetryPolicy::test_small();
    o
}

struct CellResult {
    wall: f64,
    /// Checksums keyed by role, from whichever ranks finished.
    checksums: Vec<u64>,
    deaths_recovered: u64,
    replay_steps: u64,
    rollbacks: u32,
    rank_deaths: u64,
    peer_dead_errors: u64,
    crc_failures: u64,
}

fn run_cell(space_name: &str, plan: Option<FaultPlan>, tag: &str) -> CellResult {
    let cfg = Resolution::Coarse100km.config().scaled_down(8, 6);
    let dir = std::env::temp_dir().join(format!("licom_fault_soak_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    let ecfg = ElasticConfig {
        target_steps: STEPS,
        ckpt_dir: dir.clone(),
        ring: 3,
        recovery: RecoveryPolicy {
            checkpoint_every: 2,
            max_rollbacks: 8,
        },
    };
    let mut wc = WorldConfig::new(WORLD).spares(WORLD - COMPUTE);
    if let Some(p) = plan {
        wc = wc.faults(p);
    }
    let space_name = space_name.to_string();
    let t0 = Instant::now();
    let (out, traffic) = World::run_cfg(wc, move |comm| {
        match run_elastic(comm, cfg.clone(), space_for(&space_name), opts(), &ecfg)
            .expect("soak plans must be survivable")
        {
            ElasticOutcome::Completed { model, stats } => {
                Some((model.comm().rank(), model.checksum(), stats))
            }
            ElasticOutcome::Spared | ElasticOutcome::Died => None,
        }
    });
    let wall = t0.elapsed().as_secs_f64();
    let _ = std::fs::remove_dir_all(&dir);
    let mut finished: Vec<(usize, u64, ElasticStats)> = out.into_iter().flatten().collect();
    finished.sort_unstable_by_key(|(role, ..)| *role);
    assert_eq!(finished.len(), COMPUTE, "all roles must finish");
    CellResult {
        wall,
        checksums: finished.iter().map(|(_, sum, _)| *sum).collect(),
        deaths_recovered: finished[0].2.rank_deaths_recovered,
        replay_steps: finished[0].2.recovery_replay_steps,
        rollbacks: finished[0].2.rollbacks,
        rank_deaths: traffic.rank_deaths,
        peer_dead_errors: traffic.peer_dead_errors,
        crc_failures: traffic.crc_failures,
    }
}

/// The fault matrix: message faults alone, rank death alone, and both.
/// Each row is `(label, plan, expected deaths, min rollbacks, min CRC
/// detections)` — the minimums prove the fault actually fired and took
/// the intended recovery path instead of silently missing.
fn scenarios() -> Vec<(&'static str, Option<FaultPlan>, u64, u32, u64)> {
    let flip = || FaultRule::new(FaultKind::BitFlip, MatchSpec::any().epochs(1, 2)).max_hits(1);
    // NOTE: no tag filter — the elastic driver runs the model on a
    // derived communicator whose wire tags are view-namespaced, so a
    // tag-range spec would match nothing. f64-only injection keeps the
    // u8 control plane (votes, consensus bitmaps) out of reach anyway.
    let hard_drop = || {
        FaultRule::new(
            FaultKind::Drop { recoverable: false },
            MatchSpec::any().src(0).epochs(2, 3),
        )
        .max_hits(1)
    };
    vec![
        ("clean", None, 0, 0, 0),
        (
            "bitflip (escrow heal)",
            Some(FaultPlan::new(11).rule(flip())),
            0,
            0,
            1,
        ),
        (
            "hard drop (rollback)",
            Some(FaultPlan::new(44).rule(hard_drop())),
            0,
            1,
            0,
        ),
        (
            "rank death",
            Some(FaultPlan::new(0xD0A).kill(1, 3)),
            1,
            0,
            0,
        ),
        (
            "death + bitflip",
            Some(FaultPlan::new(0xD0B).rule(flip()).kill(1, 3)),
            1,
            0,
            1,
        ),
    ]
}

fn main() -> ExitCode {
    let mut budget_seconds: f64 = 600.0;
    let mut out_path = std::path::PathBuf::from("fault_soak.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--budget-seconds" => {
                budget_seconds = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--budget-seconds needs a number")
            }
            "--out" => out_path = args.next().map(Into::into).expect("--out needs a path"),
            other => {
                eprintln!("exp_fault_soak: unknown flag `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    banner("Fault soak: message faults x rank death x every space");
    println!(
        "{COMPUTE}+1 ranks x {STEPS} steps, overlap engine on, elastic driver, \
         budget {budget_seconds:.0}s\n"
    );

    let t0 = Instant::now();
    let mut ok = true;
    let mut json = String::from("{\n  \"cells\": [\n");
    let mut first_cell = true;
    println!(
        "{:<12} {:<24} {:>6} {:>7} {:>7} {:>5} {:>8} {:>8}",
        "space", "scenario", "deaths", "replay", "roll", "wall", "PeerDead", "bitwise"
    );
    for space in SPACES {
        let clean = run_cell(space, None, &format!("{space}_clean"));
        for (label, plan, want_deaths, min_rollbacks, min_crc) in scenarios() {
            let tag = format!("{space}_{}", label.split_whitespace().next().unwrap());
            let cell = match plan {
                None => run_cell(space, None, &tag),
                Some(p) => run_cell(space, Some(p), &tag),
            };
            let bitwise = cell.checksums == clean.checksums;
            let recovered = cell.deaths_recovered == want_deaths && cell.rank_deaths == want_deaths;
            let fired = cell.rollbacks >= min_rollbacks && cell.crc_failures >= min_crc;
            if !bitwise || !recovered || !fired {
                if !fired {
                    eprintln!(
                        "{space}/{label}: fault did not take the intended path                          (rollbacks {} < {min_rollbacks} or crc {} < {min_crc})",
                        cell.rollbacks, cell.crc_failures
                    );
                }
                ok = false;
            }
            println!(
                "{:<12} {:<24} {:>6} {:>7} {:>7} {:>5.1} {:>8} {:>8}",
                space,
                label,
                cell.deaths_recovered,
                cell.replay_steps,
                cell.rollbacks,
                cell.wall,
                cell.peer_dead_errors,
                if bitwise { "yes" } else { "NO!" }
            );
            if !first_cell {
                json.push_str(",\n");
            }
            first_cell = false;
            let _ = write!(
                json,
                "    {{\"space\": \"{space}\", \"scenario\": \"{label}\", \
                 \"wall_seconds\": {:.4}, \"rank_deaths\": {}, \
                 \"deaths_recovered\": {}, \"replay_steps\": {}, \
                 \"rollbacks\": {}, \"peer_dead_errors\": {}, \"bitwise\": {}}}",
                cell.wall,
                cell.rank_deaths,
                cell.deaths_recovered,
                cell.replay_steps,
                cell.rollbacks,
                cell.peer_dead_errors,
                bitwise
            );
        }
    }
    let total = t0.elapsed().as_secs_f64();
    let within_budget = total <= budget_seconds;
    let _ = write!(
        json,
        "\n  ],\n  \"total_wall_seconds\": {total:.2},\n  \
         \"budget_seconds\": {budget_seconds:.0},\n  \
         \"within_budget\": {within_budget},\n  \"pass\": {}\n}}\n",
        ok && within_budget
    );
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("exp_fault_soak: writing {}: {e}", out_path.display());
        return ExitCode::from(2);
    }
    println!(
        "\nwrote {} ({total:.1}s of {budget_seconds:.0}s budget)",
        out_path.display()
    );

    if ok && within_budget {
        println!("soak: PASS");
        ExitCode::SUCCESS
    } else {
        if !within_budget {
            eprintln!("soak: FAIL — wall budget exceeded ({total:.1}s > {budget_seconds:.0}s)");
        } else {
            eprintln!("soak: FAIL — divergence or unrecovered death (see table)");
        }
        ExitCode::FAILURE
    }
}
