//! Fault sweep — recovery overhead of the robustness layer (§ fault
//! injection / integrity / checkpoint-rollback).
//!
//! Runs the same 3-rank, 12-step model under a series of seeded fault
//! plans and reports what each run survived and what it cost: rollbacks,
//! steps replayed, detected corruptions, retries, escrow resends, extra
//! halo traffic versus the clean run, wall-time overhead — and whether
//! the final state stayed bitwise identical to the fault-free answer
//! (it must).
#![allow(clippy::field_reassign_with_default)]

use bench::banner;
use licom::checkpoint::{CheckpointManager, RecoveryPolicy, RecoveryStats};
use licom::model::{Model, ModelOptions};
use mpi_sim::stats::TrafficSnapshot;
use mpi_sim::RetryPolicy;
use mpi_sim::{FaultKind, FaultPlan, FaultRule, MatchSpec, World};
use ocean_grid::Resolution;

const RANKS: usize = 3;
const STEPS: u64 = 12;

fn opts() -> ModelOptions {
    let mut o = ModelOptions::default();
    o.retry = RetryPolicy::test_small();
    o
}

struct Outcome {
    wall: f64,
    checksums: Vec<u64>,
    stats: RecoveryStats,
    traffic: TrafficSnapshot,
}

fn run(plan: Option<FaultPlan>) -> Outcome {
    let cfg = Resolution::Coarse100km.config().scaled_down(8, 6);
    let dir = std::env::temp_dir().join("licom_fault_sweep");
    let _ = std::fs::remove_dir_all(&dir);
    let t0 = std::time::Instant::now();
    let (results, traffic) = World::run_faulted(RANKS, plan.unwrap_or_default(), {
        let dir = dir.clone();
        move |comm| {
            let mut mgr = CheckpointManager::new(&dir, 3);
            let mut m = Model::new(comm, cfg.clone(), kokkos_rs::Space::serial(), opts());
            let policy = RecoveryPolicy {
                checkpoint_every: 3,
                max_rollbacks: 8,
            };
            let stats = m
                .run_steps_resilient(STEPS, &mut mgr, &policy)
                .expect("sweep plans must be survivable");
            (m.checksum(), stats)
        }
    });
    let wall = t0.elapsed().as_secs_f64();
    let _ = std::fs::remove_dir_all(&dir);
    let checksums: Vec<u64> = results.iter().map(|r| r.0).collect();
    let stats = RecoveryStats {
        steps_completed: results.iter().map(|r| r.1.steps_completed).sum(),
        rollbacks: results.iter().map(|r| r.1.rollbacks).sum(),
        steps_replayed: results.iter().map(|r| r.1.steps_replayed).sum(),
        halo_errors: results.iter().map(|r| r.1.halo_errors).sum(),
        guard_trips: results.iter().map(|r| r.1.guard_trips).sum(),
        drift_trips: results.iter().map(|r| r.1.drift_trips).sum(),
        checkpoints_written: results.iter().map(|r| r.1.checkpoints_written).sum(),
    };
    Outcome {
        wall,
        checksums,
        stats,
        traffic,
    }
}

fn main() {
    banner("Fault sweep: recovery overhead under seeded fault plans");
    println!(
        "{RANKS} ranks x {STEPS} steps, 45x27x6 config, serial space, \
         checkpoint every 3 steps, integrity framing on\n"
    );

    let plans: Vec<(&str, Option<FaultPlan>)> = vec![
        ("clean (no faults)", None),
        (
            "bit-flip x3 (escrow heal)",
            Some(FaultPlan::new(11).rule(
                FaultRule::new(FaultKind::BitFlip, MatchSpec::any().epochs(2, 3)).max_hits(1),
            )),
        ),
        (
            "recoverable drop (escrow heal)",
            Some(
                FaultPlan::new(22).rule(
                    FaultRule::new(
                        FaultKind::Drop { recoverable: true },
                        MatchSpec::any().src(1).tags(800, 870).epochs(4, 5),
                    )
                    .max_hits(1),
                ),
            ),
        ),
        (
            "truncate x3 (escrow heal)",
            Some(
                FaultPlan::new(33).rule(
                    FaultRule::new(
                        FaultKind::Truncate { drop_words: 7 },
                        MatchSpec::any().epochs(6, 7),
                    )
                    .max_hits(1),
                ),
            ),
        ),
        (
            "unrecoverable drop (rollback)",
            Some(
                FaultPlan::new(44).rule(
                    FaultRule::new(
                        FaultKind::Drop { recoverable: false },
                        MatchSpec::any().src(0).tags(800, 870).epochs(7, 8),
                    )
                    .max_hits(1),
                ),
            ),
        ),
        (
            "flip + unrecoverable drop",
            Some(
                FaultPlan::new(0xF00D_CAFE)
                    .rule(
                        FaultRule::new(FaultKind::BitFlip, MatchSpec::any().epochs(2, 3))
                            .max_hits(1),
                    )
                    .rule(
                        FaultRule::new(
                            FaultKind::Drop { recoverable: false },
                            MatchSpec::any().src(0).tags(800, 870).epochs(5, 6),
                        )
                        .max_hits(1),
                    ),
            ),
        ),
    ];

    let clean = run(None);
    println!(
        "{:<32} {:>5} {:>7} {:>5} {:>7} {:>7} {:>8} {:>9} {:>8} {:>7}",
        "plan",
        "inj",
        "detect",
        "roll",
        "replay",
        "resend",
        "timeout",
        "+bytes%",
        "+wall%",
        "bitwise"
    );
    for (label, plan) in plans {
        let o = if plan.is_none() { run(None) } else { run(plan) };
        let extra_bytes =
            100.0 * (o.traffic.p2p_bytes as f64 / clean.traffic.p2p_bytes as f64 - 1.0);
        let extra_wall = 100.0 * (o.wall / clean.wall - 1.0);
        println!(
            "{:<32} {:>5} {:>7} {:>5} {:>7} {:>7} {:>8} {:>8.2} {:>7.0} {:>8}",
            label,
            o.traffic.faults_injected(),
            o.traffic.crc_failures,
            o.stats.rollbacks,
            o.stats.steps_replayed,
            o.traffic.resends_served,
            o.traffic.recv_timeouts,
            extra_bytes,
            extra_wall,
            if o.checksums == clean.checksums {
                "yes"
            } else {
                "NO!"
            }
        );
        assert_eq!(
            o.checksums, clean.checksums,
            "{label}: recovered state diverged from the clean run"
        );
    }
    println!(
        "\nEvery plan ends bitwise identical to the clean run; overheads\n\
         are the price of the detours (retries, rollback, replayed steps)."
    );
}
