//! Fig. 1 — SST structure and the full-depth Mariana-trench column.
//!
//! (a–e): run the global model on the synthetic planet, print SST
//! statistics globally and in the Northwest-Pacific box of Fig. 1b, plus
//! an ASCII SST map and a zonal-gradient census (fine-structure metric).
//!
//! (f–g): build the full-depth 2-km-analogue grid and extract the
//! temperature/depth profile along 142.5° E through the trench — the
//! model topography must reach below 10,900 m (paper: 10,905 m, red
//! arrow in Fig. 1f) and the column must keep stratification to the
//! bottom.

use bench::banner;
use licom::model::{Model, ModelOptions};
use mpi_sim::World;
use ocean_grid::{bathymetry::TRENCH_DEPTH_M, Bathymetry, GlobalGrid, Resolution};

fn main() {
    banner("Fig. 1a-e: global SST from the scaled global run");
    let cfg = Resolution::Coarse100km.config().scaled_down(4, 12);
    let (sst_stats, map) = World::run(1, {
        let cfg = cfg.clone();
        move |comm| {
            let mut m = Model::new(
                comm,
                cfg.clone(),
                kokkos_rs::Space::threads(),
                ModelOptions::default(),
            );
            m.run_days(1.0);
            assert!(!m.state.has_nan());
            let c = m.state.cur();
            let g = &m.grid;
            let t = &m.state.t[c];
            // Global stats + NW Pacific box (120E-180E, 20N-45N).
            let mut all = Vec::new();
            let mut nwp = Vec::new();
            let mut grad = Vec::new();
            for jl in 2..2 + g.ny {
                for il in 2..2 + g.nx {
                    if g.kmt.at(jl, il) == 0 {
                        continue;
                    }
                    let sst = t.at(0, jl, il);
                    all.push(sst);
                    let (lon, lat) = (g.lon.at(il), g.lat.at(jl));
                    if (120.0..180.0).contains(&lon) && (20.0..45.0).contains(&lat) {
                        nwp.push(sst);
                    }
                    if g.kmt.at(jl, il + 1) > 0 {
                        grad.push(((t.at(0, jl, il + 1) - sst) / (g.dxt.at(jl) / 1000.0)).abs());
                    }
                }
            }
            let stat = |v: &mut Vec<f64>| {
                v.sort_by(|a, b| a.partial_cmp(b).unwrap());
                let mean = v.iter().sum::<f64>() / v.len() as f64;
                (v[0], mean, v[v.len() - 1])
            };
            // ASCII SST map (every Nth cell).
            let mut map = String::new();
            let shades = b" .:-=+*#%@";
            for jl in (2..2 + g.ny).rev().step_by(g.ny / 24 + 1) {
                for il in (2..2 + g.nx).step_by(g.nx / 72 + 1) {
                    if g.kmt.at(jl, il) == 0 {
                        map.push(' ');
                    } else {
                        let sst = t.at(0, jl, il).clamp(-2.0, 30.0);
                        let idx = ((sst + 2.0) / 32.0 * 9.0) as usize;
                        map.push(shades[idx.min(9)] as char);
                    }
                }
                map.push('\n');
            }
            let g_all = stat(&mut all);
            let g_nwp = stat(&mut nwp);
            let g_grad = stat(&mut grad);
            ((g_all, g_nwp, g_grad), map)
        }
    })
    .pop()
    .unwrap();
    let (all, nwp, grad) = sst_stats;
    println!(
        "global SST    min {:6.2} C   mean {:6.2} C   max {:6.2} C",
        all.0, all.1, all.2
    );
    println!(
        "NW Pacific    min {:6.2} C   mean {:6.2} C   max {:6.2} C  (Fig. 1b box)",
        nwp.0, nwp.1, nwp.2
    );
    println!(
        "zonal |dSST/dx|  median-ish mean {:.4} C/km, max {:.4} C/km (frontal sharpness)",
        grad.1, grad.2
    );
    assert!(
        all.2 > 20.0 && all.0 < 5.0,
        "SST range must span tropics to poles"
    );
    println!("\nASCII SST map (warm = dense glyphs, land = blank):");
    println!("{map}");

    banner("Fig. 1d-e: fine-scale SST structure vs resolution (zonal spectra)");
    // The paper's zoom panels show the 1-km run holding variance at
    // scales the observation/coarse product cannot. Objective version:
    // the fraction of zonal SST variance above a fixed wavenumber grows
    // as the grid refines.
    println!(
        "{:>10} {:>14} {:>22}",
        "grid", "resolved k", "variance above k=8"
    );
    let mut fracs = Vec::new();
    for div in [8usize, 4] {
        let cfg = Resolution::Coarse100km.config().scaled_down(div, 10);
        let frac = World::run(1, {
            let cfg = cfg.clone();
            move |comm| {
                let mut m = Model::new(
                    comm,
                    cfg.clone(),
                    kokkos_rs::Space::threads(),
                    ModelOptions::default(),
                );
                m.run_days(1.0);
                let c = m.state.cur();
                let sst = m.state.t[c].level(0);
                let (_, power) =
                    licom::spectra::zonal_spectrum(&sst, &m.grid.kmt, m.grid.ny, m.grid.nx, 2);
                licom::spectra::fine_scale_fraction(&power, 8)
            }
        })
        .pop()
        .unwrap();
        println!(
            "{:>10} {:>14} {:>21.4}%",
            format!("{}x{}", cfg.nx, cfg.ny),
            cfg.nx / 2,
            100.0 * frac
        );
        fracs.push(frac);
    }
    assert!(
        fracs[1] > fracs[0],
        "finer grid must hold more fine-scale SST variance: {fracs:?}"
    );
    println!("(the finer grid carries more variance beyond wavenumber 8 — the\n Fig. 1d vs 1e contrast, quantified)");

    banner("Fig. 1f-g: full-depth trench column along 142.5 E (2-km analogue)");
    // The 2-km full-depth grid, scaled 20x horizontally, full 244 levels.
    let cfg2 = Resolution::Km2FullDepth.config().scaled_down(20, 244);
    let grid = GlobalGrid::build(cfg2.nx, cfg2.ny, cfg2.nz, &Bathymetry::earth_like(), true);
    // Column closest to (142.5 E, 11.35 N).
    let mut best = (0usize, 0usize, f64::MAX);
    for j in 0..grid.ny() {
        for i in 0..grid.nx() {
            let d = (grid.horiz.lon_t(i) - 142.5).abs() + (grid.horiz.lat_t(j) - 11.35).abs();
            if d < best.2 {
                best = (j, i, d);
            }
        }
    }
    let (j, i, _) = best;
    let depth = grid.depth[grid.idx(j, i)];
    let kmt = grid.kmt[grid.idx(j, i)];
    println!(
        "trench column at ({:.2} E, {:.2} N): depth {:.0} m, {} of {} levels active",
        grid.horiz.lon_t(i),
        grid.horiz.lat_t(j),
        depth,
        kmt,
        grid.nz()
    );
    assert!(
        depth > 10_800.0,
        "trench analog must resolve the Challenger Deep ({depth} m)"
    );
    println!("maximum model topography depth: {TRENCH_DEPTH_M} m (paper: 10,905 m)");
    // Meridional depth profile along 142.5 E (Fig. 1f).
    println!("\ndepth profile along 142.5 E:");
    let i_sec = (0..grid.nx())
        .min_by(|&a, &b| {
            (grid.horiz.lon_t(a) - 142.5)
                .abs()
                .partial_cmp(&(grid.horiz.lon_t(b) - 142.5).abs())
                .unwrap()
        })
        .unwrap();
    for j in (0..grid.ny()).step_by((grid.ny() / 24).max(1)) {
        let d = grid.depth[grid.idx(j, i_sec)];
        let bar = "#".repeat((d / 250.0) as usize);
        println!("{:>6.1}N |{bar:<46}| {:6.0} m", grid.horiz.lat_t(j), d);
    }
}
