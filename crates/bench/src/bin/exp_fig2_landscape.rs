//! Fig. 2 — the high-resolution ocean-modelling landscape.
//!
//! The paper's Fig. 2 is a scatter of recent large-scale ocean-modelling
//! efforts (resolution vs SYPD vs system). We reproduce the underlying
//! data series, with the two LICOMK++ results of this work marked, and
//! print it as the plot's data table (resolution on one axis, SYPD on the
//! other — the "1 SYPD at 1 km" frontier is the headline).

struct Effort {
    year: u32,
    model: &'static str,
    system: &'static str,
    resolution_km: f64,
    sypd: f64,
    this_work: bool,
}

fn landscape() -> Vec<Effort> {
    vec![
        Effort {
            year: 2020,
            model: "POP2 (CESM G)",
            system: "Sunway TaihuLight (1,189,500 cores)",
            resolution_km: 10.0,
            sypd: 5.5,
            this_work: false,
        },
        Effort {
            year: 2021,
            model: "Veros",
            system: "16x NVIDIA A100",
            resolution_km: 10.0,
            sypd: 0.8,
            this_work: false,
        },
        Effort {
            year: 2022,
            model: "swNEMO_v4.0",
            system: "New Sunway (27,988,480 cores)",
            resolution_km: 0.5,
            sypd: 0.42,
            this_work: false,
        },
        Effort {
            year: 2023,
            model: "Oceananigans",
            system: "Perlmutter (768x A100)",
            resolution_km: 0.488,
            sypd: 0.041,
            this_work: false,
        },
        Effort {
            year: 2023,
            model: "Oceananigans (realistic)",
            system: "NVIDIA GPUs",
            resolution_km: 1.2,
            sypd: 0.3,
            this_work: false,
        },
        Effort {
            year: 2020,
            model: "E3SM nonhydro atmos",
            system: "Summit",
            resolution_km: 3.0,
            sypd: 0.97,
            this_work: false,
        },
        Effort {
            year: 2023,
            model: "SCREAM (atmos)",
            system: "Frontier",
            resolution_km: 3.25,
            sypd: 1.26,
            this_work: false,
        },
        Effort {
            year: 2024,
            model: "LICOM3-Kokkos",
            system: "4096 HIP GPUs",
            resolution_km: 5.0,
            sypd: 3.4,
            this_work: false,
        },
        Effort {
            year: 2024,
            model: "LICOMK++",
            system: "ORISE (16,000 HIP GPUs)",
            resolution_km: 1.0,
            sypd: 1.701,
            this_work: true,
        },
        Effort {
            year: 2024,
            model: "LICOMK++",
            system: "New Sunway (38,366,250 cores)",
            resolution_km: 1.0,
            sypd: 1.047,
            this_work: true,
        },
    ]
}

fn main() {
    bench::banner("Fig. 2: recent high-resolution ocean/climate modelling efforts");
    println!(
        "{:<6} {:<26} {:<38} {:>10} {:>8}",
        "year", "model", "system", "res (km)", "SYPD"
    );
    for e in landscape() {
        println!(
            "{:<6} {:<26} {:<38} {:>10.3} {:>8.3}{}",
            e.year,
            e.model,
            e.system,
            e.resolution_km,
            e.sypd,
            if e.this_work { "  <-- this work" } else { "" }
        );
    }
    // The headline claim: first global realistic OGCM above 1 SYPD at
    // kilometre scale.
    let frontier: Vec<&Effort> = landscape_static();
    let best_km_scale_other = frontier
        .iter()
        .filter(|e| !e.this_work && e.resolution_km <= 1.3)
        .map(|e| e.sypd)
        .fold(0.0f64, f64::max);
    println!(
        "\nBest prior kilometre-scale OGCM throughput: {best_km_scale_other} SYPD; \
         LICOMK++ reaches 1.701 / 1.047 SYPD — the first >1 SYPD at ~1 km."
    );
    assert!(best_km_scale_other < 1.0);
}

fn landscape_static() -> Vec<&'static Effort> {
    // Leak a copy for simple iteration with references.
    Box::leak(Box::new(landscape())).iter().collect()
}
