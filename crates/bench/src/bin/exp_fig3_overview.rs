//! Fig. 3 — "Schematic of a high-level overview of LICOMK++, the
//! architecture of SW26010 Pro, and their relationship."
//!
//! The paper's Fig. 3 is a diagram, so this binary prints the live
//! equivalent: the layer stack from primitive equations down to the
//! simulated hardware, introspected from the running build (registered
//! kernels, execution spaces, CPE cluster geometry), with one kernel
//! actually launched through every layer as proof of the wiring.

use kokkos_rs::{parallel_for_1d, Functor1D, RangePolicy, Space, View, View1};

struct Probe {
    x: View1<f64>,
}
impl Functor1D for Probe {
    fn operator(&self, i: usize) {
        self.x.set_at(i, 2.0 * i as f64);
    }
}
kokkos_rs::register_for_1d!(fig3_probe, Probe);

fn main() {
    fig3_probe();
    licom::register_all_kernels();
    bench::banner("Fig. 3: LICOMK++ layer stack (live introspection)");
    println!(
        r#"
  +--------------------------------------------------------------+
  |  primitive equations: momentum + tracers, split-explicit     |
  |  leapfrog (barotropic / baroclinic / tracer sub-stepping)    |
  +--------------------------------------------------------------+
  |  LICOMK++ kernels: registered Kokkos-style functors          |
  +--------------------------------------------------------------+
  |  kokkos-rs: Views - policies (Eq.1/Eq.2 tiling) - registry   |
  +-------------+-------------+-------------+--------------------+
  |   Serial    |  Threads    |  DeviceSim  |  SwAthread         |
  |  (Fortran   |  (OpenMP/   |  (CUDA/HIP  |  (Athread,         |
  |   baseline) |   rayon)    |   analogue) |   this work)       |
  +-------------+-------------+-------------+--------------------+
                                            |  SW26010 Pro CG:   |
                                            |  MPE + 8x8 CPEs    |
                                            |  256 kB LDM / CPE  |
                                            |  DMA <-> 16 GB DDR4|
                                            +--------------------+
"#
    );

    let kernels = kokkos_rs::registry::registered_kernels();
    println!("registered model kernels ({} total):", kernels.len());
    let mut by_kind: std::collections::BTreeMap<String, Vec<&str>> = Default::default();
    for (name, kind) in &kernels {
        by_kind.entry(format!("{kind:?}")).or_default().push(name);
    }
    for (kind, names) in &by_kind {
        println!("  {kind:<10} {}", names.join(", "));
    }

    let cg = sunway_sim::CgConfig::default();
    println!(
        "\nSW26010 Pro core group: {} CPEs x {} kB LDM, {:.1} GB/s, {:.2} GHz",
        cg.num_cpes,
        cg.ldm_bytes / 1024,
        cg.mem_bandwidth_bps / 1e9,
        cg.clock_hz / 1e9
    );

    // Drive one kernel through every layer of the stack.
    println!("\nlaunch path proof (same functor through all four backends):");
    for name in ["Serial", "Threads", "DeviceSim", "SwAthread"] {
        let space = if name == "SwAthread" {
            Space::sw_athread_with(sunway_sim::CgConfig::test_small())
        } else {
            Space::from_name(name).unwrap()
        };
        let x: View1<f64> = View::host("x", [64]);
        parallel_for_1d(&space, RangePolicy::new(64), &Probe { x: x.clone() });
        assert!((0..64).all(|i| x.at(i) == 2.0 * i as f64));
        println!("  {name:<10} OK (64/64 elements verified)");
    }
    println!("\nevery layer of the Fig. 3 stack is wired and live.");
}
