//! Fig. 6 — Rossby number vs horizontal resolution: submesoscale
//! emergence.
//!
//! The paper shows |Ro| = |ζ/f| snapshots in the Kuroshio-extension
//! region at 10-, 2- and 1-km resolution: finer grids develop much
//! richer submesoscale structure (|Ro| ~ O(1)). We run the same physical
//! basin (a mid-latitude wind-driven domain) at three grid spacings for
//! the same simulated time and report the |Ro| distribution: the
//! quantiles must grow monotonically as the grid refines — the same
//! *shape* as Fig. 6, on laptop-sized grids.

use bench::banner;
use kokkos_rs::{View, View2};
use licom::diag::rossby_quantiles;
use licom::model::{Model, ModelOptions};
use mpi_sim::World;
use ocean_grid::{Bathymetry, ModelConfig};

fn run_case(nx: usize, ny: usize, days: f64) -> (f64, f64, f64, f64, f64) {
    let cfg = ModelConfig {
        name: format!("rossby-{nx}"),
        nx,
        ny,
        nz: 8,
        dt_barotropic: 2.0,
        dt_baroclinic: 20.0,
        dt_tracer: 20.0,
        full_depth: false,
    };
    // Mid-latitude basin: strong wind-driven gyres, western boundary
    // current — the Kuroshio-analogue playground.
    let opts = ModelOptions {
        bathymetry: Bathymetry::Basin {
            lon0: 120.0,
            lon1: 200.0,
            lat0: 15.0,
            lat1: 50.0,
            depth: 3000.0,
        },
        ..ModelOptions::default()
    };
    World::run(1, move |comm| {
        let mut m = Model::new(comm, cfg.clone(), kokkos_rs::Space::threads(), opts.clone());
        let steps = (days * 86_400.0 / cfg.dt_baroclinic) as usize;
        m.run_steps(steps);
        assert!(!m.state.has_nan(), "blow-up at nx={nx}");
        let out: View2<f64> = View::host("ro", [m.grid.pj, m.grid.pi]);
        let c = m.state.cur();
        let (q50, q90, q99, max) =
            rossby_quantiles(&m.space, &m.grid, &m.state.u[c], &m.state.v[c], &out);
        let dx_km = m.grid.dxt.at(m.grid.pj / 2) / 1000.0;
        (dx_km, q50, q90, q99, max)
    })
    .pop()
    .unwrap()
}

fn main() {
    banner("Fig. 6: |Rossby number| distribution vs resolution (same basin, same day)");
    println!(
        "{:>10} {:>10} {:>12} {:>12} {:>12} {:>12}",
        "grid", "dx (km)", "|Ro| q50", "|Ro| q90", "|Ro| q99", "|Ro| max"
    );
    let days = 2.0;
    let mut q99s = Vec::new();
    for (nx, ny) in [(40usize, 18usize), (80, 36), (160, 72)] {
        let (dx, q50, q90, q99, max) = run_case(nx, ny, days);
        println!(
            "{:>10} {:>10.1} {:>12.4} {:>12.4} {:>12.4} {:>12.4}",
            format!("{nx}x{ny}"),
            dx,
            q50,
            q90,
            q99,
            max
        );
        q99s.push(q99);
    }
    assert!(
        q99s.windows(2).all(|w| w[1] > w[0]),
        "finer grids must show stronger submesoscale |Ro| tails: {q99s:?}"
    );
    println!("\nThe |Ro| tail grows monotonically with resolution — the Fig. 6");
    println!("signature: kilometre-scale grids resolve submesoscale vorticity");
    println!("(|Ro| ~ O(1)) that coarse grids cannot.");
}
