//! Fig. 7 — single-node performance portability at 100-km resolution.
//!
//! Part 1 *measures* the real mini-model on all four `kokkos-rs`
//! execution spaces (same binary, same state, runtime backend switch) and
//! verifies the results are **bitwise identical** — portability as a
//! correctness property. `Serial` plays the Fortran-baseline role.
//!
//! Part 2 *projects* the paper's four platforms with the calibrated
//! machine models, reproducing the Kokkos-vs-Fortran speedups
//! (7.08× / 11.42× / 11.45× / 1.03×).

use bench::{banner, deviation_pct};
use licom::model::{Model, ModelOptions};
use mpi_sim::World;
use ocean_grid::Resolution;
use perf_model::{calibration, project, Machine, ProblemSpec, SunwayVariant};

fn main() {
    banner("Fig. 7 (measured): one model binary on four execution spaces");
    // 100-km config scaled /4 so the Sunway-simulated backend finishes
    // quickly; every backend runs the identical configuration.
    let cfg = Resolution::Coarse100km.config().scaled_down(4, 12);
    println!(
        "grid {} x {} x {}, dt {}/{} s\n",
        cfg.nx, cfg.ny, cfg.nz, cfg.dt_barotropic, cfg.dt_baroclinic
    );
    println!(
        "{:<12} {:>12} {:>12} {:>18}",
        "space", "SYPD", "vs Serial", "state checksum"
    );
    let mut reference: Option<u64> = None;
    let mut serial_sypd = None;
    for name in ["Serial", "Threads", "DeviceSim", "SwAthread"] {
        let cfg = cfg.clone();
        let space = if name == "SwAthread" {
            // Small simulated CG so the cycle-accounted backend runs in
            // seconds; results are independent of CG size.
            kokkos_rs::Space::sw_athread_with(sunway_sim::CgConfig {
                num_cpes: 16,
                host_workers: 8,
                ..sunway_sim::CgConfig::default()
            })
        } else {
            kokkos_rs::Space::from_name(name).unwrap()
        };
        let (sypd, checksum, gflops) = World::run(1, move |comm| {
            let mut m = Model::new(comm, cfg.clone(), space.clone(), ModelOptions::default());
            m.run_steps(2); // warm-up
            if let kokkos_rs::Space::SwAthread(sw) = &space {
                sw.reset_counters();
            }
            let stats = m.run_days(0.02);
            // Simulated achieved FLOP rate — the analogue of the paper's
            // "14.12 GFLOPS with LICOMK++ ... on a single SW26010 Pro".
            let gflops = m.sunway_counters().map(|c| c.achieved_flops(2.25e9) / 1e9);
            (stats.sypd, m.checksum(), gflops)
        })
        .pop()
        .unwrap();
        let base = *serial_sypd.get_or_insert(sypd);
        println!(
            "{:<12} {:>12.2} {:>11.2}x {:>18x}{}",
            name,
            sypd,
            sypd / base,
            checksum,
            gflops
                .map(|g| format!("   [{g:.1} simulated GFLOPS]"))
                .unwrap_or_default()
        );
        match &reference {
            None => reference = Some(checksum),
            Some(r) => assert_eq!(*r, checksum, "{name} diverged bitwise!"),
        }
    }
    println!("\nAll four backends produced bitwise-identical prognostic state.");

    banner("Fig. 7 (projected): paper platforms, Kokkos vs Fortran");
    let c100 = ProblemSpec::from_config(&Resolution::Coarse100km.config());
    // (platform, kokkos machine+devices, fortran machine+devices,
    //  paper kokkos / fortran SYPD, paper speedup)
    type Case = (&'static str, Machine, usize, Machine, usize, f64, f64, f64);
    let cases: &[Case] = &[
        // (platform, kokkos machine, devices, fortran machine, devices,
        //  paper kokkos SYPD, paper fortran SYPD, paper speedup)
        (
            "GPU workstation",
            Machine::v100(),
            4,
            Machine::v100_fortran_host(),
            1,
            317.73,
            44.9,
            7.08,
        ),
        (
            "ORISE node",
            Machine::orise(),
            4,
            Machine::orise_fortran_host(),
            1,
            180.56,
            15.8,
            11.42,
        ),
        (
            "New Sunway proc",
            Machine::sunway_cg(),
            6,
            Machine::sunway_mpe_fortran(),
            1,
            22.22,
            1.94,
            11.45,
        ),
        (
            "Taishan server",
            Machine::taishan(),
            1,
            Machine::taishan_fortran(),
            1,
            63.01,
            61.2,
            1.03,
        ),
    ];
    println!(
        "{:<17} {:>12} {:>12} {:>8} {:>12} {:>12} {:>10} {:>10}",
        "platform", "Kokkos model", "paper", "dev %", "Fortran mdl", "paper", "speedup", "paper"
    );
    for (name, km, kd, fm, fd, paper_k, paper_f, paper_speedup) in cases {
        let ks = c100
            .clone()
            .with_multiplier(calibration::cost_multiplier("O(100 km)", km.name));
        let fs = c100
            .clone()
            .with_multiplier(calibration::cost_multiplier("O(100 km)", fm.name));
        let k = project(&ks, km, *kd, SunwayVariant::Optimized);
        let f = project(&fs, fm, *fd, SunwayVariant::Optimized);
        println!(
            "{:<17} {:>12.2} {:>12.2} {:>7.0}% {:>12.2} {:>12.2} {:>9.2}x {:>9.2}x",
            name,
            k.sypd,
            paper_k,
            deviation_pct(k.sypd, *paper_k),
            f.sypd,
            paper_f,
            k.sypd / f.sypd,
            paper_speedup
        );
    }
    println!("\npaper GFLOPS note: 14.12 GFLOPS on one SW26010 Pro at 100 km;");
    let s = ProblemSpec::from_config(&Resolution::Coarse100km.config())
        .with_multiplier(calibration::cost_multiplier("O(100 km)", "SW26010 Pro CG"));
    let p = project(&s, &Machine::sunway_cg(), 6, SunwayVariant::Optimized);
    let (flops_pt, _) = s.per_point_cost();
    let gflops = s.wet_points() * flops_pt * s.cost_multiplier / p.t_step / 6.0 / 1e9;
    println!("model: {gflops:.1} GFLOPS per processor equivalent.");
}
