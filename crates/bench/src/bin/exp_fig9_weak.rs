//! Fig. 9 — weak scaling from 10 km to 1 km (Table IV series).
//!
//! Projected at paper scale on both systems (paper result: 85.6 %
//! efficiency on ORISE with 15,360 GPUs; 91.2 % on Sunway with
//! 38,366,250 cores), plus a measured local weak-scaling run of the real
//! model (fixed per-rank block, 1→6 ranks).

use bench::banner;
use licom::model::{Model, ModelOptions};
use mpi_sim::World;
use ocean_grid::config::weak_scaling_series;
use ocean_grid::ModelConfig;
use perf_model::{project, Machine, ProblemSpec, SunwayVariant};

fn spec_of(nx: usize, ny: usize, nz: usize) -> ProblemSpec {
    // Table IV keeps km-scale time steps (2/20/20 s) at every resolution.
    ProblemSpec {
        name: format!("{nx}x{ny}x{nz}"),
        nx,
        ny,
        nz,
        ocean_frac: 0.67,
        substeps: 20,
        steps_per_day: 4320,
        cost_multiplier: 1.0,
    }
}

fn main() {
    banner("Fig. 9 (projected): weak scaling, Table IV series");
    println!(
        "{:>10} {:>10} {:>12} {:>12} | {:>10} {:>12} {:>12}",
        "res (km)", "GPUs", "ORISE SYPD", "ORISE eff", "Sunway CGs", "Sunway SYPD", "Sunway eff"
    );
    let series = weak_scaling_series();
    let mut orise_base: Option<f64> = None;
    let mut sunway_base: Option<f64> = None;
    for p in &series {
        let spec = spec_of(p.nx, p.ny, p.nz);
        let cgs = p.sunway_cores / 65;
        let o = project(
            &spec,
            &Machine::orise(),
            p.orise_gpus,
            SunwayVariant::Optimized,
        );
        let s = project(&spec, &Machine::sunway_cg(), cgs, SunwayVariant::Optimized);
        // Weak-scaling efficiency: time per step relative to the first
        // scale (equal per-device work → ideal is constant time).
        let ob = *orise_base.get_or_insert(o.t_step);
        let sb = *sunway_base.get_or_insert(s.t_step);
        println!(
            "{:>10.2} {:>10} {:>12.3} {:>11.1}% | {:>10} {:>12.3} {:>11.1}%",
            p.resolution_km,
            p.orise_gpus,
            o.sypd,
            100.0 * ob / o.t_step,
            cgs,
            s.sypd,
            100.0 * sb / s.t_step
        );
    }
    println!("\npaper: ORISE 85.6% at 15,360 GPUs; Sunway 91.2% at 38,366,250 cores");

    // Fig. 9 shape: flat SYPD across the 95x scale-up.
    let mut orise_pts = Vec::new();
    let mut sunway_pts = Vec::new();
    for p in &series {
        let spec = spec_of(p.nx, p.ny, p.nz);
        orise_pts.push((
            p.orise_gpus as f64,
            project(
                &spec,
                &Machine::orise(),
                p.orise_gpus,
                SunwayVariant::Optimized,
            )
            .sypd,
        ));
        sunway_pts.push((
            (p.sunway_cores / 65) as f64,
            project(
                &spec,
                &Machine::sunway_cg(),
                p.sunway_cores / 65,
                SunwayVariant::Optimized,
            )
            .sypd,
        ));
    }
    print!(
        "\n{}",
        bench::ascii_chart(
            "Fig. 9 shape: SYPD vs devices (weak scaling; flat = ideal)",
            &[("ORISE", orise_pts), ("Sunway", sunway_pts)],
            64,
            10,
        )
    );

    banner("Measured local weak scaling (real model, fixed per-rank block)");
    // Per-rank block ~30x25x8; grow the global grid with the rank count.
    println!(
        "{:>8} {:>14} {:>12} {:>14} {:>12}",
        "ranks", "global grid", "SYPD", "t/step (ms)", "weak eff"
    );
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("(host has {cores} cores; rank counts beyond that are oversubscribed)");
    let rank_counts: Vec<usize> = [1usize, 2, 4, 6]
        .into_iter()
        .filter(|&r| r <= cores.max(2))
        .collect();
    let mut base: Option<f64> = None;
    for ranks in rank_counts {
        let (px, py) = match ranks {
            1 => (1, 1),
            2 => (2, 1),
            4 => (2, 2),
            6 => (3, 2),
            _ => unreachable!(),
        };
        let cfg = ModelConfig {
            name: format!("weak-{ranks}"),
            nx: 30 * px,
            ny: 25 * py,
            nz: 8,
            dt_barotropic: 2.0,
            dt_baroclinic: 20.0,
            dt_tracer: 20.0,
            full_depth: false,
        };
        let steps = 40;
        let wall = World::run(ranks, {
            let cfg = cfg.clone();
            move |comm| {
                let mut m = Model::new(
                    comm,
                    cfg.clone(),
                    kokkos_rs::Space::serial(),
                    ModelOptions::default(),
                );
                m.run_steps(5);
                let t0 = std::time::Instant::now();
                m.run_steps(steps);
                t0.elapsed().as_secs_f64()
            }
        })
        .into_iter()
        .fold(0.0f64, f64::max);
        let t_step = wall / steps as f64;
        let sypd = (cfg.dt_baroclinic / 86_400.0) / 365.0 * 86_400.0 / t_step;
        let b = *base.get_or_insert(t_step);
        println!(
            "{:>8} {:>14} {:>12.3} {:>14.2} {:>11.1}%",
            ranks,
            format!("{}x{}x{}", cfg.nx, cfg.ny, cfg.nz),
            sypd,
            t_step * 1e3,
            100.0 * b / t_step
        );
    }
    println!("\n(Local ranks share memory bandwidth; distributed weak scaling is the");
    println!("projection above.)");
}
