//! Land-fraction sensitivity of cross-rank load imbalance.
//!
//! The paper's §V-C load-balancing discussion hinges on how unevenly
//! ocean points land on ranks. This experiment runs the same 4-rank
//! configuration on two bathymetries — the Earth-like planet (≈30%
//! land) and a mid-latitude basin (≈68% land) — and prints the
//! per-phase imbalance attribution plus the census-predicted wet-point
//! floor for each. More land → more rank-to-rank variation in wet
//! points → larger max/mean ratios, exactly what the telemetry's
//! imbalance report is built to attribute.

use bench::banner;

/// Per-rank gathered phase profiles plus the rank's wet-cell count.
type RankProfiles = (Vec<Vec<(String, f64)>>, u64);
use kokkos_profiling::{gather_phases, is_enclosing, ImbalanceReport};
use licom::model::{Model, ModelOptions};
use mpi_sim::World;
use ocean_grid::{Bathymetry, Resolution};
use perf_model::predicted_imbalance;

const RANKS: usize = 4;
const STEPS: usize = 8;

fn main() {
    let cfg = Resolution::Coarse100km.config().scaled_down(6, 6);
    let days = STEPS as f64 * cfg.dt_baroclinic / 86_400.0;
    banner("per-phase imbalance vs land fraction (4 ranks, Serial)");

    let cases: Vec<(&str, Bathymetry)> = vec![
        ("earth-like", Bathymetry::earth_like()),
        (
            "basin",
            // 150° of longitude x ±66° latitude of ocean — discretizes to
            // ≈68% land on the 60x36 grid (the Earth-like ratio inverted).
            Bathymetry::Basin {
                lon0: 145.0,
                lon1: 295.0,
                lat0: -66.0,
                lat1: 66.0,
                depth: 4000.0,
            },
        ),
    ];

    for (name, bathy) in cases {
        let land = 1.0 - bathy.ocean_fraction(cfg.nx, cfg.ny);
        banner(&format!("{name}: {:.0}% land", 100.0 * land));
        let run_cfg = cfg.clone();
        let opts = ModelOptions {
            bathymetry: bathy,
            ..ModelOptions::default()
        };
        let results: Vec<RankProfiles> = World::run(RANKS, move |comm| {
            let mut m = Model::new(
                comm,
                run_cfg.clone(),
                kokkos_rs::Space::serial(),
                opts.clone(),
            );
            m.run_days(days);
            let phases: Vec<(String, f64)> = m
                .timers
                .phase_seconds()
                .into_iter()
                .filter(|(n, _)| !is_enclosing(n))
                .map(|(n, s)| (n.to_string(), s))
                .collect();
            (
                gather_phases(m.comm(), phases),
                m.grid.wet.cells3_own.indices.len() as u64,
            )
        });
        let report = ImbalanceReport::from_profiles(&results[0].0);
        print!("{}", report.render());
        let wet: Vec<u64> = results.iter().map(|r| r.1).collect();
        println!(
            "wet cells per rank: {:?} — census imbalance floor {:.3}",
            wet,
            predicted_imbalance(&wet)
        );
    }
}
