//! Observability demo — the `kokkos-profiling` subsystem end to end.
//!
//! For each of the four execution spaces this binary runs a profiled
//! 4-rank model, then exercises every consumer of the hook stream:
//!
//! 1. **chrome trace** — kernel/region spans, mpi-sim traffic instants
//!    and (on SwAthread) CPE/DMA counter samples are exported as
//!    Perfetto-loadable JSON and re-validated with the built-in schema
//!    checker;
//! 2. **kernel/region tables** — the Kokkos "simple kernel timer" view;
//! 3. **SYPD + hotspot shares** — the paper's throughput figure with the
//!    baroclinic/barotropic/advection/canuto/halo breakdown, checked to
//!    cover the measured wall-clock within 2%;
//! 4. **census comparison** — measured per-phase shares lined up against
//!    the `perf-model` kernel census, the calibration loop of §VI-C.
//!
//! Traces land in `$TMPDIR/licomkpp_traces/trace_<space>.json`; open
//! them at <https://ui.perfetto.dev>.

use std::sync::Arc;

use bench::banner;
use kokkos_profiling::{
    attach, detach, hotspot_shares, validate_chrome_trace, Profiler, SypdReporter,
};
use licom::model::{Model, ModelOptions, StepStats};
use mpi_sim::World;
use ocean_grid::Resolution;
use perf_model::{
    compare_kernels, predicted_kernel_times, render_comparison, Machine, ProblemSpec,
};

const RANKS: usize = 4;
const STEPS: usize = 8;

/// Acceptance bound: the phase timers must cover the daily-loop wall
/// clock to within this relative error.
const COVERAGE_BOUND: f64 = 0.02;

fn space_for(name: &str) -> kokkos_rs::Space {
    if name == "SwAthread" {
        // Small CG config keeps the simulated-CPE run fast.
        kokkos_rs::Space::sw_athread_with(sunway_sim::CgConfig::test_small())
    } else {
        kokkos_rs::Space::from_name(name).expect("known space")
    }
}

struct RankResult {
    stats: StepStats,
    phases: Vec<(&'static str, f64)>,
    daily_loop: f64,
    sunway: Option<sunway_sim::CgCounters>,
}

fn main() {
    banner("kokkos-profiling: profiled 4-rank run on every execution space");
    // Divisor 6 keeps nx=60, which decomposes cleanly over 4 ranks.
    let cfg = Resolution::Coarse100km.config().scaled_down(6, 6);
    let days = STEPS as f64 * cfg.dt_baroclinic / 86_400.0;
    println!(
        "{RANKS} ranks x {STEPS} steps, {}x{}x{} grid, traces in {}",
        cfg.nx,
        cfg.ny,
        cfg.nz,
        std::env::temp_dir().join("licomkpp_traces").display()
    );
    let dir = std::env::temp_dir().join("licomkpp_traces");
    std::fs::create_dir_all(&dir).expect("create trace dir");

    for space_name in ["Serial", "Threads", "DeviceSim", "SwAthread"] {
        banner(&format!("space: {space_name}"));
        let prof = Arc::new(Profiler::default());
        attach(prof.clone());
        let run_cfg = cfg.clone();
        let results: Vec<RankResult> = World::run(RANKS, move |comm| {
            let space = space_for(space_name);
            let mut m = Model::new(
                comm,
                run_cfg.clone(),
                space.clone(),
                ModelOptions::default(),
            );
            let stats = m.run_days(days);
            RankResult {
                stats,
                phases: m.timers.phase_seconds(),
                daily_loop: m.timers.seconds("daily_loop"),
                sunway: match &space {
                    kokkos_rs::Space::SwAthread(sw) => Some(sw.counters()),
                    _ => None,
                },
            }
        });
        // Counter samples ride the trace too (the §VI-C "job-level
        // monitoring" bridge): snapshot each rank's CG before export.
        for (rank, r) in results.iter().enumerate() {
            if let Some(cg) = &r.sunway {
                prof.sample_sunway(rank as i64, cg);
            }
        }
        detach();

        // 1. chrome trace: write, re-read, validate.
        let path = dir.join(format!("trace_{}.json", space_name.to_lowercase()));
        prof.write_trace(&path).expect("write trace");
        let text = std::fs::read_to_string(&path).expect("read trace back");
        let summary = validate_chrome_trace(&text).expect("trace must validate");
        println!(
            "trace {}: {} events ({} spans, {} instants, {} counter samples) \
             on {} tracks, {} dropped",
            path.display(),
            summary.events,
            summary.spans,
            summary.instants,
            summary.counters,
            summary.tracks,
            prof.dropped_events(),
        );

        // 2. kernel table (top 8 rows).
        let table = prof.render_report();
        for line in table.lines().take(9) {
            println!("  {line}");
        }

        // 3. SYPD + hotspot shares from rank 0's phase timers.
        let r0 = &results[0];
        let rep = SypdReporter::new(r0.stats.simulated_days, r0.daily_loop);
        println!();
        print!("{}", rep.render(&r0.phases));
        let coverage = rep.coverage_error(&r0.phases);
        assert!(
            coverage <= COVERAGE_BOUND,
            "{space_name}: phase timers cover wall to {:.2}% (> {:.0}% bound)",
            coverage * 100.0,
            COVERAGE_BOUND * 100.0
        );
        println!(
            "coverage: phase sum within {:.2}% of daily-loop wall (bound {:.0}%)",
            coverage * 100.0,
            COVERAGE_BOUND * 100.0
        );

        // 4. measured-vs-census shares over the matching phase names.
        let measured: Vec<(String, f64)> =
            r0.phases.iter().map(|(n, s)| (n.to_string(), *s)).collect();
        let predicted =
            predicted_kernel_times(&ProblemSpec::from_config(&cfg), &Machine::orise(), RANKS);
        let rows = compare_kernels(&measured, &predicted);
        if !rows.is_empty() {
            println!("\nmeasured vs census (shares over matched kernels):");
            print!("{}", render_comparison(&rows));
        }

        // Sunway counter recap.
        if let Some(cg) = &results[0].sunway {
            println!(
                "rank-0 CG: {} kernels, {:.2e} cycles, LB eff {:.3}, \
                 DMA {:.1} kB get / {:.1} kB put",
                cg.kernels_launched,
                cg.kernel_cycles as f64,
                cg.load_balance_efficiency(),
                cg.totals.dma_get_bytes as f64 / 1e3,
                cg.totals.dma_put_bytes as f64 / 1e3,
            );
        }
    }

    banner("summary");
    let shares_demo = hotspot_shares(&[("barotropic", 3.0), ("canuto", 1.0)]);
    assert!((shares_demo.iter().map(|r| r.share).sum::<f64>() - 1.0).abs() < 1e-12);
    println!(
        "all four spaces produced validated Perfetto traces with kernel,\n\
         region, comm and counter tracks; hotspot shares covered wall to\n\
         within {:.0}% on every space.",
        COVERAGE_BOUND * 100.0
    );
}
