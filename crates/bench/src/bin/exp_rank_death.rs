//! Rank-death MTTR sweep — detection latency and recovery wall-clock as
//! a function of checkpoint interval and ring depth K, at 4 and 16
//! ranks.
//!
//! One rank is seeded to die while the group attempts step 4 of 6. The
//! elastic driver detects the death (typed `PeerDead` from the step
//! vote), recruits a spare through survivor consensus, restores the
//! newest commonly-held ring image, and replays. Detection latency is
//! near-constant (registry-backed, not timeout-bound); the replay share
//! of MTTR grows with the checkpoint interval, which is the trade this
//! table quantifies. Ring depth K only matters when slots are scarce:
//! K = 1 holds exactly one image, so a long interval forces deep
//! rollback to whatever that slot holds.
#![allow(clippy::field_reassign_with_default)]

use bench::banner;
use licom::checkpoint::RecoveryPolicy;
use licom::elastic::{run_elastic, ElasticConfig, ElasticOutcome, ElasticStats};
use licom::model::ModelOptions;
use mpi_sim::{FaultPlan, RetryPolicy, World, WorldConfig};
use ocean_grid::Resolution;

const STEPS: u64 = 6;
const DEATH_EPOCH: u64 = 3; // dies attempting step 4

fn opts() -> ModelOptions {
    let mut o = ModelOptions::default();
    o.overlap = true;
    o.retry = RetryPolicy::test_small();
    o
}

struct Shape {
    world: usize,
    spares: usize,
    victim: usize,
    cfg: ocean_grid::ModelConfig,
}

fn shapes() -> Vec<Shape> {
    vec![
        Shape {
            world: 4,
            spares: 1,
            victim: 1,
            // nx = 45: 3 compute ranks split 3x1.
            cfg: Resolution::Coarse100km.config().scaled_down(8, 6),
        },
        Shape {
            world: 16,
            spares: 4,
            victim: 5,
            // nx = 60: 12 compute ranks split 4x3.
            cfg: Resolution::Coarse100km.config().scaled_down(6, 6),
        },
    ]
}

struct Row {
    wall: f64,
    stats: ElasticStats,
}

fn run_once(shape: &Shape, ckpt_every: u64, ring: usize, kill: bool, tag: &str) -> Row {
    let dir = std::env::temp_dir().join(format!("licom_rank_death_bench_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    let ecfg = ElasticConfig {
        target_steps: STEPS,
        ckpt_dir: dir.clone(),
        ring,
        recovery: RecoveryPolicy {
            checkpoint_every: ckpt_every,
            max_rollbacks: 8,
        },
    };
    let mut wc = WorldConfig::new(shape.world).spares(shape.spares);
    if kill {
        wc = wc.faults(FaultPlan::new(0x3774).kill(shape.victim, DEATH_EPOCH));
    }
    let cfg = shape.cfg.clone();
    let t0 = std::time::Instant::now();
    let (out, _) = World::run_cfg(wc, move |comm| {
        match run_elastic(comm, cfg.clone(), kokkos_rs::Space::serial(), opts(), &ecfg)
            .expect("seeded death must be survivable")
        {
            ElasticOutcome::Completed { stats, .. } => Some(stats),
            ElasticOutcome::Spared | ElasticOutcome::Died => None,
        }
    });
    let wall = t0.elapsed().as_secs_f64();
    let _ = std::fs::remove_dir_all(&dir);
    let finished: Vec<ElasticStats> = out.into_iter().flatten().collect();
    assert_eq!(finished.len(), shape.world - shape.spares);
    // Detection/recovery are per-rank walls; the slowest rank bounds the
    // group, so report the max.
    let stats = ElasticStats {
        steps_completed: finished.iter().map(|s| s.steps_completed).max().unwrap(),
        rank_deaths_recovered: finished[0].rank_deaths_recovered,
        recovery_replay_steps: finished[0].recovery_replay_steps,
        rollbacks: finished[0].rollbacks,
        detection_ns: finished.iter().map(|s| s.detection_ns).max().unwrap(),
        recovery_wall_ns: finished.iter().map(|s| s.recovery_wall_ns).max().unwrap(),
    };
    Row { wall, stats }
}

fn main() {
    banner("Rank-death MTTR: detection + recovery vs checkpoint interval and ring depth");
    println!(
        "death while attempting step 4 of {STEPS}; elastic driver, overlap on, serial space\n"
    );
    println!(
        "{:>5} {:>11} {:>4} {:>9} {:>10} {:>10} {:>7} {:>9} {:>8}",
        "ranks",
        "ckpt_every",
        "K",
        "detect_ms",
        "recover_ms",
        "replay",
        "deaths",
        "wall_s",
        "+wall%"
    );
    for shape in shapes() {
        let compute = shape.world - shape.spares;
        for &ckpt_every in &[1u64, 2, 4] {
            for &ring in &[1usize, 3] {
                let tag = format!("w{}c{}k{}", shape.world, ckpt_every, ring);
                let clean = run_once(&shape, ckpt_every, ring, false, &format!("{tag}_clean"));
                let dead = run_once(&shape, ckpt_every, ring, true, &tag);
                assert_eq!(dead.stats.rank_deaths_recovered, 1);
                println!(
                    "{:>5} {:>11} {:>4} {:>9.2} {:>10.2} {:>10} {:>7} {:>9.2} {:>8.0}",
                    format!("{compute}+{}", shape.spares),
                    ckpt_every,
                    ring,
                    dead.stats.detection_ns as f64 * 1e-6,
                    dead.stats.recovery_wall_ns as f64 * 1e-6,
                    dead.stats.recovery_replay_steps,
                    dead.stats.rank_deaths_recovered,
                    dead.wall,
                    100.0 * (dead.wall / clean.wall - 1.0),
                );
            }
        }
    }
    println!(
        "\nDetection is registry-backed (no timeout burn), so detect_ms tracks the\n\
         in-flight step's compute. Recovery wall covers consensus + re-form +\n\
         restore; replayed steps scale with the checkpoint interval — the classic\n\
         MTTR vs checkpoint-overhead trade."
    );
}
