//! Ensemble-serving load test — the acceptance run for `licom-server`.
//!
//! Drives the serving engine with the seeded `traffic-gen` workload
//! (bursty Poisson arrivals, mixed grid sizes, mixed priorities, a slice
//! of checkpointing jobs) at ≥256 concurrent instances on the shared
//! Threads pool, then reports:
//!
//! - job accounting (submitted = completed + cancelled + failed — the
//!   zero-lost / zero-duplicated contract),
//! - aggregate throughput in model steps per wall second,
//! - p50/p95/p99 step latency from the serving histogram,
//! - fair-share error between the two saturated equal-priority probe
//!   tenants (must be ≤ 10%),
//! - a Prometheus scrape written next to the run for CI artifacts.
//!
//! ```text
//! exp_server_load                 # 256 jobs, 6 workers
//! exp_server_load --jobs 64 --workers 4
//! exp_server_load --scrape out.prom --p99-below-ms 500
//! ```
//!
//! Exit codes: 0 pass, 1 contract violation, 2 usage error.

use std::process::ExitCode;
use std::time::Instant;

use bench::banner;
use licom_server::{generate, JobSpec, Priority, Server, ServerConfig, SubmitError, TrafficConfig};

fn fail(msg: &str) -> ExitCode {
    eprintln!("exp_server_load: {msg}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut jobs = 256usize;
    let mut workers = 6usize;
    let mut scrape_path: Option<std::path::PathBuf> = None;
    let mut p99_below_ms: Option<f64> = None;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--jobs" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => jobs = v,
                None => return fail("--jobs needs a number"),
            },
            "--workers" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => workers = v,
                None => return fail("--workers needs a number"),
            },
            "--scrape" => match args.next() {
                Some(p) => scrape_path = Some(p.into()),
                None => return fail("--scrape needs a path"),
            },
            "--p99-below-ms" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => p99_below_ms = Some(v),
                None => return fail("--p99-below-ms needs a number"),
            },
            other => return fail(&format!("unknown flag `{other}`")),
        }
    }

    banner(&format!(
        "serving load test: {jobs} bursty jobs over {workers} workers (Threads pool)"
    ));

    let dir = std::env::temp_dir().join(format!("licom_server_load_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let server = Server::start(ServerConfig {
        workers,
        ckpt_base: dir.clone(),
        ..ServerConfig::default()
    });

    // The bursty mixed-everything backlog.
    let traffic = TrafficConfig {
        jobs,
        steps: (3, 6),
        ..TrafficConfig::default()
    };
    let arrivals = generate(&traffic);

    // Two equal-priority probe tenants with identical backlogs measure
    // fair share under the full mixed load.
    let probe_jobs = (jobs / 8).max(4);
    let probe_steps = 6u64;
    let mk_probe = |tenant: &str| JobSpec {
        priority: Priority::Normal,
        ..JobSpec::small(tenant, kokkos_rs::Space::threads(), probe_steps)
    };

    let t0 = Instant::now();
    let mut submitted = 0u64;
    let mut rejected = 0u64;
    let mut handles = Vec::new();
    for a in arrivals {
        match server.submit(a.spec) {
            Ok(h) => {
                submitted += 1;
                handles.push(h);
            }
            Err(SubmitError::Backpressure { .. }) | Err(SubmitError::QuotaExceeded { .. }) => {
                rejected += 1;
            }
            Err(e) => return fail(&format!("unexpected submit error: {e}")),
        }
    }
    for _ in 0..probe_jobs {
        for t in ["probe_x", "probe_y"] {
            match server.submit(mk_probe(t)) {
                Ok(h) => {
                    submitted += 1;
                    handles.push(h);
                }
                Err(e) => return fail(&format!("probe submit rejected: {e}")),
            }
        }
    }

    // Sample fair share while both probes still hold backlog.
    let probe_total = 2 * probe_jobs as u64 * probe_steps;
    let mut fair_err = 0.0f64;
    let mut sampled = false;
    loop {
        let snap = server.tenant_steps();
        let x = snap.iter().find(|(n, _)| n == "probe_x").map_or(0, |p| p.1);
        let y = snap.iter().find(|(n, _)| n == "probe_y").map_or(0, |p| p.1);
        if x + y >= probe_total / 2 {
            fair_err = (x as f64 - y as f64).abs() / (x.max(y).max(1) as f64);
            sampled = true;
            println!("fair-share probe at half-way: x={x} y={y} err={fair_err:.3}");
            break;
        }
        if x + y >= probe_total || t0.elapsed().as_secs() > 600 {
            break; // probes finished before we could sample — tiny runs
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    }

    let scrape = server.render_prometheus();
    let snap = server.join();
    let wall = t0.elapsed().as_secs_f64();
    let _ = std::fs::remove_dir_all(&dir);

    if let Some(path) = &scrape_path {
        if let Err(e) = std::fs::write(path, &scrape) {
            return fail(&format!("writing {}: {e}", path.display()));
        }
        println!("wrote scrape {}", path.display());
    }

    banner("results");
    let steps_per_sec = snap.steps_total as f64 / wall.max(1e-9);
    println!("| metric | value |");
    println!("|---|---|");
    println!("| concurrent instances (jobs) | {submitted} |");
    println!("| rejected (backpressure/quota) | {rejected} |");
    println!("| jobs completed | {} |", snap.jobs_completed);
    println!("| jobs cancelled | {} |", snap.jobs_cancelled);
    println!("| jobs failed | {} |", snap.jobs_failed);
    println!("| model steps served | {} |", snap.steps_total);
    println!("| wall seconds | {wall:.3} |");
    println!("| throughput (steps/s) | {steps_per_sec:.1} |");
    println!(
        "| p50 step latency | {:.3} ms |",
        snap.p50_step_ns as f64 * 1e-6
    );
    println!(
        "| p95 step latency | {:.3} ms |",
        snap.p95_step_ns as f64 * 1e-6
    );
    println!(
        "| p99 step latency | {:.3} ms |",
        snap.p99_step_ns as f64 * 1e-6
    );
    if sampled {
        println!(
            "| fair-share error (equal-priority probes) | {:.1}% |",
            fair_err * 100.0
        );
    }

    // Contract checks.
    let mut ok = true;
    let terminal = snap.jobs_completed + snap.jobs_cancelled + snap.jobs_failed;
    if terminal != submitted {
        eprintln!("LOST/DUPLICATED JOBS: {submitted} submitted, {terminal} terminal");
        ok = false;
    }
    if snap.jobs_failed != 0 {
        eprintln!("{} jobs failed", snap.jobs_failed);
        ok = false;
    }
    let mut terminal_events = 0u64;
    for h in &handles {
        terminal_events += h
            .events
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    licom_server::JobEvent::Completed { .. }
                        | licom_server::JobEvent::Cancelled { .. }
                        | licom_server::JobEvent::Failed { .. }
                )
            })
            .count() as u64;
    }
    if terminal_events != submitted {
        eprintln!("event streams: {terminal_events} terminal events for {submitted} jobs");
        ok = false;
    }
    if sampled && fair_err > 0.10 {
        eprintln!("fair-share error {:.1}% > 10%", fair_err * 100.0);
        ok = false;
    }
    if let Some(bound) = p99_below_ms {
        let p99_ms = snap.p99_step_ns as f64 * 1e-6;
        if p99_ms >= bound {
            eprintln!("p99 step latency {p99_ms:.3} ms >= {bound} ms ceiling");
            ok = false;
        } else {
            println!("p99 {p99_ms:.3} ms < {bound} ms ceiling (ok)");
        }
    }

    if ok {
        println!("\nserver load test: PASS");
        ExitCode::SUCCESS
    } else {
        println!("\nserver load test: FAIL");
        ExitCode::FAILURE
    }
}
