//! Table I — programming models and Kokkos backend support.
//!
//! The paper's Table I lists the intranode programming models of every
//! architecture that has topped the TOP500 since 2010, and whether Kokkos
//! supports them — with the Sunway/Athread row marked "Yes (This work)".
//! We print the same table, introspected from the actual `kokkos-rs`
//! build: each row's support status is verified by launching a kernel on
//! that execution space.

use kokkos_rs::{parallel_for_1d, Functor1D, RangePolicy, Space, View, View1};

struct Touch {
    x: View1<f64>,
}
impl Functor1D for Touch {
    fn operator(&self, i: usize) {
        self.x.set_at(i, i as f64);
    }
}
kokkos_rs::register_for_1d!(touch_kernel, Touch);

fn verify(space: &Space) -> bool {
    let x: View1<f64> = View::host("x", [128]);
    let f = Touch { x: x.clone() };
    parallel_for_1d(space, RangePolicy::new(128), &f);
    (0..128).all(|i| x.at(i) == i as f64)
}

fn main() {
    touch_kernel();
    bench::banner("Table I: programming models and Kokkos support (verified live)");
    println!(
        "{:<22} {:<20} {:<28} Supported",
        "Architecture", "Programming model", "kokkos-rs execution space"
    );
    let rows: &[(&str, &str, &str)] = &[
        ("Intel coprocessors", "OpenMP", "Threads"),
        ("ARM CPUs", "OpenMP", "Threads"),
        ("NVIDIA GPUs", "CUDA", "DeviceSim"),
        ("AMD GPUs", "HIP", "DeviceSim"),
        ("Sunway many-cores", "Athread", "SwAthread"),
    ];
    for (arch, model, space_name) in rows {
        let space = if *space_name == "SwAthread" {
            Space::sw_athread_with(sunway_sim::CgConfig::test_small())
        } else {
            Space::from_name(space_name).unwrap()
        };
        let ok = verify(&space);
        let tag = if *arch == "Sunway many-cores" {
            "Yes (This work)"
        } else {
            "Yes"
        };
        println!(
            "{:<22} {:<20} {:<28} {}",
            arch,
            model,
            space_name,
            if ok { tag } else { "FAILED" }
        );
        assert!(ok, "{space_name} failed verification");
    }
    println!("\nRegistered kernels in this process:");
    for (name, kind) in kokkos_rs::registry::registered_kernels() {
        println!("  {name:<28} {kind:?}");
    }
}
