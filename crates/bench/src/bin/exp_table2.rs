//! Table II — critical hardware configurations of the four systems,
//! printed from the `perf-model` machine descriptions (plus the simulated
//! SW26010 Pro core-group parameters used by the `SwAthread` backend).

use perf_model::Machine;
use sunway_sim::CgConfig;

fn gb(x: f64) -> String {
    format!("{:.1} GB/s", x / 1e9)
}

fn main() {
    bench::banner("Table II: node hardware of the four computing systems");
    println!(
        "{:<18} {:>14} {:>14} {:>14} {:>16}",
        "System", "GPU workstation", "ORISE", "New Sunway", "Taishan server"
    );
    let v = Machine::v100();
    let o = Machine::orise();
    let s = Machine::sunway_cg();
    let t = Machine::taishan();
    let rows: Vec<(&str, [String; 4])> = vec![
        (
            "Accelerator",
            [
                "4x Tesla V100".into(),
                "4x HIP GPU".into(),
                "SW26010 Pro".into(),
                "(CPU only)".into(),
            ],
        ),
        (
            "Back-end",
            [
                "CUDA".into(),
                "HIP".into(),
                "Athread".into(),
                "OpenMP".into(),
            ],
        ),
        (
            "Device peak DP",
            [
                format!("{:.1} TF", v.peak_flops / 1e12),
                format!("{:.1} TF", o.peak_flops / 1e12),
                format!("{:.1} TF/CG", s.peak_flops / 1e12),
                format!("{:.1} TF", t.peak_flops / 1e12),
            ],
        ),
        (
            "Device mem BW",
            [gb(v.mem_bw), gb(o.mem_bw), gb(s.mem_bw), gb(t.mem_bw)],
        ),
        (
            "Devices/node",
            [
                v.devices_per_node.to_string(),
                o.devices_per_node.to_string(),
                format!("{} CGs", s.devices_per_node),
                t.devices_per_node.to_string(),
            ],
        ),
        (
            "PCIe (staging)",
            [
                gb(v.pcie_bw),
                gb(o.pcie_bw),
                "unified".into(),
                "unified".into(),
            ],
        ),
        (
            "Network",
            [gb(v.nic_bw), gb(o.nic_bw), gb(s.nic_bw), gb(t.nic_bw)],
        ),
    ];
    for (name, cells) in rows {
        println!(
            "{:<18} {:>14} {:>14} {:>14} {:>16}",
            name, cells[0], cells[1], cells[2], cells[3]
        );
    }

    bench::banner("Simulated SW26010 Pro core group (SwAthread backend substrate)");
    let cg = CgConfig::default();
    println!("CPEs per core group      {}", cg.num_cpes);
    println!("LDM per CPE              {} kB", cg.ldm_bytes / 1024);
    println!("CPE clock                {:.2} GHz", cg.clock_hz / 1e9);
    println!("CG memory bandwidth      {}", gb(cg.mem_bandwidth_bps));
    println!("SIMD width               {} x f64", cg.simd_f64_lanes);
    println!(
        "Cores per processor      {} (6 MPEs + 384 CPEs)",
        sunway_sim::CGS_PER_PROCESSOR * (sunway_sim::CPES_PER_CG + 1)
    );
    println!(
        "Paper headline           38,366,250 cores = {} core groups",
        38_366_250 / 65
    );
}
