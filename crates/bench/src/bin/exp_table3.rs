//! Table III — the four LICOMK++ configurations, printed from
//! `ocean_grid::config` and validated against the paper's exact numbers.

use ocean_grid::Resolution;

fn main() {
    bench::banner("Table III: four configurations of LICOMK++");
    println!(
        "{:<18} {:>18} {:>10} {:>26} {:>14}",
        "Resolution", "Horizontal grid", "Levels", "dt barotropic/clinic/tracer", "Grid points"
    );
    for r in Resolution::ALL {
        let c = r.config();
        println!(
            "{:<18} {:>18} {:>10} {:>26} {:>14.3e}",
            c.name,
            format!("{} x {}", c.nx, c.ny),
            format!("{} eta", c.nz),
            format!("{}/{}/{} s", c.dt_barotropic, c.dt_baroclinic, c.dt_tracer),
            c.grid_points() as f64,
        );
    }
    let k1 = Resolution::Km1.config();
    println!(
        "\n1-km configuration: {} total grid points (paper: \">63 billion\"), \
         {} barotropic substeps per baroclinic step, {} steps/day",
        k1.grid_points(),
        k1.barotropic_substeps(),
        k1.steps_per_day()
    );
    assert!(k1.grid_points() > 63_000_000_000);

    bench::banner("Scaled-down analogues used for local measured runs");
    for (r, div, nz) in [
        (Resolution::Coarse100km, 4, 15),
        (Resolution::Eddy10km, 40, 15),
        (Resolution::Km1, 400, 10),
    ] {
        let s = r.config().scaled_down(div, nz);
        println!(
            "{:<22} {:>5} x {:<5} x {:<3}  dt = {}/{}/{} s",
            s.name, s.nx, s.ny, s.nz, s.dt_barotropic, s.dt_baroclinic, s.dt_tracer
        );
    }
}
