//! Table IV — the six weak-scaling scales (10 km → 1 km), printed from
//! `ocean_grid::config::weak_scaling_series` with per-device load checks.

use ocean_grid::config::weak_scaling_series;

fn main() {
    bench::banner("Table IV: six scales for the weak scalability test");
    println!(
        "{:>10} {:>22} {:>16} {:>14} {:>18}",
        "Resolution", "Grid points", "HIP GPUs", "Sunway cores", "cells/GPU"
    );
    for p in weak_scaling_series() {
        println!(
            "{:>9.2}km {:>22} {:>16} {:>14} {:>18.0}",
            p.resolution_km,
            format!("{} x {} x {}", p.nx, p.ny, p.nz),
            p.orise_gpus,
            p.sunway_cores,
            (p.nx * p.ny) as f64 / p.orise_gpus as f64,
        );
    }
    let s = weak_scaling_series();
    let first = (s[0].nx * s[0].ny) as f64 / s[0].orise_gpus as f64;
    let last = (s[5].nx * s[5].ny) as f64 / s[5].orise_gpus as f64;
    println!(
        "\nLoad per GPU varies only {:.2}x across a {}x scale-up (weak scaling).",
        last.max(first) / last.min(first),
        s[5].orise_gpus / s[0].orise_gpus * (s[5].nx * s[5].ny)
            / (s[0].nx * s[0].ny)
            / (s[5].orise_gpus / s[0].orise_gpus)
    );
    println!(
        "Total scale-up in grid points: {:.1}x (paper: \"scaled by more than 95 times\").",
        (s[5].nx * s[5].ny) as f64 / (s[0].nx * s[0].ny) as f64
    );
}
