//! Table V + Fig. 8 — strong scaling of LICOMK++.
//!
//! Two parts:
//!
//! 1. **Full-scale projection** (perf-model): the six series of Table V —
//!    10 km / 2 km / 1 km on ORISE and the new Sunway — with the paper's
//!    published SYPD and efficiency next to the model's, plus the
//!    optimized-vs-original Sunway speedup the paper quotes (2.7× at
//!    2 km, 3.9× at 1 km).
//! 2. **Measured local strong scaling**: the real `licom` model on a
//!    scaled-down 1-km analogue over 1/2/4/8 in-process ranks, wall-clock
//!    measured exactly as the paper measures SYPD (daily loop only).

use bench::{banner, deviation_pct};
use licom::model::{Model, ModelOptions};
use mpi_sim::World;
use ocean_grid::Resolution;
use perf_model::{calibration, project, Machine, ProblemSpec, SunwayVariant};

struct Series {
    label: &'static str,
    res: Resolution,
    machine: Machine,
    /// (devices, paper SYPD); Sunway device = core group (65 cores).
    points: Vec<(usize, f64)>,
}

fn paper_series() -> Vec<Series> {
    vec![
        Series {
            label: "10 km  ORISE",
            res: Resolution::Eddy10km,
            machine: Machine::orise(),
            points: vec![
                (40, 1.009),
                (160, 3.984),
                (320, 6.880),
                (640, 10.794),
                (1000, 13.543),
            ],
        },
        Series {
            label: "10 km  New Sunway",
            res: Resolution::Eddy10km,
            machine: Machine::sunway_cg(),
            points: vec![
                (160, 0.437),
                (300, 0.780),
                (480, 1.165),
                (780, 1.761),
                (1560, 3.312),
            ],
        },
        Series {
            label: "2 km   ORISE",
            res: Resolution::Km2FullDepth,
            machine: Machine::orise(),
            points: vec![(4000, 0.912), (8000, 1.386), (12000, 1.577), (16000, 1.779)],
        },
        Series {
            label: "2 km   New Sunway",
            res: Resolution::Km2FullDepth,
            machine: Machine::sunway_cg(),
            points: vec![
                (78000, 0.264),
                (159480, 0.456),
                (288000, 0.692),
                (576000, 0.992),
            ],
        },
        Series {
            label: "1 km   ORISE",
            res: Resolution::Km1,
            machine: Machine::orise(),
            points: vec![(4000, 0.765), (8000, 1.248), (12000, 1.486), (16000, 1.701)],
        },
        Series {
            label: "1 km   New Sunway",
            res: Resolution::Km1,
            machine: Machine::sunway_cg(),
            points: vec![
                (77750, 0.252),
                (155520, 0.426),
                (307800, 0.709),
                (590250, 1.047),
            ],
        },
    ]
}

fn main() {
    banner("Table V / Fig. 8 (projected): strong scaling at paper scale");
    println!(
        "{:<20} {:>10} {:>12} {:>12} {:>8} {:>12} {:>12}",
        "series", "devices", "paper SYPD", "model SYPD", "dev %", "paper eff", "model eff"
    );
    for s in paper_series() {
        let spec = ProblemSpec::from_config(&s.res.config()).with_multiplier(
            calibration::cost_multiplier(&s.res.config().name, s.machine.name),
        );
        let base_dev = s.points[0].0;
        let base_paper = s.points[0].1;
        let base_model = project(&spec, &s.machine, base_dev, SunwayVariant::Optimized).sypd;
        for &(devices, paper_sypd) in &s.points {
            let p = project(&spec, &s.machine, devices, SunwayVariant::Optimized);
            let scale = devices as f64 / base_dev as f64;
            let paper_eff = paper_sypd / (base_paper * scale);
            let model_eff = p.sypd / (base_model * scale);
            println!(
                "{:<20} {:>10} {:>12.3} {:>12.3} {:>7.0}% {:>11.1}% {:>11.1}%",
                s.label,
                devices,
                paper_sypd,
                p.sypd,
                deviation_pct(p.sypd, paper_sypd),
                100.0 * paper_eff,
                100.0 * model_eff
            );
        }
        println!();
    }

    banner("Fig. 8 (shape): model strong-scaling curves");
    let mut chart_series: Vec<(String, Vec<(f64, f64)>)> = Vec::new();
    for s in paper_series() {
        let spec = ProblemSpec::from_config(&s.res.config()).with_multiplier(
            calibration::cost_multiplier(&s.res.config().name, s.machine.name),
        );
        let pts: Vec<(f64, f64)> = s
            .points
            .iter()
            .map(|&(d, _)| {
                (
                    d as f64,
                    project(&spec, &s.machine, d, SunwayVariant::Optimized).sypd,
                )
            })
            .collect();
        chart_series.push((s.label.trim().to_string(), pts));
    }
    let refs: Vec<(&str, Vec<(f64, f64)>)> = chart_series
        .iter()
        .map(|(n, p)| (n.as_str(), p.clone()))
        .collect();
    print!("{}", bench::ascii_chart("SYPD vs devices", &refs, 64, 16));

    banner("Optimized vs original on Sunway (paper: 2.7x at 2 km, 3.9x at 1 km)");
    for (res, devices, paper_speedup) in [
        (Resolution::Km2FullDepth, 576_000usize, 2.7),
        (Resolution::Km1, 590_250, 3.9),
    ] {
        let spec = ProblemSpec::from_config(&res.config());
        let m = Machine::sunway_cg();
        let opt = project(&spec, &m, devices, SunwayVariant::Optimized);
        let orig = project(&spec, &m, devices, SunwayVariant::Original);
        println!(
            "{:<10} optimized {:.3} SYPD, original {:.3} SYPD -> speedup {:.2}x (paper {:.1}x)",
            res.config().name,
            opt.sypd,
            orig.sypd,
            opt.sypd / orig.sypd,
            paper_speedup
        );
    }

    banner("Measured local strong scaling (real model, scaled 1-km analogue)");
    // 90 x 55 x 10, km-scale time steps; px must divide 90.
    let cfg = Resolution::Km1.config().scaled_down(400, 10);
    println!(
        "grid {} x {} x {}, dt {}/{} s, space = Threads per rank",
        cfg.nx, cfg.ny, cfg.nz, cfg.dt_barotropic, cfg.dt_baroclinic
    );
    println!(
        "{:>8} {:>12} {:>14} {:>12}",
        "ranks", "SYPD", "vs 1 rank", "efficiency"
    );
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("(host has {cores} cores; rank counts beyond that are oversubscribed)");
    let rank_counts: Vec<usize> = [1usize, 2, 3, 6]
        .into_iter()
        .filter(|&r| r <= cores.max(2))
        .collect();
    let mut base = None;
    for ranks in rank_counts {
        let cfg = cfg.clone();
        let stats = World::run(ranks, move |comm| {
            let mut m = Model::new(
                comm,
                cfg.clone(),
                kokkos_rs::Space::serial(),
                ModelOptions::default(),
            );
            m.run_steps(5); // warm-up
            m.run_days(0.05)
        })
        .pop()
        .unwrap();
        let b = *base.get_or_insert(stats.sypd);
        println!(
            "{:>8} {:>12.2} {:>13.2}x {:>11.1}%",
            ranks,
            stats.sypd,
            stats.sypd / b,
            100.0 * stats.sypd / (b * ranks as f64)
        );
    }
    println!("\n(In-process ranks share one machine's memory bandwidth, so measured");
    println!("local scaling is bandwidth-bound; the projection above models the");
    println!("paper's distributed-memory scaling.)");
}
