//! licom-trace — post-mortem flight-bundle analysis.
//!
//! Reads a black-box bundle written by the flight recorder on a failure
//! edge, schema-validates it, merges the per-rank rings into the single
//! cross-rank causal order (they are stored merged; the tool re-checks
//! the invariant), and prints the "last N events before failure" report.
//! Optionally re-exports the bundle as a chrome trace for Perfetto.
//!
//! ```text
//! licom-trace <bundle.json> [--last N] [--trace OUT.json]
//! licom-trace --smoke OUT.json     # CI: seeded rank-death run → bundle
//! ```
//!
//! `--smoke` runs the seeded rank-death scenario (4 ranks, 1 spare,
//! rank 1 killed attempting step 4), locates the post-mortem bundle the
//! elastic driver dumped, asserts it contains the dying rank's last
//! step, the `RankDeath` fault event and every survivor's `PeerDead`
//! observation, then copies it to `OUT.json` for artifact upload.
//!
//! Exit codes: 0 ok, 1 failed smoke assertion, 2 usage/IO/schema error.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use kokkos_profiling::flight::bundle_to_trace_events;
use kokkos_profiling::{parse_json, read_bundle, render_last_events, validate_bundle};
use mpi_sim::flight::FlightEventKind;

fn fail(msg: &str) -> ExitCode {
    eprintln!("licom-trace: {msg}");
    ExitCode::from(2)
}

fn analyze(path: &Path, last: usize, trace_out: Option<&Path>) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => return fail(&format!("reading {}: {e}", path.display())),
    };
    let doc = match parse_json(&text) {
        Ok(d) => d,
        Err(e) => return fail(&format!("parsing {}: {e}", path.display())),
    };
    let summary = match validate_bundle(&doc) {
        Ok(s) => s,
        Err(e) => return fail(&format!("{} is not a valid bundle: {e}", path.display())),
    };
    let bundle = match read_bundle(path) {
        Ok(b) => b,
        Err(e) => return fail(&e),
    };

    println!("bundle   {}", path.display());
    println!("reason   {}", summary.reason);
    println!("ranks    {}", summary.ranks);
    println!("events   {}", summary.events);
    println!("by kind:");
    for (kind, n) in &summary.by_kind {
        println!("  {kind:<18} {n}");
    }
    println!();
    print!(
        "{}",
        render_last_events(&bundle.events, &bundle.kernel_names, last)
    );

    if let Some(out) = trace_out {
        let events = bundle_to_trace_events(&bundle.events, &bundle.kernel_names);
        match kokkos_profiling::trace::write_atomic(out, &events) {
            Ok(()) => println!("\nwrote chrome trace {}", out.display()),
            Err(e) => return fail(&format!("writing {}: {e}", out.display())),
        }
    }
    ExitCode::SUCCESS
}

/// The seeded rank-death scenario from the bench gate, driven end to
/// end through the flight recorder: the elastic driver's post-consensus
/// dump must produce a bundle with the full causal story of the death.
fn smoke(out: &Path) -> ExitCode {
    use licom::checkpoint::RecoveryPolicy;
    use licom::elastic::{run_elastic, ElasticConfig, ElasticOutcome};
    use licom::model::ModelOptions;
    use mpi_sim::{FaultPlan, RetryPolicy, World, WorldConfig};
    use ocean_grid::Resolution;

    const VICTIM: i64 = 1;
    const DEATH_EPOCH: u64 = 3;

    let cfg = Resolution::Coarse100km.config().scaled_down(8, 6);
    let base = std::env::temp_dir().join(format!("licom_trace_smoke_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let ckpt_dir = base.join("ckpt");
    let flight_dir = base.join("flight");
    let ecfg = ElasticConfig {
        target_steps: 6,
        ckpt_dir,
        ring: 3,
        recovery: RecoveryPolicy {
            checkpoint_every: 2,
            max_rollbacks: 8,
        },
    };
    let wc = WorldConfig::new(4)
        .spares(1)
        .faults(FaultPlan::new(0xDEAD_0001).kill(VICTIM as usize, DEATH_EPOCH));
    let fdir = flight_dir.clone();
    let outcomes = World::run_cfg(wc, move |comm| {
        let opts = ModelOptions {
            overlap: true,
            retry: RetryPolicy::test_small(),
            flight_dir: Some(fdir.clone()),
            ..Default::default()
        };
        let out = run_elastic(comm, cfg.clone(), kokkos_rs::Space::serial(), opts, &ecfg)
            .expect("smoke scenario must recover");
        matches!(out, ElasticOutcome::Completed { .. })
    })
    .0;
    if outcomes.iter().filter(|c| **c).count() != 3 {
        eprintln!("licom-trace: smoke run did not complete on all three roles");
        return ExitCode::FAILURE;
    }

    // Exactly one bundle: the claim is once-per-world.
    let bundles: Vec<PathBuf> = match std::fs::read_dir(&flight_dir) {
        Ok(rd) => rd
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "json"))
            .collect(),
        Err(e) => return fail(&format!("reading {}: {e}", flight_dir.display())),
    };
    if bundles.len() != 1 {
        eprintln!(
            "licom-trace: expected exactly one bundle, found {}",
            bundles.len()
        );
        return ExitCode::FAILURE;
    }
    let bundle_path = &bundles[0];
    let bundle = match read_bundle(bundle_path) {
        Ok(b) => b,
        Err(e) => return fail(&format!("smoke bundle invalid: {e}")),
    };

    // The seeded fault event and its causal context must all be there.
    let mut checks: Vec<(&str, bool)> = Vec::new();
    checks.push(("reason is rank-death", bundle.reason == "rank-death"));
    checks.push((
        "RankDeath event from the victim",
        bundle
            .events
            .iter()
            .any(|e| e.kind == FlightEventKind::RankDeath && e.a == VICTIM as u64),
    ));
    let victim_last_step = bundle
        .events
        .iter()
        .rfind(|e| e.rank == VICTIM && e.kind == FlightEventKind::StepBegin);
    checks.push((
        "victim's last StepBegin is the death epoch",
        victim_last_step.is_some_and(|e| e.a == DEATH_EPOCH),
    ));
    for survivor in [0i64, 2] {
        let seen = bundle
            .events
            .iter()
            .any(|e| e.rank == survivor && e.kind == FlightEventKind::PeerDead);
        checks.push(("survivor observed PeerDead", seen));
    }
    let ok = checks.iter().all(|(_, ok)| *ok);
    for (what, passed) in &checks {
        println!("{} {what}", if *passed { "ok  " } else { "FAIL" });
    }
    if !ok {
        let _ = std::fs::remove_dir_all(&base);
        return ExitCode::FAILURE;
    }

    if let Some(parent) = out.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    if let Err(e) = std::fs::copy(bundle_path, out) {
        return fail(&format!("copying bundle to {}: {e}", out.display()));
    }
    println!("smoke bundle -> {}", out.display());
    let code = analyze(out, 20, None);
    let _ = std::fs::remove_dir_all(&base);
    code
}

fn main() -> ExitCode {
    let mut bundle: Option<PathBuf> = None;
    let mut last = 40usize;
    let mut trace_out: Option<PathBuf> = None;
    let mut smoke_out: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--last" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => last = n,
                None => return fail("--last needs a count"),
            },
            "--trace" => match args.next() {
                Some(p) => trace_out = Some(PathBuf::from(p)),
                None => return fail("--trace needs a path"),
            },
            "--smoke" => match args.next() {
                Some(p) => smoke_out = Some(PathBuf::from(p)),
                None => return fail("--smoke needs an output path"),
            },
            other if bundle.is_none() && !other.starts_with("--") => {
                bundle = Some(PathBuf::from(other));
            }
            other => return fail(&format!("unknown argument `{other}`")),
        }
    }

    match (smoke_out, bundle) {
        (Some(out), None) => smoke(&out),
        (None, Some(path)) => analyze(&path, last, trace_out.as_deref()),
        _ => fail("usage: licom-trace <bundle.json> [--last N] [--trace OUT.json] | licom-trace --smoke OUT.json"),
    }
}
