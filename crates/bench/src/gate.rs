//! The perf-regression gate: machine-readable run summaries
//! (`BENCH_run.json`, schema `licomkpp-bench-v1`) and the tolerance-band
//! comparison against a committed `BENCH_baseline.json`.
//!
//! Policy, per metric class (classified by name suffix):
//!
//! * **timing** (`sypd`, `mean_step_seconds`) — direction-aware,
//!   generous: only a >25% *regression* fails; any improvement passes.
//!   Wall-clock on shared CI runners is noisy. `halo_wait_seconds` gets
//!   an even wider band (75%) — receive-wait swings with scheduling.
//! * **fractions/ratios** — direction-aware with an absolute floor so
//!   micro-jitter on tiny denominators never trips the gate.
//!   `halo_wait_fraction` (lower is better, 50% band) and
//!   `overlap_efficiency` (higher is better, 25% band) are gated
//!   deliverables of the overlap engine; `max_over_mean` stays
//!   informational.
//! * **deterministic counters** (`p2p_messages_total`, `p2p_bytes_total`, `wet_cells`,
//!   `steps`, `drift_*_trips`) — exact: the simulated transport is
//!   deterministic, so *any* difference is a real behaviour change.
//! * unknown names — informational, never gate.
//!
//! A metric present in the baseline but missing from the run fails (a
//! silently dropped measurement is itself a regression); new metrics in
//! the run are reported but pass.

use std::collections::BTreeMap;

use kokkos_profiling::{render_json_pretty, Json};

pub const SCHEMA: &str = "licomkpp-bench-v1";

/// Which direction of change counts as a regression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    HigherIsBetter,
    LowerIsBetter,
    /// Deterministic counter: any change at all is a failure.
    Exact,
    /// Reported, never gated.
    Informational,
}

/// Tolerance band for one metric.
#[derive(Debug, Clone, Copy)]
pub struct MetricPolicy {
    pub direction: Direction,
    /// Relative regression allowed before failing (0.25 = 25% worse).
    pub rel_tol: f64,
    /// Absolute change below which a regression is ignored regardless of
    /// the relative band (kills noise on near-zero denominators).
    pub abs_floor: f64,
}

/// Classify a metric by the suffix after the last `.` (metric names are
/// `<space>.<metric>`).
pub fn policy_for(name: &str) -> MetricPolicy {
    let suffix = name.rsplit('.').next().unwrap_or(name);
    match suffix {
        "sypd" => MetricPolicy {
            direction: Direction::HigherIsBetter,
            rel_tol: 0.25,
            abs_floor: 0.0,
        },
        "mean_step_seconds" => MetricPolicy {
            direction: Direction::LowerIsBetter,
            rel_tol: 0.25,
            abs_floor: 1.0e-4,
        },
        // Receive-wait at millisecond scale swings with rank scheduling;
        // only a blow-up (not jitter) should gate.
        "halo_wait_seconds" => MetricPolicy {
            direction: Direction::LowerIsBetter,
            rel_tol: 0.75,
            abs_floor: 2.0e-3,
        },
        // With the overlap engine in place the wait fraction is a
        // first-class deliverable: hold it to a tight band so a schedule
        // change that reintroduces blocking waits gates the build.
        "halo_wait_fraction" => MetricPolicy {
            direction: Direction::LowerIsBetter,
            rel_tol: 0.5,
            abs_floor: 0.05,
        },
        // Overlap efficiency is the companion deliverable: losing more
        // than a quarter of the achieved comm/compute overlap regresses.
        "overlap_efficiency" => MetricPolicy {
            direction: Direction::HigherIsBetter,
            rel_tol: 0.25,
            abs_floor: 0.1,
        },
        // Simulated CG DMA traffic per step is a function of the tile
        // schedule, not of host timing — a growth means the LDM tiling
        // regressed (smaller tiles, more transactions). Small drift is
        // allowed for schedule changes that trade bytes for stalls.
        "cg_dma_bytes_per_step" => MetricPolicy {
            direction: Direction::LowerIsBetter,
            rel_tol: 0.10,
            abs_floor: 0.0,
        },
        // Fraction of aggregate CPE busy cycles stalled in dma_wait —
        // the measured Eq. 1/2 residual. Rising past tolerance means
        // tiles shrank below the crossover.
        "cg_dma_stall_fraction" => MetricPolicy {
            direction: Direction::LowerIsBetter,
            rel_tol: 0.25,
            abs_floor: 0.02,
        },
        // Peak LDM bytes resident: deeper tiles amortize DMA latency, so
        // falling high-water marks mean the cost model stopped using the
        // scratchpad.
        "cg_ldm_high_water" => MetricPolicy {
            direction: Direction::HigherIsBetter,
            rel_tol: 0.25,
            abs_floor: 0.0,
        },
        // The headline SwAthread gap: Threads SYPD over SwAthread SYPD
        // (1.0 = parity). Wall-clock on both sides, so noise enters
        // twice — the ratio swings ±0.3 run to run on a loaded host.
        // The wide absolute floor keeps jitter out; the real ceiling is
        // CI's --assert-below bound.
        "sypd_ratio_vs_threads" => MetricPolicy {
            direction: Direction::LowerIsBetter,
            rel_tol: 0.5,
            abs_floor: 0.5,
        },
        // Serving throughput of the ensemble engine (aggregate model
        // steps per wall second across all concurrent instances). Wall
        // clock under a many-worker load test is noisy; gate only on a
        // halving-scale collapse.
        "steps_per_sec" => MetricPolicy {
            direction: Direction::HigherIsBetter,
            rel_tol: 0.5,
            abs_floor: 0.0,
        },
        // Tail step latency under the serving load. The p99 is a bucket
        // upper bound from a fixed histogram, so small shifts quantize;
        // the band plus a 1 ms floor keeps scheduling jitter out while a
        // genuine tail blow-up (lock convoy, pool starvation) gates.
        "p99_step_latency_ns" => MetricPolicy {
            direction: Direction::LowerIsBetter,
            rel_tol: 1.0,
            abs_floor: 1.0e6,
        },
        "max_over_mean" => MetricPolicy {
            direction: Direction::Informational,
            rel_tol: 0.0,
            abs_floor: 0.0,
        },
        // Armed flight-recorder cost per recorded event. Nanosecond-scale
        // wall timing quantizes hard on shared runners, so the band is
        // wide and the floor generous — the hard ceiling is CI's
        // --assert-below bound; the gate only catches a blow-up (a lock
        // or allocation sneaking onto the record path).
        "record_ns_per_event" => MetricPolicy {
            direction: Direction::LowerIsBetter,
            rel_tol: 1.0,
            abs_floor: 50.0,
        },
        // Recovery counters from the seeded rank-death scenario are
        // fully deterministic (registry-backed detection, fixed fault
        // seed): any drift means the elastic protocol changed behavior.
        "p2p_messages_total"
        | "p2p_bytes_total"
        | "wet_cells"
        | "steps"
        | "drift_perf_trips"
        | "drift_physics_trips"
        | "rank_deaths_recovered"
        | "recovery_replay_steps"
        // Serving scenario: the seeded traffic plan admits a fixed job
        // set and the server completes every one (no cancels, no
        // faults), so the job and step totals are deterministic.
        | "jobs_completed"
        | "steps_total"
        // Flight scenario: a fixed event sequence recorded into a fixed
        // ring and dumped — the bundle's event count is deterministic.
        | "dump_events_total" => MetricPolicy {
            direction: Direction::Exact,
            rel_tol: 0.0,
            abs_floor: 0.0,
        },
        _ => MetricPolicy {
            direction: Direction::Informational,
            rel_tol: 0.0,
            abs_floor: 0.0,
        },
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    Ok,
    Improved,
    Regressed,
    /// In baseline, absent from the run.
    Missing,
    /// In the run, absent from the baseline.
    Added,
}

/// One metric's baseline-vs-run comparison.
#[derive(Debug, Clone)]
pub struct MetricDiff {
    pub name: String,
    pub baseline: Option<f64>,
    pub run: Option<f64>,
    pub verdict: Verdict,
}

fn judge(name: &str, baseline: f64, run: f64) -> Verdict {
    let p = policy_for(name);
    // Regression magnitude, positive when `run` is worse.
    let (worse_by, better) = match p.direction {
        Direction::HigherIsBetter => (baseline - run, run > baseline),
        Direction::LowerIsBetter => (run - baseline, run < baseline),
        Direction::Exact => {
            return if run == baseline {
                Verdict::Ok
            } else {
                Verdict::Regressed
            };
        }
        Direction::Informational => return Verdict::Ok,
    };
    if worse_by <= 0.0 {
        return if better {
            Verdict::Improved
        } else {
            Verdict::Ok
        };
    }
    if worse_by <= p.abs_floor {
        return Verdict::Ok;
    }
    let scale = baseline.abs().max(1e-30);
    if worse_by / scale > p.rel_tol {
        Verdict::Regressed
    } else {
        Verdict::Ok
    }
}

/// Merge two measurement passes into a best-of table, direction-aware:
/// timing metrics keep the better pass (loaded runners only ever make a
/// run look *worse*, so best-of-N removes contention noise without
/// hiding real regressions), exact counters keep the first pass (the
/// gate flags any true nondeterminism against the baseline anyway), and
/// informational metrics keep the first pass.
pub fn merge_best(a: &BTreeMap<String, f64>, b: &BTreeMap<String, f64>) -> BTreeMap<String, f64> {
    let mut out = a.clone();
    for (name, &vb) in b {
        match out.get_mut(name) {
            Some(va) => match policy_for(name).direction {
                Direction::HigherIsBetter => *va = va.max(vb),
                Direction::LowerIsBetter => *va = va.min(vb),
                Direction::Exact | Direction::Informational => {}
            },
            None => {
                out.insert(name.clone(), vb);
            }
        }
    }
    out
}

/// Compare a run's metric table against the baseline's.
pub fn compare_metrics(
    baseline: &BTreeMap<String, f64>,
    run: &BTreeMap<String, f64>,
) -> Vec<MetricDiff> {
    let mut out = Vec::new();
    for (name, &b) in baseline {
        match run.get(name) {
            Some(&r) => out.push(MetricDiff {
                name: name.clone(),
                baseline: Some(b),
                run: Some(r),
                verdict: judge(name, b, r),
            }),
            None => out.push(MetricDiff {
                name: name.clone(),
                baseline: Some(b),
                run: None,
                verdict: Verdict::Missing,
            }),
        }
    }
    for (name, &r) in run {
        if !baseline.contains_key(name) {
            out.push(MetricDiff {
                name: name.clone(),
                baseline: None,
                run: Some(r),
                verdict: Verdict::Added,
            });
        }
    }
    out
}

/// `true` iff no diff gates the build (Missing and Regressed fail).
pub fn gate_passes(diffs: &[MetricDiff]) -> bool {
    diffs
        .iter()
        .all(|d| !matches!(d.verdict, Verdict::Regressed | Verdict::Missing))
}

/// Human-readable diff report, regressions first.
pub fn render_diff(diffs: &[MetricDiff]) -> String {
    let mut rows: Vec<&MetricDiff> = diffs.iter().collect();
    rows.sort_by_key(|d| match d.verdict {
        Verdict::Regressed => 0,
        Verdict::Missing => 1,
        Verdict::Improved => 2,
        Verdict::Added => 3,
        Verdict::Ok => 4,
    });
    let mut out = format!(
        "{:<36} {:>14} {:>14} {:>9}  verdict\n",
        "metric", "baseline", "run", "change%"
    );
    for d in rows {
        let (b, r) = (d.baseline, d.run);
        let change = match (b, r) {
            (Some(b), Some(r)) if b.abs() > 1e-30 => format!("{:+.1}", 100.0 * (r - b) / b),
            _ => "-".to_string(),
        };
        let fmt = |v: Option<f64>| match v {
            Some(v) => format!("{v:.6}"),
            None => "-".to_string(),
        };
        out.push_str(&format!(
            "{:<36} {:>14} {:>14} {:>9}  {}\n",
            d.name,
            fmt(b),
            fmt(r),
            change,
            match d.verdict {
                Verdict::Ok => "ok",
                Verdict::Improved => "improved",
                Verdict::Regressed => "REGRESSED",
                Verdict::Missing => "MISSING",
                Verdict::Added => "added (new)",
            }
        ));
    }
    out
}

/// Build the schema-`licomkpp-bench-v1` summary document.
pub fn summary_to_json(
    config: &[(&str, u64)],
    spaces: &[&str],
    metrics: &BTreeMap<String, f64>,
) -> Json {
    let mut cfg = Json::Obj(Default::default());
    for (k, v) in config {
        cfg.set(k, Json::from(*v));
    }
    let mut m = Json::Obj(Default::default());
    for (k, v) in metrics {
        m.set(k, Json::from(*v));
    }
    Json::obj([
        ("schema", Json::from(SCHEMA)),
        ("config", cfg),
        (
            "spaces",
            Json::Arr(spaces.iter().map(|s| Json::from(*s)).collect()),
        ),
        ("metrics", m),
    ])
}

/// Validate a parsed summary against the schema and pull out the metric
/// table. Rejects wrong/missing schema tags, non-object `metrics`,
/// non-numeric metric values and missing `config`/`spaces`.
pub fn validate_summary(doc: &Json) -> Result<BTreeMap<String, f64>, String> {
    let schema = doc
        .get("schema")
        .and_then(|s| s.as_str())
        .ok_or("missing `schema` tag")?;
    if schema != SCHEMA {
        return Err(format!("schema `{schema}`, expected `{SCHEMA}`"));
    }
    match doc.get("config") {
        Some(Json::Obj(_)) => {}
        _ => return Err("missing or non-object `config`".to_string()),
    }
    match doc.get("spaces") {
        Some(Json::Arr(a)) if !a.is_empty() => {
            if a.iter().any(|s| s.as_str().is_none()) {
                return Err("non-string entry in `spaces`".to_string());
            }
        }
        _ => return Err("missing or empty `spaces`".to_string()),
    }
    let metrics = match doc.get("metrics") {
        Some(Json::Obj(m)) => m,
        _ => return Err("missing or non-object `metrics`".to_string()),
    };
    let mut out = BTreeMap::new();
    for (k, v) in metrics {
        let n = v
            .as_num()
            .ok_or_else(|| format!("metric `{k}` is not a number"))?;
        out.insert(k.clone(), n);
    }
    Ok(out)
}

/// Write a summary document atomically (tmp + rename, like the trace
/// writer) so a crashed gate never leaves a truncated JSON behind.
pub fn write_summary(path: &std::path::Path, doc: &Json) -> std::io::Result<()> {
    let tmp = path.with_extension("json.tmp");
    std::fs::write(&tmp, render_json_pretty(doc))?;
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kokkos_profiling::parse_json as parse;

    fn table(pairs: &[(&str, f64)]) -> BTreeMap<String, f64> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn timing_within_band_passes() {
        // 20% slower is inside the 25% band.
        let base = table(&[("serial.mean_step_seconds", 0.10)]);
        let run = table(&[("serial.mean_step_seconds", 0.12)]);
        assert!(gate_passes(&compare_metrics(&base, &run)));
    }

    #[test]
    fn timing_bands_are_direction_aware() {
        let base = table(&[("serial.mean_step_seconds", 0.10), ("serial.sypd", 2.0)]);
        // 26% slower step AND 30% lower sypd: both regress.
        let bad = table(&[("serial.mean_step_seconds", 0.126), ("serial.sypd", 1.4)]);
        let diffs = compare_metrics(&base, &bad);
        assert!(!gate_passes(&diffs));
        assert_eq!(
            diffs
                .iter()
                .filter(|d| d.verdict == Verdict::Regressed)
                .count(),
            2
        );
        // 2x faster everywhere: improvements never fail.
        let good = table(&[("serial.mean_step_seconds", 0.05), ("serial.sypd", 4.0)]);
        let diffs = compare_metrics(&base, &good);
        assert!(gate_passes(&diffs));
        assert!(diffs.iter().all(|d| d.verdict == Verdict::Improved));
    }

    #[test]
    fn merge_best_is_direction_aware() {
        let a = table(&[
            ("s.sypd", 2.0),
            ("s.mean_step_seconds", 0.10),
            ("s.p2p_messages_total", 96.0),
        ]);
        let b = table(&[
            ("s.sypd", 2.5),
            ("s.mean_step_seconds", 0.12),
            ("s.p2p_messages_total", 96.0),
        ]);
        let m = merge_best(&a, &b);
        assert_eq!(m["s.sypd"], 2.5);
        assert_eq!(m["s.mean_step_seconds"], 0.10);
        assert_eq!(m["s.p2p_messages_total"], 96.0);
    }

    #[test]
    fn exact_counters_fail_on_any_change() {
        let base = table(&[("serial.p2p_messages_total", 96.0)]);
        let run = table(&[("serial.p2p_messages_total", 97.0)]);
        let diffs = compare_metrics(&base, &run);
        assert_eq!(diffs[0].verdict, Verdict::Regressed);
        assert!(!gate_passes(&diffs));
    }

    #[test]
    fn abs_floor_suppresses_tiny_wait_jitter() {
        // halo_wait_fraction 0.001 → 0.004 is 4x relative but far under
        // the 0.05 absolute floor: must pass.
        let base = table(&[("serial.halo_wait_fraction", 0.001)]);
        let run = table(&[("serial.halo_wait_fraction", 0.004)]);
        assert!(gate_passes(&compare_metrics(&base, &run)));
    }

    #[test]
    fn missing_metric_fails_added_passes() {
        let base = table(&[("serial.sypd", 2.0)]);
        let run = table(&[("threads.sypd", 2.0)]);
        let diffs = compare_metrics(&base, &run);
        assert!(!gate_passes(&diffs));
        assert!(diffs.iter().any(|d| d.verdict == Verdict::Missing));
        assert!(diffs.iter().any(|d| d.verdict == Verdict::Added));
    }

    #[test]
    fn informational_metrics_never_gate() {
        let base = table(&[("serial.max_over_mean", 1.0)]);
        let run = table(&[("serial.max_over_mean", 50.0)]);
        assert!(gate_passes(&compare_metrics(&base, &run)));
    }

    #[test]
    fn overlap_metrics_are_direction_aware() {
        // Wait fraction creeping back up past the 50% band regresses…
        let base = table(&[("serial.halo_wait_fraction", 0.15)]);
        let bad = table(&[("serial.halo_wait_fraction", 0.40)]);
        assert!(!gate_passes(&compare_metrics(&base, &bad)));
        // …but dropping it further is an improvement, never a failure.
        let good = table(&[("serial.halo_wait_fraction", 0.02)]);
        assert!(gate_passes(&compare_metrics(&base, &good)));

        // Overlap efficiency falling more than 25% (and above the 0.1
        // absolute floor) regresses; rising never does.
        let base = table(&[("serial.overlap_efficiency", 2.4)]);
        let bad = table(&[("serial.overlap_efficiency", 1.5)]);
        assert!(!gate_passes(&compare_metrics(&base, &bad)));
        let good = table(&[("serial.overlap_efficiency", 3.0)]);
        assert!(gate_passes(&compare_metrics(&base, &good)));
        // Tiny absolute dips under the floor are jitter, not regressions.
        let jitter = table(&[("serial.overlap_efficiency", 2.31)]);
        assert!(gate_passes(&compare_metrics(&base, &jitter)));
    }

    #[test]
    fn summary_round_trips_through_schema_validation() {
        let metrics = table(&[("serial.sypd", 2.5), ("serial.p2p_messages_total", 96.0)]);
        let doc = summary_to_json(
            &[
                ("nx", 60),
                ("ny", 40),
                ("nz", 10),
                ("ranks", 4),
                ("steps", 8),
            ],
            &["Serial"],
            &metrics,
        );
        let text = kokkos_profiling::render_json_pretty(&doc);
        let back = parse(&text).expect("rendered summary parses");
        let got = validate_summary(&back).expect("valid schema");
        assert_eq!(got, metrics);
    }

    #[test]
    fn validation_rejects_malformed_documents() {
        assert!(validate_summary(&parse("{}").unwrap()).is_err());
        assert!(validate_summary(
            &parse(r#"{"schema":"other","config":{},"spaces":["Serial"],"metrics":{}}"#).unwrap()
        )
        .is_err());
        assert!(validate_summary(
            &parse(r#"{"schema":"licomkpp-bench-v1","config":{},"spaces":[],"metrics":{}}"#)
                .unwrap()
        )
        .is_err());
        assert!(validate_summary(
            &parse(
                r#"{"schema":"licomkpp-bench-v1","config":{},"spaces":["Serial"],"metrics":{"a":"x"}}"#
            )
            .unwrap()
        )
        .is_err());
    }

    #[test]
    fn diff_report_leads_with_regressions() {
        let base = table(&[("a.sypd", 2.0), ("b.sypd", 2.0)]);
        let run = table(&[("a.sypd", 2.0), ("b.sypd", 1.0)]);
        let report = render_diff(&compare_metrics(&base, &run));
        let first = report.lines().nth(1).unwrap();
        assert!(first.starts_with("b.sypd") && first.contains("REGRESSED"));
    }
}
