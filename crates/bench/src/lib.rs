//! # bench — experiment harness for every table and figure
//!
//! One binary per paper artifact (run with
//! `cargo run -p bench --release --bin <name>`):
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `exp_table1` | Table I — programming models / Kokkos backend support |
//! | `exp_table2` | Table II — node hardware of the four systems |
//! | `exp_table3` | Table III — the four model configurations |
//! | `exp_table4` | Table IV — weak-scaling series |
//! | `exp_table5_fig8` | Table V + Fig. 8 — strong scaling (projected at paper scale, measured locally) |
//! | `exp_fig1_sst` | Fig. 1 — SST structure + Mariana-trench column |
//! | `exp_fig2_landscape` | Fig. 2 — high-resolution ocean modelling landscape |
//! | `exp_fig6_rossby` | Fig. 6 — Rossby number vs resolution (submesoscale emergence) |
//! | `exp_fig7_portability` | Fig. 7 — single-node SYPD, Kokkos vs Fortran, four platforms |
//! | `exp_fig9_weak` | Fig. 9 — weak scaling |
//! | `exp_ablation` | §VII-C text — optimized vs original speedups, per-optimization ablation |
//!
//! Criterion microbenchmarks live in `benches/` (functor dispatch +
//! registry matching, views, halo pack/transpose, hotspot kernels,
//! message passing).

pub mod gate;

/// Render one formatted table row (fixed-width columns).
pub fn row(cells: &[String], widths: &[usize]) -> String {
    let mut out = String::new();
    for (c, w) in cells.iter().zip(widths) {
        out.push_str(&format!("{:>width$}  ", c, width = w));
    }
    out.trim_end().to_string()
}

/// Print a titled section banner.
pub fn banner(title: &str) {
    println!("\n{}", "=".repeat(72));
    println!("{title}");
    println!("{}", "=".repeat(72));
}

/// Relative deviation (%) of `model` from `paper`.
pub fn deviation_pct(model: f64, paper: f64) -> f64 {
    100.0 * (model - paper) / paper
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deviation_math() {
        assert_eq!(deviation_pct(1.1, 1.0), 10.000000000000009);
        assert!(deviation_pct(0.9, 1.0) < 0.0);
    }

    #[test]
    fn row_formats_right_aligned() {
        let r = row(&["a".into(), "bb".into()], &[3, 4]);
        assert_eq!(r, "  a    bb");
    }
}

/// Render a log-log-ish ASCII line chart of one or more (x, y) series —
/// enough to eyeball the *shape* of Fig. 8/9-style scaling curves in a
/// terminal. X positions are spaced by log(x); Y is scaled linearly in
/// log(y). Each series gets a distinct glyph.
pub fn ascii_chart(
    title: &str,
    series: &[(&str, Vec<(f64, f64)>)],
    width: usize,
    height: usize,
) -> String {
    let glyphs = ['o', 'x', '+', '*', '#', '@'];
    let mut pts: Vec<(f64, f64)> = Vec::new();
    for (_, s) in series {
        pts.extend(s.iter().copied());
    }
    if pts.is_empty() {
        return format!("{title}\n(no data)\n");
    }
    let (mut x0, mut x1, mut y0, mut y1) = (f64::MAX, f64::MIN, f64::MAX, f64::MIN);
    for &(x, y) in &pts {
        let (lx, ly) = (x.ln(), y.ln());
        x0 = x0.min(lx);
        x1 = x1.max(lx);
        y0 = y0.min(ly);
        y1 = y1.max(ly);
    }
    let (dx, dy) = ((x1 - x0).max(1e-12), (y1 - y0).max(1e-12));
    let mut grid = vec![vec![' '; width]; height];
    for (si, (_, s)) in series.iter().enumerate() {
        for &(x, y) in s {
            let cx = (((x.ln() - x0) / dx) * (width - 1) as f64).round() as usize;
            let cy = (((y.ln() - y0) / dy) * (height - 1) as f64).round() as usize;
            grid[height - 1 - cy][cx] = glyphs[si % glyphs.len()];
        }
    }
    let mut out = format!("{title}  (log-log)\n");
    for row in grid {
        out.push('|');
        out.extend(row);
        out.push('\n');
    }
    out.push('+');
    out.push_str(&"-".repeat(width));
    out.push('\n');
    let legend: Vec<String> = series
        .iter()
        .enumerate()
        .map(|(i, (name, _))| format!("{} {}", glyphs[i % glyphs.len()], name))
        .collect();
    out.push_str(&format!("  {}\n", legend.join("    ")));
    out
}

#[cfg(test)]
mod chart_tests {
    use super::*;

    #[test]
    fn chart_renders_points_and_legend() {
        let s = ascii_chart(
            "SYPD vs devices",
            &[
                ("orise", vec![(4000.0, 0.8), (16000.0, 1.8)]),
                ("sunway", vec![(77750.0, 0.24), (590250.0, 1.1)]),
            ],
            40,
            10,
        );
        assert!(s.contains('o') && s.contains('x'));
        assert!(s.contains("orise") && s.contains("sunway"));
        assert!(s.lines().count() > 10);
    }

    #[test]
    fn chart_handles_empty() {
        assert!(ascii_chart("t", &[("a", vec![])], 10, 5).contains("no data"));
    }
}
