//! Consistency guard: the performance model's kernel census
//! (`perf_model::workload::PASSES_3D`) must match the `IterCost` hooks of
//! the actual `licom` functors — otherwise the projection describes a
//! different model than the one we run.

use kokkos_rs::{View, View1, View2, View3};
use perf_model::workload::PASSES_3D;

fn census(name: &str) -> (f64, f64) {
    let k = PASSES_3D
        .iter()
        .find(|k| k.name == name)
        .unwrap_or_else(|| panic!("census entry '{name}' missing"));
    (k.flops_per_pt, k.bytes_per_pt)
}

fn v3(nz: usize) -> View3<f64> {
    View::host("v", [nz, 8, 8])
}

fn v2i(v: i32) -> View2<i32> {
    let x: View2<i32> = View::host("m", [8, 8]);
    x.fill(v);
    x
}

fn v1(n: usize) -> View1<f64> {
    View::host("d", [n])
}

#[test]
fn eos_census_matches_functor_cost() {
    let f = licom::eos::FunctorEos {
        t: v3(4),
        s: v3(4),
        rho: v3(4),
    };
    use kokkos_rs::Functor3D;
    let c = f.cost();
    let (flops, bytes) = census("eos");
    assert_eq!((c.flops as f64, c.bytes as f64), (flops, bytes));
}

#[test]
fn momentum_census_matches_functor_cost() {
    let f = licom::baroclinic::FunctorMomentumTend {
        u_cur: v3(4),
        v_cur: v3(4),
        u_old: v3(4),
        v_old: v3(4),
        pressure: v3(4),
        ut: v3(4),
        vt: v3(4),
        kmu: v2i(4),
        fcor: v1(8),
        dxt: v1(8),
        dyt: 1.0e5,
        dz: v1(4),
        visc: 1.0e3,
    };
    use kokkos_rs::Functor3D;
    let c = f.cost();
    let (flops, bytes) = census("momentum_tend");
    assert_eq!((c.flops as f64, c.bytes as f64), (flops, bytes));
}

#[test]
fn advection_census_matches_summed_pass_costs() {
    use kokkos_rs::Functor3D;
    // Census entry "advection_tracer" = 2 tracers x (flux_x + apply_x +
    // flux_y + apply_y + z-pass).
    let nz = 4;
    let fx = licom::advect::FunctorFluxX {
        q: v3(nz),
        u: v3(nz),
        flux: v3(nz),
        kmt: v2i(nz as i32),
        dxt: v1(8),
        dyt: 1.0e5,
        dt: 20.0,
        limited: true,
    };
    let ax = licom::advect::FunctorApplyX {
        q: v3(nz),
        q1: v3(nz),
        flux: v3(nz),
        kmt: v2i(nz as i32),
        dxt: v1(8),
        dyt: 1.0e5,
        dt: 20.0,
    };
    let fy = licom::advect::FunctorFluxY {
        q: v3(nz),
        v: v3(nz),
        flux: v3(nz),
        kmt: v2i(nz as i32),
        dxt: v1(8),
        dyt: 1.0e5,
        dt: 20.0,
        limited: true,
    };
    let ay = licom::advect::FunctorApplyY {
        q: v3(nz),
        q1: v3(nz),
        flux: v3(nz),
        kmt: v2i(nz as i32),
        dxt: v1(8),
        dyt: 1.0e5,
        dt: 20.0,
    };
    // z-pass is a column functor: per-point share = cost / nz.
    let az = licom::advect::FunctorAdvectZ {
        q: v3(nz),
        q1: v3(nz),
        w: v3(nz + 1),
        kmt: v2i(nz as i32),
        dz: v1(nz),
        dt: 20.0,
        nz,
        limited: true,
    };
    use kokkos_rs::Functor2D;
    let per_point_flops = (fx.cost().flops + ax.cost().flops + fy.cost().flops + ay.cost().flops)
        as f64
        + az.cost().flops as f64 / nz as f64;
    let per_point_bytes = (fx.cost().bytes + ax.cost().bytes + fy.cost().bytes + ay.cost().bytes)
        as f64
        + az.cost().bytes as f64 / nz as f64;
    let (flops, bytes) = census("advection_tracer");
    assert_eq!(flops, 2.0 * per_point_flops, "flops census drifted");
    assert_eq!(bytes, 2.0 * per_point_bytes, "bytes census drifted");
}

#[test]
fn canuto_census_matches_column_share() {
    use kokkos_rs::Functor2D;
    let nz = 4;
    let f = licom::canuto::FunctorCanutoRect {
        f: licom::canuto::CanutoFields {
            rho: v3(nz),
            u: v3(nz),
            v: v3(nz),
            km: v3(nz + 1),
            kh: v3(nz + 1),
            kmt: v2i(nz as i32),
            z_t: v1(nz),
            nz,
        },
    };
    let c = f.cost();
    let (flops, bytes) = census("canuto");
    // Column cost is nz x the per-point census entry.
    assert_eq!(c.flops as f64, flops * nz as f64);
    assert_eq!(c.bytes as f64, bytes * nz as f64);
}
