//! 2-D halo update on the tripolar block decomposition.
//!
//! Layout of a local field (padded views, `H = 2`):
//!
//! ```text
//! rows    [0, H)            south ghost (closed wall or neighbor data)
//! rows    [H, H+ny)         owned; of these [H, H+2) and [H+ny-2, H+ny)
//!                           are the *real halo* sent to neighbors
//! rows    [H+ny, H+ny+2H?)  north ghost (neighbor or fold data)
//! ```
//! and likewise in `i`. The update is two-phase — east/west over owned
//! rows first, then north/south over the **full padded width** — which
//! fills the four corner blocks without diagonal messages (the standard
//! trick; LICOM does the same).
//!
//! The **north fold**: the tripolar seam maps the ghost row above global
//! row `nyg-1-…` onto row `nyg-1-d` *mirrored in longitude*; vector
//! fields additionally flip sign. The fold partner of the block at column
//! `cx` is the block at `px-1-cx` (possibly itself). A clean mirror
//! requires equal block widths, so fold exchanges assert `nxg % px == 0`.
//!
//! The default [`Halo2D::exchange`] is allocation-free in steady state:
//! messages round-trip through the per-rank buffer pools of `mpi-sim`
//! ([`mpi_sim::Comm::send_into`] / [`mpi_sim::Comm::recv_into`]), self
//! paths use persistent scratch, and pack/unpack copy contiguous runs
//! (`copy_from_slice`) instead of walking elements. The original
//! freshly-allocating implementation survives as [`Halo2D::exchange_alloc`]
//! — the bitwise-identity reference.

use std::cell::{Cell, RefCell, RefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use kokkos_rs::{Space, View2};
use mpi_sim::{CartComm, Comm, Dir, Neighbor};

use crate::integrity::{self, FrameSeq, HaloError, IntegrityConfig};
use crate::strip;
use crate::HALO as H;

/// Below this many elements a strip copy stays on the MPE: a kernel launch
/// costs on the order of a microsecond, which a host `memcpy` at tens of
/// GB/s spends moving a few thousand f64 — dispatching smaller strips to
/// CPEs (or the thread pool) would pay more in overhead than the copy
/// itself. Kilometer-scale blocks clear this easily; the coarse test grids
/// fall back to the serial runs.
const STRIP_DISPATCH_MIN: usize = 4096;

/// Tag offsets by direction of travel.
const T_WEST: u64 = 0;
const T_EAST: u64 = 1;
const T_SOUTH: u64 = 2;
const T_NORTH: u64 = 3;
const T_FOLD: u64 = 4;

/// How a field transforms across the north fold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FoldKind {
    /// Tracers, SSH: copied as-is (mirrored in `i`).
    Scalar,
    /// Velocity components on the B grid: mirrored and sign-flipped.
    Vector,
}

impl FoldKind {
    fn sign(self) -> f64 {
        match self {
            FoldKind::Scalar => 1.0,
            FoldKind::Vector => -1.0,
        }
    }
}

/// Where the northward leg of an exchange goes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum NorthPath {
    /// Ordinary interior neighbor.
    Interior(usize),
    /// Tripolar fold partner on another rank.
    FoldOther(usize),
    /// This rank is its own fold partner (self-copy through scratch).
    FoldSelf,
    /// Closed wall (no transfer).
    Closed,
}

/// The per-exchange transfer plan shared by every exchange flavor: which
/// peers to talk to, which north path applies, and the per-field message
/// lengths. See [`Halo2D::plan`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct StripPlan {
    pub west: usize,
    pub east: usize,
    /// px == 1: the east/west wrap is a local copy, not a message.
    pub ew_self: bool,
    pub south: Option<usize>,
    pub north: NorthPath,
    /// East/west message length per field (`ny * H`).
    pub strip: usize,
    /// North/south message length per field (`H * pi`, full padded width).
    pub rows: usize,
}

/// Per-rank halo exchange context for one decomposition.
#[derive(Clone)]
pub struct Halo2D {
    cart: CartComm,
    /// Global grid extents.
    pub nxg: usize,
    pub nyg: usize,
    /// This rank's owned block.
    pub x0: usize,
    pub y0: usize,
    pub nx: usize,
    pub ny: usize,
    /// Execution space strip pack/unpack dispatches on (serial by
    /// default; the model passes its own so staging runs on CPEs).
    space: Space,
    /// Minimum strip elements before pack/unpack leaves the MPE
    /// ([`STRIP_DISPATCH_MIN`]; tests shrink it to force dispatch).
    strip_dispatch_min: usize,
    /// Persistent scratch for self-sends / self-folds (two cells: the
    /// east/west self path needs both strips live at once). Grow-once.
    scratch_a: RefCell<Vec<f64>>,
    scratch_b: RefCell<Vec<f64>>,
    /// End-to-end integrity framing + retry (None = raw strips, the
    /// default — existing byte-count expectations stay exact).
    integrity: Option<IntegrityConfig>,
    /// Current epoch (model step) and per-step exchange ordinal for frame
    /// sequencing. All ranks call the exchanges collectively in the same
    /// order, so sender and receiver agree on both without negotiation.
    epoch: Cell<u64>,
    ordinal: Cell<u64>,
    /// Nanoseconds this rank spent inside receive calls — the wait/unpack
    /// side of every networked strip, including the overlap variants whose
    /// whole-call time is deliberately not attributed to the halo phase.
    /// Shared across clones (`Halo3D` wraps a clone of the model's 2-D
    /// context) so one counter sees both 2-D and 3-D traffic.
    wait_ns: Arc<AtomicU64>,
    /// Nanoseconds of exchange *span* — begin-to-done for split-phase
    /// exchanges (which covers whatever compute ran while the strips were
    /// in flight), whole-call for blocking ones. Concurrent pending spans
    /// sum additively, so this counts comm·seconds in flight; dividing a
    /// step's delta by wall time measures how much communication the step
    /// kept airborne per wall second. Shared across clones like `wait_ns`.
    inflight_ns: Arc<AtomicU64>,
}

impl Halo2D {
    /// Build the context from the topology. Panics if any block is too
    /// small to carry a 2-wide real halo, or if a fold is present with
    /// unequal block widths.
    pub fn new(cart: &CartComm, nxg: usize, nyg: usize) -> Self {
        let (x0, nx) = cart.local_x(nxg);
        let (y0, ny) = cart.local_y(nyg);
        assert!(nx >= H && ny >= H, "block {nx}x{ny} smaller than halo {H}");
        if matches!(cart.neighbor(Dir::North), Neighbor::Fold(_)) {
            assert_eq!(
                nxg % cart.px(),
                0,
                "north-fold exchange requires equal block widths (nxg % px == 0)"
            );
        }
        Self {
            cart: cart.clone(),
            nxg,
            nyg,
            x0,
            y0,
            nx,
            ny,
            space: Space::serial(),
            strip_dispatch_min: STRIP_DISPATCH_MIN,
            scratch_a: RefCell::new(Vec::new()),
            scratch_b: RefCell::new(Vec::new()),
            integrity: None,
            epoch: Cell::new(0),
            ordinal: Cell::new(0),
            wait_ns: Arc::new(AtomicU64::new(0)),
            inflight_ns: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Cumulative nanoseconds spent waiting in halo receives (wait +
    /// unpack) on this rank, over every exchange routed through this
    /// context or any clone of it. Monotone; sample before/after a step
    /// and subtract for per-step attribution.
    pub fn halo_wait_ns(&self) -> u64 {
        self.wait_ns.load(Ordering::Relaxed)
    }

    /// Cumulative exchange-span nanoseconds (see the `inflight_ns` field
    /// docs): comm·time in flight, summed over every exchange routed
    /// through this context or any clone of it.
    pub fn halo_inflight_ns(&self) -> u64 {
        self.inflight_ns.load(Ordering::Relaxed)
    }

    pub(crate) fn add_inflight(&self, ns: u64) {
        self.inflight_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Dispatch strip pack/unpack over `space` instead of serial MPE
    /// loops (paper §V-D: halo staging runs on the CPEs so wide strips
    /// stop round-tripping through MPE memory). Strips smaller than
    /// [`STRIP_DISPATCH_MIN`] elements still take the serial fast path —
    /// launch overhead would dominate the copy.
    pub fn with_space(mut self, space: Space) -> Self {
        strip::register_strip_copy_2d();
        self.space = space;
        self
    }

    /// The execution space strip staging dispatches on.
    pub fn space(&self) -> &Space {
        &self.space
    }

    /// Whether a strip of `elems` elements is worth a kernel launch.
    fn dispatch_strips(&self, elems: usize) -> bool {
        elems >= self.strip_dispatch_min && !matches!(self.space, Space::Serial)
    }

    /// Enable CRC32 frame integrity + bounded retry on every networked
    /// strip (see [`crate::integrity`]).
    pub fn with_integrity(mut self, cfg: IntegrityConfig) -> Self {
        self.integrity = Some(cfg);
        self
    }

    /// The active integrity configuration, if any.
    pub fn integrity(&self) -> Option<&IntegrityConfig> {
        self.integrity.as_ref()
    }

    /// Start a new epoch (model step): frame sequencing restarts so a
    /// rolled-back, replayed step regenerates identical frame headers.
    /// Collective — every rank must call it with the same `epoch`.
    pub fn begin_step(&self, epoch: u64) {
        self.epoch.set(epoch);
        self.ordinal.set(0);
    }

    /// Claim the next frame sequence for one collective exchange call
    /// (None when integrity is off).
    pub(crate) fn next_seq(&self) -> Option<FrameSeq> {
        self.integrity.as_ref()?;
        let ordinal = self.ordinal.get();
        self.ordinal.set(ordinal + 1);
        Some(FrameSeq {
            epoch: self.epoch.get(),
            ordinal,
        })
    }

    /// Send one strip, framed when integrity is on.
    pub(crate) fn send_strip(
        &self,
        comm: &Comm,
        dst: usize,
        tag: u64,
        seq: Option<FrameSeq>,
        len: usize,
        fill: impl FnOnce(&mut [f64]),
    ) {
        let _r = kokkos_rs::profiling::region("halo:pack");
        match seq {
            Some(seq) => integrity::send_framed(comm, dst, tag, seq, len, fill),
            None => comm.send_into(dst, tag, len, fill),
        }
    }

    /// Receive one strip, verifying + retrying when integrity is on.
    pub(crate) fn recv_strip(
        &self,
        comm: &Comm,
        src: usize,
        tag: u64,
        seq: Option<FrameSeq>,
        len: usize,
        unpack: impl Fn(&[f64]),
    ) -> Result<(), HaloError> {
        let _r = kokkos_rs::profiling::region("halo:unpack");
        let t0 = Instant::now();
        let out = match seq {
            Some(seq) => integrity::recv_framed(
                comm,
                self.integrity.as_ref().expect("seq implies integrity"),
                src,
                tag,
                seq,
                len,
                unpack,
            ),
            None => {
                comm.recv_into(src, tag, |buf| unpack(buf));
                Ok(())
            }
        };
        self.wait_ns
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        out
    }

    /// Padded local extents `(ny_pad, nx_pad)` a field must have.
    pub fn padded(&self) -> (usize, usize) {
        (self.ny + 2 * H, self.nx + 2 * H)
    }

    /// The underlying Cartesian topology.
    pub fn cart(&self) -> &CartComm {
        &self.cart
    }

    /// Zonal offset of the fold partner's block (equal widths enforced).
    pub fn fold_partner_x0_pub(&self) -> usize {
        self.fold_partner_x0()
    }

    fn check(&self, field: &View2<f64>) {
        let (pj, pi) = self.padded();
        assert_eq!(field.dims(), [pj, pi], "field shape != padded block");
    }

    /// Borrow persistent scratch of at least `len` elements (grow-once).
    fn scratch(cell: &RefCell<Vec<f64>>, len: usize) -> RefMut<'_, Vec<f64>> {
        let mut buf = cell.borrow_mut();
        if buf.len() < len {
            buf.resize(len, 0.0);
        }
        buf
    }

    // -- packing helpers ----------------------------------------------------
    //
    // The `pack_*`/`unpack_*` pairs are the original allocating element-wise
    // implementations, kept as the reference; the `_into`/`_from` variants
    // copy contiguous runs in place (rows are `pi` consecutive elements,
    // column strips `H` consecutive per row).

    /// Columns `[c0, c0+H)` over owned rows, row-major.
    fn pack_cols(&self, f: &View2<f64>, c0: usize) -> Vec<f64> {
        let mut buf = Vec::with_capacity(self.ny * H);
        for j in H..H + self.ny {
            for c in 0..H {
                buf.push(f.at(j, c0 + c));
            }
        }
        buf
    }

    fn pack_cols_into(&self, f: &View2<f64>, c0: usize, out: &mut [f64]) {
        assert_eq!(out.len(), self.ny * H);
        if self.dispatch_strips(out.len()) {
            strip::pack_rect2_on(&self.space, f, H, false, self.ny, c0, H, out);
            return;
        }
        let fs = f.as_slice();
        for (jj, chunk) in out.chunks_exact_mut(H).enumerate() {
            let off = f.offset([H + jj, c0]);
            chunk.copy_from_slice(&fs[off..off + H]);
        }
    }

    fn unpack_cols(&self, f: &View2<f64>, c0: usize, buf: &[f64]) {
        assert_eq!(buf.len(), self.ny * H);
        let mut it = buf.iter();
        for j in H..H + self.ny {
            for c in 0..H {
                f.set_at(j, c0 + c, *it.next().unwrap());
            }
        }
    }

    fn unpack_cols_from(&self, f: &View2<f64>, c0: usize, buf: &[f64]) {
        assert_eq!(buf.len(), self.ny * H);
        if self.dispatch_strips(buf.len()) {
            strip::unpack_rect2_on(&self.space, f, H, false, self.ny, c0, H, buf);
            return;
        }
        for (jj, chunk) in buf.chunks_exact(H).enumerate() {
            let off = f.offset([H + jj, c0]);
            // SAFETY: serial writes into a root view's backing storage; the
            // H-element run is in bounds (checked by `offset` + padding).
            unsafe {
                std::slice::from_raw_parts_mut(f.data_ptr().add(off), H).copy_from_slice(chunk);
            }
        }
    }

    /// Rows `[r0, r0+H)` over the full padded width, row-major.
    fn pack_rows(&self, f: &View2<f64>, r0: usize) -> Vec<f64> {
        let (_, pi) = self.padded();
        let mut buf = Vec::with_capacity(H * pi);
        for r in 0..H {
            for i in 0..pi {
                buf.push(f.at(r0 + r, i));
            }
        }
        buf
    }

    fn pack_rows_into(&self, f: &View2<f64>, r0: usize, out: &mut [f64]) {
        let (_, pi) = self.padded();
        assert_eq!(out.len(), H * pi);
        if self.dispatch_strips(out.len()) {
            strip::pack_rect2_on(&self.space, f, r0, false, H, 0, pi, out);
            return;
        }
        let fs = f.as_slice();
        for (r, chunk) in out.chunks_exact_mut(pi).enumerate() {
            let off = f.offset([r0 + r, 0]);
            chunk.copy_from_slice(&fs[off..off + pi]);
        }
    }

    fn unpack_rows(&self, f: &View2<f64>, r0: usize, buf: &[f64]) {
        let (_, pi) = self.padded();
        assert_eq!(buf.len(), H * pi);
        let mut it = buf.iter();
        for r in 0..H {
            for i in 0..pi {
                f.set_at(r0 + r, i, *it.next().unwrap());
            }
        }
    }

    fn unpack_rows_from(&self, f: &View2<f64>, r0: usize, buf: &[f64]) {
        let (_, pi) = self.padded();
        assert_eq!(buf.len(), H * pi);
        if self.dispatch_strips(buf.len()) {
            strip::unpack_rect2_on(&self.space, f, r0, false, H, 0, pi, buf);
            return;
        }
        for (r, chunk) in buf.chunks_exact(pi).enumerate() {
            let off = f.offset([r0 + r, 0]);
            // SAFETY: as in `unpack_cols_from` — serial, in-bounds run.
            unsafe {
                std::slice::from_raw_parts_mut(f.data_ptr().add(off), pi).copy_from_slice(chunk);
            }
        }
    }

    /// Fold pack: rows global `nyg-1-d` (d = 0..H) over full padded width.
    fn pack_fold(&self, f: &View2<f64>) -> Vec<f64> {
        let (_, pi) = self.padded();
        let mut buf = Vec::with_capacity(H * pi);
        for d in 0..H {
            let jl = H + self.ny - 1 - d; // local row of global nyg-1-d
            for i in 0..pi {
                buf.push(f.at(jl, i));
            }
        }
        buf
    }

    fn pack_fold_into(&self, f: &View2<f64>, out: &mut [f64]) {
        let (_, pi) = self.padded();
        assert_eq!(out.len(), H * pi);
        if self.dispatch_strips(out.len()) {
            strip::pack_rect2_on(&self.space, f, H + self.ny - 1, true, H, 0, pi, out);
            return;
        }
        let fs = f.as_slice();
        for (d, chunk) in out.chunks_exact_mut(pi).enumerate() {
            let off = f.offset([H + self.ny - 1 - d, 0]);
            chunk.copy_from_slice(&fs[off..off + pi]);
        }
    }

    /// Fold unpack into ghost rows `H+ny+d` with zonal mirroring. Stays
    /// on the MPE: the mirror reverses element order, so there are no
    /// contiguous runs to hand a strip kernel, and only `H` ghost rows
    /// ever take this path.
    fn unpack_fold(&self, f: &View2<f64>, buf: &[f64], kind: FoldKind, partner_x0: usize) {
        let (_, pi) = self.padded();
        assert_eq!(buf.len(), H * pi);
        let sign = kind.sign();
        for d in 0..H {
            for il in 0..pi {
                // Global (unwrapped) column of this ghost cell.
                let ig = self.x0 as i64 + il as i64 - H as i64;
                // Mirror across the seam.
                let src = self.nxg as i64 - 1 - ig;
                // Column inside the partner's padded buffer.
                let bc = src - (partner_x0 as i64 - H as i64);
                debug_assert!((0..pi as i64).contains(&bc), "fold column out of range");
                f.set_at(H + self.ny + d, il, sign * buf[d * pi + bc as usize]);
            }
        }
    }

    fn fold_partner_x0(&self) -> usize {
        // Equal widths guaranteed by the constructor assert.
        self.nxg - self.x0 - self.nx
    }

    /// The transfer plan for one exchange: peers, paths, and per-field
    /// message lengths. Computed in one place so the pooled, allocating,
    /// and split-phase paths cannot drift apart — they differ only in
    /// transport, never in protocol.
    pub(crate) fn plan(&self) -> StripPlan {
        let comm = self.cart.comm();
        let (Neighbor::Interior(west), Neighbor::Interior(east)) =
            (self.cart.neighbor(Dir::West), self.cart.neighbor(Dir::East))
        else {
            unreachable!("zonal neighbors always exist")
        };
        let (_, pi) = self.padded();
        StripPlan {
            west,
            east,
            ew_self: west == comm.rank(),
            south: match self.cart.neighbor(Dir::South) {
                Neighbor::Interior(s) => Some(s),
                _ => None,
            },
            north: match self.cart.neighbor(Dir::North) {
                Neighbor::Interior(n) => NorthPath::Interior(n),
                Neighbor::Fold(p) if p == comm.rank() => NorthPath::FoldSelf,
                Neighbor::Fold(p) => NorthPath::FoldOther(p),
                Neighbor::Closed => NorthPath::Closed,
            },
            strip: self.ny * H,
            rows: H * pi,
        }
    }

    // -- the update ---------------------------------------------------------

    /// Blocking 2-layer halo update of `field`. Allocation-free in steady
    /// state; bitwise identical to [`Halo2D::exchange_alloc`].
    ///
    /// `tag_base` namespaces the messages so several fields can be updated
    /// back to back; callers use distinct bases per field per step.
    ///
    /// # Panics
    /// If integrity is enabled and a strip is unrecoverable; use
    /// [`Halo2D::try_exchange`] to handle that as a value.
    pub fn exchange(&self, field: &View2<f64>, kind: FoldKind, tag_base: u64) {
        self.try_exchange(field, kind, tag_base)
            .unwrap_or_else(|e| panic!("halo exchange failed: {e}"));
    }

    /// Fallible exchange: surfaces an unrecoverable strip as a typed
    /// [`HaloError`] after the integrity layer's bounded retries. Without
    /// integrity enabled it cannot fail.
    pub fn try_exchange(
        &self,
        field: &View2<f64>,
        kind: FoldKind,
        tag_base: u64,
    ) -> Result<(), HaloError> {
        let _r = kokkos_rs::profiling::region("halo:exchange2d");
        let t0 = Instant::now();
        self.check(field);
        let seq = self.next_seq();
        self.exchange_ew(field, tag_base, seq)?;
        let out = self.exchange_ns(field, kind, tag_base, seq);
        self.add_inflight(t0.elapsed().as_nanos() as u64);
        out
    }

    /// Overlapped variant: posts the east/west messages, runs `interior`
    /// (which must not read or write any halo or real-halo cell), then
    /// completes the update. Bitwise identical to [`Halo2D::exchange`].
    pub fn exchange_overlap(
        &self,
        field: &View2<f64>,
        kind: FoldKind,
        tag_base: u64,
        interior: impl FnOnce(),
    ) {
        self.try_exchange_overlap(field, kind, tag_base, interior)
            .unwrap_or_else(|e| panic!("halo exchange failed: {e}"));
    }

    /// Fallible overlapped exchange; see [`Halo2D::try_exchange`].
    pub fn try_exchange_overlap(
        &self,
        field: &View2<f64>,
        kind: FoldKind,
        tag_base: u64,
        interior: impl FnOnce(),
    ) -> Result<(), HaloError> {
        // No whole-call region here: `interior` is caller compute and must
        // not be attributed to the halo phase. The send/recv strips inside
        // still carry halo:pack / halo:unpack, and `interior` gets its own
        // region so `WaitComputeSplit` sees the overlapped compute.
        let t0 = Instant::now();
        self.check(field);
        let seq = self.next_seq();
        let comm = self.cart.comm();
        let plan = self.plan();
        if plan.ew_self {
            // Single zonal block: no overlap possible; do it directly.
            self.exchange_ew(field, tag_base, seq)?;
            {
                let _c = kokkos_rs::profiling::region("halo:overlap-compute");
                interior();
            }
        } else {
            let strip = plan.strip;
            self.send_strip(comm, plan.west, tag_base + T_WEST, seq, strip, |buf| {
                self.pack_cols_into(field, H, buf);
            });
            self.send_strip(comm, plan.east, tag_base + T_EAST, seq, strip, |buf| {
                self.pack_cols_into(field, self.nx, buf);
            });
            {
                let _c = kokkos_rs::profiling::region("halo:overlap-compute");
                interior();
            }
            self.recv_strip(comm, plan.east, tag_base + T_WEST, seq, strip, |buf| {
                self.unpack_cols_from(field, H + self.nx, buf);
            })?;
            self.recv_strip(comm, plan.west, tag_base + T_EAST, seq, strip, |buf| {
                self.unpack_cols_from(field, 0, buf);
            })?;
        }
        let out = self.exchange_ns(field, kind, tag_base, seq);
        self.add_inflight(t0.elapsed().as_nanos() as u64);
        out
    }

    fn exchange_ew(
        &self,
        field: &View2<f64>,
        tag_base: u64,
        seq: Option<FrameSeq>,
    ) -> Result<(), HaloError> {
        let comm = self.cart.comm();
        let plan = self.plan();
        let strip = plan.strip;
        if plan.ew_self {
            // px == 1: periodic wrap within the block, through scratch.
            let mut wb = Self::scratch(&self.scratch_a, strip);
            let mut eb = Self::scratch(&self.scratch_b, strip);
            self.pack_cols_into(field, H, &mut wb[..strip]);
            self.pack_cols_into(field, self.nx, &mut eb[..strip]);
            self.unpack_cols_from(field, H + self.nx, &wb[..strip]);
            self.unpack_cols_from(field, 0, &eb[..strip]);
            return Ok(());
        }
        self.send_strip(comm, plan.west, tag_base + T_WEST, seq, strip, |buf| {
            self.pack_cols_into(field, H, buf);
        });
        self.send_strip(comm, plan.east, tag_base + T_EAST, seq, strip, |buf| {
            self.pack_cols_into(field, self.nx, buf);
        });
        self.recv_strip(comm, plan.east, tag_base + T_WEST, seq, strip, |buf| {
            self.unpack_cols_from(field, H + self.nx, buf);
        })?;
        self.recv_strip(comm, plan.west, tag_base + T_EAST, seq, strip, |buf| {
            self.unpack_cols_from(field, 0, buf);
        })
    }

    fn exchange_ns(
        &self,
        field: &View2<f64>,
        kind: FoldKind,
        tag_base: u64,
        seq: Option<FrameSeq>,
    ) -> Result<(), HaloError> {
        let comm = self.cart.comm();
        let plan = self.plan();
        let rows = plan.rows;
        // Send southward (fills south neighbor's north ghost).
        if let Some(s) = plan.south {
            self.send_strip(comm, s, tag_base + T_SOUTH, seq, rows, |buf| {
                self.pack_rows_into(field, H, buf);
            });
        }
        // Send northward / foldward.
        match plan.north {
            NorthPath::Interior(n) => {
                self.send_strip(comm, n, tag_base + T_NORTH, seq, rows, |buf| {
                    self.pack_rows_into(field, self.ny, buf);
                });
            }
            NorthPath::FoldOther(p) => {
                self.send_strip(comm, p, tag_base + T_FOLD, seq, rows, |buf| {
                    self.pack_fold_into(field, buf);
                });
            }
            NorthPath::FoldSelf | NorthPath::Closed => {}
        }
        // Receive from north (their southward message fills my north ghost).
        match plan.north {
            NorthPath::Interior(n) => {
                self.recv_strip(comm, n, tag_base + T_SOUTH, seq, rows, |buf| {
                    self.unpack_rows_from(field, H + self.ny, buf);
                })?;
            }
            NorthPath::FoldSelf => {
                let mut fb = Self::scratch(&self.scratch_a, rows);
                self.pack_fold_into(field, &mut fb[..rows]);
                self.unpack_fold(field, &fb[..rows], kind, self.fold_partner_x0());
            }
            NorthPath::FoldOther(p) => {
                self.recv_strip(comm, p, tag_base + T_FOLD, seq, rows, |buf| {
                    self.unpack_fold(field, buf, kind, self.fold_partner_x0());
                })?;
            }
            NorthPath::Closed => {}
        }
        // Receive from south (their northward message fills my south ghost).
        if let Some(s) = plan.south {
            self.recv_strip(comm, s, tag_base + T_NORTH, seq, rows, |buf| {
                self.unpack_rows_from(field, 0, buf);
            })?;
        }
        Ok(())
    }

    // -- batched + split-phase exchanges ------------------------------------

    /// Blocking batched update: all `fields` share one message per
    /// direction (buffers concatenated in field order), cutting the
    /// message count by the batch factor. Bitwise identical to updating
    /// each field separately with [`Halo2D::try_exchange`].
    pub fn try_exchange_many(
        &self,
        fields: &[(&View2<f64>, FoldKind)],
        tag_base: u64,
    ) -> Result<(), HaloError> {
        let _r = kokkos_rs::profiling::region("halo:exchange2d");
        self.begin_exchange_many(fields, tag_base)?.finish()
    }

    /// Split-phase batched update: posts the east/west messages and
    /// returns a [`PendingExchange2`] that the caller drives with
    /// [`PendingExchange2::poll`] between compute launches and
    /// [`PendingExchange2::finish`] once the ghosts are needed. The field
    /// contents on completion are bitwise identical to the blocking
    /// [`Halo2D::try_exchange_many`] (which is begin + finish).
    ///
    /// At most one pending exchange may be outstanding per `tag_base`; the
    /// caller must finish it within the same epoch it was begun.
    pub fn begin_exchange_many(
        &self,
        fields: &[(&View2<f64>, FoldKind)],
        tag_base: u64,
    ) -> Result<PendingExchange2<'_>, HaloError> {
        for (f, _) in fields {
            self.check(f);
        }
        // An empty batch claims no frame ordinal, matching a zero-length
        // run of per-field exchanges.
        let seq = if fields.is_empty() {
            None
        } else {
            self.next_seq()
        };
        let mut p = PendingExchange2 {
            h: self,
            fields: fields.iter().map(|(f, k)| ((*f).clone(), *k)).collect(),
            tag_base,
            seq,
            plan: self.plan(),
            stage: PendingStage::EwPosted,
            t0: Instant::now(),
        };
        p.post_ew()?;
        Ok(p)
    }

    // -- allocating reference implementation --------------------------------

    /// The original implementation: element-wise pack/unpack into freshly
    /// allocated message vectors. Kept as the bitwise-identity reference
    /// for the pooled path and as the baseline in the benches.
    pub fn exchange_alloc(&self, field: &View2<f64>, kind: FoldKind, tag_base: u64) {
        self.check(field);
        self.exchange_ew_alloc(field, tag_base);
        self.exchange_ns_alloc(field, kind, tag_base);
    }

    fn exchange_ew_alloc(&self, field: &View2<f64>, tag_base: u64) {
        let comm = self.cart.comm();
        let plan = self.plan();
        if plan.ew_self {
            // px == 1: periodic wrap within the block.
            let west_real = self.pack_cols(field, H);
            let east_real = self.pack_cols(field, self.nx);
            self.unpack_cols(field, H + self.nx, &west_real);
            self.unpack_cols(field, 0, &east_real);
            return;
        }
        comm.isend(plan.west, tag_base + T_WEST, self.pack_cols(field, H));
        comm.isend(plan.east, tag_base + T_EAST, self.pack_cols(field, self.nx));
        let from_e = comm.recv::<f64>(plan.east, tag_base + T_WEST);
        self.unpack_cols(field, H + self.nx, &from_e);
        let from_w = comm.recv::<f64>(plan.west, tag_base + T_EAST);
        self.unpack_cols(field, 0, &from_w);
    }

    fn exchange_ns_alloc(&self, field: &View2<f64>, kind: FoldKind, tag_base: u64) {
        let comm = self.cart.comm();
        let plan = self.plan();
        // Send southward (fills south neighbor's north ghost).
        if let Some(s) = plan.south {
            comm.isend(s, tag_base + T_SOUTH, self.pack_rows(field, H));
        }
        // Send northward / foldward.
        match plan.north {
            NorthPath::Interior(n) => {
                comm.isend(n, tag_base + T_NORTH, self.pack_rows(field, self.ny));
            }
            NorthPath::FoldOther(p) => {
                comm.isend(p, tag_base + T_FOLD, self.pack_fold(field));
            }
            NorthPath::FoldSelf | NorthPath::Closed => {}
        }
        // Receive from north (their southward message fills my north ghost).
        match plan.north {
            NorthPath::Interior(n) => {
                let buf = comm.recv::<f64>(n, tag_base + T_SOUTH);
                self.unpack_rows(field, H + self.ny, &buf);
            }
            NorthPath::FoldSelf => {
                let buf = self.pack_fold(field);
                self.unpack_fold(field, &buf, kind, self.fold_partner_x0());
            }
            NorthPath::FoldOther(p) => {
                let buf = comm.recv::<f64>(p, tag_base + T_FOLD);
                self.unpack_fold(field, &buf, kind, self.fold_partner_x0());
            }
            NorthPath::Closed => {}
        }
        // Receive from south (their northward message fills my south ghost).
        if let Some(s) = plan.south {
            let buf = comm.recv::<f64>(s, tag_base + T_NORTH);
            self.unpack_rows(field, 0, &buf);
        }
    }
}

/// Progress state of a split-phase exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PendingStage {
    /// East/west strips posted; waiting on both zonal receives.
    EwPosted,
    /// North/south strips posted; waiting on the meridional receives.
    NsPosted,
    /// All ghosts filled.
    Done,
}

/// A batched 2-D halo exchange in flight (see
/// [`Halo2D::begin_exchange_many`]). Holds clones of the field views —
/// `View` is a shared handle, so the caller keeps using its own handles —
/// and borrows the context so frame sequencing stays collective.
pub struct PendingExchange2<'a> {
    h: &'a Halo2D,
    fields: Vec<(View2<f64>, FoldKind)>,
    tag_base: u64,
    seq: Option<FrameSeq>,
    plan: StripPlan,
    stage: PendingStage,
    t0: Instant,
}

impl PendingExchange2<'_> {
    /// Post the east/west leg (or run it locally when px == 1, in which
    /// case the north/south leg is posted immediately too).
    fn post_ew(&mut self) -> Result<(), HaloError> {
        if self.fields.is_empty() {
            self.stage = PendingStage::Done;
            return Ok(());
        }
        let h = self.h;
        let comm = h.cart.comm();
        let (nf, strip) = (self.fields.len(), self.plan.strip);
        if self.plan.ew_self {
            let mut wb = Halo2D::scratch(&h.scratch_a, nf * strip);
            let mut eb = Halo2D::scratch(&h.scratch_b, nf * strip);
            for (n, (f, _)) in self.fields.iter().enumerate() {
                h.pack_cols_into(f, H, &mut wb[n * strip..(n + 1) * strip]);
                h.pack_cols_into(f, h.nx, &mut eb[n * strip..(n + 1) * strip]);
            }
            for (n, (f, _)) in self.fields.iter().enumerate() {
                h.unpack_cols_from(f, H + h.nx, &wb[n * strip..(n + 1) * strip]);
                h.unpack_cols_from(f, 0, &eb[n * strip..(n + 1) * strip]);
            }
            drop((wb, eb));
            self.post_ns();
            return Ok(());
        }
        let fields = &self.fields;
        h.send_strip(
            comm,
            self.plan.west,
            self.tag_base + T_WEST,
            self.seq,
            nf * strip,
            |buf| {
                for (n, (f, _)) in fields.iter().enumerate() {
                    h.pack_cols_into(f, H, &mut buf[n * strip..(n + 1) * strip]);
                }
            },
        );
        h.send_strip(
            comm,
            self.plan.east,
            self.tag_base + T_EAST,
            self.seq,
            nf * strip,
            |buf| {
                for (n, (f, _)) in fields.iter().enumerate() {
                    h.pack_cols_into(f, h.nx, &mut buf[n * strip..(n + 1) * strip]);
                }
            },
        );
        self.stage = PendingStage::EwPosted;
        Ok(())
    }

    /// Post the north/south leg. Runs after the zonal ghosts are fresh —
    /// the row strips span the full padded width, which is how corners
    /// propagate without diagonal messages. Self-folds complete here.
    fn post_ns(&mut self) {
        let h = self.h;
        let comm = h.cart.comm();
        let (nf, rows) = (self.fields.len(), self.plan.rows);
        let fields = &self.fields;
        if let Some(s) = self.plan.south {
            h.send_strip(
                comm,
                s,
                self.tag_base + T_SOUTH,
                self.seq,
                nf * rows,
                |buf| {
                    for (n, (f, _)) in fields.iter().enumerate() {
                        h.pack_rows_into(f, H, &mut buf[n * rows..(n + 1) * rows]);
                    }
                },
            );
        }
        match self.plan.north {
            NorthPath::Interior(nb) => {
                h.send_strip(
                    comm,
                    nb,
                    self.tag_base + T_NORTH,
                    self.seq,
                    nf * rows,
                    |buf| {
                        for (n, (f, _)) in fields.iter().enumerate() {
                            h.pack_rows_into(f, h.ny, &mut buf[n * rows..(n + 1) * rows]);
                        }
                    },
                );
            }
            NorthPath::FoldOther(p) => {
                h.send_strip(
                    comm,
                    p,
                    self.tag_base + T_FOLD,
                    self.seq,
                    nf * rows,
                    |buf| {
                        for (n, (f, _)) in fields.iter().enumerate() {
                            h.pack_fold_into(f, &mut buf[n * rows..(n + 1) * rows]);
                        }
                    },
                );
            }
            NorthPath::FoldSelf => {
                let mut fb = Halo2D::scratch(&h.scratch_a, nf * rows);
                for (n, (f, _)) in fields.iter().enumerate() {
                    h.pack_fold_into(f, &mut fb[n * rows..(n + 1) * rows]);
                }
                for (n, (f, kind)) in fields.iter().enumerate() {
                    h.unpack_fold(f, &fb[n * rows..(n + 1) * rows], *kind, h.fold_partner_x0());
                }
            }
            NorthPath::Closed => {}
        }
        // With no meridional receives outstanding the exchange is already
        // complete (single-rank column with a self-fold or closed wall).
        self.stage = if self.plan.south.is_none()
            && matches!(self.plan.north, NorthPath::FoldSelf | NorthPath::Closed)
        {
            h.add_inflight(self.t0.elapsed().as_nanos() as u64);
            PendingStage::Done
        } else {
            PendingStage::NsPosted
        };
    }

    /// Have all receives the current stage is waiting on arrived? Probes
    /// without consuming, so `poll` only commits to receives it can
    /// satisfy immediately. Allocation-free (polls run in hot loops).
    fn stage_ready(&self, comm: &Comm) -> bool {
        match self.stage {
            PendingStage::EwPosted => {
                comm.has_message(self.plan.east, self.tag_base + T_WEST)
                    && comm.has_message(self.plan.west, self.tag_base + T_EAST)
            }
            PendingStage::NsPosted => {
                let north_ok = match self.plan.north {
                    NorthPath::Interior(nb) => comm.has_message(nb, self.tag_base + T_SOUTH),
                    NorthPath::FoldOther(p) => comm.has_message(p, self.tag_base + T_FOLD),
                    NorthPath::FoldSelf | NorthPath::Closed => true,
                };
                let south_ok = self
                    .plan
                    .south
                    .is_none_or(|s| comm.has_message(s, self.tag_base + T_NORTH));
                north_ok && south_ok
            }
            PendingStage::Done => true,
        }
    }

    /// Is any strip the current stage waits on owed by a dead rank with
    /// nothing queued? Queued pre-death strips still count as arriving
    /// (drain-first), so only a truly unfillable wait reports death.
    fn stage_dead_peer(&self, comm: &Comm) -> Option<(usize, u64)> {
        let mut owed: [Option<(usize, u64)>; 2] = [None, None];
        match self.stage {
            PendingStage::EwPosted => {
                owed[0] = Some((self.plan.east, self.tag_base + T_WEST));
                owed[1] = Some((self.plan.west, self.tag_base + T_EAST));
            }
            PendingStage::NsPosted => {
                owed[0] = match self.plan.north {
                    NorthPath::Interior(nb) => Some((nb, self.tag_base + T_SOUTH)),
                    NorthPath::FoldOther(p) => Some((p, self.tag_base + T_FOLD)),
                    NorthPath::FoldSelf | NorthPath::Closed => None,
                };
                owed[1] = self.plan.south.map(|s| (s, self.tag_base + T_NORTH));
            }
            PendingStage::Done => {}
        }
        owed.into_iter()
            .flatten()
            .find(|&(src, tag)| !comm.is_alive(src) && !comm.has_message(src, tag))
    }

    fn advance(&mut self, blocking: bool) -> Result<bool, HaloError> {
        let h = self.h;
        let comm = h.cart.comm();
        loop {
            if self.stage == PendingStage::Done {
                return Ok(true);
            }
            if !blocking && !self.stage_ready(comm) {
                // A dead neighbor can never make the stage ready: surface
                // the typed error instead of letting the caller's drain
                // loop spin on `Ok(false)` forever.
                if let Some((src, tag)) = self.stage_dead_peer(comm) {
                    return Err(HaloError::PeerDead { src, tag });
                }
                return Ok(false);
            }
            match self.stage {
                PendingStage::EwPosted => {
                    let (nf, strip) = (self.fields.len(), self.plan.strip);
                    let fields = &self.fields;
                    h.recv_strip(
                        comm,
                        self.plan.east,
                        self.tag_base + T_WEST,
                        self.seq,
                        nf * strip,
                        |buf| {
                            for (n, (f, _)) in fields.iter().enumerate() {
                                h.unpack_cols_from(f, H + h.nx, &buf[n * strip..(n + 1) * strip]);
                            }
                        },
                    )?;
                    h.recv_strip(
                        comm,
                        self.plan.west,
                        self.tag_base + T_EAST,
                        self.seq,
                        nf * strip,
                        |buf| {
                            for (n, (f, _)) in fields.iter().enumerate() {
                                h.unpack_cols_from(f, 0, &buf[n * strip..(n + 1) * strip]);
                            }
                        },
                    )?;
                    self.post_ns();
                }
                PendingStage::NsPosted => {
                    let (nf, rows) = (self.fields.len(), self.plan.rows);
                    let fields = &self.fields;
                    match self.plan.north {
                        NorthPath::Interior(nb) => {
                            h.recv_strip(
                                comm,
                                nb,
                                self.tag_base + T_SOUTH,
                                self.seq,
                                nf * rows,
                                |buf| {
                                    for (n, (f, _)) in fields.iter().enumerate() {
                                        h.unpack_rows_from(
                                            f,
                                            H + h.ny,
                                            &buf[n * rows..(n + 1) * rows],
                                        );
                                    }
                                },
                            )?;
                        }
                        NorthPath::FoldOther(p) => {
                            h.recv_strip(
                                comm,
                                p,
                                self.tag_base + T_FOLD,
                                self.seq,
                                nf * rows,
                                |buf| {
                                    for (n, (f, kind)) in fields.iter().enumerate() {
                                        h.unpack_fold(
                                            f,
                                            &buf[n * rows..(n + 1) * rows],
                                            *kind,
                                            h.fold_partner_x0(),
                                        );
                                    }
                                },
                            )?;
                        }
                        NorthPath::FoldSelf | NorthPath::Closed => {}
                    }
                    if let Some(s) = self.plan.south {
                        h.recv_strip(
                            comm,
                            s,
                            self.tag_base + T_NORTH,
                            self.seq,
                            nf * rows,
                            |buf| {
                                for (n, (f, _)) in fields.iter().enumerate() {
                                    h.unpack_rows_from(f, 0, &buf[n * rows..(n + 1) * rows]);
                                }
                            },
                        )?;
                    }
                    self.stage = PendingStage::Done;
                    h.add_inflight(self.t0.elapsed().as_nanos() as u64);
                }
                PendingStage::Done => {}
            }
        }
    }

    /// Non-blocking progress: consume whatever strips have arrived and
    /// advance the protocol. Returns `Ok(true)` once the exchange is
    /// complete. Never waits — if the next strip has not arrived, it
    /// returns `Ok(false)` immediately.
    pub fn poll(&mut self) -> Result<bool, HaloError> {
        self.advance(false)
    }

    /// Block until the exchange completes.
    pub fn finish(mut self) -> Result<(), HaloError> {
        self.advance(true).map(|_| ())
    }

    /// True once every ghost cell is filled.
    pub fn is_done(&self) -> bool {
        self.stage == PendingStage::Done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kokkos_rs::View;
    use mpi_sim::World;

    /// Global reference field, defined on owned cells.
    fn g(j: usize, i: usize) -> f64 {
        (j * 10_000 + i) as f64 + 0.25
    }

    /// Fill a rank's owned cells from the global function.
    fn fill_owned(h: &Halo2D, f: &View2<f64>) {
        for j in 0..h.ny {
            for i in 0..h.nx {
                f.set_at(H + j, H + i, g(h.y0 + j, h.x0 + i));
            }
        }
    }

    /// Expected value of any padded cell after a full exchange (None =
    /// unspecified: closed southern ghost).
    fn expected(h: &Halo2D, jl: usize, il: usize, kind: FoldKind) -> Option<f64> {
        let nxg = h.nxg as i64;
        let nyg = h.nyg as i64;
        let jg = h.y0 as i64 + jl as i64 - H as i64;
        let ig = h.x0 as i64 + il as i64 - H as i64;
        let iw = ig.rem_euclid(nxg) as usize;
        if jg < 0 {
            return None; // closed southern wall
        }
        if jg < nyg {
            return Some(g(jg as usize, iw));
        }
        // North fold: ghost row nyg+d mirrors row nyg-1-d, i -> nxg-1-i.
        let d = jg - nyg;
        if d >= H as i64 {
            return None;
        }
        let src_j = (nyg - 1 - d) as usize;
        let src_i = (nxg - 1 - ig).rem_euclid(nxg) as usize;
        Some(kind.sign() * g(src_j, src_i))
    }

    fn check_all(h: &Halo2D, f: &View2<f64>, kind: FoldKind) {
        let (pj, pi) = h.padded();
        for jl in 0..pj {
            for il in 0..pi {
                if let Some(want) = expected(h, jl, il, kind) {
                    let got = f.at(jl, il);
                    assert_eq!(
                        got, want,
                        "rank block ({},{}) cell (jl={jl}, il={il}) got {got} want {want}",
                        h.x0, h.y0
                    );
                }
            }
        }
    }

    fn run_case(nranks: usize, px: usize, py: usize, nxg: usize, nyg: usize, kind: FoldKind) {
        World::run(nranks, |comm| {
            let cart = CartComm::new(comm.clone(), px, py, true);
            let h = Halo2D::new(&cart, nxg, nyg);
            let (pj, pi) = h.padded();
            let f: View2<f64> = View::host("f", [pj, pi]);
            f.fill(-1e30); // poison ghosts
            fill_owned(&h, &f);
            h.exchange(&f, kind, 100);
            check_all(&h, &f, kind);
        });
    }

    #[test]
    fn single_rank_periodic_and_fold() {
        run_case(1, 1, 1, 12, 8, FoldKind::Scalar);
    }

    #[test]
    fn single_rank_vector_fold_flips_sign() {
        run_case(1, 1, 1, 12, 8, FoldKind::Vector);
    }

    #[test]
    fn four_zonal_ranks() {
        run_case(4, 4, 1, 16, 6, FoldKind::Scalar);
    }

    #[test]
    fn two_by_two() {
        run_case(4, 2, 2, 12, 10, FoldKind::Scalar);
    }

    #[test]
    fn four_by_three_vector() {
        run_case(12, 4, 3, 24, 12, FoldKind::Vector);
    }

    #[test]
    fn uneven_rows_ok_without_fold_constraint_violation() {
        // ny not divisible by py is fine; only nx % px matters for the fold.
        run_case(6, 2, 3, 8, 11, FoldKind::Scalar);
    }

    #[test]
    fn cpe_dispatched_strips_match_serial_bitwise() {
        // Force every strip through the execution-space path (threshold 0)
        // and require bitwise identity with the serial helpers, fold and
        // sign-flip included.
        for space in [
            Space::threads(),
            Space::sw_athread_with(sunway_sim::CgConfig::test_small()),
        ] {
            for kind in [FoldKind::Scalar, FoldKind::Vector] {
                World::run(4, |comm| {
                    let cart = CartComm::new(comm.clone(), 2, 2, true);
                    let serial = Halo2D::new(&cart, 12, 10);
                    let mut cpe = Halo2D::new(&cart, 12, 10).with_space(space.clone());
                    cpe.strip_dispatch_min = 0;
                    let (pj, pi) = serial.padded();
                    let a: View2<f64> = View::host("a", [pj, pi]);
                    let b: View2<f64> = View::host("b", [pj, pi]);
                    a.fill(-1e30);
                    b.fill(-1e30);
                    fill_owned(&serial, &a);
                    fill_owned(&cpe, &b);
                    serial.exchange(&a, kind, 0);
                    cpe.exchange(&b, kind, 40);
                    check_all(&cpe, &b, kind);
                    assert_eq!(
                        a.to_vec(),
                        b.to_vec(),
                        "serial vs {} strips, {kind:?}",
                        space.name()
                    );
                });
            }
        }
    }

    #[test]
    fn pooled_matches_allocating_reference() {
        for kind in [FoldKind::Scalar, FoldKind::Vector] {
            World::run(4, |comm| {
                let cart = CartComm::new(comm.clone(), 2, 2, true);
                let h = Halo2D::new(&cart, 12, 10);
                let (pj, pi) = h.padded();
                let a: View2<f64> = View::host("a", [pj, pi]);
                let b: View2<f64> = View::host("b", [pj, pi]);
                a.fill(0.0);
                b.fill(0.0);
                fill_owned(&h, &a);
                fill_owned(&h, &b);
                h.exchange(&a, kind, 0);
                h.exchange_alloc(&b, kind, 40);
                assert_eq!(a.to_vec(), b.to_vec(), "pooled vs allocating, {kind:?}");
            });
        }
    }

    #[test]
    fn steady_state_exchanges_do_not_allocate() {
        let allocs = |iters: u64| {
            let (_, t) = World::run_traced(4, |comm| {
                let cart = CartComm::new(comm.clone(), 2, 2, true);
                let h = Halo2D::new(&cart, 12, 10);
                let (pj, pi) = h.padded();
                let f: View2<f64> = View::host("f", [pj, pi]);
                f.fill(0.0);
                fill_owned(&h, &f);
                for it in 0..iters {
                    h.exchange(&f, FoldKind::Scalar, it * 100);
                }
            });
            t
        };
        let warm = allocs(3);
        let long = allocs(20);
        assert_eq!(
            warm.pool_allocations, long.pool_allocations,
            "steady-state exchanges must reuse pooled buffers"
        );
    }

    #[test]
    fn overlap_matches_blocking() {
        World::run(4, |comm| {
            let cart = CartComm::new(comm.clone(), 2, 2, true);
            let h = Halo2D::new(&cart, 12, 10);
            let (pj, pi) = h.padded();
            let a: View2<f64> = View::host("a", [pj, pi]);
            let b: View2<f64> = View::host("b", [pj, pi]);
            a.fill(0.0);
            b.fill(0.0);
            fill_owned(&h, &a);
            fill_owned(&h, &b);
            h.exchange(&a, FoldKind::Scalar, 200);
            let mut interior_ran = false;
            h.exchange_overlap(&b, FoldKind::Scalar, 300, || {
                interior_ran = true;
            });
            assert!(interior_ran);
            assert_eq!(a.to_vec(), b.to_vec(), "overlap must be bitwise equal");
        });
    }

    #[test]
    fn split_phase_batched_matches_blocking_per_field() {
        for kind in [FoldKind::Scalar, FoldKind::Vector] {
            World::run(4, |comm| {
                let cart = CartComm::new(comm.clone(), 2, 2, true);
                let h = Halo2D::new(&cart, 12, 10);
                let (pj, pi) = h.padded();
                let mk = |name: &str, salt: f64| {
                    let f: View2<f64> = View::host(name, [pj, pi]);
                    f.fill(0.0);
                    fill_owned(&h, &f);
                    for j in 0..h.ny {
                        for i in 0..h.nx {
                            f.set_at(H + j, H + i, f.at(H + j, H + i) + salt);
                        }
                    }
                    f
                };
                let (a1, a2) = (mk("a1", 0.5), mk("a2", 7.0));
                let (b1, b2) = (mk("b1", 0.5), mk("b2", 7.0));
                h.exchange(&a1, kind, 0);
                h.exchange(&a2, kind, 10);
                let mut p = h
                    .begin_exchange_many(&[(&b1, kind), (&b2, kind)], 40)
                    .unwrap();
                // Poll a few times (may or may not complete), then finish.
                for _ in 0..3 {
                    let _ = p.poll().unwrap();
                }
                p.finish().unwrap();
                assert_eq!(a1.to_vec(), b1.to_vec(), "{kind:?} field 1");
                assert_eq!(a2.to_vec(), b2.to_vec(), "{kind:?} field 2");
            });
        }
    }

    #[test]
    fn split_phase_single_rank_self_paths() {
        World::run(1, |comm| {
            let cart = CartComm::new(comm.clone(), 1, 1, true);
            let h = Halo2D::new(&cart, 12, 8);
            let (pj, pi) = h.padded();
            let a: View2<f64> = View::host("a", [pj, pi]);
            let b: View2<f64> = View::host("b", [pj, pi]);
            a.fill(0.0);
            b.fill(0.0);
            fill_owned(&h, &a);
            fill_owned(&h, &b);
            h.exchange(&a, FoldKind::Vector, 0);
            let p = h
                .begin_exchange_many(&[(&b, FoldKind::Vector)], 50)
                .unwrap();
            assert!(p.is_done(), "self paths complete at begin");
            p.finish().unwrap();
            assert_eq!(a.to_vec(), b.to_vec());
        });
    }

    #[test]
    fn south_ghost_untouched() {
        World::run(2, |comm| {
            let cart = CartComm::new(comm.clone(), 2, 1, true);
            let h = Halo2D::new(&cart, 8, 6);
            let (pj, pi) = h.padded();
            let f: View2<f64> = View::host("f", [pj, pi]);
            f.fill(7.5);
            fill_owned(&h, &f);
            h.exchange(&f, FoldKind::Scalar, 0);
            // Closed wall: the poison value survives in south ghost rows.
            for r in 0..H {
                for i in 0..pi {
                    assert_eq!(f.at(r, i), 7.5);
                }
            }
        });
    }

    #[test]
    #[should_panic(expected = "north-fold exchange requires equal block widths")]
    fn fold_requires_divisible_width() {
        World::run(3, |comm| {
            let cart = CartComm::new(comm.clone(), 3, 1, true);
            let _ = Halo2D::new(&cart, 10, 6); // 10 % 3 != 0
        });
    }

    #[test]
    fn repeated_exchanges_are_idempotent() {
        World::run(4, |comm| {
            let cart = CartComm::new(comm.clone(), 2, 2, true);
            let h = Halo2D::new(&cart, 12, 10);
            let (pj, pi) = h.padded();
            let f: View2<f64> = View::host("f", [pj, pi]);
            f.fill(0.0);
            fill_owned(&h, &f);
            h.exchange(&f, FoldKind::Scalar, 0);
            let first = f.to_vec();
            h.exchange(&f, FoldKind::Scalar, 5);
            assert_eq!(f.to_vec(), first, "second exchange must be a fixpoint");
        });
    }
}
