//! 3-D halo update — "extending 2D halo updates point-wise in the
//! vertical direction" (§V-D), in two interchangeable implementations:
//!
//! * [`Strategy3D::HorizontalMajor`] — the pre-optimization baseline: halo
//!   strips are gathered level-by-level straight out of the
//!   horizontal-major array. For east/west strips this walks memory with
//!   stride `nx_pad` (each element its own cache line / DMA transaction —
//!   the "substantial data access discontinuity" the paper measured).
//! * [`Strategy3D::Transpose`] — the paper's optimized pipeline (Fig. 5):
//!   the real-halo strip is transposed to vertical-major order during the
//!   pack, the exchange moves vertical-major buffers, and the unpack
//!   transposes ghost strips back. Same bytes, contiguous access.
//!
//! Both strategies produce **bitwise identical** fields; the benches and
//! the simulated-Sunway DMA counters quantify the difference. All levels
//! travel in one message per direction per field, and
//! [`Halo3D::exchange_many`] batches several fields into one message per
//! direction total (the "redundant packing/unpacking" elimination).
//!
//! ## Steady-state zero allocation
//!
//! The default [`Halo3D::exchange`] path is **allocation-free after
//! spin-up**: message payloads round-trip through the per-rank buffer
//! pools of `mpi-sim` ([`mpi_sim::Comm::send_into`] /
//! [`mpi_sim::Comm::recv_into`] pack and unpack directly in pooled
//! storage), self-sends and self-folds go through persistent scratch
//! owned by the `Halo3D`, and pack/unpack run as contiguous-run memcpy
//! kernels dispatched over a kokkos execution space ([`crate::strip`]).
//! The original freshly-allocating serial implementation is kept as
//! [`Halo3D::exchange_alloc`] — the bitwise-identity reference used by the
//! property tests and the pooled-vs-allocating benches.

use std::cell::{RefCell, RefMut};

use kokkos_rs::{Space, View3};
use mpi_sim::{Dir, Neighbor};

use crate::halo2d::{FoldKind, Halo2D, NorthPath, PendingStage, StripPlan};
use crate::integrity::{FrameSeq, HaloError, IntegrityConfig};
use crate::strip;
use crate::HALO as H;
use std::time::Instant;

const T_WEST: u64 = 10;
const T_EAST: u64 = 11;
const T_SOUTH: u64 = 12;
const T_NORTH: u64 = 13;
const T_FOLD: u64 = 14;

/// Buffer ordering strategy for the 3-D exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy3D {
    /// Level-by-level strided gather (baseline).
    HorizontalMajor,
    /// Transpose real/ghost halos to vertical-major around the exchange
    /// (paper Fig. 5).
    Transpose,
}

/// Per-rank 3-D halo context.
#[derive(Clone)]
pub struct Halo3D {
    pub h2: Halo2D,
    pub nz: usize,
    pub strategy: Strategy3D,
    /// Execution space for the pack/unpack kernels.
    space: Space,
    /// Persistent scratch for paths that never touch the network
    /// (self-sends on a single zonal block, self-folds). Two cells because
    /// the east/west self-exchange needs both strips live at once. Sized on
    /// first use, reused forever after — `RefCell` keeps `Halo3D: Clone`.
    scratch_a: RefCell<Vec<f64>>,
    scratch_b: RefCell<Vec<f64>>,
}

impl Halo3D {
    pub fn new(h2: Halo2D, nz: usize, strategy: Strategy3D) -> Self {
        assert!(nz >= 1);
        // Idempotent; makes the pack/unpack kernel launchable on SwAthread.
        strip::register_strip_copy();
        Self {
            h2,
            nz,
            strategy,
            space: Space::serial(),
            scratch_a: RefCell::new(Vec::new()),
            scratch_b: RefCell::new(Vec::new()),
        }
    }

    /// Dispatch pack/unpack kernels on `space` (default: serial).
    pub fn with_space(mut self, space: Space) -> Self {
        self.space = space;
        self
    }

    /// Enable CRC32 frame integrity + bounded retry on every networked
    /// strip (see [`crate::integrity`]). Shared with the inner [`Halo2D`]:
    /// both use one epoch/ordinal stream, so mixing 2-D and 3-D exchanges
    /// through the same context keeps frame sequencing collective.
    pub fn with_integrity(mut self, cfg: IntegrityConfig) -> Self {
        self.h2 = self.h2.clone().with_integrity(cfg);
        self
    }

    /// The active integrity configuration, if any.
    pub fn integrity(&self) -> Option<&IntegrityConfig> {
        self.h2.integrity()
    }

    /// Start a new epoch (model step); see [`Halo2D::begin_step`].
    pub fn begin_step(&self, epoch: u64) {
        self.h2.begin_step(epoch);
    }

    /// Cumulative halo receive-wait nanoseconds; see [`Halo2D::halo_wait_ns`].
    pub fn halo_wait_ns(&self) -> u64 {
        self.h2.halo_wait_ns()
    }

    /// Cumulative exchange-span nanoseconds; see [`Halo2D::halo_inflight_ns`].
    pub fn halo_inflight_ns(&self) -> u64 {
        self.h2.halo_inflight_ns()
    }

    /// The execution space pack/unpack kernels run on.
    pub fn space(&self) -> &Space {
        &self.space
    }

    /// Required field shape `(nz, ny_pad, nx_pad)`.
    pub fn shape(&self) -> [usize; 3] {
        let (pj, pi) = self.h2.padded();
        [self.nz, pj, pi]
    }

    fn check(&self, f: &View3<f64>) {
        assert_eq!(f.dims(), self.shape(), "3D field shape mismatch");
    }

    /// Borrow persistent scratch of at least `len` elements (grow-once).
    fn scratch(cell: &RefCell<Vec<f64>>, len: usize) -> RefMut<'_, Vec<f64>> {
        let mut buf = cell.borrow_mut();
        if buf.len() < len {
            buf.resize(len, 0.0);
        }
        buf
    }

    /// East/west strip payload length (per field).
    fn ew_len(&self) -> usize {
        self.nz * self.h2.ny * H
    }

    /// North/south/fold payload length (per field).
    fn ns_len(&self) -> usize {
        let (_, pi) = self.h2.padded();
        self.nz * H * pi
    }

    // ---- strip pack/unpack with strategy-dependent ordering ---------------
    //
    // A strip is a set of `nj` rows × `ni` columns over all `nz` levels.
    // HorizontalMajor order: (k, j, i). Transpose order: (j, i, k).
    //
    // `pack_strip`/`unpack_strip` are the original allocating element-wise
    // implementations, kept as the bitwise reference; the `_into`/`_from`
    // variants copy contiguous runs through the execution space.

    fn pack_strip_into(
        &self,
        f: &View3<f64>,
        j0: usize,
        nj: usize,
        i0: usize,
        ni: usize,
        out: &mut [f64],
    ) {
        strip::pack_strip_on(&self.space, self.strategy, f, j0, nj, i0, ni, out);
    }

    fn unpack_strip_from(
        &self,
        f: &View3<f64>,
        j0: usize,
        nj: usize,
        i0: usize,
        ni: usize,
        buf: &[f64],
    ) {
        strip::unpack_strip_on(&self.space, self.strategy, f, j0, nj, i0, ni, buf);
    }

    fn pack_strip(&self, f: &View3<f64>, j0: usize, nj: usize, i0: usize, ni: usize) -> Vec<f64> {
        let mut buf = Vec::with_capacity(self.nz * nj * ni);
        match self.strategy {
            Strategy3D::HorizontalMajor => {
                for k in 0..self.nz {
                    for j in j0..j0 + nj {
                        for i in i0..i0 + ni {
                            buf.push(f.at(k, j, i));
                        }
                    }
                }
            }
            Strategy3D::Transpose => {
                for j in j0..j0 + nj {
                    for i in i0..i0 + ni {
                        for k in 0..self.nz {
                            buf.push(f.at(k, j, i));
                        }
                    }
                }
            }
        }
        buf
    }

    fn unpack_strip(
        &self,
        f: &View3<f64>,
        j0: usize,
        nj: usize,
        i0: usize,
        ni: usize,
        buf: &[f64],
    ) {
        assert_eq!(buf.len(), self.nz * nj * ni);
        match self.strategy {
            Strategy3D::HorizontalMajor => {
                let mut it = buf.iter();
                for k in 0..self.nz {
                    for j in j0..j0 + nj {
                        for i in i0..i0 + ni {
                            f.set_at(k, j, i, *it.next().unwrap());
                        }
                    }
                }
            }
            Strategy3D::Transpose => {
                let mut it = buf.iter();
                for j in j0..j0 + nj {
                    for i in i0..i0 + ni {
                        for k in 0..self.nz {
                            f.set_at(k, j, i, *it.next().unwrap());
                        }
                    }
                }
            }
        }
    }

    /// Fold pack: rows global `nyg-1-d`, full padded width, all levels.
    /// Order is strategy-dependent with `d` taking the row role.
    fn pack_fold_into(&self, f: &View3<f64>, out: &mut [f64]) {
        let jl0 = H + self.h2.ny - 1; // row d is jl0 - d
        let (_, pi) = self.h2.padded();
        assert_eq!(out.len(), self.nz * H * pi);
        match self.strategy {
            Strategy3D::HorizontalMajor => {
                // Row (k, jl0-d) is `pi` consecutive elements on both sides.
                let fs = f.as_slice();
                for k in 0..self.nz {
                    for d in 0..H {
                        let foff = f.offset([k, jl0 - d, 0]);
                        out[(k * H + d) * pi..][..pi].copy_from_slice(&fs[foff..foff + pi]);
                    }
                }
            }
            Strategy3D::Transpose => {
                let mut pos = 0;
                for d in 0..H {
                    for i in 0..pi {
                        for k in 0..self.nz {
                            out[pos] = f.at(k, jl0 - d, i);
                            pos += 1;
                        }
                    }
                }
            }
        }
    }

    fn pack_fold(&self, f: &View3<f64>) -> Vec<f64> {
        let mut buf = vec![0.0; self.ns_len()];
        self.pack_fold_into(f, &mut buf);
        buf
    }

    fn unpack_fold(&self, f: &View3<f64>, buf: &[f64], kind: FoldKind) {
        let (_, pi) = self.h2.padded();
        assert_eq!(buf.len(), self.nz * H * pi);
        let sign = match kind {
            FoldKind::Scalar => 1.0,
            FoldKind::Vector => -1.0,
        };
        let partner_x0 = self.h2.fold_partner_x0_pub() as i64;
        let col = |il: usize| -> usize {
            let ig = self.h2.x0 as i64 + il as i64 - H as i64;
            let src = self.h2.nxg as i64 - 1 - ig;
            (src - (partner_x0 - H as i64)) as usize
        };
        for d in 0..H {
            for il in 0..pi {
                let bc = col(il);
                for k in 0..self.nz {
                    let v = match self.strategy {
                        Strategy3D::HorizontalMajor => buf[(k * H + d) * pi + bc],
                        Strategy3D::Transpose => buf[(d * pi + bc) * self.nz + k],
                    };
                    f.set_at(k, H + self.h2.ny + d, il, sign * v);
                }
            }
        }
    }

    // ---- pooled exchanges (the default path) ------------------------------

    /// Blocking 3-D halo update of one field. Allocation-free in steady
    /// state; bitwise identical to [`Halo3D::exchange_alloc`].
    ///
    /// # Panics
    /// If integrity is enabled and a strip is unrecoverable; use
    /// [`Halo3D::try_exchange`] to handle that as a value.
    pub fn exchange(&self, field: &View3<f64>, kind: FoldKind, tag_base: u64) {
        self.try_exchange(field, kind, tag_base)
            .unwrap_or_else(|e| panic!("halo exchange failed: {e}"));
    }

    /// Fallible exchange: surfaces an unrecoverable strip as a typed
    /// [`HaloError`] after the integrity layer's bounded retries. Without
    /// integrity enabled it cannot fail.
    pub fn try_exchange(
        &self,
        field: &View3<f64>,
        kind: FoldKind,
        tag_base: u64,
    ) -> Result<(), HaloError> {
        let _r = kokkos_rs::profiling::region("halo:exchange3d");
        let t0 = Instant::now();
        self.check(field);
        let seq = self.h2.next_seq();
        self.exchange_ew(field, tag_base, seq)?;
        let out = self.exchange_ns(field, kind, tag_base, seq);
        self.h2.add_inflight(t0.elapsed().as_nanos() as u64);
        out
    }

    /// Overlapped variant: east/west messages fly while `interior` runs.
    pub fn exchange_overlap(
        &self,
        field: &View3<f64>,
        kind: FoldKind,
        tag_base: u64,
        interior: impl FnOnce(),
    ) {
        self.try_exchange_overlap(field, kind, tag_base, interior)
            .unwrap_or_else(|e| panic!("halo exchange failed: {e}"));
    }

    /// Fallible overlapped exchange; see [`Halo3D::try_exchange`].
    pub fn try_exchange_overlap(
        &self,
        field: &View3<f64>,
        kind: FoldKind,
        tag_base: u64,
        interior: impl FnOnce(),
    ) -> Result<(), HaloError> {
        let t0 = Instant::now();
        self.check(field);
        let seq = self.h2.next_seq();
        let comm = self.h2.cart().comm();
        let (Neighbor::Interior(w), Neighbor::Interior(e)) = (
            self.h2.cart().neighbor(Dir::West),
            self.h2.cart().neighbor(Dir::East),
        ) else {
            unreachable!()
        };
        let (ny, nx) = (self.h2.ny, self.h2.nx);
        if w == comm.rank() {
            self.exchange_ew(field, tag_base, seq)?;
            {
                let _c = kokkos_rs::profiling::region("halo:overlap-compute");
                interior();
            }
        } else {
            let strip = self.ew_len();
            self.h2
                .send_strip(comm, w, tag_base + T_WEST, seq, strip, |buf| {
                    self.pack_strip_into(field, H, ny, H, H, buf);
                });
            self.h2
                .send_strip(comm, e, tag_base + T_EAST, seq, strip, |buf| {
                    self.pack_strip_into(field, H, ny, nx, H, buf);
                });
            {
                let _c = kokkos_rs::profiling::region("halo:overlap-compute");
                interior();
            }
            self.h2
                .recv_strip(comm, e, tag_base + T_WEST, seq, strip, |buf| {
                    self.unpack_strip_from(field, H, ny, H + nx, H, buf);
                })?;
            self.h2
                .recv_strip(comm, w, tag_base + T_EAST, seq, strip, |buf| {
                    self.unpack_strip_from(field, H, ny, 0, H, buf);
                })?;
        }
        let out = self.exchange_ns(field, kind, tag_base, seq);
        self.h2.add_inflight(t0.elapsed().as_nanos() as u64);
        out
    }

    /// Batched update: all `fields` share one message per direction
    /// (buffers concatenated in field order) — the pack/unpack redundancy
    /// elimination. Each field packs straight into its segment of the
    /// pooled message, so batching adds no gather copy. Bitwise identical
    /// to updating each field separately.
    ///
    /// # Panics
    /// If integrity is enabled and a strip is unrecoverable; use
    /// [`Halo3D::try_exchange_many`] to handle that as a value.
    pub fn exchange_many(&self, fields: &[(&View3<f64>, FoldKind)], tag_base: u64) {
        self.try_exchange_many(fields, tag_base)
            .unwrap_or_else(|e| panic!("halo exchange failed: {e}"));
    }

    /// Fallible batched exchange; see [`Halo3D::try_exchange`]. Implemented
    /// as begin + finish of the split-phase path, so the blocking and
    /// overlapped batched exchanges share one protocol by construction.
    pub fn try_exchange_many(
        &self,
        fields: &[(&View3<f64>, FoldKind)],
        tag_base: u64,
    ) -> Result<(), HaloError> {
        let _r = kokkos_rs::profiling::region("halo:exchange3d");
        self.begin_exchange_many(fields, tag_base)?.finish()
    }

    /// Split-phase batched update: posts the east/west messages and
    /// returns a [`Pending3`] that the caller drives with
    /// [`Pending3::poll`] between compute launches and [`Pending3::finish`]
    /// once the ghosts are needed. Field contents on completion are
    /// bitwise identical to [`Halo3D::try_exchange_many`].
    ///
    /// At most one pending exchange may be outstanding per `tag_base`; the
    /// caller must finish it within the same epoch it was begun.
    pub fn begin_exchange_many(
        &self,
        fields: &[(&View3<f64>, FoldKind)],
        tag_base: u64,
    ) -> Result<Pending3<'_>, HaloError> {
        for (f, _) in fields {
            self.check(f);
        }
        // An empty batch claims no frame ordinal, matching a zero-length
        // run of per-field exchanges.
        let seq = if fields.is_empty() {
            None
        } else {
            self.h2.next_seq()
        };
        let mut p = Pending3 {
            h: self,
            fields: fields.iter().map(|(f, k)| ((*f).clone(), *k)).collect(),
            tag_base,
            seq,
            plan: self.h2.plan(),
            stage: PendingStage::EwPosted,
            t0: Instant::now(),
        };
        p.post_ew()?;
        Ok(p)
    }

    /// Split-phase single-field update (one-element batch).
    pub fn begin_exchange(
        &self,
        field: &View3<f64>,
        kind: FoldKind,
        tag_base: u64,
    ) -> Result<Pending3<'_>, HaloError> {
        self.begin_exchange_many(&[(field, kind)], tag_base)
    }

    fn exchange_ew(
        &self,
        field: &View3<f64>,
        tag_base: u64,
        seq: Option<FrameSeq>,
    ) -> Result<(), HaloError> {
        let comm = self.h2.cart().comm();
        let (ny, nx) = (self.h2.ny, self.h2.nx);
        let (Neighbor::Interior(w), Neighbor::Interior(e)) = (
            self.h2.cart().neighbor(Dir::West),
            self.h2.cart().neighbor(Dir::East),
        ) else {
            unreachable!()
        };
        let strip = self.ew_len();
        if w == comm.rank() {
            // px == 1: periodic wrap within the block, through scratch.
            let mut wb = Self::scratch(&self.scratch_a, strip);
            let mut eb = Self::scratch(&self.scratch_b, strip);
            self.pack_strip_into(field, H, ny, H, H, &mut wb[..strip]);
            self.pack_strip_into(field, H, ny, nx, H, &mut eb[..strip]);
            self.unpack_strip_from(field, H, ny, H + nx, H, &wb[..strip]);
            self.unpack_strip_from(field, H, ny, 0, H, &eb[..strip]);
            return Ok(());
        }
        self.h2
            .send_strip(comm, w, tag_base + T_WEST, seq, strip, |buf| {
                self.pack_strip_into(field, H, ny, H, H, buf);
            });
        self.h2
            .send_strip(comm, e, tag_base + T_EAST, seq, strip, |buf| {
                self.pack_strip_into(field, H, ny, nx, H, buf);
            });
        self.h2
            .recv_strip(comm, e, tag_base + T_WEST, seq, strip, |buf| {
                self.unpack_strip_from(field, H, ny, H + nx, H, buf);
            })?;
        self.h2
            .recv_strip(comm, w, tag_base + T_EAST, seq, strip, |buf| {
                self.unpack_strip_from(field, H, ny, 0, H, buf);
            })
    }

    fn exchange_ns(
        &self,
        field: &View3<f64>,
        kind: FoldKind,
        tag_base: u64,
        seq: Option<FrameSeq>,
    ) -> Result<(), HaloError> {
        let comm = self.h2.cart().comm();
        let (_, pi) = self.h2.padded();
        let ny = self.h2.ny;
        let rows = self.ns_len();
        if let Neighbor::Interior(s) = self.h2.cart().neighbor(Dir::South) {
            self.h2
                .send_strip(comm, s, tag_base + T_SOUTH, seq, rows, |buf| {
                    self.pack_strip_into(field, H, H, 0, pi, buf);
                });
        }
        match self.h2.cart().neighbor(Dir::North) {
            Neighbor::Interior(n) => {
                self.h2
                    .send_strip(comm, n, tag_base + T_NORTH, seq, rows, |buf| {
                        self.pack_strip_into(field, ny, H, 0, pi, buf);
                    });
            }
            Neighbor::Fold(p) if p != comm.rank() => {
                self.h2
                    .send_strip(comm, p, tag_base + T_FOLD, seq, rows, |buf| {
                        self.pack_fold_into(field, buf);
                    });
            }
            _ => {}
        }
        match self.h2.cart().neighbor(Dir::North) {
            Neighbor::Interior(n) => {
                self.h2
                    .recv_strip(comm, n, tag_base + T_SOUTH, seq, rows, |buf| {
                        self.unpack_strip_from(field, H + ny, H, 0, pi, buf);
                    })?;
            }
            Neighbor::Fold(p) => {
                if p == comm.rank() {
                    let mut fb = Self::scratch(&self.scratch_a, rows);
                    self.pack_fold_into(field, &mut fb[..rows]);
                    self.unpack_fold(field, &fb[..rows], kind);
                } else {
                    self.h2
                        .recv_strip(comm, p, tag_base + T_FOLD, seq, rows, |buf| {
                            self.unpack_fold(field, buf, kind);
                        })?;
                }
            }
            Neighbor::Closed => {}
        }
        if let Neighbor::Interior(s) = self.h2.cart().neighbor(Dir::South) {
            self.h2
                .recv_strip(comm, s, tag_base + T_NORTH, seq, rows, |buf| {
                    self.unpack_strip_from(field, 0, H, 0, pi, buf);
                })?;
        }
        Ok(())
    }

    // ---- allocating reference implementation ------------------------------

    /// The original implementation: serial element-wise pack/unpack into
    /// freshly allocated message vectors. Kept as the bitwise-identity
    /// reference for the pooled path (property tests) and as the baseline
    /// in the pooled-vs-allocating benches.
    pub fn exchange_alloc(&self, field: &View3<f64>, kind: FoldKind, tag_base: u64) {
        self.check(field);
        self.exchange_ew_alloc(field, tag_base);
        self.exchange_ns_alloc(field, kind, tag_base);
    }

    /// Allocating batched update (reference for [`Halo3D::exchange_many`]):
    /// per-field vectors concatenated into one message per direction.
    pub fn exchange_many_alloc(&self, fields: &[(&View3<f64>, FoldKind)], tag_base: u64) {
        for (f, _) in fields {
            self.check(f);
        }
        let comm = self.h2.cart().comm();
        let (ny, nx) = (self.h2.ny, self.h2.nx);
        let (Neighbor::Interior(w), Neighbor::Interior(e)) = (
            self.h2.cart().neighbor(Dir::West),
            self.h2.cart().neighbor(Dir::East),
        ) else {
            unreachable!()
        };
        let strip = self.ew_len();
        let cat = |packs: Vec<Vec<f64>>| -> Vec<f64> { packs.concat() };
        let west: Vec<Vec<f64>> = fields
            .iter()
            .map(|(f, _)| self.pack_strip(f, H, ny, H, H))
            .collect();
        let east: Vec<Vec<f64>> = fields
            .iter()
            .map(|(f, _)| self.pack_strip(f, H, ny, nx, H))
            .collect();
        if w == comm.rank() {
            for ((f, _), buf) in fields.iter().zip(&west) {
                self.unpack_strip(f, H, ny, H + nx, H, buf);
            }
            for ((f, _), buf) in fields.iter().zip(&east) {
                self.unpack_strip(f, H, ny, 0, H, buf);
            }
        } else {
            comm.isend(w, tag_base + T_WEST, cat(west));
            comm.isend(e, tag_base + T_EAST, cat(east));
            let from_e = comm.recv::<f64>(e, tag_base + T_WEST);
            for (n, (f, _)) in fields.iter().enumerate() {
                self.unpack_strip(f, H, ny, H + nx, H, &from_e[n * strip..(n + 1) * strip]);
            }
            let from_w = comm.recv::<f64>(w, tag_base + T_EAST);
            for (n, (f, _)) in fields.iter().enumerate() {
                self.unpack_strip(f, H, ny, 0, H, &from_w[n * strip..(n + 1) * strip]);
            }
        }
        // N/S + fold batched.
        let (_, pi) = self.h2.padded();
        let rows = self.ns_len();
        if let Neighbor::Interior(s) = self.h2.cart().neighbor(Dir::South) {
            let bufs: Vec<Vec<f64>> = fields
                .iter()
                .map(|(f, _)| self.pack_strip(f, H, H, 0, pi))
                .collect();
            comm.isend(s, tag_base + T_SOUTH, cat(bufs));
        }
        match self.h2.cart().neighbor(Dir::North) {
            Neighbor::Interior(n) => {
                let bufs: Vec<Vec<f64>> = fields
                    .iter()
                    .map(|(f, _)| self.pack_strip(f, ny, H, 0, pi))
                    .collect();
                comm.isend(n, tag_base + T_NORTH, cat(bufs));
            }
            Neighbor::Fold(p) if p != comm.rank() => {
                let bufs: Vec<Vec<f64>> = fields.iter().map(|(f, _)| self.pack_fold(f)).collect();
                comm.isend(p, tag_base + T_FOLD, cat(bufs));
            }
            _ => {}
        }
        match self.h2.cart().neighbor(Dir::North) {
            Neighbor::Interior(nb) => {
                let buf = comm.recv::<f64>(nb, tag_base + T_SOUTH);
                for (n, (f, _)) in fields.iter().enumerate() {
                    self.unpack_strip(f, H + ny, H, 0, pi, &buf[n * rows..(n + 1) * rows]);
                }
            }
            Neighbor::Fold(p) => {
                let buf = if p == comm.rank() {
                    cat(fields.iter().map(|(f, _)| self.pack_fold(f)).collect())
                } else {
                    comm.recv::<f64>(p, tag_base + T_FOLD)
                };
                for (n, (f, kind)) in fields.iter().enumerate() {
                    self.unpack_fold(f, &buf[n * rows..(n + 1) * rows], *kind);
                }
            }
            Neighbor::Closed => {}
        }
        if let Neighbor::Interior(s) = self.h2.cart().neighbor(Dir::South) {
            let buf = comm.recv::<f64>(s, tag_base + T_NORTH);
            for (n, (f, _)) in fields.iter().enumerate() {
                self.unpack_strip(f, 0, H, 0, pi, &buf[n * rows..(n + 1) * rows]);
            }
        }
    }

    fn exchange_ew_alloc(&self, field: &View3<f64>, tag_base: u64) {
        let comm = self.h2.cart().comm();
        let (ny, nx) = (self.h2.ny, self.h2.nx);
        let (Neighbor::Interior(w), Neighbor::Interior(e)) = (
            self.h2.cart().neighbor(Dir::West),
            self.h2.cart().neighbor(Dir::East),
        ) else {
            unreachable!()
        };
        if w == comm.rank() {
            let west_real = self.pack_strip(field, H, ny, H, H);
            let east_real = self.pack_strip(field, H, ny, nx, H);
            self.unpack_strip(field, H, ny, H + nx, H, &west_real);
            self.unpack_strip(field, H, ny, 0, H, &east_real);
            return;
        }
        comm.isend(w, tag_base + T_WEST, self.pack_strip(field, H, ny, H, H));
        comm.isend(e, tag_base + T_EAST, self.pack_strip(field, H, ny, nx, H));
        let from_e = comm.recv::<f64>(e, tag_base + T_WEST);
        self.unpack_strip(field, H, ny, H + nx, H, &from_e);
        let from_w = comm.recv::<f64>(w, tag_base + T_EAST);
        self.unpack_strip(field, H, ny, 0, H, &from_w);
    }

    fn exchange_ns_alloc(&self, field: &View3<f64>, kind: FoldKind, tag_base: u64) {
        let comm = self.h2.cart().comm();
        let (_, pi) = self.h2.padded();
        let ny = self.h2.ny;
        if let Neighbor::Interior(s) = self.h2.cart().neighbor(Dir::South) {
            comm.isend(s, tag_base + T_SOUTH, self.pack_strip(field, H, H, 0, pi));
        }
        match self.h2.cart().neighbor(Dir::North) {
            Neighbor::Interior(n) => {
                comm.isend(n, tag_base + T_NORTH, self.pack_strip(field, ny, H, 0, pi));
            }
            Neighbor::Fold(p) if p != comm.rank() => {
                comm.isend(p, tag_base + T_FOLD, self.pack_fold(field));
            }
            _ => {}
        }
        match self.h2.cart().neighbor(Dir::North) {
            Neighbor::Interior(n) => {
                let buf = comm.recv::<f64>(n, tag_base + T_SOUTH);
                self.unpack_strip(field, H + ny, H, 0, pi, &buf);
            }
            Neighbor::Fold(p) => {
                let buf = if p == comm.rank() {
                    self.pack_fold(field)
                } else {
                    comm.recv::<f64>(p, tag_base + T_FOLD)
                };
                self.unpack_fold(field, &buf, kind);
            }
            Neighbor::Closed => {}
        }
        if let Neighbor::Interior(s) = self.h2.cart().neighbor(Dir::South) {
            let buf = comm.recv::<f64>(s, tag_base + T_NORTH);
            self.unpack_strip(field, 0, H, 0, pi, &buf);
        }
    }
}

/// A batched 3-D halo exchange in flight (see
/// [`Halo3D::begin_exchange_many`]). Holds clones of the field views —
/// `View` is a shared handle — and borrows the context so frame
/// sequencing stays collective. Drive with [`Pending3::poll`] between
/// compute launches; [`Pending3::finish`] blocks for the remainder.
pub struct Pending3<'a> {
    h: &'a Halo3D,
    fields: Vec<(View3<f64>, FoldKind)>,
    tag_base: u64,
    seq: Option<FrameSeq>,
    plan: StripPlan,
    stage: PendingStage,
    t0: Instant,
}

impl Pending3<'_> {
    /// Post the east/west leg (or run it locally when px == 1, in which
    /// case the north/south leg is posted immediately too).
    fn post_ew(&mut self) -> Result<(), HaloError> {
        if self.fields.is_empty() {
            self.stage = PendingStage::Done;
            return Ok(());
        }
        let h = self.h;
        let comm = h.h2.cart().comm();
        let (ny, nx) = (h.h2.ny, h.h2.nx);
        let (nf, strip) = (self.fields.len(), h.ew_len());
        if self.plan.ew_self {
            let mut wb = Halo3D::scratch(&h.scratch_a, nf * strip);
            let mut eb = Halo3D::scratch(&h.scratch_b, nf * strip);
            for (n, (f, _)) in self.fields.iter().enumerate() {
                h.pack_strip_into(f, H, ny, H, H, &mut wb[n * strip..(n + 1) * strip]);
                h.pack_strip_into(f, H, ny, nx, H, &mut eb[n * strip..(n + 1) * strip]);
            }
            for (n, (f, _)) in self.fields.iter().enumerate() {
                h.unpack_strip_from(f, H, ny, H + nx, H, &wb[n * strip..(n + 1) * strip]);
            }
            for (n, (f, _)) in self.fields.iter().enumerate() {
                h.unpack_strip_from(f, H, ny, 0, H, &eb[n * strip..(n + 1) * strip]);
            }
            drop((wb, eb));
            self.post_ns();
            return Ok(());
        }
        let fields = &self.fields;
        h.h2.send_strip(
            comm,
            self.plan.west,
            self.tag_base + T_WEST,
            self.seq,
            nf * strip,
            |buf| {
                for (n, (f, _)) in fields.iter().enumerate() {
                    h.pack_strip_into(f, H, ny, H, H, &mut buf[n * strip..(n + 1) * strip]);
                }
            },
        );
        h.h2.send_strip(
            comm,
            self.plan.east,
            self.tag_base + T_EAST,
            self.seq,
            nf * strip,
            |buf| {
                for (n, (f, _)) in fields.iter().enumerate() {
                    h.pack_strip_into(f, H, ny, nx, H, &mut buf[n * strip..(n + 1) * strip]);
                }
            },
        );
        self.stage = PendingStage::EwPosted;
        Ok(())
    }

    /// Post the north/south leg. Runs after the zonal ghosts are fresh —
    /// the row strips span the full padded width, which is how corners
    /// propagate without diagonal messages. Self-folds complete here.
    fn post_ns(&mut self) {
        let h = self.h;
        let comm = h.h2.cart().comm();
        let (_, pi) = h.h2.padded();
        let ny = h.h2.ny;
        let (nf, rows) = (self.fields.len(), h.ns_len());
        let fields = &self.fields;
        if let Some(s) = self.plan.south {
            h.h2.send_strip(
                comm,
                s,
                self.tag_base + T_SOUTH,
                self.seq,
                nf * rows,
                |buf| {
                    for (n, (f, _)) in fields.iter().enumerate() {
                        h.pack_strip_into(f, H, H, 0, pi, &mut buf[n * rows..(n + 1) * rows]);
                    }
                },
            );
        }
        match self.plan.north {
            NorthPath::Interior(nb) => {
                h.h2.send_strip(
                    comm,
                    nb,
                    self.tag_base + T_NORTH,
                    self.seq,
                    nf * rows,
                    |buf| {
                        for (n, (f, _)) in fields.iter().enumerate() {
                            h.pack_strip_into(f, ny, H, 0, pi, &mut buf[n * rows..(n + 1) * rows]);
                        }
                    },
                );
            }
            NorthPath::FoldOther(p) => {
                h.h2.send_strip(
                    comm,
                    p,
                    self.tag_base + T_FOLD,
                    self.seq,
                    nf * rows,
                    |buf| {
                        for (n, (f, _)) in fields.iter().enumerate() {
                            h.pack_fold_into(f, &mut buf[n * rows..(n + 1) * rows]);
                        }
                    },
                );
            }
            NorthPath::FoldSelf => {
                let mut fb = Halo3D::scratch(&h.scratch_a, nf * rows);
                for (n, (f, _)) in fields.iter().enumerate() {
                    h.pack_fold_into(f, &mut fb[n * rows..(n + 1) * rows]);
                }
                for (n, (f, kind)) in fields.iter().enumerate() {
                    h.unpack_fold(f, &fb[n * rows..(n + 1) * rows], *kind);
                }
            }
            NorthPath::Closed => {}
        }
        // With no meridional receives outstanding the exchange is already
        // complete (single-rank column with a self-fold or closed wall).
        self.stage = if self.plan.south.is_none()
            && matches!(self.plan.north, NorthPath::FoldSelf | NorthPath::Closed)
        {
            h.h2.add_inflight(self.t0.elapsed().as_nanos() as u64);
            PendingStage::Done
        } else {
            PendingStage::NsPosted
        };
    }

    /// Have all receives the current stage is waiting on arrived? Probes
    /// without consuming, so `poll` only commits to receives it can
    /// satisfy immediately. Allocation-free (polls run in hot loops).
    fn stage_ready(&self, comm: &mpi_sim::Comm) -> bool {
        match self.stage {
            PendingStage::EwPosted => {
                comm.has_message(self.plan.east, self.tag_base + T_WEST)
                    && comm.has_message(self.plan.west, self.tag_base + T_EAST)
            }
            PendingStage::NsPosted => {
                let north_ok = match self.plan.north {
                    NorthPath::Interior(nb) => comm.has_message(nb, self.tag_base + T_SOUTH),
                    NorthPath::FoldOther(p) => comm.has_message(p, self.tag_base + T_FOLD),
                    NorthPath::FoldSelf | NorthPath::Closed => true,
                };
                let south_ok = self
                    .plan
                    .south
                    .is_none_or(|s| comm.has_message(s, self.tag_base + T_NORTH));
                north_ok && south_ok
            }
            PendingStage::Done => true,
        }
    }

    /// Is any strip the current stage waits on owed by a dead rank with
    /// nothing queued? Mirrors `PendingExchange2::stage_dead_peer` —
    /// queued pre-death strips still drain, only an unfillable wait
    /// reports death.
    fn stage_dead_peer(&self, comm: &mpi_sim::Comm) -> Option<(usize, u64)> {
        let mut owed: [Option<(usize, u64)>; 2] = [None, None];
        match self.stage {
            PendingStage::EwPosted => {
                owed[0] = Some((self.plan.east, self.tag_base + T_WEST));
                owed[1] = Some((self.plan.west, self.tag_base + T_EAST));
            }
            PendingStage::NsPosted => {
                owed[0] = match self.plan.north {
                    NorthPath::Interior(nb) => Some((nb, self.tag_base + T_SOUTH)),
                    NorthPath::FoldOther(p) => Some((p, self.tag_base + T_FOLD)),
                    NorthPath::FoldSelf | NorthPath::Closed => None,
                };
                owed[1] = self.plan.south.map(|s| (s, self.tag_base + T_NORTH));
            }
            PendingStage::Done => {}
        }
        owed.into_iter()
            .flatten()
            .find(|&(src, tag)| !comm.is_alive(src) && !comm.has_message(src, tag))
    }

    fn advance(&mut self, blocking: bool) -> Result<bool, HaloError> {
        let h = self.h;
        let comm = h.h2.cart().comm();
        let (_, pi) = h.h2.padded();
        let (ny, nx) = (h.h2.ny, h.h2.nx);
        loop {
            if self.stage == PendingStage::Done {
                return Ok(true);
            }
            if !blocking && !self.stage_ready(comm) {
                // A dead neighbor can never make the stage ready: surface
                // the typed error instead of spinning on `Ok(false)`.
                if let Some((src, tag)) = self.stage_dead_peer(comm) {
                    return Err(HaloError::PeerDead { src, tag });
                }
                return Ok(false);
            }
            match self.stage {
                PendingStage::EwPosted => {
                    let (nf, strip) = (self.fields.len(), h.ew_len());
                    let fields = &self.fields;
                    h.h2.recv_strip(
                        comm,
                        self.plan.east,
                        self.tag_base + T_WEST,
                        self.seq,
                        nf * strip,
                        |buf| {
                            for (n, (f, _)) in fields.iter().enumerate() {
                                h.unpack_strip_from(
                                    f,
                                    H,
                                    ny,
                                    H + nx,
                                    H,
                                    &buf[n * strip..(n + 1) * strip],
                                );
                            }
                        },
                    )?;
                    h.h2.recv_strip(
                        comm,
                        self.plan.west,
                        self.tag_base + T_EAST,
                        self.seq,
                        nf * strip,
                        |buf| {
                            for (n, (f, _)) in fields.iter().enumerate() {
                                h.unpack_strip_from(
                                    f,
                                    H,
                                    ny,
                                    0,
                                    H,
                                    &buf[n * strip..(n + 1) * strip],
                                );
                            }
                        },
                    )?;
                    self.post_ns();
                }
                PendingStage::NsPosted => {
                    let (nf, rows) = (self.fields.len(), h.ns_len());
                    let fields = &self.fields;
                    match self.plan.north {
                        NorthPath::Interior(nb) => {
                            h.h2.recv_strip(
                                comm,
                                nb,
                                self.tag_base + T_SOUTH,
                                self.seq,
                                nf * rows,
                                |buf| {
                                    for (n, (f, _)) in fields.iter().enumerate() {
                                        h.unpack_strip_from(
                                            f,
                                            H + ny,
                                            H,
                                            0,
                                            pi,
                                            &buf[n * rows..(n + 1) * rows],
                                        );
                                    }
                                },
                            )?;
                        }
                        NorthPath::FoldOther(p) => {
                            h.h2.recv_strip(
                                comm,
                                p,
                                self.tag_base + T_FOLD,
                                self.seq,
                                nf * rows,
                                |buf| {
                                    for (n, (f, kind)) in fields.iter().enumerate() {
                                        h.unpack_fold(f, &buf[n * rows..(n + 1) * rows], *kind);
                                    }
                                },
                            )?;
                        }
                        NorthPath::FoldSelf | NorthPath::Closed => {}
                    }
                    if let Some(s) = self.plan.south {
                        h.h2.recv_strip(
                            comm,
                            s,
                            self.tag_base + T_NORTH,
                            self.seq,
                            nf * rows,
                            |buf| {
                                for (n, (f, _)) in fields.iter().enumerate() {
                                    h.unpack_strip_from(
                                        f,
                                        0,
                                        H,
                                        0,
                                        pi,
                                        &buf[n * rows..(n + 1) * rows],
                                    );
                                }
                            },
                        )?;
                    }
                    self.stage = PendingStage::Done;
                    h.h2.add_inflight(self.t0.elapsed().as_nanos() as u64);
                }
                PendingStage::Done => {}
            }
        }
    }

    /// Non-blocking progress: consume whatever strips have arrived and
    /// advance the protocol. Returns `Ok(true)` once the exchange is
    /// complete; never waits.
    pub fn poll(&mut self) -> Result<bool, HaloError> {
        self.advance(false)
    }

    /// Block until the exchange completes.
    pub fn finish(mut self) -> Result<(), HaloError> {
        self.advance(true).map(|_| ())
    }

    /// True once every ghost cell is filled.
    pub fn is_done(&self) -> bool {
        self.stage == PendingStage::Done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kokkos_rs::{View, View3};
    use mpi_sim::{CartComm, World};

    fn g3(k: usize, j: usize, i: usize) -> f64 {
        (k * 1_000_000 + j * 1000 + i) as f64 + 0.125
    }

    fn fill_owned(h: &Halo3D, f: &View3<f64>) {
        for k in 0..h.nz {
            for j in 0..h.h2.ny {
                for i in 0..h.h2.nx {
                    f.set_at(k, H + j, H + i, g3(k, h.h2.y0 + j, h.h2.x0 + i));
                }
            }
        }
    }

    fn check_all(h: &Halo3D, f: &View3<f64>, kind: FoldKind) {
        let nxg = h.h2.nxg as i64;
        let nyg = h.h2.nyg as i64;
        let (pj, pi) = h.h2.padded();
        let sign = match kind {
            FoldKind::Scalar => 1.0,
            FoldKind::Vector => -1.0,
        };
        for k in 0..h.nz {
            for jl in 0..pj {
                for il in 0..pi {
                    let jg = h.h2.y0 as i64 + jl as i64 - H as i64;
                    let ig = h.h2.x0 as i64 + il as i64 - H as i64;
                    let iw = ig.rem_euclid(nxg) as usize;
                    let want = if jg < 0 {
                        continue;
                    } else if jg < nyg {
                        g3(k, jg as usize, iw)
                    } else {
                        let d = jg - nyg;
                        if d >= H as i64 {
                            continue;
                        }
                        sign * g3(
                            k,
                            (nyg - 1 - d) as usize,
                            (nxg - 1 - ig).rem_euclid(nxg) as usize,
                        )
                    };
                    assert_eq!(f.at(k, jl, il), want, "k={k} jl={jl} il={il}");
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn run_case(
        nranks: usize,
        px: usize,
        py: usize,
        nxg: usize,
        nyg: usize,
        nz: usize,
        strategy: Strategy3D,
        kind: FoldKind,
    ) {
        World::run(nranks, |comm| {
            let cart = CartComm::new(comm.clone(), px, py, true);
            let h = Halo3D::new(Halo2D::new(&cart, nxg, nyg), nz, strategy);
            let f: View3<f64> = View::host("f", h.shape());
            f.fill(-9e9);
            fill_owned(&h, &f);
            h.exchange(&f, kind, 0);
            check_all(&h, &f, kind);
        });
    }

    #[test]
    fn horizontal_major_multi_rank() {
        run_case(
            4,
            2,
            2,
            12,
            10,
            5,
            Strategy3D::HorizontalMajor,
            FoldKind::Scalar,
        );
    }

    #[test]
    fn transpose_multi_rank() {
        run_case(4, 2, 2, 12, 10, 5, Strategy3D::Transpose, FoldKind::Scalar);
    }

    #[test]
    fn transpose_vector_fold() {
        run_case(6, 2, 3, 16, 12, 4, Strategy3D::Transpose, FoldKind::Vector);
    }

    #[test]
    fn single_rank_both_strategies() {
        run_case(
            1,
            1,
            1,
            10,
            8,
            3,
            Strategy3D::HorizontalMajor,
            FoldKind::Scalar,
        );
        run_case(1, 1, 1, 10, 8, 3, Strategy3D::Transpose, FoldKind::Scalar);
    }

    #[test]
    fn strategies_are_bitwise_identical() {
        let run = |strategy| {
            World::run(4, |comm| {
                let cart = CartComm::new(comm.clone(), 2, 2, true);
                let h = Halo3D::new(Halo2D::new(&cart, 12, 10), 6, strategy);
                let f: View3<f64> = View::host("f", h.shape());
                f.fill(0.0);
                fill_owned(&h, &f);
                h.exchange(&f, FoldKind::Vector, 0);
                f.to_vec()
            })
        };
        assert_eq!(run(Strategy3D::HorizontalMajor), run(Strategy3D::Transpose));
    }

    #[test]
    fn pooled_matches_allocating_reference() {
        for strategy in [Strategy3D::HorizontalMajor, Strategy3D::Transpose] {
            for kind in [FoldKind::Scalar, FoldKind::Vector] {
                World::run(4, |comm| {
                    let cart = CartComm::new(comm.clone(), 2, 2, true);
                    let h = Halo3D::new(Halo2D::new(&cart, 12, 10), 5, strategy)
                        .with_space(kokkos_rs::Space::threads());
                    let a: View3<f64> = View::host("a", h.shape());
                    let b: View3<f64> = View::host("b", h.shape());
                    a.fill(0.0);
                    b.fill(0.0);
                    fill_owned(&h, &a);
                    fill_owned(&h, &b);
                    h.exchange(&a, kind, 0);
                    h.exchange_alloc(&b, kind, 40);
                    assert_eq!(
                        a.to_vec(),
                        b.to_vec(),
                        "pooled vs allocating, {strategy:?} {kind:?}"
                    );
                });
            }
        }
    }

    #[test]
    fn steady_state_exchanges_do_not_allocate() {
        // Per-rank pools make miss counts deterministic: more iterations
        // must not add a single allocation beyond the warm-up.
        let allocs = |iters: u64| {
            let (_, t) = World::run_traced(4, |comm| {
                let cart = CartComm::new(comm.clone(), 2, 2, true);
                let h = Halo3D::new(Halo2D::new(&cart, 12, 10), 4, Strategy3D::Transpose);
                let f: View3<f64> = View::host("f", h.shape());
                f.fill(0.0);
                fill_owned(&h, &f);
                for it in 0..iters {
                    h.exchange(&f, FoldKind::Scalar, it * 100);
                }
            });
            t
        };
        let warm = allocs(3);
        let long = allocs(20);
        assert_eq!(
            warm.pool_allocations, long.pool_allocations,
            "steady-state exchanges must reuse pooled buffers"
        );
        assert!(long.pool_reuses > warm.pool_reuses);
    }

    #[test]
    fn overlap_matches_blocking_3d() {
        World::run(4, |comm| {
            let cart = CartComm::new(comm.clone(), 2, 2, true);
            let h = Halo3D::new(Halo2D::new(&cart, 12, 10), 4, Strategy3D::Transpose);
            let a: View3<f64> = View::host("a", h.shape());
            let b: View3<f64> = View::host("b", h.shape());
            a.fill(0.0);
            b.fill(0.0);
            fill_owned(&h, &a);
            fill_owned(&h, &b);
            h.exchange(&a, FoldKind::Scalar, 0);
            h.exchange_overlap(&b, FoldKind::Scalar, 50, || {});
            assert_eq!(a.to_vec(), b.to_vec());
        });
    }

    #[test]
    fn batched_matches_separate_and_saves_messages() {
        let (separate, t_sep) = {
            let (fields, t) = World::run_traced(4, |comm| {
                let cart = CartComm::new(comm.clone(), 2, 2, true);
                let h = Halo3D::new(Halo2D::new(&cart, 12, 10), 3, Strategy3D::Transpose);
                let u: View3<f64> = View::host("u", h.shape());
                let v: View3<f64> = View::host("v", h.shape());
                u.fill(0.0);
                v.fill(0.0);
                fill_owned(&h, &u);
                fill_owned(&h, &v);
                h.exchange(&u, FoldKind::Vector, 0);
                h.exchange(&v, FoldKind::Scalar, 20);
                (u.to_vec(), v.to_vec())
            });
            (fields, t)
        };
        let (batched, t_bat) = {
            let (fields, t) = World::run_traced(4, |comm| {
                let cart = CartComm::new(comm.clone(), 2, 2, true);
                let h = Halo3D::new(Halo2D::new(&cart, 12, 10), 3, Strategy3D::Transpose);
                let u: View3<f64> = View::host("u", h.shape());
                let v: View3<f64> = View::host("v", h.shape());
                u.fill(0.0);
                v.fill(0.0);
                fill_owned(&h, &u);
                fill_owned(&h, &v);
                h.exchange_many(&[(&u, FoldKind::Vector), (&v, FoldKind::Scalar)], 0);
                (u.to_vec(), v.to_vec())
            });
            (fields, t)
        };
        assert_eq!(separate, batched, "batched update must be bitwise equal");
        assert!(
            t_bat.p2p_messages < t_sep.p2p_messages,
            "batching must reduce messages: {} vs {}",
            t_bat.p2p_messages,
            t_sep.p2p_messages
        );
        assert_eq!(t_bat.p2p_bytes, t_sep.p2p_bytes, "same payload bytes");
    }

    #[test]
    fn split_phase_batched_matches_blocking_3d() {
        for strategy in [Strategy3D::HorizontalMajor, Strategy3D::Transpose] {
            World::run(4, |comm| {
                let cart = CartComm::new(comm.clone(), 2, 2, true);
                let h = Halo3D::new(Halo2D::new(&cart, 12, 10), 4, strategy);
                let mk = |name: &str, salt: f64| {
                    let f: View3<f64> = View::host(name, h.shape());
                    f.fill(0.0);
                    fill_owned(&h, &f);
                    for k in 0..h.nz {
                        for j in 0..h.h2.ny {
                            for i in 0..h.h2.nx {
                                f.set_at(k, H + j, H + i, f.at(k, H + j, H + i) + salt);
                            }
                        }
                    }
                    f
                };
                let (au, av) = (mk("au", 0.0), mk("av", 3.5));
                let (bu, bv) = (mk("bu", 0.0), mk("bv", 3.5));
                h.exchange_many(&[(&au, FoldKind::Vector), (&av, FoldKind::Scalar)], 0);
                let mut p = h
                    .begin_exchange_many(&[(&bu, FoldKind::Vector), (&bv, FoldKind::Scalar)], 60)
                    .unwrap();
                for _ in 0..3 {
                    let _ = p.poll().unwrap();
                }
                p.finish().unwrap();
                assert_eq!(au.to_vec(), bu.to_vec(), "{strategy:?} u");
                assert_eq!(av.to_vec(), bv.to_vec(), "{strategy:?} v");
            });
        }
    }

    #[test]
    fn batched_matches_batched_alloc_reference() {
        let run = |pooled: bool| {
            World::run(4, |comm| {
                let cart = CartComm::new(comm.clone(), 2, 2, true);
                let h = Halo3D::new(Halo2D::new(&cart, 12, 10), 3, Strategy3D::HorizontalMajor);
                let u: View3<f64> = View::host("u", h.shape());
                let v: View3<f64> = View::host("v", h.shape());
                u.fill(0.0);
                v.fill(0.0);
                fill_owned(&h, &u);
                fill_owned(&h, &v);
                let fields = [(&u, FoldKind::Vector), (&v, FoldKind::Scalar)];
                if pooled {
                    h.exchange_many(&fields, 0);
                } else {
                    h.exchange_many_alloc(&fields, 0);
                }
                (u.to_vec(), v.to_vec())
            })
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn repeated_3d_exchange_is_fixpoint() {
        World::run(2, |comm| {
            let cart = CartComm::new(comm.clone(), 2, 1, true);
            let h = Halo3D::new(Halo2D::new(&cart, 8, 6), 3, Strategy3D::HorizontalMajor);
            let f: View3<f64> = View::host("f", h.shape());
            f.fill(0.0);
            fill_owned(&h, &f);
            h.exchange(&f, FoldKind::Scalar, 0);
            let once = f.to_vec();
            h.exchange(&f, FoldKind::Scalar, 30);
            assert_eq!(f.to_vec(), once);
        });
    }
}
