//! End-to-end message integrity for halo strips.
//!
//! At the paper's machine scale a halo payload can arrive corrupted,
//! truncated, duplicated, stale — or not at all. When integrity is
//! enabled on a [`crate::Halo2D`]/[`crate::Halo3D`] (it is opt-in so the
//! bare exchange keeps its exact byte counts), every strip travels as a
//! *frame*:
//!
//! ```text
//! word 0   MAGIC ^ tag            (routing check)
//! word 1   epoch << 16 | ordinal  (which step, which exchange in it)
//! word 2   payload length (words)
//! word 3   CRC32 of the payload bit patterns
//! word 4.. payload
//! ```
//!
//! Header words are `u64` values carried as `f64` bit patterns, so a
//! frame is still one pooled `f64` message and the steady-state path
//! stays allocation-free. The CRC is folded in right after the pack
//! fills the buffer, while the strip is cache-hot.
//!
//! The receiver verifies the frame before unpacking. A mismatched
//! `(epoch, ordinal)` marks a *stale* frame (leftover from an aborted,
//! rolled-back step — discarded free of charge, since a deterministic
//! replay regenerates identical traffic). A bad magic, length or CRC
//! marks a *corrupt* frame; corrupt frames and receive timeouts trigger
//! the bounded retry protocol: ask the transport's escrow for a
//! retransmission ([`mpi_sim::Comm::fetch_resend`]), then wait again with
//! a capped-exponential, jittered deadline from the shared
//! [`RetryPolicy`], up to its retry limit before surfacing a typed
//! [`HaloError`] for the model's checkpoint/rollback layer to handle.
//! A *dead* peer short-circuits all of that: the retry loop exists to
//! outwait transient loss, and a fail-stop rank is not transient —
//! [`HaloError::PeerDead`] surfaces on the first attempt so recovery can
//! start immediately instead of burning the full retry budget.

use mpi_sim::flight::{self, FlightEventKind};
use mpi_sim::{crc32c_f64, Comm, CommError, RetryPolicy};

/// Number of header words prepended to a framed payload.
pub const HDR: usize = 4;

/// Frame magic, XOR-folded with the message tag in word 0.
const MAGIC: u64 = 0x4C49_434F_4D48_414C; // "LICOMHAL"

/// Retry policy for integrity-checked receives: the workspace-wide
/// [`RetryPolicy`] schedule plus the one knob specific to framing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntegrityConfig {
    /// Timeout/backoff/jitter schedule shared with every other
    /// deadline-bounded wait in the stack.
    pub retry: RetryPolicy,
    /// Stale frames tolerated per receive before giving up (guards
    /// against a flood of leftovers, not a realistic failure mode).
    pub max_stale: u32,
}

impl Default for IntegrityConfig {
    fn default() -> Self {
        Self {
            retry: RetryPolicy::default(),
            max_stale: 64,
        }
    }
}

impl IntegrityConfig {
    /// Tight deadlines for fault-injection tests (see
    /// [`RetryPolicy::test_small`]).
    pub fn test_small() -> Self {
        Self {
            retry: RetryPolicy::test_small(),
            max_stale: 64,
        }
    }

    /// Build from an existing schedule (e.g. the one threaded through
    /// `ModelOptions`).
    pub fn with_retry(retry: RetryPolicy) -> Self {
        Self {
            retry,
            ..Self::default()
        }
    }
}

/// Typed halo-exchange failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HaloError {
    /// No verifiable frame for `(src, tag)` arrived within
    /// `attempts` tries; `last` describes the final failure.
    RetriesExhausted {
        src: usize,
        tag: u64,
        attempts: u32,
        last: FrameFault,
    },
    /// The sending rank halted permanently: no number of retries can
    /// produce the frame, so the retry loop is skipped entirely.
    PeerDead { src: usize, tag: u64 },
}

impl std::fmt::Display for HaloError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HaloError::RetriesExhausted {
                src,
                tag,
                attempts,
                last,
            } => write!(
                f,
                "halo strip from rank {src} tag {tag} unrecoverable after {attempts} attempts (last: {last:?})"
            ),
            HaloError::PeerDead { src, tag } => write!(
                f,
                "halo strip from rank {src} tag {tag} can never arrive: peer is dead"
            ),
        }
    }
}

impl std::error::Error for HaloError {}

/// Why a received frame was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameFault {
    /// Shorter than the header, or payload length disagrees with the
    /// length word / the expected strip size.
    Truncated,
    /// Word 0 does not carry the expected magic/tag.
    BadMagic,
    /// Payload checksum mismatch.
    BadCrc,
    /// Header is intact but `(epoch, ordinal)` is not the one awaited —
    /// a leftover from an aborted step.
    Stale,
    /// No frame arrived before the deadline.
    Timeout,
}

/// Epoch/ordinal pair packed into header word 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameSeq {
    pub epoch: u64,
    pub ordinal: u64,
}

impl FrameSeq {
    fn packed(self) -> u64 {
        (self.epoch << 16) | (self.ordinal & 0xFFFF)
    }
}

/// Write the frame header into `buf[..HDR]` for a payload already packed
/// into `buf[HDR..]`, folding the payload CRC in while it is cache-hot.
pub fn seal_frame(buf: &mut [f64], tag: u64, seq: FrameSeq) {
    debug_assert!(buf.len() >= HDR);
    let payload_len = buf.len() - HDR;
    let crc = crc32c_f64(&buf[HDR..]);
    buf[0] = f64::from_bits(MAGIC ^ tag);
    buf[1] = f64::from_bits(seq.packed());
    buf[2] = f64::from_bits(payload_len as u64);
    buf[3] = f64::from_bits(crc as u64);
}

/// Verify a frame and return its payload slice.
pub fn verify_frame(
    buf: &[f64],
    tag: u64,
    seq: FrameSeq,
    expect_len: usize,
) -> Result<&[f64], FrameFault> {
    if buf.len() < HDR {
        return Err(FrameFault::Truncated);
    }
    if buf[0].to_bits() != MAGIC ^ tag {
        return Err(FrameFault::BadMagic);
    }
    let payload = &buf[HDR..];
    let len_word = buf[2].to_bits() as usize;
    if len_word != payload.len() || payload.len() != expect_len {
        return Err(FrameFault::Truncated);
    }
    if buf[3].to_bits() as u32 != crc32c_f64(payload) {
        return Err(FrameFault::BadCrc);
    }
    if buf[1].to_bits() != seq.packed() {
        return Err(FrameFault::Stale);
    }
    Ok(payload)
}

/// Send `len` payload words to `dst` as an integrity frame. `fill` packs
/// the payload exactly as it would for an unframed send; the header is
/// sealed around it in the same pooled buffer.
pub fn send_framed(
    comm: &Comm,
    dst: usize,
    tag: u64,
    seq: FrameSeq,
    len: usize,
    fill: impl FnOnce(&mut [f64]),
) {
    comm.send_into(dst, tag, HDR + len, |buf| {
        fill(&mut buf[HDR..]);
        seal_frame(buf, tag, seq);
    });
    flight::record(
        FlightEventKind::HaloSend,
        seq.packed(),
        dst as u64,
        len as u64,
    );
}

/// Receive and verify an integrity frame from `src`, retrying per `cfg`.
/// `unpack` runs exactly once, on the verified payload.
pub fn recv_framed(
    comm: &Comm,
    cfg: &IntegrityConfig,
    src: usize,
    tag: u64,
    seq: FrameSeq,
    expect_len: usize,
    unpack: impl Fn(&[f64]),
) -> Result<(), HaloError> {
    let mut attempt: u32 = 0;
    let mut stale: u32 = 0;
    let mut last;
    // Per-(rank, peer, tag) jitter salt: after a shared stall, each wait
    // draws a different deadline, so retries do not re-synchronize into
    // a storm.
    let salt = RetryPolicy::salt(comm.rank(), src, tag);
    loop {
        let res = comm.recv_into_deadline(src, tag, cfg.retry.timeout_for(attempt, salt), |buf| {
            match verify_frame(buf, tag, seq, expect_len) {
                Ok(payload) => {
                    unpack(payload);
                    Ok(())
                }
                Err(fault) => Err(fault),
            }
        });
        match res {
            Ok(Ok(())) => {
                flight::record(
                    FlightEventKind::HaloRecv,
                    seq.packed(),
                    src as u64,
                    expect_len as u64,
                );
                return Ok(());
            }
            Ok(Err(FrameFault::Stale)) => {
                // Leftover traffic from an aborted step: discard and keep
                // waiting on the same attempt's budget.
                stale += 1;
                if stale > cfg.max_stale {
                    return Err(HaloError::RetriesExhausted {
                        src,
                        tag,
                        attempts: attempt + 1,
                        last: FrameFault::Stale,
                    });
                }
                continue;
            }
            Ok(Err(fault)) => {
                comm.note_crc_failure();
                flight::record(FlightEventKind::CrcFailure, seq.packed(), src as u64, 0);
                last = fault;
            }
            Err(CommError::PeerDead { .. }) => {
                // Fail-stop is permanent: no retry or escrow fetch can
                // help, and burning the budget only delays recovery.
                return Err(HaloError::PeerDead { src, tag });
            }
            Err(_) => {
                last = FrameFault::Timeout;
            }
        }
        // Corrupt frame or timeout: ask the transport for a
        // retransmission before burning another wait.
        if let Some(frame) = comm.fetch_resend(src, tag) {
            if let Ok(payload) = verify_frame(&frame, tag, seq, expect_len) {
                unpack(payload);
                flight::record(
                    FlightEventKind::HaloRecv,
                    seq.packed(),
                    src as u64,
                    expect_len as u64,
                );
                return Ok(());
            }
            // A stale or unrelated escrow entry: fall through to retry.
        }
        comm.note_halo_retry();
        flight::record(
            FlightEventKind::IntegrityRetry,
            seq.packed(),
            src as u64,
            attempt as u64 + 1,
        );
        attempt += 1;
        if attempt > cfg.retry.max_retries {
            return Err(HaloError::RetriesExhausted {
                src,
                tag,
                attempts: attempt,
                last,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEQ: FrameSeq = FrameSeq {
        epoch: 7,
        ordinal: 3,
    };

    fn frame(payload: &[f64]) -> Vec<f64> {
        let mut buf = vec![0.0; HDR + payload.len()];
        buf[HDR..].copy_from_slice(payload);
        seal_frame(&mut buf, 42, SEQ);
        buf
    }

    #[test]
    fn seal_then_verify_roundtrips() {
        let payload = [1.5, -2.5, 0.0, f64::MIN_POSITIVE];
        let buf = frame(&payload);
        let got = verify_frame(&buf, 42, SEQ, payload.len()).unwrap();
        assert_eq!(got, payload);
    }

    #[test]
    fn verify_rejects_each_corruption_mode() {
        let payload = [1.0, 2.0, 3.0];
        let clean = frame(&payload);

        // Payload bit flip -> BadCrc.
        let mut bad = clean.clone();
        bad[HDR + 1] = f64::from_bits(bad[HDR + 1].to_bits() ^ 1);
        assert_eq!(verify_frame(&bad, 42, SEQ, 3), Err(FrameFault::BadCrc));

        // Truncation -> Truncated.
        assert_eq!(
            verify_frame(&clean[..HDR + 2], 42, SEQ, 3),
            Err(FrameFault::Truncated)
        );
        assert_eq!(
            verify_frame(&clean[..2], 42, SEQ, 3),
            Err(FrameFault::Truncated)
        );

        // Wrong tag -> BadMagic.
        assert_eq!(verify_frame(&clean, 43, SEQ, 3), Err(FrameFault::BadMagic));

        // Wrong epoch/ordinal -> Stale.
        let other = FrameSeq {
            epoch: 8,
            ordinal: 3,
        };
        assert_eq!(verify_frame(&clean, 42, other, 3), Err(FrameFault::Stale));

        // Wrong expected length -> Truncated.
        assert_eq!(verify_frame(&clean, 42, SEQ, 4), Err(FrameFault::Truncated));
    }

    #[test]
    fn header_bitflip_is_detected() {
        let payload = [4.0; 8];
        let clean = frame(&payload);
        for w in 0..HDR {
            let mut bad = clean.clone();
            bad[w] = f64::from_bits(bad[w].to_bits() ^ (1 << 11));
            assert!(
                verify_frame(&bad, 42, SEQ, 8).is_err(),
                "flip in header word {w} must be caught"
            );
        }
    }

    #[test]
    fn retry_schedule_comes_from_shared_policy() {
        // The backoff constants live in RetryPolicy now; IntegrityConfig
        // only adds the framing-specific stale tolerance.
        let cfg = IntegrityConfig::test_small();
        assert_eq!(cfg.retry, RetryPolicy::test_small());
        assert_eq!(cfg.max_stale, 64);
        let threaded = IntegrityConfig::with_retry(RetryPolicy::default());
        assert_eq!(threaded.retry, RetryPolicy::default());
    }

    #[test]
    fn peer_dead_error_formats_and_sources() {
        let e = HaloError::PeerDead { src: 3, tag: 830 };
        let msg = format!("{e}");
        assert!(msg.contains("rank 3") && msg.contains("dead"), "{msg}");
        use std::error::Error;
        assert!(e.source().is_none());
    }

    /// Satellite coverage: a stale-epoch frame delivered *after* the
    /// receiver's timeout-triggered re-request must be discarded — not
    /// unpacked, not counted against the retry budget — and the fresh
    /// frame behind it accepted.
    #[test]
    fn stale_frame_after_timeout_rerequest_is_discarded() {
        use mpi_sim::World;
        let cfg = IntegrityConfig::test_small();
        World::run(2, move |comm| {
            if comm.rank() == 0 {
                // Outlast rank 1's first wait so it re-requests, then
                // deliver a leftover frame from an aborted prior step
                // followed by the real one.
                std::thread::sleep(cfg.retry.base_timeout * 2);
                let stale = FrameSeq {
                    epoch: 6,
                    ordinal: 3,
                };
                send_framed(comm, 1, 42, stale, 4, |b| b.fill(9.0));
                send_framed(comm, 1, 42, SEQ, 4, |b| {
                    b.copy_from_slice(&[1.0, 2.0, 3.0, 4.0])
                });
            } else {
                let got = std::cell::RefCell::new(Vec::new());
                let calls = std::cell::Cell::new(0u32);
                recv_framed(comm, &cfg, 0, 42, SEQ, 4, |p| {
                    calls.set(calls.get() + 1);
                    *got.borrow_mut() = p.to_vec();
                })
                .expect("fresh frame must be accepted after the stale one");
                assert_eq!(calls.get(), 1, "unpack must run once, on the fresh frame");
                assert_eq!(got.into_inner(), vec![1.0, 2.0, 3.0, 4.0]);
            }
        });
    }
}
