//! # halo-exchange — LICOM's halo update engine (paper §V-D)
//!
//! "The halo update process within the model acts as a serial bottleneck
//! according to Amdahl's law" — so the paper rewrites it in C++/Kokkos,
//! eliminates redundant pack/unpack work, overlaps communication with
//! computation, and adds transpose-based 3-D exchanges. This crate is that
//! engine, written against `mpi-sim` + `kokkos-rs` views:
//!
//! * [`halo2d`] — the 2-layer 2-D halo update on the tripolar topology:
//!   zonal periodicity, closed southern wall, **north-fold** exchange with
//!   zonal mirroring (and sign flip for vector fields), correct corner
//!   fill via the E/W-then-N/S two-phase scheme, and an overlapped variant
//!   that runs interior computation while messages are in flight;
//! * [`halo3d`] — point-wise vertical extension of the 2-D update, with
//!   two interchangeable strategies: the naive **horizontal-major** pack
//!   (strided reads, the pre-optimization baseline) and the paper's
//!   **transpose** pipeline (Fig. 5: real halo → vertical-major → exchange
//!   → ghost halo → horizontal-major), plus batched multi-field messages
//!   (the "redundant packing" elimination);
//! * [`transpose`] — the high-performance halo transpose operators;
//! * [`stepgraph`] — a small per-step dependency DAG of compute and comm
//!   tasks whose runner interleaves interior kernels with non-blocking
//!   polls of split-phase exchanges ([`halo2d::PendingExchange2`],
//!   [`halo3d::Pending3`]), so posting halos, computing interiors, and
//!   finishing boundary passes overlap by construction.
//!
//! All variants are *bitwise equivalent*; they differ only in access
//! pattern and message count, which the benches measure.

pub mod halo2d;
pub mod halo3d;
pub mod integrity;
pub mod stepgraph;
pub(crate) mod strip;
pub mod transpose;

pub use halo2d::{FoldKind, Halo2D, PendingExchange2};
pub use halo3d::{Halo3D, Pending3, Strategy3D};
pub use integrity::{FrameFault, FrameSeq, HaloError, IntegrityConfig};
pub use stepgraph::{StepGraph, Task};

/// Halo width (2 ghost + 2 real layers, fixed by LICOM's stencils).
pub const HALO: usize = ocean_grid::decomp::HALO;
