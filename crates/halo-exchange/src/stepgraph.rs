//! Per-step dependency DAG of compute and comm tasks.
//!
//! The asynchronous-many-task systems the paper's halo optimizations echo
//! (HPX, Kokkos tasking) replace a fixed phase sequence with a graph whose
//! runner executes whatever is ready. [`StepGraph`] is the minimal version
//! of that idea for one model step: nodes are either **compute** closures
//! (run once when their dependencies are met) or **comm** closures (a
//! split-phase exchange driven by repeated non-blocking polls, e.g.
//! [`crate::halo2d::PendingExchange2::poll`] under the hood). The runner
//! loop is deterministic:
//!
//! 1. poll every ready comm task non-blockingly (drives message progress);
//! 2. run the first ready compute task (lowest node index);
//! 3. if no compute is ready, block on the first ready comm task;
//! 4. repeat until every node is done.
//!
//! Determinism matters more than scheduling cleverness here: kernels
//! launch in a fixed order given a fixed arrival order of messages, and
//! the bitwise-identity contract of the split kernels holds regardless of
//! *when* a comm task completes, because the graph edges encode exactly
//! the data dependencies the dense schedule had.

use crate::integrity::HaloError;

/// One node's work.
pub enum Task<'a> {
    /// Runs once, after all dependencies completed.
    Compute(Box<dyn FnOnce() -> Result<(), HaloError> + 'a>),
    /// Driven to completion by repeated calls; the argument is `true` when
    /// the runner has nothing else to do and the task should block.
    /// Returns `Ok(true)` when done.
    Comm(Box<dyn FnMut(bool) -> Result<bool, HaloError> + 'a>),
}

enum Slot<'a> {
    Pending(Task<'a>),
    Done,
}

/// A small dependency DAG of [`Task`]s. Build with [`StepGraph::add`],
/// execute with [`StepGraph::run`].
#[derive(Default)]
pub struct StepGraph<'a> {
    nodes: Vec<Slot<'a>>,
    deps: Vec<Vec<usize>>,
}

impl<'a> StepGraph<'a> {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a node depending on the listed (already-added) nodes; returns
    /// its index.
    pub fn add(&mut self, task: Task<'a>, deps: &[usize]) -> usize {
        let id = self.nodes.len();
        for &d in deps {
            assert!(d < id, "dependency {d} of node {id} not yet added");
        }
        self.nodes.push(Slot::Pending(task));
        self.deps.push(deps.to_vec());
        id
    }

    /// Convenience: add a compute node.
    pub fn compute(
        &mut self,
        f: impl FnOnce() -> Result<(), HaloError> + 'a,
        deps: &[usize],
    ) -> usize {
        self.add(Task::Compute(Box::new(f)), deps)
    }

    /// Convenience: add a comm node.
    pub fn comm(
        &mut self,
        f: impl FnMut(bool) -> Result<bool, HaloError> + 'a,
        deps: &[usize],
    ) -> usize {
        self.add(Task::Comm(Box::new(f)), deps)
    }

    fn ready(&self, id: usize) -> bool {
        matches!(self.nodes[id], Slot::Pending(_))
            && self.deps[id]
                .iter()
                .all(|&d| matches!(self.nodes[d], Slot::Done))
    }

    /// Execute the graph to completion. Deterministic given deterministic
    /// tasks; comm tasks are polled non-blockingly whenever compute is
    /// available and blocked on only when nothing else can run.
    pub fn run(mut self) -> Result<(), HaloError> {
        let n = self.nodes.len();
        let mut remaining = n;
        while remaining > 0 {
            // 1. Non-blocking poll of every ready comm task.
            for id in 0..n {
                if !self.ready(id) {
                    continue;
                }
                if let Slot::Pending(Task::Comm(f)) = &mut self.nodes[id] {
                    if f(false)? {
                        self.nodes[id] = Slot::Done;
                        remaining -= 1;
                    }
                }
            }
            // 2. Run the first ready compute task.
            let next_compute = (0..n).find(|&id| {
                self.ready(id) && matches!(self.nodes[id], Slot::Pending(Task::Compute(_)))
            });
            if let Some(id) = next_compute {
                let Slot::Pending(Task::Compute(f)) =
                    std::mem::replace(&mut self.nodes[id], Slot::Done)
                else {
                    unreachable!("checked above")
                };
                f()?;
                remaining -= 1;
                continue;
            }
            // 3. Nothing to compute: block on the first ready comm task.
            let next_comm = (0..n).find(|&id| self.ready(id));
            match next_comm {
                Some(id) => {
                    let Slot::Pending(Task::Comm(f)) = &mut self.nodes[id] else {
                        unreachable!("only comm tasks remain ready")
                    };
                    let done = f(true)?;
                    assert!(done, "blocking comm task did not complete");
                    self.nodes[id] = Slot::Done;
                    remaining -= 1;
                }
                None => {
                    panic!("step graph stuck: {remaining} tasks remain but none is ready (cycle?)")
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;

    #[test]
    fn runs_in_dependency_order() {
        let log = RefCell::new(Vec::new());
        let mut g = StepGraph::new();
        let a = g.compute(
            || {
                log.borrow_mut().push("a");
                Ok(())
            },
            &[],
        );
        let b = g.compute(
            || {
                log.borrow_mut().push("b");
                Ok(())
            },
            &[a],
        );
        g.compute(
            || {
                log.borrow_mut().push("c");
                Ok(())
            },
            &[b],
        );
        g.run().unwrap();
        assert_eq!(*log.borrow(), vec!["a", "b", "c"]);
    }

    #[test]
    fn comm_is_polled_while_compute_runs() {
        // The comm task completes only after two polls; the runner must
        // interleave it with the independent compute instead of blocking.
        let polls = RefCell::new(0u32);
        let log = RefCell::new(Vec::new());
        let mut g = StepGraph::new();
        let comm = g.comm(
            |blocking| {
                *polls.borrow_mut() += 1;
                let done = *polls.borrow() >= 2 || blocking;
                if done {
                    log.borrow_mut().push("comm");
                }
                Ok(done)
            },
            &[],
        );
        let interior = g.compute(
            || {
                log.borrow_mut().push("interior");
                Ok(())
            },
            &[],
        );
        g.compute(
            || {
                log.borrow_mut().push("rim");
                Ok(())
            },
            &[comm, interior],
        );
        g.run().unwrap();
        let l = log.borrow();
        assert_eq!(l.last(), Some(&"rim"));
        assert!(l.contains(&"comm") && l.contains(&"interior"));
        assert!(*polls.borrow() >= 2, "comm should have been polled");
    }

    #[test]
    fn error_propagates() {
        let mut g = StepGraph::new();
        g.compute(
            || {
                Err(HaloError::RetriesExhausted {
                    src: 0,
                    tag: 0,
                    attempts: 1,
                    last: crate::integrity::FrameFault::Timeout,
                })
            },
            &[],
        );
        assert!(g.run().is_err());
    }

    #[test]
    #[should_panic(expected = "not yet added")]
    fn forward_dependency_rejected() {
        let mut g = StepGraph::new();
        g.compute(|| Ok(()), &[3]);
    }
}
