//! Parallel memcpy pack/unpack of halo strips (paper §V-D).
//!
//! The original `pack_strip`/`unpack_strip` walked one element at a time
//! through `View::at`. A halo strip is a set of contiguous runs, though:
//!
//! * **HorizontalMajor** — every `(k, j)` row of the strip is `ni`
//!   consecutive elements in both the field and the message buffer, so
//!   pack/unpack is a straight `copy_from_slice` per row.
//! * **Transpose** — every `(j, i)` column is `nz` consecutive elements on
//!   the buffer side (that is the point of the vertical-major ordering);
//!   the field side strides by one horizontal plane per level.
//!
//! [`StripCopy`] expresses one run per iteration as a [`Functor1D`] so the
//! copy dispatches over any kokkos execution space — serial, the rayon
//! pool, or simulated CPEs (it is registered for the SwAthread backend
//! like every other kernel). Runs are disjoint by construction, which is
//! exactly the Kokkos concurrent-write contract.

use kokkos_rs::functor::{Functor1D, IterCost};
use kokkos_rs::parallel::parallel_for_1d;
use kokkos_rs::policy::RangePolicy;
use kokkos_rs::{Space, View2, View3};

use crate::halo3d::Strategy3D;

/// Which way a [`StripCopy`] moves data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CopyDir {
    /// Field → message buffer.
    Pack,
    /// Message buffer → field.
    Unpack,
}

/// One halo-strip copy: `nj` rows × `ni` columns over `nz` levels of a
/// `(nz, pj, pi)` horizontal-major field, against a buffer in the order
/// given by `order`. Each iteration copies one contiguous run. The side
/// being read is only ever dereferenced through `*const` — the `Unpack`
/// buffer pointer originates from a shared slice and is never written.
struct StripCopy {
    field: *mut f64,
    buf: *mut f64,
    /// Elements per horizontal plane (`pj * pi`).
    plane: usize,
    /// Elements per field row (`pi`).
    row: usize,
    j0: usize,
    i0: usize,
    nj: usize,
    ni: usize,
    nz: usize,
    dir: CopyDir,
    order: Strategy3D,
}

// SAFETY: the raw pointers target a live field view and a live message
// buffer for the (synchronous) duration of the launch, and every iteration
// touches a disjoint run — the standard Kokkos disjoint-writes contract.
unsafe impl Send for StripCopy {}
unsafe impl Sync for StripCopy {}

impl StripCopy {
    /// Iterations needed: one per contiguous run.
    fn runs(&self) -> usize {
        match self.order {
            Strategy3D::HorizontalMajor => self.nz * self.nj,
            Strategy3D::Transpose => self.nj * self.ni,
        }
    }
}

impl Functor1D for StripCopy {
    fn operator(&self, r: usize) {
        match self.order {
            Strategy3D::HorizontalMajor => {
                // Run r is field row (k = r / nj, j = j0 + r % nj): `ni`
                // consecutive elements on both sides.
                let k = r / self.nj;
                let jj = r % self.nj;
                let foff = k * self.plane + (self.j0 + jj) * self.row + self.i0;
                let boff = r * self.ni;
                unsafe {
                    match self.dir {
                        CopyDir::Pack => {
                            let src = std::slice::from_raw_parts(
                                self.field.add(foff) as *const f64,
                                self.ni,
                            );
                            std::slice::from_raw_parts_mut(self.buf.add(boff), self.ni)
                                .copy_from_slice(src);
                        }
                        CopyDir::Unpack => {
                            let src = std::slice::from_raw_parts(
                                self.buf.add(boff) as *const f64,
                                self.ni,
                            );
                            std::slice::from_raw_parts_mut(self.field.add(foff), self.ni)
                                .copy_from_slice(src);
                        }
                    }
                }
            }
            Strategy3D::Transpose => {
                // Run r is column (j = j0 + r / ni, i = i0 + r % ni): `nz`
                // consecutive elements on the buffer side, one plane apart
                // on the field side.
                let jj = r / self.ni;
                let ii = r % self.ni;
                let fbase = (self.j0 + jj) * self.row + self.i0 + ii;
                let boff = r * self.nz;
                unsafe {
                    match self.dir {
                        CopyDir::Pack => {
                            for k in 0..self.nz {
                                *self.buf.add(boff + k) = *self.field.add(fbase + k * self.plane);
                            }
                        }
                        CopyDir::Unpack => {
                            for k in 0..self.nz {
                                *self.field.add(fbase + k * self.plane) = *self.buf.add(boff + k);
                            }
                        }
                    }
                }
            }
        }
    }

    fn cost(&self) -> IterCost {
        // Pure data movement: one read + one write per element of the run.
        let run = match self.order {
            Strategy3D::HorizontalMajor => self.ni,
            Strategy3D::Transpose => self.nz,
        };
        IterCost {
            flops: 0,
            bytes: 16 * run as u64,
        }
    }
}

kokkos_rs::register_for_1d!(register_strip_copy, StripCopy);

/// One 2-D halo-strip copy for [`crate::halo2d::Halo2D`]: `nruns` rows of
/// `ni` consecutive elements each, against a row-major buffer. Run `r`
/// maps to field row `j0 + r`, or `j0 - r` when `rev` is set (the
/// tripolar fold packs rows in descending order). Same disjoint-run
/// contract as [`StripCopy`].
struct StripCopy2D {
    field: *mut f64,
    buf: *mut f64,
    /// Elements per field row (`pi`).
    row: usize,
    j0: usize,
    i0: usize,
    ni: usize,
    /// Field rows descend from `j0` (fold pack order).
    rev: bool,
    dir: CopyDir,
}

// SAFETY: as for `StripCopy` — live field and buffer for the synchronous
// launch, disjoint runs per iteration.
unsafe impl Send for StripCopy2D {}
unsafe impl Sync for StripCopy2D {}

impl Functor1D for StripCopy2D {
    fn operator(&self, r: usize) {
        let j = if self.rev { self.j0 - r } else { self.j0 + r };
        let foff = j * self.row + self.i0;
        let boff = r * self.ni;
        unsafe {
            match self.dir {
                CopyDir::Pack => {
                    let src =
                        std::slice::from_raw_parts(self.field.add(foff) as *const f64, self.ni);
                    std::slice::from_raw_parts_mut(self.buf.add(boff), self.ni)
                        .copy_from_slice(src);
                }
                CopyDir::Unpack => {
                    let src = std::slice::from_raw_parts(self.buf.add(boff) as *const f64, self.ni);
                    std::slice::from_raw_parts_mut(self.field.add(foff), self.ni)
                        .copy_from_slice(src);
                }
            }
        }
    }

    fn cost(&self) -> IterCost {
        IterCost {
            flops: 0,
            bytes: 16 * self.ni as u64,
        }
    }
}

kokkos_rs::register_for_1d!(register_strip_copy_2d, StripCopy2D);

#[allow(clippy::too_many_arguments)]
fn launch2(
    space: &Space,
    dir: CopyDir,
    f: &View2<f64>,
    j0: usize,
    rev: bool,
    nruns: usize,
    i0: usize,
    ni: usize,
    buf: *mut f64,
    buf_len: usize,
) {
    let [pj, pi] = f.dims();
    assert_eq!(buf_len, nruns * ni, "strip buffer length mismatch");
    if rev {
        assert!(nruns <= j0 + 1 && j0 < pj, "strip rows out of bounds");
    } else {
        assert!(j0 + nruns <= pj, "strip rows out of bounds");
    }
    assert!(i0 + ni <= pi, "strip columns out of bounds");
    assert!(
        f.is_root_view() && f.layout() == kokkos_rs::Layout::Right,
        "strip copy requires a root row-major field"
    );
    let func = StripCopy2D {
        field: f.data_ptr(),
        buf,
        row: pi,
        j0,
        i0,
        ni,
        rev,
        dir,
    };
    let tile = (nruns / 64).clamp(1, 256);
    parallel_for_1d(space, RangePolicy::new(nruns).with_tile(tile), &func);
}

/// Pack `nruns` rows × `ni` columns of the 2-D field `f` into `out`
/// (row-major), dispatched over `space`. `rev` walks field rows downward
/// from `j0` — the fold pack order.
#[allow(clippy::too_many_arguments)]
pub(crate) fn pack_rect2_on(
    space: &Space,
    f: &View2<f64>,
    j0: usize,
    rev: bool,
    nruns: usize,
    i0: usize,
    ni: usize,
    out: &mut [f64],
) {
    launch2(
        space,
        CopyDir::Pack,
        f,
        j0,
        rev,
        nruns,
        i0,
        ni,
        out.as_mut_ptr(),
        out.len(),
    );
}

/// Unpack `buf` into `nruns` rows × `ni` columns of `f`, inverse of
/// [`pack_rect2_on`]. `buf` is only read.
#[allow(clippy::too_many_arguments)]
pub(crate) fn unpack_rect2_on(
    space: &Space,
    f: &View2<f64>,
    j0: usize,
    rev: bool,
    nruns: usize,
    i0: usize,
    ni: usize,
    buf: &[f64],
) {
    launch2(
        space,
        CopyDir::Unpack,
        f,
        j0,
        rev,
        nruns,
        i0,
        ni,
        buf.as_ptr() as *mut f64,
        buf.len(),
    );
}

#[allow(clippy::too_many_arguments)]
fn launch(
    space: &Space,
    order: Strategy3D,
    dir: CopyDir,
    f: &View3<f64>,
    j0: usize,
    nj: usize,
    i0: usize,
    ni: usize,
    buf: *mut f64,
    buf_len: usize,
) {
    let [nz, pj, pi] = f.dims();
    assert_eq!(buf_len, nz * nj * ni, "strip buffer length mismatch");
    assert!(j0 + nj <= pj && i0 + ni <= pi, "strip out of bounds");
    assert!(
        f.is_root_view() && f.layout() == kokkos_rs::Layout::Right,
        "strip copy requires a root horizontal-major field"
    );
    let func = StripCopy {
        field: f.data_ptr(),
        buf,
        plane: pj * pi,
        row: pi,
        j0,
        i0,
        nj,
        ni,
        nz,
        dir,
        order,
    };
    let n = func.runs();
    // One tile per ~1/64th of the runs keeps every backend busy even for
    // the short-row strips (the default 256-run tile would serialize them).
    let tile = (n / 64).clamp(1, 256);
    parallel_for_1d(space, RangePolicy::new(n).with_tile(tile), &func);
}

/// Pack the strip `nj × ni` (rows × cols, all `nz` levels) of `f` into
/// `out`, in `order`, dispatched over `space`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn pack_strip_on(
    space: &Space,
    order: Strategy3D,
    f: &View3<f64>,
    j0: usize,
    nj: usize,
    i0: usize,
    ni: usize,
    out: &mut [f64],
) {
    launch(
        space,
        order,
        CopyDir::Pack,
        f,
        j0,
        nj,
        i0,
        ni,
        out.as_mut_ptr(),
        out.len(),
    );
}

/// Unpack `buf` into the strip `nj × ni` of `f`, inverse of
/// [`pack_strip_on`]. `buf` is only read (the pointer cast is an artifact
/// of the shared functor).
#[allow(clippy::too_many_arguments)]
pub(crate) fn unpack_strip_on(
    space: &Space,
    order: Strategy3D,
    f: &View3<f64>,
    j0: usize,
    nj: usize,
    i0: usize,
    ni: usize,
    buf: &[f64],
) {
    launch(
        space,
        order,
        CopyDir::Unpack,
        f,
        j0,
        nj,
        i0,
        ni,
        buf.as_ptr() as *mut f64,
        buf.len(),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use kokkos_rs::View;

    fn field(nz: usize, pj: usize, pi: usize) -> View3<f64> {
        View::from_fn("f", [nz, pj, pi], |[k, j, i]| {
            (k * 1_000_000 + j * 1000 + i) as f64 + 0.5
        })
    }

    /// Reference element-wise pack, mirroring the original implementation.
    fn pack_ref(
        f: &View3<f64>,
        order: Strategy3D,
        j0: usize,
        nj: usize,
        i0: usize,
        ni: usize,
    ) -> Vec<f64> {
        let nz = f.extent(0);
        let mut buf = Vec::new();
        match order {
            Strategy3D::HorizontalMajor => {
                for k in 0..nz {
                    for j in j0..j0 + nj {
                        for i in i0..i0 + ni {
                            buf.push(f.at(k, j, i));
                        }
                    }
                }
            }
            Strategy3D::Transpose => {
                for j in j0..j0 + nj {
                    for i in i0..i0 + ni {
                        for k in 0..nz {
                            buf.push(f.at(k, j, i));
                        }
                    }
                }
            }
        }
        buf
    }

    #[test]
    fn pack_matches_reference_on_all_host_spaces() {
        for order in [Strategy3D::HorizontalMajor, Strategy3D::Transpose] {
            for space in [Space::serial(), Space::threads()] {
                let f = field(5, 11, 13);
                let (j0, nj, i0, ni) = (2, 7, 3, 2);
                let want = pack_ref(&f, order, j0, nj, i0, ni);
                let mut got = vec![0.0; want.len()];
                pack_strip_on(&space, order, &f, j0, nj, i0, ni, &mut got);
                assert_eq!(got, want, "{order:?} on {}", space.name());
            }
        }
    }

    #[test]
    fn unpack_inverts_pack() {
        for order in [Strategy3D::HorizontalMajor, Strategy3D::Transpose] {
            let src = field(4, 9, 10);
            let (j0, nj, i0, ni) = (1, 3, 2, 5);
            let mut buf = vec![0.0; 4 * nj * ni];
            pack_strip_on(&Space::threads(), order, &src, j0, nj, i0, ni, &mut buf);
            let dst: View3<f64> = View::host("dst", [4, 9, 10]);
            dst.fill(-1.0);
            unpack_strip_on(&Space::serial(), order, &dst, j0, nj, i0, ni, &buf);
            for k in 0..4 {
                for j in 0..9 {
                    for i in 0..10 {
                        let inside = (j0..j0 + nj).contains(&j) && (i0..i0 + ni).contains(&i);
                        let want = if inside { src.at(k, j, i) } else { -1.0 };
                        assert_eq!(dst.at(k, j, i), want, "{order:?} k={k} j={j} i={i}");
                    }
                }
            }
        }
    }

    #[test]
    fn rect2_pack_unpack_on_all_spaces() {
        let f2: View2<f64> = View::from_fn("f2", [9, 12], |[j, i]| (j * 100 + i) as f64 + 0.25);
        // Reference: ascending and descending row-major packs.
        let pack2_ref = |j0: usize, rev: bool, nruns: usize, i0: usize, ni: usize| {
            let mut buf = Vec::new();
            for r in 0..nruns {
                let j = if rev { j0 - r } else { j0 + r };
                for i in i0..i0 + ni {
                    buf.push(f2.at(j, i));
                }
            }
            buf
        };
        register_strip_copy_2d();
        let spaces = [
            Space::serial(),
            Space::threads(),
            Space::sw_athread_with(sunway_sim::CgConfig::test_small()),
        ];
        for space in &spaces {
            for (j0, rev, nruns, i0, ni) in [(2, false, 5, 3, 2), (8, true, 2, 0, 12)] {
                let want = pack2_ref(j0, rev, nruns, i0, ni);
                let mut got = vec![0.0; want.len()];
                pack_rect2_on(space, &f2, j0, rev, nruns, i0, ni, &mut got);
                assert_eq!(got, want, "pack rev={rev} on {}", space.name());

                let dst: View2<f64> = View::host("dst2", [9, 12]);
                dst.fill(-1.0);
                unpack_rect2_on(space, &dst, j0, rev, nruns, i0, ni, &want);
                for r in 0..nruns {
                    let j = if rev { j0 - r } else { j0 + r };
                    for i in i0..i0 + ni {
                        assert_eq!(dst.at(j, i), f2.at(j, i), "unpack j={j} i={i}");
                    }
                }
            }
        }
    }

    #[test]
    fn runs_on_simulated_sunway_cpes() {
        register_strip_copy();
        let space = Space::sw_athread_with(sunway_sim::CgConfig::test_small());
        let f = field(3, 8, 8);
        let want = pack_ref(&f, Strategy3D::Transpose, 2, 4, 2, 4);
        let mut got = vec![0.0; want.len()];
        pack_strip_on(&space, Strategy3D::Transpose, &f, 2, 4, 2, 4, &mut got);
        assert_eq!(got, want);
    }
}
