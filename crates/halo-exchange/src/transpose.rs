//! Halo transpose operators (paper Fig. 5).
//!
//! A 3-D field is stored horizontal-major (`(k, j, i)`, `i` fastest). The
//! east/west halo strips are therefore *strided* in memory: packing them
//! walks the array with stride `nx_pad`, and on Sunway each element would
//! be its own DMA transaction. The paper's fix:
//!
//! 1. transpose the **real halo** strip into vertical-major order
//!    (`(j, i, k)`, `k` fastest) — one pass with LDM/shared-memory tiles;
//! 2. run the 3-D exchange on the contiguous vertical-major strips;
//! 3. transpose the received **ghost halo** strips back.
//!
//! Both directions are exact inverses; the property tests check
//! `h2v ∘ v2h = id` and vice versa.

/// Transpose a horizontal-major strip buffer `(k, j, i)` of shape
/// `nz × nj × ni` into vertical-major `(j, i, k)`.
pub fn h2v(src: &[f64], nz: usize, nj: usize, ni: usize) -> Vec<f64> {
    assert_eq!(src.len(), nz * nj * ni, "h2v shape mismatch");
    let mut dst = vec![0.0; src.len()];
    for k in 0..nz {
        for j in 0..nj {
            let row = (k * nj + j) * ni;
            for i in 0..ni {
                dst[(j * ni + i) * nz + k] = src[row + i];
            }
        }
    }
    dst
}

/// Inverse of [`h2v`]: vertical-major `(j, i, k)` back to horizontal-major
/// `(k, j, i)`.
pub fn v2h(src: &[f64], nz: usize, nj: usize, ni: usize) -> Vec<f64> {
    assert_eq!(src.len(), nz * nj * ni, "v2h shape mismatch");
    let mut dst = vec![0.0; src.len()];
    for j in 0..nj {
        for i in 0..ni {
            let col = (j * ni + i) * nz;
            for k in 0..nz {
                dst[(k * nj + j) * ni + i] = src[col + k];
            }
        }
    }
    dst
}

/// Tiled variant of [`h2v`] (the LDM/shared-memory implementation shape:
/// `tile × tile` blocks transposed through a scratch tile). Bitwise
/// identical to `h2v`; exists so the benches can compare naive vs tiled.
pub fn h2v_tiled(src: &[f64], nz: usize, nj: usize, ni: usize, tile: usize) -> Vec<f64> {
    assert_eq!(src.len(), nz * nj * ni);
    assert!(tile > 0);
    let mut dst = vec![0.0; src.len()];
    let cols = nj * ni; // flattened (j,i)
    for k0 in (0..nz).step_by(tile) {
        let k1 = (k0 + tile).min(nz);
        for c0 in (0..cols).step_by(tile) {
            let c1 = (c0 + tile).min(cols);
            for k in k0..k1 {
                for c in c0..c1 {
                    dst[c * nz + k] = src[k * cols + c];
                }
            }
        }
    }
    dst
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn strip(nz: usize, nj: usize, ni: usize) -> Vec<f64> {
        (0..nz * nj * ni).map(|x| x as f64 * 0.5 - 3.0).collect()
    }

    #[test]
    fn h2v_places_k_fastest() {
        // 2 levels, 1 row, 3 columns.
        let src = vec![
            1.0, 2.0, 3.0, // k=0
            10.0, 20.0, 30.0, // k=1
        ];
        let v = h2v(&src, 2, 1, 3);
        assert_eq!(v, vec![1.0, 10.0, 2.0, 20.0, 3.0, 30.0]);
    }

    #[test]
    fn roundtrip_exact() {
        let src = strip(7, 3, 5);
        let there = h2v(&src, 7, 3, 5);
        let back = v2h(&there, 7, 3, 5);
        assert_eq!(src, back);
    }

    #[test]
    fn tiled_matches_naive() {
        let src = strip(13, 4, 6);
        for tile in [1, 2, 3, 8, 64] {
            assert_eq!(h2v_tiled(&src, 13, 4, 6, tile), h2v(&src, 13, 4, 6));
        }
    }

    proptest! {
        #[test]
        fn prop_h2v_v2h_identity(nz in 1usize..12, nj in 1usize..6, ni in 1usize..10, seed in 0u64..1000) {
            let n = nz * nj * ni;
            let src: Vec<f64> = (0..n).map(|x| ((x as u64).wrapping_mul(seed + 1) % 1000) as f64).collect();
            prop_assert_eq!(&v2h(&h2v(&src, nz, nj, ni), nz, nj, ni), &src);
            prop_assert_eq!(&h2v(&v2h(&src, nz, nj, ni), nz, nj, ni), &src);
        }

        #[test]
        fn prop_tiled_equals_naive(nz in 1usize..10, nj in 1usize..5, ni in 1usize..8, tile in 1usize..9) {
            let n = nz * nj * ni;
            let src: Vec<f64> = (0..n).map(|x| x as f64).collect();
            prop_assert_eq!(h2v_tiled(&src, nz, nj, ni, tile), h2v(&src, nz, nj, ni));
        }
    }
}
