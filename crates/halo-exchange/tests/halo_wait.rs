//! Receive-wait attribution across the overlap and blocking exchange
//! variants.
//!
//! The `halo_wait_ns` counter accrues at the recv chokepoint, so it sees
//! the overlap path (`try_exchange_overlap`) even though that variant
//! deliberately carries no whole-call profiling region. With a slow
//! neighbor, the blocking exchange eats the neighbor's delay inside its
//! receives while the overlap exchange hides it under interior compute —
//! so overlap wait must come out at or below blocking wait.

use std::time::Duration;

use halo_exchange::{FoldKind, Halo2D, HALO as H};
use kokkos_rs::{View, View2};
use mpi_sim::{CartComm, World};

const NXG: usize = 8;
const NYG: usize = 6;
/// Delay injected on rank 1 before it participates in each exchange.
const LAG: Duration = Duration::from_millis(40);

fn make_field(h: &Halo2D) -> View2<f64> {
    let (pj, pi) = h.padded();
    let f: View2<f64> = View::host("f", [pj, pi]);
    for j in 0..h.ny {
        for i in 0..h.nx {
            f.set_at(H + j, H + i, (h.y0 + j) as f64 * 100.0 + (h.x0 + i) as f64);
        }
    }
    f
}

#[test]
fn overlap_wait_le_blocking_wait() {
    World::run(2, |comm| {
        let cart = CartComm::new(comm.clone(), 2, 1, true);
        let h = Halo2D::new(&cart, NXG, NYG);
        let f = make_field(&h);
        let lagger = comm.rank() == 1;

        // Blocking: rank 1 shows up late, so rank 0's receives wait out
        // the whole lag.
        comm.barrier();
        if lagger {
            std::thread::sleep(LAG);
        }
        let w0 = h.halo_wait_ns();
        h.exchange(&f, FoldKind::Scalar, 100);
        let blocking_wait = h.halo_wait_ns() - w0;

        // Overlap: rank 0 has a full lag's worth of interior compute, so
        // the late messages are already there when it finally receives.
        comm.barrier();
        if lagger {
            std::thread::sleep(LAG);
        }
        let w1 = h.halo_wait_ns();
        h.exchange_overlap(&f, FoldKind::Scalar, 200, || {
            if !lagger {
                std::thread::sleep(LAG + Duration::from_millis(10));
            }
        });
        let overlap_wait = h.halo_wait_ns() - w1;

        if !lagger {
            assert!(
                blocking_wait >= LAG.as_nanos() as u64 / 2,
                "blocking exchange should have waited out the lag: {blocking_wait} ns"
            );
            assert!(
                overlap_wait <= blocking_wait,
                "overlap wait {overlap_wait} ns exceeds blocking wait {blocking_wait} ns"
            );
        }
    });
}

#[test]
fn wait_counter_shared_across_clones() {
    World::run(2, |comm| {
        let cart = CartComm::new(comm.clone(), 2, 1, true);
        let h = Halo2D::new(&cart, NXG, NYG);
        let h_clone = h.clone();
        let f = make_field(&h);
        h.exchange(&f, FoldKind::Scalar, 300);
        h_clone.exchange(&f, FoldKind::Scalar, 400);
        // Both exchanges land in one shared counter, visible from either
        // handle (Halo3D wraps a clone of the model's 2-D context).
        assert_eq!(h.halo_wait_ns(), h_clone.halo_wait_ns());
        assert!(h.halo_wait_ns() > 0, "networked recvs must accrue wait");
    });
}
