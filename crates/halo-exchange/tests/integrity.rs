//! Integrity-layer integration tests: halo exchanges against a faulted
//! `mpi-sim` world. Corrupted or dropped strips must be repaired through
//! the CRC + escrow-retransmission protocol, bitwise-identically to a
//! fault-free run; unrecoverable losses must surface as typed errors on
//! every rank instead of hanging the world.

use std::time::Duration;

use halo_exchange::{FoldKind, FrameFault, Halo2D, Halo3D, HaloError, IntegrityConfig, Strategy3D};
use kokkos_rs::{View, View2, View3};
use mpi_sim::{CartComm, FaultKind, FaultPlan, FaultRule, MatchSpec, World};

const H: usize = halo_exchange::HALO;

fn g2(j: usize, i: usize) -> f64 {
    (j * 1000 + i) as f64 + 0.25
}

fn fill_owned_2d(h: &Halo2D, f: &View2<f64>) {
    for j in 0..h.ny {
        for i in 0..h.nx {
            f.set_at(H + j, H + i, g2(h.y0 + j, h.x0 + i));
        }
    }
}

fn g3(k: usize, j: usize, i: usize) -> f64 {
    (k * 1_000_000 + j * 1000 + i) as f64 + 0.125
}

fn fill_owned_3d(h: &Halo3D, f: &View3<f64>) {
    for k in 0..h.nz {
        for j in 0..h.h2.ny {
            for i in 0..h.h2.nx {
                f.set_at(k, H + j, H + i, g3(k, h.h2.y0 + j, h.h2.x0 + i));
            }
        }
    }
}

/// One integrity-checked 2-D exchange per rank; returns the final field.
fn run_2d(plan: Option<FaultPlan>) -> Vec<Vec<f64>> {
    let body = |comm: &mpi_sim::Comm| {
        let cart = CartComm::new(comm.clone(), 2, 2, true);
        let h = Halo2D::new(&cart, 12, 10).with_integrity(IntegrityConfig::default());
        h.begin_step(1);
        let f: View2<f64> = View::host("f", [h.padded().0, h.padded().1]);
        f.fill(0.0);
        fill_owned_2d(&h, &f);
        h.try_exchange(&f, FoldKind::Scalar, 0).unwrap();
        f.to_vec()
    };
    match plan {
        Some(plan) => World::run_faulted(4, plan, body).0,
        None => World::run_traced(4, body).0,
    }
}

#[test]
fn bitflipped_2d_strip_recovers_bitwise() {
    // Flip one bit in one westward strip; integrity must fetch the
    // pristine escrowed copy and end bitwise identical to the clean run.
    let plan = FaultPlan::new(0xB17F11)
        .rule(FaultRule::new(FaultKind::BitFlip, MatchSpec::any()).max_hits(1));
    let clean = run_2d(None);
    let (_, t) = {
        let plan2 = plan.clone();
        let body = |comm: &mpi_sim::Comm| {
            let cart = CartComm::new(comm.clone(), 2, 2, true);
            let h = Halo2D::new(&cart, 12, 10).with_integrity(IntegrityConfig::default());
            h.begin_step(1);
            let f: View2<f64> = View::host("f", [h.padded().0, h.padded().1]);
            f.fill(0.0);
            fill_owned_2d(&h, &f);
            h.try_exchange(&f, FoldKind::Scalar, 0).unwrap();
        };
        World::run_faulted(4, plan2, body)
    };
    assert!(t.faults_bitflipped >= 1, "the fault must actually fire");
    assert!(t.crc_failures >= 1, "the flip must be detected");
    assert!(t.resends_served >= 1, "recovery must come from escrow");
    let faulted = run_2d(Some(plan));
    assert_eq!(clean, faulted, "recovered exchange must be bitwise clean");
}

#[test]
fn dropped_2d_strip_recovers_from_escrow() {
    let plan = FaultPlan::new(0xD20B)
        .rule(FaultRule::new(FaultKind::Drop { recoverable: true }, MatchSpec::any()).max_hits(2));
    let clean = run_2d(None);
    let faulted = run_2d(Some(plan));
    assert_eq!(clean, faulted);
}

#[test]
fn truncated_3d_batched_strip_recovers_bitwise() {
    let run = |plan: Option<FaultPlan>| {
        let body = |comm: &mpi_sim::Comm| {
            let cart = CartComm::new(comm.clone(), 2, 2, true);
            let h = Halo3D::new(Halo2D::new(&cart, 12, 10), 3, Strategy3D::Transpose)
                .with_integrity(IntegrityConfig::default());
            h.begin_step(7);
            let u: View3<f64> = View::host("u", h.shape());
            let v: View3<f64> = View::host("v", h.shape());
            u.fill(0.0);
            v.fill(0.0);
            fill_owned_3d(&h, &u);
            fill_owned_3d(&h, &v);
            h.try_exchange_many(&[(&u, FoldKind::Vector), (&v, FoldKind::Scalar)], 0)
                .unwrap();
            (u.to_vec(), v.to_vec())
        };
        match plan {
            Some(plan) => World::run_faulted(4, plan, body),
            None => World::run_traced(4, body),
        }
    };
    let plan = FaultPlan::new(0x7256)
        .rule(FaultRule::new(FaultKind::Truncate { drop_words: 5 }, MatchSpec::any()).max_hits(1));
    let (clean, _) = run(None);
    let (faulted, t) = run(Some(plan));
    assert!(t.faults_truncated >= 1);
    assert_eq!(clean, faulted);
}

#[test]
fn unrecoverable_drop_surfaces_typed_error_on_every_rank() {
    // Drop *everything*, unrecoverably: no rank can finish, but with
    // integrity timeouts none may hang either — each gets a typed error.
    let plan = FaultPlan::new(0xDEAD).rule(FaultRule::new(
        FaultKind::Drop { recoverable: false },
        MatchSpec::any(),
    ));
    let cfg = IntegrityConfig {
        retry: mpi_sim::RetryPolicy {
            max_retries: 1,
            base_timeout: Duration::from_millis(20),
            jitter: 0.0,
            ..Default::default()
        },
        ..Default::default()
    };
    let (results, t) = World::run_faulted(4, plan, |comm| {
        let cart = CartComm::new(comm.clone(), 2, 2, true);
        let h = Halo2D::new(&cart, 12, 10).with_integrity(cfg);
        h.begin_step(1);
        let f: View2<f64> = View::host("f", [h.padded().0, h.padded().1]);
        f.fill(0.0);
        fill_owned_2d(&h, &f);
        h.try_exchange(&f, FoldKind::Scalar, 0)
    });
    assert!(t.faults_dropped >= 4, "drops: {}", t.faults_dropped);
    for (rank, r) in results.iter().enumerate() {
        match r {
            Err(HaloError::RetriesExhausted { last, attempts, .. }) => {
                assert_eq!(*last, FrameFault::Timeout, "rank {rank}");
                assert_eq!(*attempts, 2, "rank {rank}");
            }
            other => panic!("rank {rank} must exhaust retries, got {other:?}"),
        }
    }
    assert!(t.recv_timeouts >= 4);
    assert!(t.halo_retries >= 4);
}

#[test]
fn integrity_framing_is_transparent_when_no_faults_fire() {
    // Same final field with framing on and off on a clean network.
    let unframed = {
        let body = |comm: &mpi_sim::Comm| {
            let cart = CartComm::new(comm.clone(), 2, 2, true);
            let h = Halo2D::new(&cart, 12, 10);
            let f: View2<f64> = View::host("f", [h.padded().0, h.padded().1]);
            f.fill(0.0);
            fill_owned_2d(&h, &f);
            h.exchange(&f, FoldKind::Scalar, 0);
            f.to_vec()
        };
        World::run_traced(4, body).0
    };
    assert_eq!(unframed, run_2d(None));
}
