//! Property-based halo-exchange correctness over random geometries.

use halo_exchange::{FoldKind, Halo2D, Halo3D, Strategy3D, HALO as H};
use kokkos_rs::{View, View2, View3};
use mpi_sim::{CartComm, World};
use proptest::prelude::*;

fn g2(j: usize, i: usize) -> f64 {
    (j * 1000 + i) as f64 + 0.5
}

/// Expected padded-cell value after a scalar exchange (None = unspecified).
fn expected2(h: &Halo2D, jl: usize, il: usize) -> Option<f64> {
    let (nxg, nyg) = (h.nxg as i64, h.nyg as i64);
    let jg = h.y0 as i64 + jl as i64 - H as i64;
    let ig = h.x0 as i64 + il as i64 - H as i64;
    let iw = ig.rem_euclid(nxg) as usize;
    if jg < 0 {
        None
    } else if jg < nyg {
        Some(g2(jg as usize, iw))
    } else {
        let d = jg - nyg;
        if d >= H as i64 {
            None
        } else {
            Some(g2(
                (nyg - 1 - d) as usize,
                (nxg - 1 - ig).rem_euclid(nxg) as usize,
            ))
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// 2-D exchange is correct for any block geometry and rank layout
    /// (fold constraint respected by construction).
    #[test]
    fn prop_halo2d_any_geometry(px in 1usize..4, py in 1usize..3, bx in 2usize..7, by in 2usize..6) {
        let nxg = px * bx * 2; // even multiple → fold-mirrorable
        let nyg = py * by;
        World::run(px * py, move |comm| {
            let cart = CartComm::new(comm.clone(), px, py, true);
            let h = Halo2D::new(&cart, nxg, nyg);
            let (pj, pi) = h.padded();
            let f: View2<f64> = View::host("f", [pj, pi]);
            f.fill(f64::NAN);
            for j in 0..h.ny {
                for i in 0..h.nx {
                    f.set_at(H + j, H + i, g2(h.y0 + j, h.x0 + i));
                }
            }
            h.exchange(&f, FoldKind::Scalar, 0);
            for jl in 0..pj {
                for il in 0..pi {
                    if let Some(want) = expected2(&h, jl, il) {
                        assert_eq!(f.at(jl, il), want, "({jl},{il})");
                    }
                }
            }
        });
    }

    /// 3-D exchange strategies agree bitwise for any geometry and nz.
    #[test]
    fn prop_halo3d_strategies_agree(px in 1usize..3, bx in 2usize..6, by in 3usize..6, nz in 1usize..7) {
        let nxg = px * bx * 2;
        let nyg = by * 2;
        let run = move |strategy| {
            World::run(px * 2, move |comm| {
                let cart = CartComm::new(comm.clone(), px, 2, true);
                let h = Halo3D::new(Halo2D::new(&cart, nxg, nyg), nz, strategy);
                let f: View3<f64> = View::host("f", h.shape());
                f.fill(0.0);
                for k in 0..nz {
                    for j in 0..h.h2.ny {
                        for i in 0..h.h2.nx {
                            f.set_at(k, H + j, H + i, (k * 7) as f64 + g2(h.h2.y0 + j, h.h2.x0 + i));
                        }
                    }
                }
                h.exchange(&f, FoldKind::Vector, 0);
                f.to_vec()
            })
        };
        prop_assert_eq!(run(Strategy3D::HorizontalMajor), run(Strategy3D::Transpose));
    }

    /// Pooled single and batched 3-D exchanges are bitwise-identical to the
    /// freshly-allocating reference for any geometry, strategy, and fold kind.
    #[test]
    fn prop_pooled_matches_allocating(
        px in 1usize..3,
        bx in 2usize..6,
        by in 3usize..6,
        nz in 1usize..6,
        transpose in 0usize..2,
        vector in 0usize..2,
    ) {
        let nxg = px * bx * 2;
        let nyg = by * 2;
        let strategy = if transpose == 1 { Strategy3D::Transpose } else { Strategy3D::HorizontalMajor };
        let fold = if vector == 1 { FoldKind::Vector } else { FoldKind::Scalar };
        World::run(px * 2, move |comm| {
            let cart = CartComm::new(comm.clone(), px, 2, true);
            let h = Halo3D::new(Halo2D::new(&cart, nxg, nyg), nz, strategy)
                .with_space(kokkos_rs::Space::threads());
            let mk = |name: &'static str, salt: usize| {
                let f: View3<f64> = View::host(name, h.shape());
                f.fill(0.0);
                for k in 0..nz {
                    for j in 0..h.h2.ny {
                        for i in 0..h.h2.nx {
                            let v = (k * 7 + salt * 13) as f64
                                + g2(h.h2.y0 + j, h.h2.x0 + i);
                            f.set_at(k, H + j, H + i, v);
                        }
                    }
                }
                f
            };
            // Single-field: pooled vs allocating.
            let a = mk("a", 0);
            let b = mk("b", 0);
            h.exchange(&a, fold, 0);
            h.exchange_alloc(&b, fold, 0);
            assert_eq!(a.to_vec(), b.to_vec(), "exchange vs exchange_alloc");
            // Batched: pooled vs allocating, mixed fold kinds.
            let p0 = mk("p0", 1);
            let p1 = mk("p1", 2);
            let q0 = mk("q0", 1);
            let q1 = mk("q1", 2);
            h.exchange_many(&[(&p0, fold), (&p1, FoldKind::Scalar)], 20);
            h.exchange_many_alloc(&[(&q0, fold), (&q1, FoldKind::Scalar)], 20);
            assert_eq!(p0.to_vec(), q0.to_vec(), "exchange_many field 0");
            assert_eq!(p1.to_vec(), q1.to_vec(), "exchange_many field 1");
        });
    }

    /// Exchange twice = exchange once (fixpoint) for any scalar field.
    #[test]
    fn prop_exchange_fixpoint(bx in 3usize..8, by in 3usize..8, seed in 0u64..50) {
        let (nxg, nyg) = (bx * 2, by);
        World::run(2, move |comm| {
            let cart = CartComm::new(comm.clone(), 2, 1, true);
            let h = Halo2D::new(&cart, nxg, nyg);
            let (pj, pi) = h.padded();
            let f: View2<f64> = View::host("f", [pj, pi]);
            for j in 0..h.ny {
                for i in 0..h.nx {
                    let v = (((h.y0 + j) * 31 + (h.x0 + i) * 17) as u64)
                        .wrapping_mul(seed + 1) as f64;
                    f.set_at(H + j, H + i, v);
                }
            }
            h.exchange(&f, FoldKind::Scalar, 0);
            let once = f.to_vec();
            h.exchange(&f, FoldKind::Scalar, 7);
            assert_eq!(f.to_vec(), once);
        });
    }
}
