//! Monotone nanosecond clock shared by every profiling consumer.
//!
//! Chrome-trace timestamps must come from one common epoch so kernel
//! spans, comm events and counter samples from different threads line up
//! on the same timeline. The epoch lives in `mpi_sim::flight` (first
//! caller pins it) so flight-recorder events and profiler spans share a
//! single timeline — a post-mortem bundle's chrome-trace export overlays
//! directly on a profiler trace of the same run.

/// Nanoseconds elapsed since the trace epoch.
#[inline]
pub fn now_ns() -> u64 {
    mpi_sim::flight::now_ns()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotone() {
        let a = now_ns();
        let b = now_ns();
        let c = now_ns();
        assert!(a <= b && b <= c);
    }
}
