//! Monotone nanosecond clock shared by every profiling consumer.
//!
//! Chrome-trace timestamps must come from one common epoch so kernel
//! spans, comm events and counter samples from different threads line up
//! on the same timeline. The epoch is the first call to [`now_ns`] in the
//! process (lazily pinned with a `OnceLock`), which keeps raw timestamp
//! values small enough that microsecond rendering never loses precision.

use std::sync::OnceLock;
use std::time::Instant;

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// The process-wide trace epoch. First caller pins it.
pub fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds elapsed since the trace epoch.
#[inline]
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotone() {
        let a = now_ns();
        let b = now_ns();
        let c = now_ns();
        assert!(a <= b && b <= c);
    }
}
