//! Flight-recorder consumer side: the kernel-event bridge, causal
//! merging, post-mortem bundle I/O, and chrome-trace export.
//!
//! The recording core ([`FlightRing`], [`LamportClock`], thread-scope
//! arming) lives in `mpi_sim::flight`, underneath the transport whose
//! message path carries the clock. This module is everything that
//! happens *around* the rings:
//!
//! * [`init_bridge`] / [`arm`] — connect `kokkos-rs`'s dispatch
//!   chokepoint to the rings (every kernel launch records a
//!   `KernelBegin`/`KernelEnd` pair while armed) and mirror the armed
//!   flag so the disabled dispatch path stays one atomic load.
//! * [`merge_causal`] / [`snapshot_all`] — merge per-rank snapshots into
//!   one cross-rank stream ordered by `(lamport, rank, t_ns)`: a receive
//!   always sorts after its send, whatever the wall clocks measured.
//! * [`dump_postmortem`] / [`dump_on_failure`] — snapshot all reachable
//!   rings into an atomic (tmp + fsync + rename) JSON bundle tagged
//!   [`FLIGHT_SCHEMA`]. Failure edges call [`dump_on_failure`], which
//!   also enforces the one-bundle-per-incident claim.
//! * [`read_bundle`] / [`validate_bundle`] — parse + schema-check a
//!   bundle (used by `licom-trace`, the CI smoke job, and the tests).
//! * [`bundle_to_trace_events`] — re-express a bundle as chrome-trace
//!   events for the existing [`crate::trace`] exporter, so a post-mortem
//!   opens in Perfetto next to an ordinary profiler trace.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Once};

use kokkos_rs::profiling::{FlightSink, KernelId};
use mpi_sim::Comm;
use parking_lot::Mutex;

pub use mpi_sim::flight::{
    now_ns, FlightCtx, FlightEvent, FlightEventKind, FlightRing, FlightScope, LamportClock,
    DEFAULT_CAPACITY, FLIGHT_SCHEMA,
};

use crate::json::{self, Json};
use crate::trace::{ArgValue, TraceEvent, COMM_TRACK};

/// 48-bit FNV-1a hash of a kernel name. Bundles are JSON and the
/// dependency-free serializer stores numbers as `f64`, so every payload
/// word must survive an f64 round-trip — 48 bits fit exactly (collisions
/// across the ~100 kernel names in this codebase are not a concern).
pub fn name_hash(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h & ((1 << 48) - 1)
}

/// Global hash → kernel-name table, filled by the bridge as kernels are
/// first seen and embedded into every bundle so `licom-trace` can print
/// names, not hashes.
static KERNEL_NAMES: Mutex<BTreeMap<u64, &'static str>> = Mutex::new(BTreeMap::new());

thread_local! {
    /// Hashes this thread has already interned — keeps the armed
    /// recording path lock-free after each kernel's first launch.
    static SEEN_NAMES: std::cell::RefCell<HashSet<u64>> =
        std::cell::RefCell::new(HashSet::new());
}

fn intern_name(hash: u64, name: &'static str) {
    SEEN_NAMES.with(|seen| {
        if seen.borrow_mut().insert(hash) {
            KERNEL_NAMES.lock().entry(hash).or_insert(name);
        }
    });
}

/// Snapshot of the interning table (hash → kernel name).
pub fn kernel_name_table() -> BTreeMap<u64, String> {
    KERNEL_NAMES
        .lock()
        .iter()
        .map(|(h, n)| (*h, n.to_string()))
        .collect()
}

/// The bridge installed into `kokkos-rs`: kernel span edges from the
/// dispatch chokepoint become ring events on whichever thread launched
/// the kernel.
struct RingSink;

impl FlightSink for RingSink {
    fn kernel_begin(
        &self,
        kid: KernelId,
        name: &'static str,
        _space: &'static str,
        work_items: u64,
    ) {
        let hash = name_hash(name);
        intern_name(hash, name);
        mpi_sim::flight::record(FlightEventKind::KernelBegin, kid, hash, work_items);
    }

    fn kernel_end(&self, kid: KernelId) {
        mpi_sim::flight::record(FlightEventKind::KernelEnd, kid, 0, 0);
    }
}

/// Install the kernel-event bridge and the armed-flag mirror (idempotent;
/// every arming entry point calls it).
pub fn init_bridge() {
    static INIT: Once = Once::new();
    INIT.call_once(|| {
        kokkos_rs::profiling::install_flight_sink(Arc::new(RingSink));
        mpi_sim::flight::set_arm_observer(kokkos_rs::profiling::set_flight_armed);
    });
}

/// Arm flight recording for `comm`'s rank on the current thread (bridge
/// included): until the returned guard drops, kernel launches, message
/// traffic and explicit [`mpi_sim::flight::record`] calls from this
/// thread land in the rank's ring.
pub fn arm(comm: &Comm, capacity: usize) -> FlightScope {
    init_bridge();
    comm.arm_flight(capacity)
}

/// Sort events into the single cross-rank causal order: primary key is
/// the Lamport stamp (a receive's stamp is strictly greater than its
/// send's), ranks break ties deterministically, wall time last.
pub fn merge_causal(mut events: Vec<FlightEvent>) -> Vec<FlightEvent> {
    events.sort_by_key(|e| (e.lamport, e.rank, e.t_ns));
    events
}

/// Snapshot every ring and merge causally.
pub fn snapshot_all(rings: &[Arc<FlightRing>]) -> Vec<FlightEvent> {
    merge_causal(rings.iter().flat_map(|r| r.snapshot()).collect())
}

fn event_json(ev: &FlightEvent) -> Json {
    Json::obj([
        ("t_ns", Json::from(ev.t_ns)),
        ("lamport", Json::from(ev.lamport)),
        ("rank", Json::Num(ev.rank as f64)),
        ("kind", Json::from(ev.kind.name())),
        ("a", Json::from(ev.a)),
        ("b", Json::from(ev.b)),
        ("c", Json::from(ev.c)),
    ])
}

/// Build the bundle document for a set of rings (events causally
/// merged, kernel-name table embedded).
pub fn bundle_json(reason: &str, rings: &[Arc<FlightRing>]) -> Json {
    let events = snapshot_all(rings);
    let names = kernel_name_table();
    let mut doc = Json::obj([
        ("schema", Json::from(FLIGHT_SCHEMA)),
        ("reason", Json::from(reason)),
        (
            "ranks",
            Json::Arr(rings.iter().map(|r| Json::Num(r.rank() as f64)).collect()),
        ),
        (
            "total_recorded",
            Json::from(rings.iter().map(|r| r.total_recorded()).sum::<u64>()),
        ),
        (
            "kernel_names",
            Json::Obj(
                names
                    .into_iter()
                    .map(|(h, n)| (h.to_string(), Json::Str(n)))
                    .collect(),
            ),
        ),
        ("events", Json::Arr(events.iter().map(event_json).collect())),
    ]);
    doc.set("event_count", Json::from(events.len()));
    doc
}

/// Write a post-mortem bundle atomically: render to `<path>.tmp`, fsync,
/// rename — a crash mid-dump never leaves a truncated bundle behind.
pub fn dump_postmortem(
    path: &Path,
    reason: &str,
    rings: &[Arc<FlightRing>],
) -> std::io::Result<()> {
    let doc = json::render(&bundle_json(reason, rings));
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let tmp = path.with_extension("json.tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(doc.as_bytes())?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

/// A collision-free bundle path under `dir`: pid + process-wide sequence
/// number + a slug of the failure reason.
pub fn postmortem_path(dir: &Path, reason: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let slug: String = reason
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .take(32)
        .collect();
    dir.join(format!(
        "flight-{}-{}-{slug}.json",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed),
    ))
}

/// The failure-edge entry point: snapshot all of `comm`'s world's rings
/// into a bundle under `dir`. Returns `None` (without writing) when no
/// ring was ever armed, when another edge of the same incident already
/// dumped, or when the write fails — a post-mortem must never turn one
/// failure into two.
pub fn dump_on_failure(dir: &Path, reason: &str, comm: &Comm) -> Option<PathBuf> {
    let rings = comm.flight_rings();
    if rings.is_empty() || !comm.flight_claim_dump() {
        return None;
    }
    let path = postmortem_path(dir, reason);
    match dump_postmortem(&path, reason, &rings) {
        Ok(()) => Some(path),
        Err(e) => {
            eprintln!(
                "flight: failed to write post-mortem {}: {e}",
                path.display()
            );
            None
        }
    }
}

/// What the validator measured about a bundle.
#[derive(Debug, Clone, Default)]
pub struct BundleSummary {
    pub reason: String,
    pub events: usize,
    pub ranks: usize,
    /// Event count per kind name.
    pub by_kind: BTreeMap<String, usize>,
}

/// Schema-check an already-parsed bundle: tag, well-formed events with
/// known kinds, and the causal-order invariant (Lamport stamps
/// non-decreasing down the merged stream).
pub fn validate_bundle(doc: &Json) -> Result<BundleSummary, String> {
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing schema tag")?;
    if schema != FLIGHT_SCHEMA {
        return Err(format!("schema {schema:?}, expected {FLIGHT_SCHEMA:?}"));
    }
    let reason = doc
        .get("reason")
        .and_then(Json::as_str)
        .ok_or("missing reason")?
        .to_string();
    let ranks = doc
        .get("ranks")
        .and_then(Json::as_arr)
        .ok_or("missing ranks array")?
        .len();
    let events = doc
        .get("events")
        .and_then(Json::as_arr)
        .ok_or("missing events array")?;
    let mut summary = BundleSummary {
        reason,
        events: events.len(),
        ranks,
        ..BundleSummary::default()
    };
    let mut last_lamport = 0u64;
    for (i, ev) in events.iter().enumerate() {
        let field = |name: &str| {
            ev.get(name)
                .and_then(Json::as_num)
                .ok_or(format!("event {i}: bad or missing `{name}`"))
        };
        for name in ["t_ns", "rank", "a", "b", "c"] {
            field(name)?;
        }
        let kind = ev
            .get("kind")
            .and_then(Json::as_str)
            .ok_or(format!("event {i}: missing kind"))?;
        if FlightEventKind::from_name(kind).is_none() {
            return Err(format!("event {i}: unknown kind {kind:?}"));
        }
        let lamport = field("lamport")? as u64;
        if lamport < last_lamport {
            return Err(format!(
                "event {i}: lamport {lamport} < {last_lamport} — stream not causally merged"
            ));
        }
        last_lamport = lamport;
        *summary.by_kind.entry(kind.to_string()).or_insert(0) += 1;
    }
    Ok(summary)
}

fn event_from_json(ev: &Json, i: usize) -> Result<FlightEvent, String> {
    let num = |name: &str| {
        ev.get(name)
            .and_then(Json::as_num)
            .ok_or(format!("event {i}: bad or missing `{name}`"))
    };
    let kind = ev
        .get("kind")
        .and_then(Json::as_str)
        .and_then(FlightEventKind::from_name)
        .ok_or(format!("event {i}: bad kind"))?;
    Ok(FlightEvent {
        t_ns: num("t_ns")? as u64,
        lamport: num("lamport")? as u64,
        rank: num("rank")? as i64,
        kind,
        a: num("a")? as u64,
        b: num("b")? as u64,
        c: num("c")? as u64,
    })
}

/// A parsed, validated bundle.
#[derive(Debug, Clone)]
pub struct Bundle {
    pub reason: String,
    pub events: Vec<FlightEvent>,
    /// Kernel-name table (hash → name) embedded at dump time.
    pub kernel_names: BTreeMap<u64, String>,
}

/// Read + validate a bundle from disk.
pub fn read_bundle(path: &Path) -> Result<Bundle, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let doc = json::parse(&text)?;
    validate_bundle(&doc)?;
    let events = doc
        .get("events")
        .and_then(Json::as_arr)
        .unwrap_or(&[])
        .iter()
        .enumerate()
        .map(|(i, ev)| event_from_json(ev, i))
        .collect::<Result<Vec<_>, _>>()?;
    let kernel_names = match doc.get("kernel_names") {
        Some(Json::Obj(map)) => map
            .iter()
            .filter_map(|(k, v)| Some((k.parse::<u64>().ok()?, v.as_str()?.to_string())))
            .collect(),
        _ => BTreeMap::new(),
    };
    let reason = doc
        .get("reason")
        .and_then(Json::as_str)
        .unwrap_or("")
        .to_string();
    Ok(Bundle {
        reason,
        events,
        kernel_names,
    })
}

fn kind_category(kind: FlightEventKind) -> &'static str {
    use FlightEventKind::*;
    match kind {
        KernelBegin | KernelEnd => "kernel",
        MsgSend | MsgRecv | HaloSend | HaloRecv | EscrowResend => "comm",
        StepBegin | StepEnd | CheckpointSave | CheckpointRestore | SchedDecision => "model",
        _ => "fault",
    }
}

fn event_label(ev: &FlightEvent, names: &BTreeMap<u64, String>) -> String {
    match ev.kind {
        FlightEventKind::KernelBegin => match names.get(&ev.b) {
            Some(name) => format!("{name} (kid {})", ev.a),
            None => format!("kernel {:x} (kid {})", ev.b, ev.a),
        },
        _ => ev.kind.name().to_string(),
    }
}

/// Re-express a causally-merged event stream as chrome-trace events:
/// `KernelBegin`/`KernelEnd` pairs from the same rank become complete
/// spans on the rank's compute track, everything else an instant on the
/// rank's comm/fault track.
pub fn bundle_to_trace_events(
    events: &[FlightEvent],
    names: &BTreeMap<u64, String>,
) -> Vec<TraceEvent> {
    let mut out = Vec::with_capacity(events.len());
    // Open kernel spans by (rank, kid): begin waits for its end.
    let mut open: HashMap<(i64, u64), &FlightEvent> = HashMap::new();
    for ev in events {
        match ev.kind {
            FlightEventKind::KernelBegin => {
                open.insert((ev.rank, ev.a), ev);
            }
            FlightEventKind::KernelEnd => {
                if let Some(begin) = open.remove(&(ev.rank, ev.a)) {
                    out.push(TraceEvent {
                        name: event_label(begin, names),
                        cat: "kernel",
                        ph: 'X',
                        ts_ns: begin.t_ns,
                        dur_ns: ev.t_ns.saturating_sub(begin.t_ns),
                        pid: ev.rank,
                        tid: 0,
                        args: vec![
                            ("lamport", ArgValue::U64(begin.lamport)),
                            ("work_items", ArgValue::U64(begin.c)),
                        ],
                    });
                }
            }
            kind => {
                out.push(TraceEvent {
                    name: ev.kind.name().to_string(),
                    cat: kind_category(kind),
                    ph: 'i',
                    ts_ns: ev.t_ns,
                    dur_ns: 0,
                    pid: ev.rank,
                    tid: COMM_TRACK,
                    args: vec![
                        ("lamport", ArgValue::U64(ev.lamport)),
                        ("a", ArgValue::U64(ev.a)),
                        ("b", ArgValue::U64(ev.b)),
                        ("c", ArgValue::U64(ev.c)),
                    ],
                });
            }
        }
    }
    // A kernel open at snapshot time (e.g. the failing launch itself) is
    // still evidence: emit it as an instant so it survives the export.
    for (_, begin) in open {
        out.push(TraceEvent {
            name: event_label(begin, names),
            cat: "kernel",
            ph: 'i',
            ts_ns: begin.t_ns,
            dur_ns: 0,
            pid: begin.rank,
            tid: 0,
            args: vec![("lamport", ArgValue::U64(begin.lamport))],
        });
    }
    out
}

/// Render the "last `n` events before failure" report: the causal tail
/// of the merged stream, one line per event, newest last.
pub fn render_last_events(
    events: &[FlightEvent],
    names: &BTreeMap<u64, String>,
    n: usize,
) -> String {
    let tail = &events[events.len().saturating_sub(n)..];
    let mut out = String::new();
    out.push_str(&format!(
        "last {} of {} events (causal order; lamport | rank | t_us):\n",
        tail.len(),
        events.len()
    ));
    for ev in tail {
        out.push_str(&format!(
            "  [{:>8}] rank {:>2} t={:>12.3}  {:<18} a={} b={} c={}\n",
            ev.lamport,
            ev.rank,
            ev.t_ns as f64 / 1000.0,
            event_label(ev, names),
            ev.a,
            ev.b,
            ev.c
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpi_sim::flight::FlightRing;

    fn ring_with(rank: i64, events: &[(FlightEventKind, u64, u64, u64)]) -> Arc<FlightRing> {
        let ring = FlightRing::new(rank, 64);
        let clock = LamportClock::default();
        for (kind, a, b, c) in events {
            ring.record(&clock, *kind, *a, *b, *c);
        }
        ring
    }

    #[test]
    fn merge_causal_orders_recv_after_send() {
        let sender = FlightRing::new(0, 8);
        let receiver = FlightRing::new(1, 8);
        let c0 = LamportClock::default();
        let c1 = LamportClock::default();
        // Rank 1 is "ahead" in wall time but the Lamport merge still
        // orders its receive after rank 0's send.
        let sent = c0.tick();
        sender.record_stamped(FlightEventKind::MsgSend, sent, 1, 7, 4);
        let merged = c1.observe(sent);
        receiver.record_stamped(FlightEventKind::MsgRecv, merged, 0, 7, 4);
        let events = snapshot_all(&[receiver, sender]);
        assert_eq!(events[0].kind, FlightEventKind::MsgSend);
        assert_eq!(events[1].kind, FlightEventKind::MsgRecv);
        assert!(events[0].lamport < events[1].lamport);
    }

    #[test]
    fn bundle_round_trips_and_validates() {
        let dir = std::env::temp_dir().join(format!("kp-flight-test-{}", std::process::id()));
        let rings = vec![
            ring_with(
                0,
                &[
                    (FlightEventKind::StepBegin, 3, 0, 0),
                    (FlightEventKind::GuardTrip, 3, 2, 0),
                ],
            ),
            ring_with(1, &[(FlightEventKind::PeerDead, 0, 11, 0)]),
        ];
        let path = postmortem_path(&dir, "guard trip: step 3");
        dump_postmortem(&path, "guard trip: step 3", &rings).unwrap();
        assert!(!path.with_extension("json.tmp").exists());

        let bundle = read_bundle(&path).unwrap();
        assert_eq!(bundle.reason, "guard trip: step 3");
        assert_eq!(bundle.events.len(), 3);
        let doc = json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let summary = validate_bundle(&doc).unwrap();
        assert_eq!(summary.ranks, 2);
        assert_eq!(summary.by_kind.get("GuardTrip"), Some(&1));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn validate_rejects_wrong_schema_and_unknown_kind() {
        let doc = json::parse(r#"{"schema":"nope","reason":"r","ranks":[],"events":[]}"#).unwrap();
        assert!(validate_bundle(&doc).unwrap_err().contains("schema"));
        let doc = json::parse(
            r#"{"schema":"licomkpp-flight-v1","reason":"r","ranks":[0],
                "events":[{"t_ns":1,"lamport":1,"rank":0,"kind":"Nope","a":0,"b":0,"c":0}]}"#,
        )
        .unwrap();
        assert!(validate_bundle(&doc).unwrap_err().contains("unknown kind"));
    }

    #[test]
    fn trace_export_of_bundle_is_schema_valid() {
        let h = name_hash("FunctorEos");
        let clock = LamportClock::default();
        let ring = FlightRing::new(0, 16);
        ring.record(&clock, FlightEventKind::KernelBegin, 1, h, 100);
        ring.record(&clock, FlightEventKind::KernelEnd, 1, 0, 0);
        ring.record(&clock, FlightEventKind::HaloSend, 0x30001, 1, 64);
        ring.record(&clock, FlightEventKind::KernelBegin, 2, h, 100); // unclosed
        let events = snapshot_all(&[ring]);
        let names: BTreeMap<u64, String> = [(h, "FunctorEos".to_string())].into();
        let trace = bundle_to_trace_events(&events, &names);
        let doc = crate::trace::render(&trace);
        let summary = json::validate_chrome_trace(&doc).unwrap();
        assert_eq!(summary.spans, 1);
        assert_eq!(summary.instants, 2);
        assert!(doc.contains("FunctorEos"));
    }

    #[test]
    fn last_events_report_shows_tail() {
        let ring = ring_with(
            2,
            &[
                (FlightEventKind::StepBegin, 1, 0, 0),
                (FlightEventKind::StepEnd, 1, 0, 0),
                (FlightEventKind::Drift, 2, 0, 0),
            ],
        );
        let events = snapshot_all(&[ring]);
        let report = render_last_events(&events, &BTreeMap::new(), 2);
        assert!(report.contains("last 2 of 3 events"));
        assert!(!report.contains("StepBegin"));
        assert!(report.contains("Drift"));
    }

    #[test]
    fn name_hash_fits_48_bits() {
        for name in ["FunctorEos", "FunctorBarotropic", "x"] {
            assert!(name_hash(name) < (1 << 48));
        }
        assert_ne!(name_hash("a"), name_hash("b"));
    }
}
