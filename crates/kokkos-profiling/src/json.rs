//! Minimal JSON parser, serializer and chrome-trace schema validator.
//!
//! The container has no serde, so trace files are validated with a small
//! recursive-descent parser — enough JSON to round-trip what
//! [`crate::trace`] emits, used by the golden-schema tests and the CI
//! profiling job to prove the exported file is Perfetto-loadable. The
//! [`render`]/[`render_pretty`] serializers close the loop for documents
//! we *write* (the telemetry layer's `BENCH_run.json`): build a [`Json`]
//! tree, render it, and re-parse to schema-validate what actually landed
//! on disk.

use std::collections::BTreeMap;

#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Build an object from `(key, value)` pairs.
    pub fn obj<const N: usize>(pairs: [(&str, Json); N]) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Insert into an object; panics on non-objects (builder misuse).
    pub fn set(&mut self, key: &str, value: Json) {
        match self {
            Json::Obj(m) => {
                m.insert(key.to_string(), value);
            }
            _ => panic!("Json::set on a non-object"),
        }
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn render_num(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no spelling for NaN/Inf; null keeps the document valid
        // and the gap visible.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn render_into(v: &Json, indent: Option<usize>, depth: usize, out: &mut String) {
    let (nl, pad, pad_close, colon) = match indent {
        Some(w) => (
            "\n",
            " ".repeat(w * (depth + 1)),
            " ".repeat(w * depth),
            ": ",
        ),
        None => ("", String::new(), String::new(), ":"),
    };
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Num(n) => render_num(*n, out),
        Json::Str(s) => render_string(s, out),
        Json::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad);
                render_into(item, indent, depth + 1, out);
            }
            out.push_str(nl);
            out.push_str(&pad_close);
            out.push(']');
        }
        Json::Obj(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad);
                render_string(k, out);
                out.push_str(colon);
                render_into(val, indent, depth + 1, out);
            }
            out.push_str(nl);
            out.push_str(&pad_close);
            out.push('}');
        }
    }
}

/// Serialize compactly. Object keys render in `BTreeMap` order, so the
/// output is deterministic for a given tree.
pub fn render(v: &Json) -> String {
    let mut out = String::new();
    render_into(v, None, 0, &mut out);
    out
}

/// Serialize with 2-space indentation — the diff-friendly form used for
/// committed artifacts like `BENCH_baseline.json`.
pub fn render_pretty(v: &Json) -> String {
    let mut out = String::new();
    render_into(v, Some(2), 0, &mut out);
    out.push('\n');
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("JSON error at byte {}: {msg}", self.pos)
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(&format!("bad number `{text}`")))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("short \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through untouched.
                    let s = &self.bytes[self.pos..];
                    let ch_len = match s[0] {
                        b if b < 0x80 => 1,
                        b if b >= 0xf0 => 4,
                        b if b >= 0xe0 => 3,
                        _ => 2,
                    };
                    out.push_str(
                        std::str::from_utf8(&s[..ch_len.min(s.len())])
                            .map_err(|_| self.err("bad utf8"))?,
                    );
                    self.pos += ch_len;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Parse a JSON document.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage"));
    }
    Ok(v)
}

/// What the validator measured about a trace document.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceSummary {
    pub events: usize,
    pub spans: usize,
    pub instants: usize,
    pub counters: usize,
    pub metadata: usize,
    /// Distinct `(pid, tid)` tracks carrying non-metadata events.
    pub tracks: usize,
}

/// Validate an already-parsed chrome-trace document: the `traceEvents`
/// array exists, every event has `name`/`ph`/`ts`/`pid`/`tid`, every
/// `"X"` span a non-negative `dur`, and timestamps are monotone within
/// each `(pid, tid)` track.
pub fn validate_chrome_trace_value(doc: &Json) -> Result<TraceSummary, String> {
    let events = doc
        .get("traceEvents")
        .ok_or("missing traceEvents")?
        .as_arr()
        .ok_or("traceEvents is not an array")?;
    let mut summary = TraceSummary::default();
    let mut last_ts: BTreeMap<(i64, i64), f64> = BTreeMap::new();
    for (i, ev) in events.iter().enumerate() {
        let ctx = |field: &str| format!("event {i}: bad or missing `{field}`");
        ev.get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| ctx("name"))?;
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| ctx("ph"))?;
        let pid = ev
            .get("pid")
            .and_then(Json::as_num)
            .ok_or_else(|| ctx("pid"))? as i64;
        summary.events += 1;
        match ph {
            "M" => {
                summary.metadata += 1;
                continue;
            }
            "X" => {
                let dur = ev
                    .get("dur")
                    .and_then(Json::as_num)
                    .ok_or_else(|| ctx("dur"))?;
                if dur < 0.0 {
                    return Err(format!("event {i}: negative dur"));
                }
                summary.spans += 1;
            }
            "i" => summary.instants += 1,
            "C" => summary.counters += 1,
            other => return Err(format!("event {i}: unknown ph `{other}`")),
        }
        let tid = ev
            .get("tid")
            .and_then(Json::as_num)
            .ok_or_else(|| ctx("tid"))? as i64;
        let ts = ev
            .get("ts")
            .and_then(Json::as_num)
            .ok_or_else(|| ctx("ts"))?;
        if let Some(prev) = last_ts.get(&(pid, tid)) {
            if ts < *prev {
                return Err(format!(
                    "event {i}: ts {ts} < {prev} — track ({pid},{tid}) not monotone"
                ));
            }
        }
        last_ts.insert((pid, tid), ts);
    }
    summary.tracks = last_ts.len();
    Ok(summary)
}

/// Parse + validate in one call (what the CI job and `exp_profile` use).
pub fn validate_chrome_trace(text: &str) -> Result<TraceSummary, String> {
    validate_chrome_trace_value(&parse(text)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a":[1,2.5,-3e2],"b":{"c":"x\ny","d":null,"e":true}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2], Json::Num(-300.0));
        assert_eq!(
            v.get("b").unwrap().get("c").unwrap().as_str().unwrap(),
            "x\ny"
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{}extra").is_err());
        assert!(parse(r#"{"a"}"#).is_err());
    }

    #[test]
    fn validator_accepts_well_formed_trace() {
        let doc = r#"{"traceEvents":[
            {"name":"process_name","ph":"M","pid":0,"args":{"name":"rank 0"}},
            {"name":"k1","cat":"kernel","ph":"X","ts":1.0,"dur":5.0,"pid":0,"tid":0},
            {"name":"k2","cat":"kernel","ph":"X","ts":6.0,"dur":2.0,"pid":0,"tid":0},
            {"name":"send","cat":"comm","ph":"i","ts":3.0,"pid":0,"tid":9},
            {"name":"dma","cat":"counter","ph":"C","ts":7.0,"pid":0,"tid":9,"args":{"bytes":12}}
        ]}"#;
        let s = validate_chrome_trace(doc).unwrap();
        assert_eq!(s.spans, 2);
        assert_eq!(s.instants, 1);
        assert_eq!(s.counters, 1);
        assert_eq!(s.metadata, 1);
        assert_eq!(s.tracks, 2);
    }

    #[test]
    fn validator_rejects_non_monotone_track() {
        let doc = r#"{"traceEvents":[
            {"name":"a","ph":"X","ts":5.0,"dur":1.0,"pid":0,"tid":0},
            {"name":"b","ph":"X","ts":4.0,"dur":1.0,"pid":0,"tid":0}
        ]}"#;
        let err = validate_chrome_trace(doc).unwrap_err();
        assert!(err.contains("not monotone"), "{err}");
    }

    #[test]
    fn validator_rejects_span_without_dur() {
        let doc = r#"{"traceEvents":[{"name":"a","ph":"X","ts":5.0,"pid":0,"tid":0}]}"#;
        assert!(validate_chrome_trace(doc).is_err());
    }

    #[test]
    fn render_round_trips() {
        let doc = Json::obj([
            ("pi", Json::Num(3.25)),
            ("count", Json::from(42u64)),
            ("name", Json::from("line\n\"quoted\"")),
            ("flags", Json::Arr(vec![Json::Bool(true), Json::Null])),
            ("nested", Json::obj([("empty", Json::Arr(vec![]))])),
        ]);
        for text in [render(&doc), render_pretty(&doc)] {
            assert_eq!(parse(&text).unwrap(), doc, "round-trip of: {text}");
        }
    }

    #[test]
    fn render_integers_without_fraction() {
        assert_eq!(render(&Json::Num(7.0)), "7");
        assert_eq!(render(&Json::Num(-2.5)), "-2.5");
        assert_eq!(render(&Json::Num(f64::NAN)), "null");
    }

    #[test]
    fn render_is_deterministic_across_insertion_order() {
        let a = Json::obj([("x", Json::Num(1.0)), ("a", Json::Num(2.0))]);
        let b = Json::obj([("a", Json::Num(2.0)), ("x", Json::Num(1.0))]);
        assert_eq!(render(&a), render(&b));
    }
}
