//! # kokkos-profiling — Kokkos-Tools-style observability
//!
//! The consumer side of the hook interface `kokkos-rs` exposes from every
//! dispatch site (`kokkos_rs::profiling`), mirroring the Kokkos Tools
//! ecosystem the paper's performance analysis leans on:
//!
//! | Kokkos Tools piece          | Here                                  |
//! |-----------------------------|---------------------------------------|
//! | `kokkosp_*` callbacks       | [`kokkos_rs::ProfilingHooks`]         |
//! | simple-kernel-timer         | [`Profiler`] tables + `render_report` |
//! | kernel-logger / Caliper     | chrome-trace export ([`trace`])       |
//! | space-time-stack regions    | [`kokkos_rs::profiling::region`]      |
//! | paper SYPD / hotspot shares | [`SypdReporter`] ([`sypd`])           |
//!
//! A single [`Profiler`] aggregates every rank of an `mpi-sim` job
//! (ranks are threads; see [`set_thread_rank`]), interleaves kernel spans
//! with halo-traffic instants and Sunway CPE/DMA counter samples on
//! per-rank tracks, and writes a Perfetto-loadable JSON atomically at run
//! end. With no tool attached, the hook layer costs one atomic load per
//! dispatch — the model's zero-allocation steady state is untouched.

pub mod clock;
pub mod flight;
pub mod json;
pub mod profiler;
pub mod prometheus;
pub mod stats;
pub mod sypd;
pub mod telemetry;
pub mod trace;

pub use clock::now_ns;
pub use flight::{
    dump_on_failure, read_bundle, render_last_events, validate_bundle, Bundle, BundleSummary,
    FlightCtx, FlightEvent, FlightEventKind, FlightRing, FLIGHT_SCHEMA,
};
pub use json::{
    parse as parse_json, render as render_json, render_pretty as render_json_pretty,
    validate_chrome_trace, Json, TraceSummary,
};
pub use profiler::{
    attach, attach_instance, detach, detach_instance, set_thread_rank, KernelKey, Profiler,
};
pub use prometheus::{
    render_gauge, render_named_counters, render_named_counters_labeled, render_named_gauges,
    render_named_gauges_labeled, render_phase_seconds, render_phase_seconds_labeled,
    render_prometheus, render_prometheus_labeled, render_traffic, render_traffic_labeled,
};
pub use stats::{CounterTable, Stat, StatsTable};
pub use sypd::{bucket_of, hotspot_shares, is_enclosing, sypd, HotspotRow, SypdReporter, BUCKETS};
pub use telemetry::{
    gather_phases, try_gather_phases, CriticalPath, DriftBank, DriftDetector, DriftEvent,
    ImbalanceReport, PartialPhases, PhaseImbalance, PhaseProfile, RingBuffer, WaitComputeSplit,
};
pub use trace::{ArgValue, TraceEvent, COMM_TRACK, COUNTER_TRACK};

/// Re-export of the hook side so consumers need only this crate.
pub use kokkos_rs::profiling::{
    current_instance, enabled, enter_instance, next_instance_key, region, test_registry_lock,
    DeepCopyInfo, InstanceKey, InstanceScope, KernelId, KernelInfo, PatternKind, PolicyKind,
    ProfilingHooks,
};
