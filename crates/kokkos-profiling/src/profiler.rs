//! The in-process profiling tool: an implementation of
//! [`kokkos_rs::ProfilingHooks`] that aggregates kernel/region/deep-copy
//! statistics into lock-sharded tables and records a bounded trace-event
//! buffer for chrome-trace export.
//!
//! One [`Profiler`] serves every rank of an `mpi-sim` job: simulated ranks
//! run on threads, so each rank thread declares itself once with
//! [`set_thread_rank`] and all events it emits land on that rank's `pid`
//! track. Kernel begin/end callbacks fire on the dispatching thread
//! (dispatch is synchronous in every execution space), so span pairing is
//! done through a sharded open-span map keyed by kernel id — robust even
//! if a functor panic unwinds through the dispatch, because the RAII
//! guards in `kokkos-rs` still deliver the `end_*` callback.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use kokkos_rs::profiling::{self, DeepCopyInfo, KernelId, KernelInfo, ProfilingHooks};
use kokkos_rs::MemSpace;
use parking_lot::Mutex;

use crate::clock;
use crate::stats::{Stat, StatsTable};
use crate::trace::{ArgValue, TraceEvent, COMM_TRACK, COUNTER_TRACK};

const OPEN_SHARDS: usize = 16;

/// Default bound on the trace-event buffer (events beyond it are counted
/// in [`Profiler::dropped_events`], never silently lost from accounting —
/// the stats tables keep aggregating regardless).
pub const DEFAULT_MAX_EVENTS: usize = 1 << 20;

static NEXT_TID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static THREAD_RANK: Cell<i64> = const { Cell::new(0) };
    static THREAD_TID: Cell<i64> = const { Cell::new(-1) };
    static REGION_STACK: RefCell<Vec<(&'static str, u64)>> = const { RefCell::new(Vec::new()) };
}

/// Declare the simulated MPI rank of the calling thread. All events the
/// thread emits afterwards carry this rank as their chrome-trace `pid`.
pub fn set_thread_rank(rank: i64) {
    THREAD_RANK.with(|r| r.set(rank));
}

fn thread_rank() -> i64 {
    THREAD_RANK.with(|r| r.get())
}

fn thread_tid() -> i64 {
    THREAD_TID.with(|t| {
        if t.get() < 0 {
            t.set(NEXT_TID.fetch_add(1, Ordering::Relaxed) as i64);
        }
        t.get()
    })
}

/// Aggregation key for one kernel: functor name × execution space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct KernelKey {
    pub name: &'static str,
    pub space: &'static str,
}

struct OpenKernel {
    name: &'static str,
    space: &'static str,
    pattern: &'static str,
    policy: &'static str,
    work_items: u64,
    start_ns: u64,
    pid: i64,
    tid: i64,
    /// Innermost region at launch time, for trace args.
    region: Option<&'static str>,
}

struct OpenCopy {
    name: String,
    key: (&'static str, &'static str),
    bytes: u64,
    start_ns: u64,
    pid: i64,
    tid: i64,
}

fn memspace_name(m: MemSpace) -> &'static str {
    match m {
        MemSpace::Host => "Host",
        MemSpace::Device => "Device",
    }
}

/// The aggregating + tracing consumer. Construct, wrap in an `Arc`, and
/// [`attach`] it; detach with [`detach`] when done.
pub struct Profiler {
    max_events: usize,
    open: [Mutex<HashMap<KernelId, OpenKernel>>; OPEN_SHARDS],
    open_copies: Mutex<HashMap<KernelId, OpenCopy>>,
    /// Per-(kernel, space) durations and work items.
    pub kernels: StatsTable<KernelKey>,
    /// Per-execution-space totals.
    pub spaces: StatsTable<&'static str>,
    /// Per-region wall time (regions nest; each level accounts its own
    /// full span, like Kokkos Tools' region timers).
    pub regions: StatsTable<&'static str>,
    /// Per-(src, dst) memory-space deep-copy durations and bytes.
    pub copies: StatsTable<(&'static str, &'static str)>,
    events: Mutex<Vec<TraceEvent>>,
    dropped: AtomicU64,
    fences: AtomicU64,
}

impl Default for Profiler {
    fn default() -> Self {
        Self::new(DEFAULT_MAX_EVENTS)
    }
}

impl Profiler {
    pub fn new(max_events: usize) -> Self {
        Self {
            max_events,
            open: std::array::from_fn(|_| Mutex::new(HashMap::new())),
            open_copies: Mutex::new(HashMap::new()),
            kernels: StatsTable::new(),
            spaces: StatsTable::new(),
            regions: StatsTable::new(),
            copies: StatsTable::new(),
            events: Mutex::new(Vec::new()),
            dropped: AtomicU64::new(0),
            fences: AtomicU64::new(0),
        }
    }

    fn record_event(&self, ev: TraceEvent) {
        let mut events = self.events.lock();
        if events.len() >= self.max_events {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        events.push(ev);
    }

    fn begin_kernel_common(&self, kid: KernelId, info: &KernelInfo) {
        let span = OpenKernel {
            name: info.name,
            space: info.space,
            pattern: info.pattern.name(),
            policy: info.policy.name(),
            work_items: info.work_items,
            start_ns: clock::now_ns(),
            pid: thread_rank(),
            tid: thread_tid(),
            region: REGION_STACK.with(|s| s.borrow().last().map(|(n, _)| *n)),
        };
        self.open[kid as usize % OPEN_SHARDS]
            .lock()
            .insert(kid, span);
    }

    fn end_kernel_common(&self, kid: KernelId) {
        let Some(span) = self.open[kid as usize % OPEN_SHARDS].lock().remove(&kid) else {
            return;
        };
        let dur = clock::now_ns().saturating_sub(span.start_ns);
        let key = KernelKey {
            name: span.name,
            space: span.space,
        };
        self.kernels.record(key, dur, 0, span.work_items);
        self.spaces.record(span.space, dur, 0, span.work_items);
        let mut args = vec![
            ("kid", ArgValue::U64(kid)),
            ("pattern", ArgValue::Str(span.pattern.to_string())),
            ("policy", ArgValue::Str(span.policy.to_string())),
            ("space", ArgValue::Str(span.space.to_string())),
            ("work_items", ArgValue::U64(span.work_items)),
        ];
        if let Some(region) = span.region {
            args.push(("region", ArgValue::Str(region.to_string())));
        }
        self.record_event(TraceEvent {
            name: span.name.to_string(),
            cat: "kernel",
            ph: 'X',
            ts_ns: span.start_ns,
            dur_ns: dur,
            pid: span.pid,
            tid: span.tid,
            args,
        });
    }

    // ---- communication + accelerator counter bridges ------------------

    /// Record one `mpi-sim` traffic event as an instant on the rank's
    /// comm track. Called by the tap adapter in `lib.rs`.
    pub fn on_comm(&self, rank: i64, kind: &'static str, peer: i64, bytes: u64, tag: i64) {
        self.record_event(TraceEvent {
            name: kind.to_string(),
            cat: "comm",
            ph: 'i',
            ts_ns: clock::now_ns(),
            dur_ns: 0,
            pid: rank,
            tid: COMM_TRACK,
            args: vec![
                ("peer", ArgValue::I64(peer)),
                ("bytes", ArgValue::U64(bytes)),
                ("tag", ArgValue::I64(tag)),
            ],
        });
    }

    /// Emit one counter sample (`ph: "C"`) on the rank's counter track.
    pub fn counter_sample(&self, rank: i64, name: &str, value: u64) {
        self.record_event(TraceEvent {
            name: name.to_string(),
            cat: "counter",
            ph: 'C',
            ts_ns: clock::now_ns(),
            dur_ns: 0,
            pid: rank,
            tid: COUNTER_TRACK,
            args: vec![("value", ArgValue::U64(value))],
        });
    }

    /// Snapshot a Sunway core group's counters onto the rank's counter
    /// track — the CPE/DMA bridge of the paper's "job-level performance
    /// monitoring" toolchain (§VI-C).
    pub fn sample_sunway(&self, rank: i64, cg: &sunway_sim::CgCounters) {
        self.counter_sample(rank, "sw.kernels_launched", cg.kernels_launched);
        self.counter_sample(rank, "sw.kernel_cycles", cg.kernel_cycles);
        self.counter_sample(rank, "sw.flops", cg.totals.flops);
        self.counter_sample(rank, "sw.dma_get_bytes", cg.totals.dma_get_bytes);
        self.counter_sample(rank, "sw.dma_put_bytes", cg.totals.dma_put_bytes);
        self.counter_sample(rank, "sw.dma_transactions", cg.totals.dma_transactions);
        self.counter_sample(rank, "sw.ldm_bytes", cg.totals.ldm_bytes);
    }

    // ---- results -------------------------------------------------------

    pub fn fences(&self) -> u64 {
        self.fences.load(Ordering::Relaxed)
    }

    pub fn dropped_events(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    pub fn event_count(&self) -> usize {
        self.events.lock().len()
    }

    /// Copy out the trace-event buffer (for merging or custom export).
    pub fn events_snapshot(&self) -> Vec<TraceEvent> {
        self.events.lock().clone()
    }

    /// Write the chrome-trace JSON atomically to `path`.
    pub fn write_trace(&self, path: &Path) -> std::io::Result<()> {
        crate::trace::write_atomic(path, &self.events.lock())
    }

    /// Per-kernel table sorted by descending total time.
    pub fn kernel_table(&self) -> Vec<(KernelKey, Stat)> {
        let mut rows = self.kernels.snapshot();
        rows.sort_by(|a, b| b.1.total_ns.cmp(&a.1.total_ns).then(a.0.name.cmp(b.0.name)));
        rows
    }

    /// Per-region table sorted by descending total time.
    pub fn region_table(&self) -> Vec<(&'static str, Stat)> {
        let mut rows = self.regions.snapshot();
        rows.sort_by(|a, b| b.1.total_ns.cmp(&a.1.total_ns).then(a.0.cmp(b.0)));
        rows
    }

    /// Human-readable summary of every table, Kokkos "simple kernel
    /// timer" style.
    pub fn render_report(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<28} {:<10} {:>8} {:>12} {:>12} {:>12}",
            "kernel", "space", "calls", "total ms", "mean us", "max us"
        );
        for (k, s) in self.kernel_table() {
            let _ = writeln!(
                out,
                "{:<28} {:<10} {:>8} {:>12.3} {:>12.3} {:>12.3}",
                k.name,
                k.space,
                s.count,
                s.total_ns as f64 / 1e6,
                s.mean_ns() as f64 / 1e3,
                s.max_ns as f64 / 1e3
            );
        }
        if !self.regions.is_empty() {
            let _ = writeln!(out, "\n{:<28} {:>8} {:>12}", "region", "calls", "total ms");
            for (name, s) in self.region_table() {
                let _ = writeln!(
                    out,
                    "{:<28} {:>8} {:>12.3}",
                    name,
                    s.count,
                    s.total_ns as f64 / 1e6
                );
            }
        }
        if !self.copies.is_empty() {
            let _ = writeln!(
                out,
                "\n{:<28} {:>8} {:>12} {:>12}",
                "deep_copy", "calls", "bytes", "total ms"
            );
            for ((src, dst), s) in self.copies.snapshot() {
                let _ = writeln!(
                    out,
                    "{:<28} {:>8} {:>12} {:>12.3}",
                    format!("{src}->{dst}"),
                    s.count,
                    s.bytes,
                    s.total_ns as f64 / 1e6
                );
            }
        }
        out
    }

    /// Drop all aggregates and buffered events.
    pub fn reset(&self) {
        for shard in &self.open {
            shard.lock().clear();
        }
        self.open_copies.lock().clear();
        self.kernels.clear();
        self.spaces.clear();
        self.regions.clear();
        self.copies.clear();
        self.events.lock().clear();
        self.dropped.store(0, Ordering::Relaxed);
        self.fences.store(0, Ordering::Relaxed);
    }
}

impl ProfilingHooks for Profiler {
    fn begin_parallel_for(&self, kid: KernelId, info: &KernelInfo) {
        self.begin_kernel_common(kid, info);
    }

    fn end_parallel_for(&self, kid: KernelId) {
        self.end_kernel_common(kid);
    }

    fn begin_parallel_reduce(&self, kid: KernelId, info: &KernelInfo) {
        self.begin_kernel_common(kid, info);
    }

    fn end_parallel_reduce(&self, kid: KernelId) {
        self.end_kernel_common(kid);
    }

    fn begin_deep_copy(&self, kid: KernelId, info: &DeepCopyInfo<'_>) {
        let src = memspace_name(info.src_space);
        let dst = memspace_name(info.dst_space);
        self.open_copies.lock().insert(
            kid,
            OpenCopy {
                name: format!("deep_copy {}<-{}", info.dst_label, info.src_label),
                key: (src, dst),
                bytes: info.bytes,
                start_ns: clock::now_ns(),
                pid: thread_rank(),
                tid: thread_tid(),
            },
        );
    }

    fn end_deep_copy(&self, kid: KernelId) {
        let Some(span) = self.open_copies.lock().remove(&kid) else {
            return;
        };
        let dur = clock::now_ns().saturating_sub(span.start_ns);
        self.copies.record(span.key, dur, span.bytes, 0);
        self.record_event(TraceEvent {
            name: span.name,
            cat: "deep_copy",
            ph: 'X',
            ts_ns: span.start_ns,
            dur_ns: dur,
            pid: span.pid,
            tid: span.tid,
            args: vec![
                ("kid", ArgValue::U64(kid)),
                ("bytes", ArgValue::U64(span.bytes)),
                (
                    "direction",
                    ArgValue::Str(format!("{}->{}", span.key.0, span.key.1)),
                ),
            ],
        });
    }

    fn push_region(&self, name: &'static str) {
        REGION_STACK.with(|s| s.borrow_mut().push((name, clock::now_ns())));
    }

    fn pop_region(&self, name: &'static str) {
        let popped = REGION_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            // Pop the innermost matching frame: unbalanced pops (a pop
            // with no matching push) are ignored rather than corrupting
            // the stack.
            stack
                .iter()
                .rposition(|(n, _)| *n == name)
                .map(|i| stack.remove(i))
        });
        let Some((_, start_ns)) = popped else { return };
        let dur = clock::now_ns().saturating_sub(start_ns);
        self.regions.record(name, dur, 0, 0);
        self.record_event(TraceEvent {
            name: name.to_string(),
            cat: "region",
            ph: 'X',
            ts_ns: start_ns,
            dur_ns: dur,
            pid: thread_rank(),
            tid: thread_tid(),
            args: Vec::new(),
        });
    }

    fn mark_fence(&self, name: &'static str, space: &'static str) {
        self.fences.fetch_add(1, Ordering::Relaxed);
        self.record_event(TraceEvent {
            name: name.to_string(),
            cat: "fence",
            ph: 'i',
            ts_ns: clock::now_ns(),
            dur_ns: 0,
            pid: thread_rank(),
            tid: thread_tid(),
            args: vec![("space", ArgValue::Str(space.to_string()))],
        });
    }
}

/// Adapter forwarding `mpi-sim` tap events onto the profiler's per-rank
/// comm tracks.
struct CommBridge(Arc<Profiler>);

impl mpi_sim::CommTap for CommBridge {
    fn on_event(&self, ev: &mpi_sim::CommEvent) {
        self.0.on_comm(
            ev.rank as i64,
            ev.kind.name(),
            ev.peer as i64,
            ev.bytes,
            ev.tag as i64,
        );
    }
}

/// Install `profiler` as both the process-global Kokkos tool and the
/// `mpi-sim` traffic tap, so kernel spans and halo traffic land in one
/// event stream.
pub fn attach(profiler: Arc<Profiler>) {
    mpi_sim::set_tap(Arc::new(CommBridge(profiler.clone())));
    profiling::set_hooks(profiler);
}

/// Remove the installed tool and tap; dispatch returns to the
/// zero-overhead path.
pub fn detach() {
    profiling::clear_hooks();
    mpi_sim::clear_tap();
}

/// Register `profiler` as the consumer for one instance key: every
/// kernel span and region dispatched from a thread inside
/// [`kokkos_rs::profiling::enter_instance`]`(key)` lands in this
/// profiler — and only this one — so concurrently-served model
/// instances each get a private event stream. The `mpi-sim` tap is
/// *not* touched (it is a transport-level, per-world concern).
pub fn attach_instance(key: kokkos_rs::InstanceKey, profiler: Arc<Profiler>) {
    profiling::register_instance_hooks(key, profiler);
}

/// Remove the per-instance consumer registered under `key`.
pub fn detach_instance(key: kokkos_rs::InstanceKey) {
    profiling::unregister_instance_hooks(key);
}
