//! Prometheus text exposition for the simulator's counter surfaces.
//!
//! Renders `mpi-sim` traffic snapshots, named event counters (e.g.
//! `licom::Timers::counters`) and phase timings in the Prometheus
//! text-based exposition format (`# HELP` / `# TYPE` headers followed by
//! `name{labels} value` samples). No client library — the format is
//! three line shapes — but the output is stable and scrape-compatible,
//! so a run can be diffed against a golden file or dropped behind a
//! trivial HTTP handler.

use mpi_sim::TrafficSnapshot;

/// Escape a label value per the exposition format.
fn escape_label(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Render a base label set (`instance="m17",tenant="a"`) plus one
/// optional trailing label into the `{...}` sample suffix. Empty base
/// and no trailing label renders as no braces at all.
fn label_suffix(base: &[(&str, &str)], extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = base
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{}\"", escape_label(v)));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

/// Render an `mpi-sim` [`TrafficSnapshot`] as one counter family per
/// field, every sample carrying `base` labels:
/// `mpi_traffic_<field>_total{instance="m17",tenant="a"} <value>`.
/// Per-instance serving uses this so each instance's private world
/// traffic stays distinguishable in one scrape.
pub fn render_traffic_labeled(t: &TrafficSnapshot, base: &[(&str, &str)]) -> String {
    let suffix = label_suffix(base, None);
    let mut out = String::new();
    for (name, value) in t.fields() {
        out.push_str(&format!(
            "# HELP mpi_traffic_{name}_total Cumulative mpi-sim {} counter.\n\
             # TYPE mpi_traffic_{name}_total counter\n\
             mpi_traffic_{name}_total{suffix} {value}\n",
            name.replace('_', " ")
        ));
    }
    out
}

/// Render an `mpi-sim` [`TrafficSnapshot`] as one counter family per
/// field: `mpi_traffic_<field>_total <value>`.
pub fn render_traffic(t: &TrafficSnapshot) -> String {
    render_traffic_labeled(t, &[])
}

/// Render a named counter table (e.g. `Timers::counters`) as one family
/// with `base` labels plus a `name` label. Entries are sorted by name
/// for stable output.
pub fn render_named_counters_labeled(
    family: &str,
    help: &str,
    base: &[(&str, &str)],
    entries: &[(&str, u64)],
) -> String {
    let mut sorted: Vec<&(&str, u64)> = entries.iter().collect();
    sorted.sort_by_key(|(n, _)| *n);
    let mut out = format!("# HELP {family} {help}\n# TYPE {family} counter\n");
    for (name, value) in sorted {
        out.push_str(&format!(
            "{family}{} {value}\n",
            label_suffix(base, Some(("name", name)))
        ));
    }
    out
}

/// Render a named counter table (e.g. `Timers::counters`) as one family
/// with a `name` label. Entries are sorted by name for stable output.
pub fn render_named_counters(family: &str, help: &str, entries: &[(&str, u64)]) -> String {
    render_named_counters_labeled(family, help, &[], entries)
}

/// Render an integer gauge table as one family with `base` labels plus
/// one per-entry label whose key is `label_key` (e.g. `tenant`):
/// `family{base...,tenant="a"} 3`. Entries are sorted by label value
/// for stable output. Gauges, unlike the counter families above, may
/// legitimately go down between scrapes (queue depths, occupancy).
pub fn render_named_gauges_labeled(
    family: &str,
    help: &str,
    base: &[(&str, &str)],
    label_key: &str,
    entries: &[(&str, u64)],
) -> String {
    let mut sorted: Vec<&(&str, u64)> = entries.iter().collect();
    sorted.sort_by_key(|(n, _)| *n);
    let mut out = format!("# HELP {family} {help}\n# TYPE {family} gauge\n");
    for (name, value) in sorted {
        out.push_str(&format!(
            "{family}{} {value}\n",
            label_suffix(base, Some((label_key, name)))
        ));
    }
    out
}

/// Render an integer gauge table keyed by one label (see
/// [`render_named_gauges_labeled`]).
pub fn render_named_gauges(
    family: &str,
    help: &str,
    label_key: &str,
    entries: &[(&str, u64)],
) -> String {
    render_named_gauges_labeled(family, help, &[], label_key, entries)
}

/// Render a single unlabeled integer gauge sample.
pub fn render_gauge(family: &str, help: &str, value: u64) -> String {
    format!("# HELP {family} {help}\n# TYPE {family} gauge\n{family} {value}\n")
}

/// Render a phase/kernel seconds table as a gauge family with `base`
/// labels plus a `name` label, in fixed 9-decimal notation so output
/// never depends on float shortest-representation quirks.
pub fn render_phase_seconds_labeled(
    family: &str,
    help: &str,
    base: &[(&str, &str)],
    entries: &[(&str, f64)],
) -> String {
    let mut sorted: Vec<&(&str, f64)> = entries.iter().collect();
    sorted.sort_by_key(|(n, _)| *n);
    let mut out = format!("# HELP {family} {help}\n# TYPE {family} gauge\n");
    for (name, secs) in sorted {
        out.push_str(&format!(
            "{family}{} {secs:.9}\n",
            label_suffix(base, Some(("name", name)))
        ));
    }
    out
}

/// Render a phase/kernel seconds table as a gauge family with a `name`
/// label.
pub fn render_phase_seconds(family: &str, help: &str, entries: &[(&str, f64)]) -> String {
    render_phase_seconds_labeled(family, help, &[], entries)
}

/// One-call exposition of a run's counter surfaces — traffic, named
/// event counters, and phase seconds — with every sample tagged by
/// `base` labels (e.g. `[("instance", "m17"), ("tenant", "a")]`). The
/// ensemble server scrapes one of these per instance and concatenates;
/// label disjointness keeps the families merge-safe.
pub fn render_prometheus_labeled(
    traffic: &TrafficSnapshot,
    counters: &[(&str, u64)],
    phases: &[(&str, f64)],
    base: &[(&str, &str)],
) -> String {
    let mut out = render_traffic_labeled(traffic, base);
    out.push_str(&render_named_counters_labeled(
        "model_counter_total",
        "Named model event counters (licom::Timers).",
        base,
        counters,
    ));
    out.push_str(&render_phase_seconds_labeled(
        "model_phase_seconds",
        "Accumulated wall seconds per model phase timer.",
        base,
        phases,
    ));
    out
}

/// One-call exposition of a run's counter surfaces: traffic, named event
/// counters, and phase seconds.
pub fn render_prometheus(
    traffic: &TrafficSnapshot,
    counters: &[(&str, u64)],
    phases: &[(&str, f64)],
) -> String {
    render_prometheus_labeled(traffic, counters, phases, &[])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_escaping() {
        assert_eq!(escape_label(r#"a"b\c"#), r#"a\"b\\c"#);
        assert_eq!(escape_label("x\ny"), "x\\ny");
    }

    #[test]
    fn families_have_help_and_type() {
        let text = render_named_counters("f_total", "Help text.", &[("b", 2), ("a", 1)]);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "# HELP f_total Help text.");
        assert_eq!(lines[1], "# TYPE f_total counter");
        // Sorted by name regardless of input order.
        assert_eq!(lines[2], "f_total{name=\"a\"} 1");
        assert_eq!(lines[3], "f_total{name=\"b\"} 2");
    }

    #[test]
    fn traffic_renders_every_field() {
        let t = TrafficSnapshot {
            p2p_messages: 7,
            ..Default::default()
        };
        let text = render_traffic(&t);
        assert!(text.contains("mpi_traffic_p2p_messages_total 7"));
        assert!(text.contains("mpi_traffic_recv_timeouts_total 0"));
        assert_eq!(
            text.lines().filter(|l| !l.starts_with('#')).count(),
            t.fields().len()
        );
    }

    #[test]
    fn phase_seconds_fixed_notation() {
        let text = render_phase_seconds("p_seconds", "h", &[("eos", 0.5)]);
        assert!(text.contains("p_seconds{name=\"eos\"} 0.500000000"));
    }

    #[test]
    fn gauges_use_caller_label_key() {
        let text = render_named_gauges("q_depth", "h", "tenant", &[("b", 2), ("a", 7)]);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[1], "# TYPE q_depth gauge");
        assert_eq!(lines[2], "q_depth{tenant=\"a\"} 7");
        assert_eq!(lines[3], "q_depth{tenant=\"b\"} 2");
        let single = render_gauge("busy", "h", 3);
        assert!(single.ends_with("busy 3\n"));
    }
}
