//! Lock-sharded aggregation tables.
//!
//! Hook callbacks arrive concurrently from every rank thread and from
//! rayon workers, so a single `Mutex<HashMap>` would serialize all of
//! them. [`StatsTable`] shards the map 16 ways by key hash: two threads
//! recording different kernels almost never touch the same lock. The
//! table is generic over the key so the same machinery backs the
//! profiler's `(kernel, space)` table, the region table, and
//! `licom::Timers` (keyed by `&'static str`).

use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use parking_lot::Mutex;

const SHARDS: usize = 16;

/// Aggregate for one key: call count, duration moments, and optional
/// byte / work-item tallies (used by deep copies and policy accounting).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Stat {
    pub count: u64,
    pub total_ns: u64,
    pub max_ns: u64,
    pub bytes: u64,
    pub work_items: u64,
}

impl Stat {
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }

    pub fn total_seconds(&self) -> f64 {
        self.total_ns as f64 * 1e-9
    }

    fn fold(&mut self, dur_ns: u64, bytes: u64, work_items: u64) {
        self.count += 1;
        self.total_ns += dur_ns;
        self.max_ns = self.max_ns.max(dur_ns);
        self.bytes += bytes;
        self.work_items += work_items;
    }
}

fn shard_of<K: Hash>(key: &K) -> usize {
    // FNV-1a over the key's std hash: cheap and stable enough to spread
    // a handful of static strings across 16 shards.
    let mut h = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut h);
    let x = h.finish();
    ((x ^ (x >> 32)) as usize) % SHARDS
}

/// Concurrent key → [`Stat`] map, sharded to keep hook callbacks from
/// serializing on one lock.
pub struct StatsTable<K: Eq + Hash + Clone> {
    shards: [Mutex<HashMap<K, Stat>>; SHARDS],
}

impl<K: Eq + Hash + Clone> Default for StatsTable<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Eq + Hash + Clone> StatsTable<K> {
    pub fn new() -> Self {
        Self {
            shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
        }
    }

    /// Fold one sample into the key's aggregate.
    pub fn record(&self, key: K, dur_ns: u64, bytes: u64, work_items: u64) {
        let mut shard = self.shards[shard_of(&key)].lock();
        shard
            .entry(key)
            .or_default()
            .fold(dur_ns, bytes, work_items);
    }

    /// Read one key's aggregate.
    pub fn get(&self, key: &K) -> Option<Stat> {
        self.shards[shard_of(key)].lock().get(key).copied()
    }

    /// Copy out every (key, aggregate) pair.
    pub fn snapshot(&self) -> Vec<(K, Stat)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            for (k, v) in shard.lock().iter() {
                out.push((k.clone(), *v));
            }
        }
        out
    }

    /// Sum of `total_ns` across all keys.
    pub fn grand_total_ns(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.lock().values().map(|v| v.total_ns).sum::<u64>())
            .sum()
    }

    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().clear();
        }
    }
}

/// Concurrent key → `u64` counter map with the same sharding scheme;
/// backs `licom::Timers::add_count`.
pub struct CounterTable<K: Eq + Hash + Clone> {
    shards: [Mutex<HashMap<K, u64>>; SHARDS],
}

impl<K: Eq + Hash + Clone> Default for CounterTable<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Eq + Hash + Clone> CounterTable<K> {
    pub fn new() -> Self {
        Self {
            shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
        }
    }

    pub fn add(&self, key: K, n: u64) {
        *self.shards[shard_of(&key)].lock().entry(key).or_insert(0) += n;
    }

    pub fn get(&self, key: &K) -> u64 {
        self.shards[shard_of(key)]
            .lock()
            .get(key)
            .copied()
            .unwrap_or(0)
    }

    pub fn snapshot(&self) -> Vec<(K, u64)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            for (k, v) in shard.lock().iter() {
                out.push((k.clone(), *v));
            }
        }
        out
    }

    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_folds_all_fields() {
        let t: StatsTable<&'static str> = StatsTable::new();
        t.record("k", 10, 100, 7);
        t.record("k", 30, 50, 7);
        let s = t.get(&"k").unwrap();
        assert_eq!(s.count, 2);
        assert_eq!(s.total_ns, 40);
        assert_eq!(s.max_ns, 30);
        assert_eq!(s.bytes, 150);
        assert_eq!(s.work_items, 14);
        assert_eq!(s.mean_ns(), 20);
    }

    #[test]
    fn snapshot_and_grand_total_cover_all_shards() {
        let t: StatsTable<u64> = StatsTable::new();
        for k in 0..100u64 {
            t.record(k, k, 0, 0);
        }
        assert_eq!(t.len(), 100);
        assert_eq!(t.grand_total_ns(), (0..100).sum::<u64>());
        let snap = t.snapshot();
        assert_eq!(snap.len(), 100);
    }

    #[test]
    fn concurrent_records_do_not_lose_samples() {
        let t: std::sync::Arc<StatsTable<usize>> = std::sync::Arc::new(StatsTable::new());
        let mut handles = Vec::new();
        for thread in 0..8 {
            let t = t.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..1000 {
                    t.record((thread * 1000 + i) % 64, 1, 0, 0);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let total: u64 = t.snapshot().iter().map(|(_, s)| s.count).sum();
        assert_eq!(total, 8000);
    }

    #[test]
    fn counters_accumulate_and_clear() {
        let c: CounterTable<&'static str> = CounterTable::new();
        c.add("wet_cells", 5);
        c.add("wet_cells", 7);
        assert_eq!(c.get(&"wet_cells"), 12);
        c.clear();
        assert_eq!(c.get(&"wet_cells"), 0);
    }
}
