//! SYPD and hotspot-share reporting in the paper's own vocabulary.
//!
//! The paper reports throughput as **SYPD** (simulated years per
//! wall-clock day) and breaks step cost into the shares of the baroclinic
//! solver, barotropic solver, tracer advection, canuto vertical mixing
//! and halo communication (Fig. 12 / §VI). [`SypdReporter`] converts a
//! stepped run (model days + wall seconds) into that figure and maps the
//! model's phase timers onto the same buckets so measured shares can sit
//! next to the paper's.

/// Hotspot buckets, in report order.
pub const BUCKETS: [&str; 6] = [
    "baroclinic",
    "barotropic",
    "advection",
    "canuto",
    "halo",
    "other",
];

/// Enclosing timers that must not be bucketed (they contain the phase
/// timers and would double-count).
const ENCLOSING: [&str; 2] = ["daily_loop", "step"];

/// `true` for enclosing timers ("daily_loop", "step") that contain the
/// leaf phases — telemetry consumers must drop them before summing or
/// attributing per-phase time, or every second counts three times.
pub fn is_enclosing(timer: &str) -> bool {
    ENCLOSING.contains(&timer)
}

/// Map one `licom` phase-timer name onto its paper bucket.
pub fn bucket_of(timer: &str) -> &'static str {
    match timer {
        "barotropic" => "barotropic",
        "advection_tracer" | "hdiff" => "advection",
        "canuto" => "canuto",
        t if t.starts_with("halo") => "halo",
        "eos" | "momentum" | "update_uv" | "vmix_momentum" | "vmix_tracer" | "forcing"
        | "asselin" | "guard" => "baroclinic",
        _ => "other",
    }
}

/// Simulated years per wall-clock day.
pub fn sypd(model_days: f64, wall_seconds: f64) -> f64 {
    if wall_seconds <= 0.0 {
        return 0.0;
    }
    (model_days / 365.0) * 86400.0 / wall_seconds
}

/// One bucket's share of the phase total.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HotspotRow {
    pub bucket: &'static str,
    pub seconds: f64,
    /// Fraction of the summed phase time, in [0, 1].
    pub share: f64,
}

/// Fold `(timer name, seconds)` pairs into bucket shares. Enclosing
/// timers (`daily_loop`, `step`) are skipped.
pub fn hotspot_shares(phases: &[(&str, f64)]) -> Vec<HotspotRow> {
    let mut totals = [0.0f64; BUCKETS.len()];
    for (name, secs) in phases {
        if ENCLOSING.contains(name) {
            continue;
        }
        let bucket = bucket_of(name);
        let idx = BUCKETS.iter().position(|b| *b == bucket).unwrap();
        totals[idx] += secs;
    }
    let sum: f64 = totals.iter().sum();
    BUCKETS
        .iter()
        .zip(totals)
        .map(|(bucket, seconds)| HotspotRow {
            bucket,
            seconds,
            share: if sum > 0.0 { seconds / sum } else { 0.0 },
        })
        .collect()
}

/// Converts a stepped run into the paper's throughput and hotspot view.
#[derive(Debug, Clone, Copy)]
pub struct SypdReporter {
    pub model_days: f64,
    pub wall_seconds: f64,
}

impl SypdReporter {
    pub fn new(model_days: f64, wall_seconds: f64) -> Self {
        Self {
            model_days,
            wall_seconds,
        }
    }

    pub fn sypd(&self) -> f64 {
        sypd(self.model_days, self.wall_seconds)
    }

    /// Render the SYPD figure plus the hotspot-share table for the given
    /// phase timers.
    pub fn render(&self, phases: &[(&str, f64)]) -> String {
        use std::fmt::Write;
        let rows = hotspot_shares(phases);
        let phase_total: f64 = rows.iter().map(|r| r.seconds).sum();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "SYPD {:.4}  ({} model days in {:.3} s wall)",
            self.sypd(),
            self.model_days,
            self.wall_seconds
        );
        let _ = writeln!(out, "{:<12} {:>10} {:>8}", "hotspot", "seconds", "share");
        for r in rows {
            let _ = writeln!(
                out,
                "{:<12} {:>10.4} {:>7.1}%",
                r.bucket,
                r.seconds,
                r.share * 100.0
            );
        }
        let _ = writeln!(
            out,
            "{:<12} {:>10.4} ({:.1}% of wall)",
            "phase total",
            phase_total,
            if self.wall_seconds > 0.0 {
                phase_total / self.wall_seconds * 100.0
            } else {
                0.0
            }
        );
        out
    }

    /// `|sum(phases) − wall| / wall` — the coverage error the acceptance
    /// criterion bounds at 2%.
    pub fn coverage_error(&self, phases: &[(&str, f64)]) -> f64 {
        if self.wall_seconds <= 0.0 {
            return 1.0;
        }
        let phase_total: f64 = hotspot_shares(phases).iter().map(|r| r.seconds).sum();
        (phase_total - self.wall_seconds).abs() / self.wall_seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sypd_matches_hand_calc() {
        // 10 model days in 100 s wall: (10/365) years / (100/86400) days
        // of wall = 23.67...
        let v = sypd(10.0, 100.0);
        assert!((v - (10.0 / 365.0) * 864.0).abs() < 1e-9);
        assert_eq!(sypd(10.0, 0.0), 0.0);
    }

    #[test]
    fn buckets_cover_model_phase_timers() {
        for name in [
            "eos",
            "momentum",
            "update_uv",
            "vmix_momentum",
            "vmix_tracer",
            "forcing",
            "asselin",
            "guard",
        ] {
            assert_eq!(bucket_of(name), "baroclinic", "{name}");
        }
        assert_eq!(bucket_of("barotropic"), "barotropic");
        assert_eq!(bucket_of("advection_tracer"), "advection");
        assert_eq!(bucket_of("hdiff"), "advection");
        assert_eq!(bucket_of("canuto"), "canuto");
        assert_eq!(bucket_of("halo_uv"), "halo");
        assert_eq!(bucket_of("halo_ts"), "halo");
        assert_eq!(bucket_of("something_new"), "other");
    }

    #[test]
    fn shares_sum_to_one_and_skip_enclosing() {
        let rows = hotspot_shares(&[
            ("daily_loop", 100.0), // must be ignored
            ("barotropic", 3.0),
            ("canuto", 1.0),
        ]);
        let total: f64 = rows.iter().map(|r| r.share).sum();
        assert!((total - 1.0).abs() < 1e-12);
        let bt = rows.iter().find(|r| r.bucket == "barotropic").unwrap();
        assert!((bt.share - 0.75).abs() < 1e-12);
    }

    #[test]
    fn coverage_error_is_relative() {
        let rep = SypdReporter::new(1.0, 10.0);
        let err = rep.coverage_error(&[("barotropic", 9.9)]);
        assert!((err - 0.01).abs() < 1e-12);
    }
}
