//! Cross-rank telemetry: load-imbalance attribution, halo-wait critical
//! path, and streaming drift detection.
//!
//! The profiler (PR 4) sees one rank at a time; the paper's scaling story
//! is about what happens *between* ranks — canuto land/sea imbalance,
//! halo volume at the tripolar cap, comm/compute overlap. This module
//! closes that gap in three pieces:
//!
//! * [`gather_phases`] + [`ImbalanceReport`] — every rank contributes its
//!   `(phase, seconds)` profile through a deterministic `mpi-sim`
//!   allgather; the report computes max/mean and max/min ratios per
//!   phase, ranks the most imbalanced phases, and renders an ASCII
//!   per-rank heat map.
//! * [`CriticalPath`] — the barrier-synchronized step estimate
//!   Σ_phases max_ranks(t) against the measured wall time; their ratio is
//!   the overlap efficiency (> 1 when comm/compute overlap and phase
//!   skew let the real run beat the serialized estimate).
//! * [`RingBuffer`] + [`DriftDetector`] — a bounded per-step sample
//!   stream with an EWMA + z-score anomaly detector, generic over what
//!   the metric means (step wall, halo wait, physics scalars).

use mpi_sim::Comm;
use std::collections::BTreeMap;
use std::time::Duration;

/// One rank's `(phase name, seconds)` profile, e.g.
/// `licom::Timers::phase_seconds`.
pub type PhaseProfile = Vec<(String, f64)>;

/// Gather every rank's phase profile onto all ranks. Deterministic and
/// collective: every rank must call it in the same program order. The
/// result is indexed by rank.
pub fn gather_phases(comm: &Comm, local: PhaseProfile) -> Vec<PhaseProfile> {
    comm.allgather(local)
}

/// A phase gather that tolerated absent ranks: whatever arrived within
/// the deadline, plus the list of ranks that did not report.
#[derive(Debug, Clone, PartialEq)]
pub struct PartialPhases {
    /// Indexed by rank; `None` where a rank never reported.
    pub profiles: Vec<Option<PhaseProfile>>,
    /// Ranks that were dead or failed to report within the deadline.
    pub missing: Vec<usize>,
}

impl PartialPhases {
    pub fn is_complete(&self) -> bool {
        self.missing.is_empty()
    }

    /// Rank-indexed profiles with empty placeholders for missing ranks,
    /// so [`ImbalanceReport::from_profiles`] keeps its rank indexing.
    /// Missing ranks show as zero-second rows; consult [`Self::missing`]
    /// before reading anything into those zeros.
    pub fn profiles_or_empty(&self) -> Vec<PhaseProfile> {
        self.profiles
            .iter()
            .map(|p| p.clone().unwrap_or_default())
            .collect()
    }
}

/// Tag namespace for [`try_gather_phases`]; the caller's `salt` (e.g.
/// the step number) separates successive gathers so a profile a slow
/// rank delivered after an earlier gather's deadline can never be
/// mistaken for a fresh report.
const PHASE_GATHER_TAG: u64 = 0x7E1E_0000_0000_0000;

/// [`gather_phases`] hardened against dead or stalled ranks: exchanges
/// profiles over point-to-point messages and bounds every receive by
/// `per_rank_deadline`. A dead peer is detected immediately through the
/// failure registry ([`mpi_sim::CommError::PeerDead`]) without consuming
/// the deadline; a stalled-but-alive rank costs at most the deadline and
/// is then reported missing. Telemetry must never take the model down
/// with it — a partial report tagged with who is absent beats a hang.
pub fn try_gather_phases(
    comm: &Comm,
    local: PhaseProfile,
    salt: u64,
    per_rank_deadline: Duration,
) -> PartialPhases {
    let n = comm.size();
    let me = comm.rank();
    let tag = PHASE_GATHER_TAG ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    for r in 0..n {
        if r != me {
            comm.send(r, tag, local.clone());
        }
    }
    let mut profiles: Vec<Option<PhaseProfile>> = vec![None; n];
    profiles[me] = Some(local);
    let mut missing = Vec::new();
    for (r, slot) in profiles.iter_mut().enumerate() {
        if r == me {
            continue;
        }
        match comm.recv_deadline::<(String, f64)>(r, tag, per_rank_deadline) {
            Ok(p) => *slot = Some(p),
            Err(_) => missing.push(r),
        }
    }
    PartialPhases { profiles, missing }
}

/// Per-phase cross-rank imbalance statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseImbalance {
    pub name: String,
    /// Per-rank seconds, indexed by rank (0 where a rank never ran it).
    pub per_rank: Vec<f64>,
    pub mean: f64,
    pub max: f64,
    pub min: f64,
    /// Rank holding the maximum — the phase's straggler.
    pub max_rank: usize,
    /// `max / mean` — 1.0 is perfectly balanced.
    pub max_over_mean: f64,
    /// `max / min` — ∞ when some rank never ran the phase.
    pub max_over_min: f64,
}

/// Cross-rank imbalance attribution over a set of per-rank phase
/// profiles.
#[derive(Debug, Clone, PartialEq)]
pub struct ImbalanceReport {
    pub ranks: usize,
    /// Sorted by descending max seconds (heaviest phase first).
    pub phases: Vec<PhaseImbalance>,
    /// Σ over phases of each rank's seconds.
    pub rank_totals: Vec<f64>,
}

impl ImbalanceReport {
    /// Build from per-rank profiles (as returned by [`gather_phases`]).
    /// Phases absent on a rank count as zero seconds there.
    pub fn from_profiles(profiles: &[PhaseProfile]) -> Self {
        let ranks = profiles.len();
        assert!(ranks > 0, "imbalance report needs at least one rank");
        let mut by_phase: BTreeMap<&str, Vec<f64>> = BTreeMap::new();
        for (rank, profile) in profiles.iter().enumerate() {
            for (name, secs) in profile {
                by_phase
                    .entry(name.as_str())
                    .or_insert_with(|| vec![0.0; ranks])[rank] += secs;
            }
        }
        let mut phases: Vec<PhaseImbalance> = by_phase
            .into_iter()
            .map(|(name, per_rank)| {
                let sum: f64 = per_rank.iter().sum();
                let mean = sum / ranks as f64;
                let (mut max, mut min, mut max_rank) = (f64::NEG_INFINITY, f64::INFINITY, 0);
                for (r, &t) in per_rank.iter().enumerate() {
                    if t > max {
                        max = t;
                        max_rank = r;
                    }
                    min = min.min(t);
                }
                PhaseImbalance {
                    name: name.to_string(),
                    mean,
                    max,
                    min,
                    max_rank,
                    max_over_mean: if mean > 0.0 { max / mean } else { 1.0 },
                    max_over_min: if min > 0.0 { max / min } else { f64::INFINITY },
                    per_rank,
                }
            })
            .collect();
        phases.sort_by(|a, b| b.max.total_cmp(&a.max));
        let mut rank_totals = vec![0.0; ranks];
        for p in &phases {
            for (r, t) in p.per_rank.iter().enumerate() {
                rank_totals[r] += t;
            }
        }
        Self {
            ranks,
            phases,
            rank_totals,
        }
    }

    /// The `k` most imbalanced phases by `max_over_mean`, skipping phases
    /// whose max is below `min_seconds` (noise floor: a 2 µs phase with
    /// ratio 8 is not a finding).
    pub fn top_imbalanced(&self, k: usize, min_seconds: f64) -> Vec<&PhaseImbalance> {
        let mut v: Vec<&PhaseImbalance> = self
            .phases
            .iter()
            .filter(|p| p.max >= min_seconds)
            .collect();
        v.sort_by(|a, b| b.max_over_mean.total_cmp(&a.max_over_mean));
        v.truncate(k);
        v
    }

    /// ASCII heat map of per-rank total load, normalized to the busiest
    /// rank. One row per rank, one glyph per 2.5% of the maximum.
    pub fn heat_map(&self) -> String {
        let max = self
            .rank_totals
            .iter()
            .cloned()
            .fold(f64::MIN_POSITIVE, f64::max);
        let mut out = String::new();
        for (r, &t) in self.rank_totals.iter().enumerate() {
            let bars = ((t / max) * 40.0).round() as usize;
            out.push_str(&format!(
                "rank {r:>3} |{:<40}| {:>8.4}s\n",
                "#".repeat(bars.min(40)),
                t
            ));
        }
        out
    }

    /// Render the per-phase table + heat map.
    pub fn render(&self) -> String {
        let mut out = format!(
            "cross-rank imbalance over {} ranks\n{:<20} {:>10} {:>10} {:>10} {:>9} {:>9} {:>5}\n",
            self.ranks, "phase", "mean (s)", "max (s)", "min (s)", "max/mean", "max/min", "@rank"
        );
        for p in &self.phases {
            out.push_str(&format!(
                "{:<20} {:>10.4} {:>10.4} {:>10.4} {:>9.3} {:>9.3} {:>5}\n",
                p.name, p.mean, p.max, p.min, p.max_over_mean, p.max_over_min, p.max_rank
            ));
        }
        out.push_str("\nper-rank load (all phases)\n");
        out.push_str(&self.heat_map());
        out
    }
}

/// Critical-path estimate for one step (or run window).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CriticalPath {
    /// Σ over phases of the slowest rank's seconds — what the window
    /// would cost if every phase were a barrier-to-barrier section.
    pub serialized_seconds: f64,
    /// Measured wall seconds of the same window (slowest rank).
    pub measured_seconds: f64,
}

impl CriticalPath {
    pub fn from_report(report: &ImbalanceReport, measured_seconds: f64) -> Self {
        Self {
            serialized_seconds: report.phases.iter().map(|p| p.max).sum(),
            measured_seconds,
        }
    }

    /// `serialized / measured`: ≈ 1 when phases are effectively globally
    /// synchronized, > 1 when overlap and phase skew hide straggler time,
    /// < 1 when unattributed time (barriers, gaps between phases)
    /// inflates the measured wall.
    pub fn overlap_efficiency(&self) -> f64 {
        if self.measured_seconds > 0.0 {
            self.serialized_seconds / self.measured_seconds
        } else {
            1.0
        }
    }

    pub fn render(&self) -> String {
        format!(
            "critical path: serialized {:.4}s vs measured {:.4}s → overlap efficiency {:.3}\n",
            self.serialized_seconds,
            self.measured_seconds,
            self.overlap_efficiency()
        )
    }
}

/// Halo-wait vs compute decomposition of a measured window.
///
/// `compute` is phase-attributed time minus the receive-wait carved out
/// by `halo-exchange`'s `halo_wait_ns` counter, so
/// `halo_wait + compute = Σ phase timers`, which the model's timer
/// structure covers to within the SYPD reporter's 2% bound of the
/// enclosing wall time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WaitComputeSplit {
    pub halo_wait_seconds: f64,
    pub compute_seconds: f64,
    /// The enclosing measured wall seconds the split should account for.
    pub wall_seconds: f64,
}

impl WaitComputeSplit {
    /// `phase_seconds` is the sum of all phase timers in the window;
    /// `halo_wait_seconds` must already be contained in it.
    pub fn new(phase_seconds: f64, halo_wait_seconds: f64, wall_seconds: f64) -> Self {
        let halo_wait = halo_wait_seconds.min(phase_seconds);
        Self {
            halo_wait_seconds: halo_wait,
            compute_seconds: phase_seconds - halo_wait,
            wall_seconds,
        }
    }

    /// |split sum − wall| / wall. The acceptance bound is 2%, matching
    /// the SYPD coverage contract.
    pub fn coverage_error(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            return 0.0;
        }
        ((self.halo_wait_seconds + self.compute_seconds) - self.wall_seconds).abs()
            / self.wall_seconds
    }

    /// Fraction of accounted time spent waiting on halos.
    pub fn halo_fraction(&self) -> f64 {
        let total = self.halo_wait_seconds + self.compute_seconds;
        if total > 0.0 {
            self.halo_wait_seconds / total
        } else {
            0.0
        }
    }

    pub fn render(&self) -> String {
        format!(
            "halo wait {:.4}s + compute {:.4}s = {:.4}s vs wall {:.4}s (coverage error {:.2}%, halo fraction {:.1}%)\n",
            self.halo_wait_seconds,
            self.compute_seconds,
            self.halo_wait_seconds + self.compute_seconds,
            self.wall_seconds,
            100.0 * self.coverage_error(),
            100.0 * self.halo_fraction()
        )
    }
}

/// Fixed-capacity ring buffer of per-step samples. Pushing past capacity
/// overwrites the oldest sample; iteration runs oldest → newest.
#[derive(Debug, Clone)]
pub struct RingBuffer<T> {
    buf: Vec<T>,
    capacity: usize,
    /// Index of the oldest element once the ring has wrapped.
    head: usize,
    total_pushed: u64,
}

impl<T> RingBuffer<T> {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring buffer capacity must be positive");
        Self {
            buf: Vec::with_capacity(capacity),
            capacity,
            head: 0,
            total_pushed: 0,
        }
    }

    pub fn push(&mut self, item: T) {
        if self.buf.len() < self.capacity {
            self.buf.push(item);
        } else {
            self.buf[self.head] = item;
            self.head = (self.head + 1) % self.capacity;
        }
        self.total_pushed += 1;
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Samples ever pushed (≥ `len()` once the ring wraps).
    pub fn total_pushed(&self) -> u64 {
        self.total_pushed
    }

    pub fn latest(&self) -> Option<&T> {
        if self.buf.is_empty() {
            None
        } else if self.buf.len() < self.capacity {
            self.buf.last()
        } else {
            let idx = (self.head + self.capacity - 1) % self.capacity;
            self.buf.get(idx)
        }
    }

    /// Iterate oldest → newest.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        let (wrapped, fresh) = self.buf.split_at(self.head);
        fresh.iter().chain(wrapped.iter())
    }
}

/// Why a drift detector tripped.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftEvent {
    /// The observed value.
    pub value: f64,
    /// EWMA mean at observation time (before folding the value in).
    pub mean: f64,
    /// EWMA standard deviation at observation time.
    pub std: f64,
    /// `(value − mean) / std`.
    pub z: f64,
}

/// Streaming EWMA + z-score anomaly detector for one scalar metric.
///
/// Keeps an exponentially weighted mean and variance; once `warmup`
/// samples have been folded in, a sample more than `z_threshold`
/// standard deviations from the mean trips. The tripping sample is
/// still folded into the moments (a level shift re-baselines after a
/// few steps rather than tripping forever).
#[derive(Debug, Clone, Copy)]
pub struct DriftDetector {
    /// EWMA smoothing factor in (0, 1]; higher forgets faster.
    pub alpha: f64,
    /// Trip threshold in standard deviations.
    pub z_threshold: f64,
    /// Samples to absorb before arming.
    pub warmup: u64,
    /// Relative noise floor: |value − mean| below `floor · |mean|` never
    /// trips, so micro-jitter around a near-constant metric stays quiet.
    pub rel_floor: f64,
    seen: u64,
    mean: f64,
    var: f64,
}

impl DriftDetector {
    pub fn new(alpha: f64, z_threshold: f64, warmup: u64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        assert!(z_threshold > 0.0);
        Self {
            alpha,
            z_threshold,
            warmup,
            rel_floor: 1e-9,
            seen: 0,
            mean: 0.0,
            var: 0.0,
        }
    }

    pub fn with_rel_floor(mut self, floor: f64) -> Self {
        self.rel_floor = floor;
        self
    }

    /// Samples observed so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Current EWMA mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Fold one sample in; `Some` when it trips.
    pub fn observe(&mut self, value: f64) -> Option<DriftEvent> {
        if !value.is_finite() {
            // A NaN metric is always an anomaly.
            let ev = DriftEvent {
                value,
                mean: self.mean,
                std: self.var.sqrt(),
                z: f64::INFINITY,
            };
            self.seen += 1;
            return Some(ev);
        }
        let trip = if self.seen >= self.warmup {
            let std = self.var.sqrt();
            let dev = value - self.mean;
            if dev.abs() <= self.rel_floor * self.mean.abs() {
                None
            } else {
                let z = if std > 0.0 {
                    dev / std
                } else if dev == 0.0 {
                    0.0
                } else {
                    f64::INFINITY * dev.signum()
                };
                (z.abs() > self.z_threshold).then_some(DriftEvent {
                    value,
                    mean: self.mean,
                    std,
                    z,
                })
            }
        } else {
            None
        };
        if self.seen == 0 {
            self.mean = value;
            self.var = 0.0;
        } else {
            // Standard EWMA moment update (Welford-style cross term).
            let dev = value - self.mean;
            let incr = self.alpha * dev;
            self.mean += incr;
            self.var = (1.0 - self.alpha) * (self.var + dev * incr);
        }
        self.seen += 1;
        trip
    }
}

/// A bank of named drift detectors sharing one configuration — the shape
/// the per-step monitor uses (one detector per telemetry metric).
#[derive(Debug, Clone, Default)]
pub struct DriftBank {
    detectors: BTreeMap<&'static str, DriftDetector>,
    template: Option<DriftDetector>,
    trips: u64,
}

impl DriftBank {
    pub fn new(template: DriftDetector) -> Self {
        Self {
            detectors: BTreeMap::new(),
            template: Some(template),
            trips: 0,
        }
    }

    /// Observe metric `name`; detectors are created lazily from the
    /// template on first sight.
    pub fn observe(&mut self, name: &'static str, value: f64) -> Option<DriftEvent> {
        let template = self.template.expect("DriftBank::new not used");
        let det = self.detectors.entry(name).or_insert(template);
        let ev = det.observe(value);
        if ev.is_some() {
            self.trips += 1;
        }
        ev
    }

    /// Total trips across all metrics.
    pub fn trips(&self) -> u64 {
        self.trips
    }

    pub fn detector(&self, name: &str) -> Option<&DriftDetector> {
        self.detectors.get(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpi_sim::World;

    fn profiles() -> Vec<PhaseProfile> {
        vec![
            vec![("canuto".into(), 4.0), ("halo".into(), 1.0)],
            vec![("canuto".into(), 1.0), ("halo".into(), 1.0)],
            vec![("canuto".into(), 1.0), ("halo".into(), 2.0)],
            vec![("canuto".into(), 2.0), ("halo".into(), 0.0)],
        ]
    }

    #[test]
    fn imbalance_ratios_and_straggler_rank() {
        let r = ImbalanceReport::from_profiles(&profiles());
        assert_eq!(r.ranks, 4);
        let canuto = r.phases.iter().find(|p| p.name == "canuto").unwrap();
        assert_eq!(canuto.max, 4.0);
        assert_eq!(canuto.max_rank, 0);
        assert!((canuto.mean - 2.0).abs() < 1e-12);
        assert!((canuto.max_over_mean - 2.0).abs() < 1e-12);
        assert!((canuto.max_over_min - 4.0).abs() < 1e-12);
        let halo = r.phases.iter().find(|p| p.name == "halo").unwrap();
        assert!(halo.max_over_min.is_infinite(), "rank 3 never ran halo");
        // Heaviest phase sorts first.
        assert_eq!(r.phases[0].name, "canuto");
        assert_eq!(r.rank_totals, vec![5.0, 2.0, 3.0, 2.0]);
    }

    #[test]
    fn top_imbalanced_applies_noise_floor() {
        let mut profs = profiles();
        // A microscopic but wildly imbalanced phase must not outrank
        // canuto.
        profs[0].push(("noise".into(), 1e-7));
        profs[1].push(("noise".into(), 1e-9));
        let r = ImbalanceReport::from_profiles(&profs);
        let top = r.top_imbalanced(1, 1e-3);
        assert_eq!(top[0].name, "canuto");
    }

    #[test]
    fn render_contains_table_and_heat_map() {
        let r = ImbalanceReport::from_profiles(&profiles());
        let text = r.render();
        assert!(text.contains("max/mean"));
        assert!(text.contains("canuto"));
        assert!(text.contains("rank   0"));
        assert!(text.contains('#'));
    }

    #[test]
    fn critical_path_overlap_efficiency() {
        let r = ImbalanceReport::from_profiles(&profiles());
        // serialized = 4 (canuto) + 2 (halo) = 6
        let cp = CriticalPath::from_report(&r, 5.0);
        assert!((cp.serialized_seconds - 6.0).abs() < 1e-12);
        assert!((cp.overlap_efficiency() - 1.2).abs() < 1e-12);
        assert!(cp.render().contains("overlap efficiency"));
    }

    #[test]
    fn wait_compute_split_sums_and_caps() {
        let s = WaitComputeSplit::new(10.0, 2.5, 10.2);
        assert!((s.halo_wait_seconds + s.compute_seconds - 10.0).abs() < 1e-12);
        assert!(s.coverage_error() < 0.02);
        assert!((s.halo_fraction() - 0.25).abs() < 1e-12);
        // Wait can never exceed the phase-attributed total.
        let capped = WaitComputeSplit::new(1.0, 5.0, 1.0);
        assert_eq!(capped.compute_seconds, 0.0);
        assert_eq!(capped.halo_wait_seconds, 1.0);
    }

    #[test]
    fn gather_phases_is_rank_indexed() {
        World::run(3, |comm| {
            let local = vec![(format!("phase{}", comm.rank()), comm.rank() as f64)];
            let all = gather_phases(comm, local);
            assert_eq!(all.len(), 3);
            for (r, profile) in all.iter().enumerate() {
                assert_eq!(profile[0].0, format!("phase{r}"));
                assert_eq!(profile[0].1, r as f64);
            }
        });
    }

    #[test]
    fn try_gather_phases_is_complete_on_a_healthy_world() {
        World::run(3, |comm| {
            let local = vec![(format!("phase{}", comm.rank()), comm.rank() as f64)];
            let p = try_gather_phases(comm, local.clone(), 1, Duration::from_secs(5));
            assert!(p.is_complete());
            assert_eq!(p.profiles_or_empty(), gather_phases(comm, local));
        });
    }

    #[test]
    fn try_gather_phases_tags_a_dead_rank_as_missing() {
        use mpi_sim::{FaultPlan, WorldConfig};
        // Rank 1 dies before reporting; survivors must get a partial
        // gather promptly (registry detection, not a burned deadline).
        let plan = FaultPlan::new(0xFA11).kill(1, 1);
        let cfg = WorldConfig::new(3).faults(plan);
        World::run_cfg(cfg, |comm| {
            comm.set_epoch(1);
            if comm.self_failed() {
                return;
            }
            let t0 = std::time::Instant::now();
            let local = vec![("step".to_string(), 1.0 + comm.rank() as f64)];
            let p = try_gather_phases(comm, local, 2, Duration::from_secs(30));
            assert_eq!(p.missing, vec![1]);
            assert!(p.profiles[0].is_some() || comm.rank() == 0);
            assert!(p.profiles[2].is_some() || comm.rank() == 2);
            assert!(p.profiles[1].is_none());
            // Dead-rank detection must not consume the 30 s deadline.
            assert!(t0.elapsed() < Duration::from_secs(10));
            // The report still works, rank-indexed, with a zero row.
            let report = ImbalanceReport::from_profiles(&p.profiles_or_empty());
            assert_eq!(report.ranks, 3);
        });
    }

    #[test]
    fn ring_buffer_wraps_and_iterates_in_order() {
        let mut ring: RingBuffer<u64> = RingBuffer::new(3);
        assert!(ring.is_empty());
        for i in 0..5 {
            ring.push(i);
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.total_pushed(), 5);
        assert_eq!(ring.iter().copied().collect::<Vec<_>>(), vec![2, 3, 4]);
        assert_eq!(ring.latest(), Some(&4));
    }

    #[test]
    fn drift_detector_stays_quiet_on_steady_signal() {
        let mut d = DriftDetector::new(0.2, 4.0, 5);
        for i in 0..200 {
            let wobble = 1.0 + 0.01 * ((i % 7) as f64 - 3.0);
            assert!(d.observe(wobble).is_none(), "tripped at sample {i}");
        }
    }

    #[test]
    fn drift_detector_trips_on_level_shift_and_nan() {
        let mut d = DriftDetector::new(0.2, 4.0, 5);
        for i in 0..50 {
            let wobble = 1.0 + 0.01 * ((i % 7) as f64 - 3.0);
            d.observe(wobble);
        }
        let ev = d.observe(10.0).expect("10x level shift must trip");
        assert!(ev.z.abs() > 4.0);
        let mut d2 = DriftDetector::new(0.2, 4.0, 0);
        d2.observe(1.0);
        assert!(d2.observe(f64::NAN).is_some(), "NaN always trips");
    }

    #[test]
    fn drift_detector_warmup_suppresses_trips() {
        let mut d = DriftDetector::new(0.5, 1.0, 10);
        for i in 0..10 {
            assert!(
                d.observe(if i % 2 == 0 { 0.0 } else { 100.0 }).is_none(),
                "warmup sample {i} must not trip"
            );
        }
    }

    #[test]
    fn drift_bank_counts_trips_per_metric() {
        let mut bank = DriftBank::new(DriftDetector::new(0.2, 4.0, 3));
        for _ in 0..20 {
            assert!(bank.observe("wall", 1.0).is_none());
            assert!(bank.observe("bytes", 512.0).is_none());
        }
        assert!(bank.observe("wall", 50.0).is_some());
        assert!(bank.observe("bytes", 512.0).is_none());
        assert_eq!(bank.trips(), 1);
        assert!(bank.detector("wall").is_some());
        assert!(bank.detector("absent").is_none());
    }
}
