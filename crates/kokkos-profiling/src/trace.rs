//! Chrome-trace (Perfetto-compatible) JSON export.
//!
//! The event model follows the Trace Event Format the Chrome tracing UI
//! and Perfetto consume: an object with a `traceEvents` array whose
//! entries carry `name`/`cat`/`ph`/`ts`/`pid`/`tid`, with `ts` and `dur`
//! in **microseconds**. We emit:
//!
//! * `"X"` complete spans — kernels, deep copies, regions;
//! * `"i"` instant events — fences, halo traffic, fault injections;
//! * `"C"` counter events — CPE/DMA counter samples;
//! * `"M"` metadata — process (rank) and thread track names.
//!
//! `pid` is the simulated MPI rank and `tid` the emitting thread's track,
//! so each rank renders as its own process row. The file is written
//! atomically (tmp + rename) so a crash mid-run never leaves a truncated
//! JSON behind, and events are sorted by `(pid, tid, ts)` before render —
//! the validator in [`crate::json`] checks that invariant.

use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;

/// Track id used for a rank's communication events (kept distinct from
/// compute-thread tracks so comm renders as its own row per rank).
pub const COMM_TRACK: i64 = 1_000_000;

/// Track id used for counter samples.
pub const COUNTER_TRACK: i64 = 1_000_001;

/// One argument value attached to an event.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
}

/// One trace event, pre-render.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    pub name: String,
    pub cat: &'static str,
    /// Chrome phase: 'X' (complete), 'i' (instant), 'C' (counter).
    pub ph: char,
    pub ts_ns: u64,
    /// Only meaningful for 'X'.
    pub dur_ns: u64,
    /// Simulated MPI rank.
    pub pid: i64,
    /// Thread / track id within the rank.
    pub tid: i64,
    pub args: Vec<(&'static str, ArgValue)>,
}

fn push_escaped(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Nanoseconds rendered as a decimal microsecond literal (`1234.567`),
/// never scientific notation — Perfetto rejects the latter.
fn push_us(out: &mut String, ns: u64) {
    let _ = write!(out, "{}.{:03}", ns / 1000, ns % 1000);
}

fn push_arg_value(out: &mut String, v: &ArgValue) {
    match v {
        ArgValue::U64(x) => {
            let _ = write!(out, "{x}");
        }
        ArgValue::I64(x) => {
            let _ = write!(out, "{x}");
        }
        ArgValue::F64(x) => {
            if x.is_finite() {
                let _ = write!(out, "{x}");
            } else {
                out.push_str("null");
            }
        }
        ArgValue::Str(s) => {
            out.push('"');
            push_escaped(out, s);
            out.push('"');
        }
    }
}

fn push_event(out: &mut String, ev: &TraceEvent) {
    out.push_str("{\"name\":\"");
    push_escaped(out, &ev.name);
    let _ = write!(
        out,
        "\",\"cat\":\"{}\",\"ph\":\"{}\",\"ts\":",
        ev.cat, ev.ph
    );
    push_us(out, ev.ts_ns);
    if ev.ph == 'X' {
        out.push_str(",\"dur\":");
        push_us(out, ev.dur_ns);
    }
    if ev.ph == 'i' {
        // Thread-scoped instant: renders as a tick on its own track.
        out.push_str(",\"s\":\"t\"");
    }
    let _ = write!(out, ",\"pid\":{},\"tid\":{}", ev.pid, ev.tid);
    if !ev.args.is_empty() {
        out.push_str(",\"args\":{");
        for (i, (k, v)) in ev.args.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{k}\":");
            push_arg_value(out, v);
        }
        out.push('}');
    }
    out.push('}');
}

fn push_metadata(out: &mut String, name: &str, pid: i64, tid: Option<i64>, label: &str) {
    let _ = write!(out, "{{\"name\":\"{name}\",\"ph\":\"M\",\"pid\":{pid}");
    if let Some(tid) = tid {
        let _ = write!(out, ",\"tid\":{tid}");
    }
    out.push_str(",\"args\":{\"name\":\"");
    push_escaped(out, label);
    out.push_str("\"}}");
}

/// Render a full chrome-trace JSON document. Events are sorted by
/// `(pid, tid, ts)`; metadata rows naming each rank/track come first.
pub fn render(events: &[TraceEvent]) -> String {
    let mut sorted: Vec<&TraceEvent> = events.iter().collect();
    sorted.sort_by_key(|e| (e.pid, e.tid, e.ts_ns));

    let mut pids: Vec<i64> = sorted.iter().map(|e| e.pid).collect();
    pids.sort_unstable();
    pids.dedup();
    let mut tracks: Vec<(i64, i64)> = sorted.iter().map(|e| (e.pid, e.tid)).collect();
    tracks.sort_unstable();
    tracks.dedup();

    let mut out = String::with_capacity(64 + events.len() * 96);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    for pid in &pids {
        if !first {
            out.push(',');
        }
        first = false;
        push_metadata(&mut out, "process_name", *pid, None, &format!("rank {pid}"));
    }
    for (pid, tid) in &tracks {
        let label = match *tid {
            COMM_TRACK => "comm".to_string(),
            COUNTER_TRACK => "counters".to_string(),
            t => format!("thread {t}"),
        };
        if !first {
            out.push(',');
        }
        first = false;
        push_metadata(&mut out, "thread_name", *pid, Some(*tid), &label);
    }
    for ev in sorted {
        if !first {
            out.push(',');
        }
        first = false;
        push_event(&mut out, ev);
    }
    out.push_str("]}");
    out
}

/// Write the trace atomically: render to `<path>.tmp`, fsync, rename.
pub fn write_atomic(path: &Path, events: &[TraceEvent]) -> std::io::Result<()> {
    let doc = render(events);
    let tmp = path.with_extension("json.tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(doc.as_bytes())?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(name: &str, pid: i64, tid: i64, ts: u64, dur: u64) -> TraceEvent {
        TraceEvent {
            name: name.to_string(),
            cat: "kernel",
            ph: 'X',
            ts_ns: ts,
            dur_ns: dur,
            pid,
            tid,
            args: vec![("work_items", ArgValue::U64(42))],
        }
    }

    #[test]
    fn render_sorts_tracks_and_is_valid_json() {
        let events = vec![
            span("b", 1, 0, 2000, 500),
            span("a", 0, 0, 1000, 500),
            span("c", 0, 0, 500, 100),
        ];
        let doc = render(&events);
        let parsed = crate::json::parse(&doc).expect("valid JSON");
        let summary = crate::json::validate_chrome_trace_value(&parsed).expect("schema ok");
        assert_eq!(summary.spans, 3);
        // rank 0's events must appear in ts order even though the input
        // was shuffled.
        assert!(doc.find("\"name\":\"c\"").unwrap() < doc.find("\"name\":\"a\"").unwrap());
    }

    #[test]
    fn strings_are_escaped() {
        let mut ev = span("we\"ird\\name", 0, 0, 0, 1);
        ev.args = vec![("label", ArgValue::Str("tab\there".into()))];
        let doc = render(&[ev]);
        assert!(doc.contains("we\\\"ird\\\\name"));
        assert!(doc.contains("tab\\there"));
        crate::json::parse(&doc).expect("escaped doc parses");
    }

    #[test]
    fn microsecond_rendering_keeps_nanosecond_precision() {
        let mut out = String::new();
        push_us(&mut out, 1_234_567);
        assert_eq!(out, "1234.567");
        out.clear();
        push_us(&mut out, 9);
        assert_eq!(out, "0.009");
    }

    #[test]
    fn write_atomic_leaves_no_tmp_file() {
        let dir = std::env::temp_dir().join("kp-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.json");
        write_atomic(&path, &[span("k", 0, 0, 0, 10)]).unwrap();
        assert!(path.exists());
        assert!(!dir.join("t.json.tmp").exists());
        let body = std::fs::read_to_string(&path).unwrap();
        crate::json::parse(&body).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}
