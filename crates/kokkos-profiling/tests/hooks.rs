//! Hook-protocol tests: callback ordering on every execution space,
//! end-callback delivery through panic unwinding, aggregate-equals-span
//! properties of the [`Profiler`], and a golden chrome-trace document.
//!
//! Everything here installs process-global hooks, so each test takes
//! [`kokkos_profiling::test_registry_lock`] for its critical section.

use std::panic::AssertUnwindSafe;
use std::sync::Arc;

use kokkos_profiling::{
    attach, detach, validate_chrome_trace, ArgValue, DeepCopyInfo, KernelId, KernelInfo, Profiler,
    ProfilingHooks, TraceEvent, COMM_TRACK, COUNTER_TRACK,
};
use kokkos_rs::profiling::{clear_hooks, mark_fence, set_hooks};
use kokkos_rs::{
    deep_copy, parallel_for_1d, parallel_reduce_1d, Functor1D, RangePolicy, ReduceFunctor1D,
    Reducer, Space, View, View1,
};
use parking_lot::Mutex;
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Recording tool
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
enum Ev {
    BeginFor(KernelId, String, String),
    EndFor(KernelId),
    BeginReduce(KernelId, String, String),
    EndReduce(KernelId),
    BeginCopy(KernelId, u64),
    EndCopy(KernelId),
    Push(&'static str),
    Pop(&'static str),
    Fence(&'static str),
}

#[derive(Default)]
struct Recorder {
    log: Mutex<Vec<Ev>>,
}

impl Recorder {
    fn take(&self) -> Vec<Ev> {
        std::mem::take(&mut self.log.lock())
    }
}

impl ProfilingHooks for Recorder {
    fn begin_parallel_for(&self, kid: KernelId, info: &KernelInfo) {
        self.log
            .lock()
            .push(Ev::BeginFor(kid, info.name.into(), info.space.into()));
    }
    fn end_parallel_for(&self, kid: KernelId) {
        self.log.lock().push(Ev::EndFor(kid));
    }
    fn begin_parallel_reduce(&self, kid: KernelId, info: &KernelInfo) {
        self.log
            .lock()
            .push(Ev::BeginReduce(kid, info.name.into(), info.space.into()));
    }
    fn end_parallel_reduce(&self, kid: KernelId) {
        self.log.lock().push(Ev::EndReduce(kid));
    }
    fn begin_deep_copy(&self, kid: KernelId, info: &DeepCopyInfo<'_>) {
        self.log.lock().push(Ev::BeginCopy(kid, info.bytes));
    }
    fn end_deep_copy(&self, kid: KernelId) {
        self.log.lock().push(Ev::EndCopy(kid));
    }
    fn push_region(&self, name: &'static str) {
        self.log.lock().push(Ev::Push(name));
    }
    fn pop_region(&self, name: &'static str) {
        self.log.lock().push(Ev::Pop(name));
    }
    fn mark_fence(&self, name: &'static str, _space: &'static str) {
        self.log.lock().push(Ev::Fence(name));
    }
}

// ---------------------------------------------------------------------------
// Test functors
// ---------------------------------------------------------------------------

struct Fill {
    x: View1<f64>,
}
impl Functor1D for Fill {
    fn operator(&self, i: usize) {
        self.x.set_at(i, i as f64);
    }
}
kokkos_rs::register_for_1d!(kp_hooks_fill, Fill);

struct Sum {
    x: View1<f64>,
}
impl ReduceFunctor1D for Sum {
    fn contribute(&self, i: usize, acc: &mut f64) {
        *acc += self.x.at(i);
    }
}
kokkos_rs::register_reduce_1d!(kp_hooks_sum, Sum);

/// Panics midway through the iteration space.
struct Panicky;
impl Functor1D for Panicky {
    fn operator(&self, i: usize) {
        if i == 3 {
            panic!("functor panic for unwinding test");
        }
    }
}

fn all_spaces() -> Vec<(&'static str, Space)> {
    vec![
        ("Serial", Space::serial()),
        ("Threads", Space::threads()),
        ("DeviceSim", Space::device_sim()),
        (
            "SwAthread",
            Space::sw_athread_with(sunway_sim::CgConfig::test_small()),
        ),
    ]
}

// ---------------------------------------------------------------------------
// 1. Callback ordering on every space
// ---------------------------------------------------------------------------

/// Every space delivers the same strictly-nested protocol: region push,
/// begin/end for, begin/end reduce, begin/end deep-copy, fence, region
/// pop — with matching ids per pair and ids strictly increasing across
/// launches (the Kokkos monotone-kernel-id contract).
#[test]
fn hook_ordering_is_strict_on_every_space() {
    let _serial = kokkos_profiling::test_registry_lock();
    kp_hooks_fill();
    kp_hooks_sum();
    let rec = Arc::new(Recorder::default());
    set_hooks(rec.clone());
    let n = 16;
    let mut last_kid: Option<KernelId> = None;
    for (name, space) in all_spaces() {
        let x: View1<f64> = View::host("x", [n]);
        let y: View1<f64> = View::host("y", [n]);
        {
            let _r = kokkos_rs::profiling::region("space_probe");
            parallel_for_1d(&space, RangePolicy::new(n), &Fill { x: x.clone() });
            let total = parallel_reduce_1d(
                &space,
                RangePolicy::new(n),
                &Sum { x: x.clone() },
                Reducer::Sum,
            );
            assert_eq!(total, (0..n).sum::<usize>() as f64, "{name}");
            deep_copy(&y, &x);
            mark_fence("probe_fence", space.name());
        }
        let log = rec.take();
        // Exact protocol shape for this space.
        assert_eq!(log.len(), 9, "{name}: {log:?}");
        let (kf, kr, kc) = match &log[..] {
            [Ev::Push("space_probe"), Ev::BeginFor(kf, fname, fspace), Ev::EndFor(kf2), Ev::BeginReduce(kr, rname, rspace), Ev::EndReduce(kr2), Ev::BeginCopy(kc, bytes), Ev::EndCopy(kc2), Ev::Fence("probe_fence"), Ev::Pop("space_probe")] =>
            {
                assert_eq!(fname, "Fill", "{name}");
                assert_eq!(rname, "Sum", "{name}");
                assert_eq!(fspace, name, "{name}");
                assert_eq!(rspace, name, "{name}");
                assert_eq!(*bytes, (n * std::mem::size_of::<f64>()) as u64);
                assert_eq!(kf, kf2, "{name}: for begin/end ids differ");
                assert_eq!(kr, kr2, "{name}: reduce begin/end ids differ");
                assert_eq!(kc, kc2, "{name}: copy begin/end ids differ");
                (*kf, *kr, *kc)
            }
            other => panic!("{name}: unexpected protocol {other:?}"),
        };
        assert!(kf < kr && kr < kc, "{name}: ids not monotone within space");
        if let Some(prev) = last_kid {
            assert!(kf > prev, "{name}: ids not monotone across spaces");
        }
        last_kid = Some(kc);
    }
    clear_hooks();
}

// ---------------------------------------------------------------------------
// 2. End callbacks survive panic unwinding
// ---------------------------------------------------------------------------

/// A panicking functor must still deliver `end_parallel_for` and the
/// enclosing region's `pop` — the RAII spans fire from `Drop` during
/// unwinding, exactly like Kokkos' tool-finalize-on-abort guarantee.
/// Covered on the two host spaces whose drivers propagate worker panics
/// to the caller (the rayon shim re-throws on join).
#[test]
fn end_callbacks_fire_through_panic_unwinding() {
    let _serial = kokkos_profiling::test_registry_lock();
    let rec = Arc::new(Recorder::default());
    set_hooks(rec.clone());
    for (name, space) in [("Serial", Space::serial()), ("Threads", Space::threads())] {
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let _r = kokkos_rs::profiling::region("unwind_probe");
            parallel_for_1d(&space, RangePolicy::new(8), &Panicky);
        }));
        assert!(caught.is_err(), "{name}: functor panic must propagate");
        let log = rec.take();
        assert_eq!(log.len(), 4, "{name}: {log:?}");
        match &log[..] {
            [Ev::Push("unwind_probe"), Ev::BeginFor(kid, fname, _), Ev::EndFor(kid2), Ev::Pop("unwind_probe")] =>
            {
                assert_eq!(fname, "Panicky", "{name}");
                assert_eq!(kid, kid2, "{name}: unwound span ids differ");
            }
            other => panic!("{name}: unexpected unwind protocol {other:?}"),
        }
    }
    clear_hooks();
}

// ---------------------------------------------------------------------------
// 3. Aggregates equal the sum of their spans
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// For any launch sequence, each kernel-table row's `(count,
    /// total_ns, work_items)` equals the count/duration-sum/items of the
    /// raw `'X'` kernel spans in the trace buffer — the aggregator and
    /// the exporter are two views of one event stream, and must never
    /// disagree.
    #[test]
    fn prop_aggregate_equals_span_sum(
        sizes in proptest::collection::vec(1usize..64, 1..12),
        nested in 0usize..4,
    ) {
        let _serial = kokkos_profiling::test_registry_lock();
        let prof = Arc::new(Profiler::default());
        attach(prof.clone());
        let space = Space::serial();
        for &n in &sizes {
            let x: View1<f64> = View::host("x", [n]);
            let _r = kokkos_rs::profiling::region("prop_outer");
            parallel_for_1d(&space, RangePolicy::new(n), &Fill { x: x.clone() });
            for _ in 0..nested {
                let _inner = kokkos_rs::profiling::region("prop_inner");
                parallel_reduce_1d(&space, RangePolicy::new(n), &Sum { x: x.clone() }, Reducer::Sum);
            }
        }
        detach();
        prop_assert_eq!(prof.dropped_events(), 0);
        let events = prof.events_snapshot();

        for (key, stat) in prof.kernel_table() {
            let spans: Vec<&TraceEvent> = events
                .iter()
                .filter(|e| e.ph == 'X' && e.cat == "kernel" && e.name == key.name)
                .collect();
            prop_assert_eq!(stat.count, spans.len() as u64, "kernel {}", key.name);
            prop_assert_eq!(
                stat.total_ns,
                spans.iter().map(|e| e.dur_ns).sum::<u64>(),
                "kernel {}", key.name
            );
        }
        let expected_for = sizes.len() as u64;
        let expected_reduce = (sizes.len() * nested) as u64;
        let count_of = |fname: &str| {
            prof.kernel_table()
                .iter()
                .filter(|(k, _)| k.name == fname)
                .map(|(_, s)| s.count)
                .sum::<u64>()
        };
        prop_assert_eq!(count_of("Fill"), expected_for);
        prop_assert_eq!(count_of("Sum"), expected_reduce);

        for (name, stat) in prof.region_table() {
            let spans: Vec<&TraceEvent> = events
                .iter()
                .filter(|e| e.ph == 'X' && e.cat == "region" && e.name == name)
                .collect();
            prop_assert_eq!(stat.count, spans.len() as u64, "region {}", name);
            prop_assert_eq!(
                stat.total_ns,
                spans.iter().map(|e| e.dur_ns).sum::<u64>(),
                "region {}", name
            );
        }
    }
}

// ---------------------------------------------------------------------------
// 4. Golden chrome-trace document
// ---------------------------------------------------------------------------

/// The exporter's byte-exact output for a fixed event list: metadata
/// rows first (process names, then track names), events sorted by
/// `(pid, tid, ts)`, timestamps as decimal microseconds with nanosecond
/// precision, instants carrying `"s":"t"`. Pinning the document catches
/// schema drift that the structural validator would wave through.
#[test]
fn golden_chrome_trace_document() {
    let events = vec![
        TraceEvent {
            name: "FunctorEos".into(),
            cat: "kernel",
            ph: 'X',
            ts_ns: 1_500,
            dur_ns: 2_500,
            pid: 0,
            tid: 0,
            args: vec![("work_items", ArgValue::U64(42))],
        },
        TraceEvent {
            name: "send".into(),
            cat: "comm",
            ph: 'i',
            ts_ns: 3_000,
            dur_ns: 0,
            pid: 1,
            tid: COMM_TRACK,
            args: vec![("bytes", ArgValue::U64(1024))],
        },
        TraceEvent {
            name: "sw.dma_get_bytes".into(),
            cat: "counter",
            ph: 'C',
            ts_ns: 4_096,
            dur_ns: 0,
            pid: 1,
            tid: COUNTER_TRACK,
            args: vec![("value", ArgValue::F64(12.5))],
        },
    ];
    let doc = kokkos_profiling::trace::render(&events);
    let golden = concat!(
        r#"{"displayTimeUnit":"ms","traceEvents":["#,
        r#"{"name":"process_name","ph":"M","pid":0,"args":{"name":"rank 0"}},"#,
        r#"{"name":"process_name","ph":"M","pid":1,"args":{"name":"rank 1"}},"#,
        r#"{"name":"thread_name","ph":"M","pid":0,"tid":0,"args":{"name":"thread 0"}},"#,
        r#"{"name":"thread_name","ph":"M","pid":1,"tid":1000000,"args":{"name":"comm"}},"#,
        r#"{"name":"thread_name","ph":"M","pid":1,"tid":1000001,"args":{"name":"counters"}},"#,
        r#"{"name":"FunctorEos","cat":"kernel","ph":"X","ts":1.500,"dur":2.500,"pid":0,"tid":0,"args":{"work_items":42}},"#,
        r#"{"name":"send","cat":"comm","ph":"i","ts":3.000,"s":"t","pid":1,"tid":1000000,"args":{"bytes":1024}},"#,
        r#"{"name":"sw.dma_get_bytes","cat":"counter","ph":"C","ts":4.096,"pid":1,"tid":1000001,"args":{"value":12.5}}"#,
        r#"]}"#,
    );
    assert_eq!(doc, golden, "chrome-trace schema drifted from golden");
    let summary = validate_chrome_trace(&doc).expect("golden must validate");
    assert_eq!(summary.spans, 1);
    assert_eq!(summary.instants, 1);
    assert_eq!(summary.counters, 1);
    assert_eq!(summary.metadata, 5);
    assert_eq!(summary.tracks, 3);
}
