//! Golden-file test for the Prometheus text exposition.
//!
//! Inputs are fixed synthetic values (never live timings), so the
//! rendered text must match `golden/prometheus.txt` byte for byte. To
//! regenerate after an intentional format change:
//! `BLESS=1 cargo test -p kokkos-profiling --test prometheus_golden`.

use kokkos_profiling::{
    render_gauge, render_named_gauges, render_prometheus, render_prometheus_labeled,
};
use mpi_sim::TrafficSnapshot;

fn synthetic_traffic() -> TrafficSnapshot {
    TrafficSnapshot {
        p2p_messages: 42,
        p2p_bytes: 10_240,
        collectives: 7,
        collective_bytes: 896,
        barriers: 3,
        pool_allocations: 12,
        pool_reuses: 2_048,
        pooled_bytes: 524_288,
        faults_dropped: 1,
        faults_duplicated: 0,
        faults_delayed: 2,
        faults_bitflipped: 0,
        faults_truncated: 0,
        rank_stalls: 1,
        crc_failures: 2,
        halo_retries: 2,
        resends_served: 2,
        resend_bytes: 1_024,
        recv_timeouts: 0,
        rank_deaths: 1,
        peer_dead_errors: 3,
        sends_suppressed: 5,
    }
}

#[test]
fn exposition_matches_golden_file() {
    let counters: &[(&str, u64)] = &[
        ("halo_msgs", 96),
        ("halo_bytes", 73_728),
        ("drift_trips", 0),
    ];
    let phases: &[(&str, f64)] = &[("barotropic", 0.5), ("eos", 0.00125), ("halo_ts", 0.0625)];
    let rendered = render_prometheus(&synthetic_traffic(), counters, phases);

    let golden_path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/prometheus.txt");
    if std::env::var("BLESS").is_ok() {
        std::fs::write(golden_path, &rendered).unwrap();
    }
    let golden =
        std::fs::read_to_string(golden_path).expect("golden file missing — run with BLESS=1");
    assert_eq!(
        rendered, golden,
        "exposition drifted from golden file; rerun with BLESS=1 if intentional"
    );
}

#[test]
fn labeled_exposition_matches_golden_file() {
    let counters: &[(&str, u64)] = &[("step", 17), ("rollbacks", 1)];
    let phases: &[(&str, f64)] = &[("readyc", 0.25)];
    let mut rendered = render_prometheus_labeled(
        &synthetic_traffic(),
        counters,
        phases,
        &[("instance", "m17"), ("tenant", "a")],
    );

    // Every sample line carries the base labels first (the scheduler
    // gauges appended below use their own label set by design).
    for line in rendered.lines().filter(|l| !l.starts_with('#')) {
        assert!(
            line.contains("instance=\"m17\",tenant=\"a\""),
            "sample missing base labels: {line}"
        );
    }

    // The scheduler-side gauge families the serving engine appends to
    // its exposition: per-tenant queue depth / running jobs and the
    // worker-occupancy sample.
    rendered.push_str(&render_named_gauges(
        "licom_sched_queue_depth",
        "Jobs queued for a slice, per tenant.",
        "tenant",
        &[("a", 3), ("b", 1)],
    ));
    rendered.push_str(&render_named_gauges(
        "licom_tenant_running",
        "Jobs claimed or stepping (admitted minus queued), per tenant.",
        "tenant",
        &[("a", 2), ("b", 0)],
    ));
    rendered.push_str(&render_gauge(
        "licom_workers_busy",
        "Workers currently stepping a claimed batch.",
        2,
    ));
    assert!(rendered.contains("licom_sched_queue_depth{tenant=\"a\"} 3"));
    assert!(rendered.contains("licom_workers_busy 2"));
    assert!(
        rendered.contains("model_counter_total{instance=\"m17\",tenant=\"a\",name=\"step\"} 17")
    );

    let golden_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/prometheus_labeled.txt"
    );
    if std::env::var("BLESS").is_ok() {
        std::fs::write(golden_path, &rendered).unwrap();
    }
    let golden =
        std::fs::read_to_string(golden_path).expect("golden file missing — run with BLESS=1");
    assert_eq!(
        rendered, golden,
        "labeled exposition drifted from golden file; rerun with BLESS=1 if intentional"
    );
}
