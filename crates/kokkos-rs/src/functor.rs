//! Functor traits — the kernel abstraction.
//!
//! Kokkos kernels are classes with an `operator()`; the paper's Code 1
//! shows the AXPY example. We mirror that: a kernel is a struct holding
//! `View` handles (shallow copies) implementing one of the traits below.
//! `Sync` is required because the functor is shared by every thread / CPE
//! executing the launch.
//!
//! The `cost()` hook reports a per-iteration arithmetic/memory estimate
//! used by the simulated Sunway backend to charge CPE cycles and by the
//! performance model to build its kernel census. It has **no effect on
//! results**, only on simulated timing; the default is a nominal
//! stencil-ish cost.

/// Per-iteration cost estimate for simulated timing and roofline analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterCost {
    /// Double-precision FLOPs per iteration.
    pub flops: u64,
    /// Main-memory bytes touched per iteration (reads + writes).
    pub bytes: u64,
}

impl Default for IterCost {
    fn default() -> Self {
        // A generic low-intensity ocean-model kernel: ~20 flops touching
        // ~6 f64 values. Computation-to-memory ratio ≈ 0.4 flop/byte,
        // matching the paper's "very low computation-to-memory access
        // ratio" characterisation.
        Self {
            flops: 20,
            bytes: 48,
        }
    }
}

/// 1-D parallel-for body (`operator()(const int &i)` in the paper).
pub trait Functor1D: Sync {
    fn operator(&self, i: usize);

    /// Cost estimate per iteration (see [`IterCost`]).
    fn cost(&self) -> IterCost {
        IterCost::default()
    }
}

/// 2-D parallel-for body; index order `(j, i)`, `i` innermost.
pub trait Functor2D: Sync {
    fn operator(&self, j: usize, i: usize);

    fn cost(&self) -> IterCost {
        IterCost::default()
    }
}

/// Two 2-D bodies fused into one launch (kernel fusion). The members run
/// per cell in order; with disjoint write sets and no read of the other's
/// output, results are bitwise identical to two separate launches while
/// paying one dispatch. On the Sunway backend this matters: the
/// barotropic substep loop is launch-bound, and each fused launch also
/// streams its tiles through LDM once instead of twice.
pub struct FunctorPair2D<A, B> {
    pub a: A,
    pub b: B,
}

impl<A: Functor2D, B: Functor2D> Functor2D for FunctorPair2D<A, B> {
    fn operator(&self, j: usize, i: usize) {
        self.a.operator(j, i);
        self.b.operator(j, i);
    }

    fn cost(&self) -> IterCost {
        let (a, b) = (self.a.cost(), self.b.cost());
        IterCost {
            flops: a.flops + b.flops,
            bytes: a.bytes + b.bytes,
        }
    }
}

/// Three 2-D bodies fused into one launch; see [`FunctorPair2D`].
pub struct FunctorTriple2D<A, B, C> {
    pub a: A,
    pub b: B,
    pub c: C,
}

impl<A: Functor2D, B: Functor2D, C: Functor2D> Functor2D for FunctorTriple2D<A, B, C> {
    fn operator(&self, j: usize, i: usize) {
        self.a.operator(j, i);
        self.b.operator(j, i);
        self.c.operator(j, i);
    }

    fn cost(&self) -> IterCost {
        let (a, b, c) = (self.a.cost(), self.b.cost(), self.c.cost());
        IterCost {
            flops: a.flops + b.flops + c.flops,
            bytes: a.bytes + b.bytes + c.bytes,
        }
    }
}

/// 3-D parallel-for body; index order `(k, j, i)`, `i` innermost.
pub trait Functor3D: Sync {
    fn operator(&self, k: usize, j: usize, i: usize);

    fn cost(&self) -> IterCost {
        IterCost::default()
    }
}

/// Index-list parallel-for body (active-set iteration over a
/// [`crate::policy::ListPolicy`]).
///
/// `n` is the list position (the disjoint-write slot — well-defined even
/// when the list repeats an index); `idx` is the packed index stored at
/// that position (`policy.entry(n)`), which the kernel decodes into grid
/// coordinates.
pub trait FunctorList: Sync {
    fn operator(&self, n: usize, idx: u32);

    fn cost(&self) -> IterCost {
        IterCost::default()
    }
}

/// Index-list reduction body; see [`FunctorList`] for the `(n, idx)` pair.
pub trait ReduceFunctorList: Sync {
    fn contribute(&self, n: usize, idx: u32, acc: &mut f64);

    fn cost(&self) -> IterCost {
        IterCost::default()
    }
}

/// 1-D reduction body: fold iteration `i` into `acc`.
pub trait ReduceFunctor1D: Sync {
    fn contribute(&self, i: usize, acc: &mut f64);

    fn cost(&self) -> IterCost {
        IterCost::default()
    }
}

/// 2-D reduction body.
pub trait ReduceFunctor2D: Sync {
    fn contribute(&self, j: usize, i: usize, acc: &mut f64);

    fn cost(&self) -> IterCost {
        IterCost::default()
    }
}

/// 3-D reduction body.
pub trait ReduceFunctor3D: Sync {
    fn contribute(&self, k: usize, j: usize, i: usize, acc: &mut f64);

    fn cost(&self) -> IterCost {
        IterCost::default()
    }
}

/// Reduction combiner (Kokkos `Sum`, `Min`, `Max` reducers).
///
/// Partials are produced per policy tile and joined **in tile order** on
/// every backend, so reductions are bitwise reproducible and
/// backend-independent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reducer {
    Sum,
    Min,
    Max,
}

impl Reducer {
    pub fn identity(self) -> f64 {
        match self {
            Reducer::Sum => 0.0,
            Reducer::Min => f64::INFINITY,
            Reducer::Max => f64::NEG_INFINITY,
        }
    }

    pub fn join(self, a: f64, b: f64) -> f64 {
        match self {
            Reducer::Sum => a + b,
            Reducer::Min => a.min(b),
            Reducer::Max => a.max(b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reducer_identities() {
        assert_eq!(Reducer::Sum.join(Reducer::Sum.identity(), 5.0), 5.0);
        assert_eq!(Reducer::Min.join(Reducer::Min.identity(), 5.0), 5.0);
        assert_eq!(Reducer::Max.join(Reducer::Max.identity(), 5.0), 5.0);
    }

    #[test]
    fn default_cost_is_memory_bound() {
        let c = IterCost::default();
        assert!((c.flops as f64) / (c.bytes as f64) < 1.0);
    }
}
