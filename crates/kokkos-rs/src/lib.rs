//! # kokkos-rs — a Kokkos-like performance-portability layer, with Sunway
//!
//! The enabling substrate of the LICOMK++ reproduction. Mirrors the parts
//! of Kokkos the paper relies on, plus the paper's own contribution — an
//! **Athread backend** for Sunway many-core processors:
//!
//! | Kokkos concept        | Here                                          |
//! |-----------------------|-----------------------------------------------|
//! | `Kokkos::View`        | [`view::View`] — rank-`R` arrays, `LayoutLeft`/`LayoutRight`, shared ownership, `deep_copy`, mirrors |
//! | Execution spaces      | [`space::Space`] — `Serial`, `Threads` (rayon/OpenMP-like), `DeviceSim` (CUDA/HIP-like), `SwAthread` (Sunway CPEs) |
//! | Memory spaces         | [`memspace::MemSpace`] — `Host` and `Device`, with H2D/D2H transfer accounting |
//! | `RangePolicy`/`MDRangePolicy` | [`policy`] — incl. the CPE tile mapping of paper Eq. (1)–(2) |
//! | Functors (`operator()`) | [`functor`] traits `Functor1D/2D/3D`, `ReduceFunctor*` |
//! | `KOKKOS_REGISTER_FOR_1D(name, Functor)` | `register_for_1d!` etc. + the linked-list [`registry`] |
//!
//! ## Why a registry at all?
//!
//! The Athread API "supports only C syntax, which does not allow the
//! passage of template parameters to CPE-run kernels" (paper §V-B). Our
//! simulated Athread boundary ([`sunway_sim::CpeKernel`]) is likewise a
//! plain `fn` pointer plus one `usize`. Generic functors therefore cannot
//! be launched directly on CPEs: a concrete trampoline must be
//! **registered** ahead of time (one `register_for_*!` invocation per
//! functor type, the analogue of the paper's `KOKKOS_REGISTER_FOR_1D`
//! macro) and is **matched at launch time** by scanning a linked list —
//! the data structure the paper explicitly selected — optionally
//! accelerated with the SIMD id-scan of `sunway_sim::simd::find_u64`.
//! Launching an unregistered functor on the `SwAthread` space panics with
//! the registration hint, exactly as the C++ version fails to link.
//!
//! ## Determinism contract
//!
//! `parallel_for` over disjoint indices and tile-ordered `parallel_reduce`
//! produce **bitwise identical** results on every execution space. The
//! LICOMK++ integration tests step the full ocean model on all four spaces
//! and assert bitwise equality — portability here is a correctness
//! property, not just a build property.

pub mod functor;
pub mod memspace;
pub mod parallel;
pub mod policy;
pub mod profiling;
pub mod registry;
pub mod space;
pub mod team;
pub mod view;

pub use functor::{
    Functor1D, Functor2D, Functor3D, FunctorList, FunctorPair2D, FunctorTriple2D, IterCost,
    ReduceFunctor1D, ReduceFunctor2D, ReduceFunctor3D, ReduceFunctorList, Reducer,
};
pub use memspace::MemSpace;
pub use parallel::fence;
pub use parallel::{
    parallel_for_1d, parallel_for_2d, parallel_for_3d, parallel_for_list, parallel_reduce_1d,
    parallel_reduce_2d, parallel_reduce_3d, parallel_reduce_list,
};
pub use policy::{ListPolicy, MDRangePolicy2, MDRangePolicy3, RangePolicy};
pub use profiling::{
    DeepCopyInfo, InstanceKey, KernelId, KernelInfo, PatternKind, PolicyKind, ProfilingHooks,
};
pub use space::Space;
pub use team::{parallel_for_team, FunctorTeam, TeamPolicy};
pub use view::{deep_copy, Layout, View, View1, View2, View3, View4};

/// Convenience: the list of all execution-space names this build supports,
/// with their backing programming model — the Rust analogue of the paper's
/// Table I.
pub fn supported_backends() -> Vec<(&'static str, &'static str)> {
    vec![
        ("Serial", "native loop (baseline)"),
        ("Threads", "rayon work-stealing pool (OpenMP analogue)"),
        (
            "DeviceSim",
            "block/thread grid over pool (CUDA/HIP analogue)",
        ),
        (
            "SwAthread",
            "simulated Sunway CPE cluster (Athread; this work)",
        ),
    ]
}

#[cfg(test)]
mod tests {
    #[test]
    fn four_backends_supported() {
        let b = super::supported_backends();
        assert_eq!(b.len(), 4);
        assert!(b.iter().any(|(n, _)| *n == "SwAthread"));
    }
}
