//! Memory spaces and host↔device transfer accounting.
//!
//! On ORISE, "the CPU and GPUs are interconnected through 32-bit PCIe buses
//! featuring a DMA with a bandwidth of 16 GB/s", and because the systems
//! "lack support for GPU-aware MPI technology", every halo exchange must
//! stage through host memory. The paper's communication optimization
//! therefore includes *minimizing data copying between the host and
//! devices* — which is only observable if transfers are counted. Every
//! [`crate::view::deep_copy`] that crosses spaces increments the global
//! counters here; the Sunway/host spaces are unified (as on hardware) and
//! cost nothing.

use std::sync::atomic::{AtomicU64, Ordering};

/// Where a `View`'s allocation lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemSpace {
    /// Ordinary host DRAM. MPE/CPE-shared memory on Sunway is also `Host`
    /// ("we can apply the Kokkos memory model from the host space without
    /// needing to implement a separate device memory space", §V-B).
    Host,
    /// Simulated discrete-accelerator memory (CUDA/HIP device).
    Device,
}

static H2D_BYTES: AtomicU64 = AtomicU64::new(0);
static D2H_BYTES: AtomicU64 = AtomicU64::new(0);
static H2D_TRANSFERS: AtomicU64 = AtomicU64::new(0);
static D2H_TRANSFERS: AtomicU64 = AtomicU64::new(0);

/// Record a host→device transfer (called by `deep_copy`).
pub fn record_h2d(bytes: usize) {
    H2D_BYTES.fetch_add(bytes as u64, Ordering::Relaxed);
    H2D_TRANSFERS.fetch_add(1, Ordering::Relaxed);
}

/// Record a device→host transfer (called by `deep_copy`).
pub fn record_d2h(bytes: usize) {
    D2H_BYTES.fetch_add(bytes as u64, Ordering::Relaxed);
    D2H_TRANSFERS.fetch_add(1, Ordering::Relaxed);
}

/// Snapshot of PCIe traffic since process start (or last [`reset_transfer_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransferStats {
    pub h2d_bytes: u64,
    pub d2h_bytes: u64,
    pub h2d_transfers: u64,
    pub d2h_transfers: u64,
}

/// Read the global transfer counters.
pub fn transfer_stats() -> TransferStats {
    TransferStats {
        h2d_bytes: H2D_BYTES.load(Ordering::Relaxed),
        d2h_bytes: D2H_BYTES.load(Ordering::Relaxed),
        h2d_transfers: H2D_TRANSFERS.load(Ordering::Relaxed),
        d2h_transfers: D2H_TRANSFERS.load(Ordering::Relaxed),
    }
}

/// Zero the global transfer counters (e.g. between benchmark phases).
pub fn reset_transfer_stats() {
    H2D_BYTES.store(0, Ordering::Relaxed);
    D2H_BYTES.store(0, Ordering::Relaxed);
    H2D_TRANSFERS.store(0, Ordering::Relaxed);
    D2H_TRANSFERS.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_track_directions_separately() {
        reset_transfer_stats();
        record_h2d(100);
        record_h2d(50);
        record_d2h(7);
        let s = transfer_stats();
        assert_eq!(s.h2d_bytes, 150);
        assert_eq!(s.h2d_transfers, 2);
        assert_eq!(s.d2h_bytes, 7);
        assert_eq!(s.d2h_transfers, 1);
        reset_transfer_stats();
        assert_eq!(transfer_stats(), TransferStats::default());
    }
}
