//! `parallel_for` / `parallel_reduce` dispatch.
//!
//! One generic entry point per (pattern, rank); the [`Space`] decides how
//! tiles are executed:
//!
//! * `Serial` — tiles in order, one thread;
//! * `Threads` — tiles on the rayon pool;
//! * `DeviceSim` — tiles as a block grid on the pool, launch counted;
//! * `SwAthread` — registry lookup → trampoline → simulated CPEs.
//!
//! **Determinism**: for-loops write disjoint elements, so backend choice
//! cannot change results. Reductions always produce one partial per tile
//! and join them in tile order on the launching thread, so their results
//! are bitwise identical across backends and run-to-run.

use rayon::prelude::*;

use crate::functor::IterCost;
use crate::functor::{
    Functor1D, Functor2D, Functor3D, FunctorList, ReduceFunctor1D, ReduceFunctor2D,
    ReduceFunctor3D, ReduceFunctorList, Reducer,
};
use crate::policy::{ListPolicy, MDRangePolicy2, MDRangePolicy3, RangePolicy};
use crate::profiling::{self, PatternKind, PolicyKind};
use crate::registry::{self, KernelKind};
use crate::space::{Space, SwSpace};
use sunway_sim::pipeline::choose_tile_elems;

fn not_registered<F>(kind: &str) -> ! {
    panic!(
        "functor `{}` is not registered for the SwAthread backend; \
         add `{}!(<name>, {});` and call `<name>()` during initialization \
         (the KOKKOS_REGISTER mechanism of paper §V-B)",
        std::any::type_name::<F>(),
        kind,
        std::any::type_name::<F>(),
    )
}

// ---------------------------------------------------------------------------
// Shared host-side tile drivers
// ---------------------------------------------------------------------------
//
// Every non-Sunway backend executes tiles through one of the four helpers
// below, so scheduling changes (and DeviceSim launch accounting, which used
// to be repeated per pattern) land in exactly one place. The SwAthread
// backend never reaches them — its dispatch goes through the registry
// trampolines in each entry point.

/// Run `run_tile` over `0..total` tiles on a host backend (count split).
/// Launch accounting happens at the dispatch chokepoint
/// ([`profiling::begin_kernel`]), not here.
fn drive_tiles(space: &Space, total: usize, run_tile: impl Fn(usize) + Sync) {
    match space {
        Space::Serial => (0..total).for_each(run_tile),
        Space::Threads(_) | Space::DeviceSim(_) => (0..total).into_par_iter().for_each(run_tile),
        Space::SwAthread(_) => unreachable!("SwAthread dispatch goes through the registry"),
    }
}

/// Collect one partial per tile, in tile order, on a host backend.
fn collect_partials(
    space: &Space,
    total: usize,
    tile_partial: impl Fn(usize) -> f64 + Sync,
) -> Vec<f64> {
    match space {
        Space::Serial => (0..total).map(tile_partial).collect(),
        Space::Threads(_) | Space::DeviceSim(_) => {
            (0..total).into_par_iter().map(tile_partial).collect()
        }
        Space::SwAthread(_) => unreachable!("SwAthread dispatch goes through the registry"),
    }
}

/// Run `run_tile` over a [`ListPolicy`]'s tiles on a host backend with
/// **cost-weighted scheduling**: each pool worker takes the contiguous tile
/// range holding its share of the cumulative tile cost, not a fixed tile
/// count. Tile contents never depend on the split, so results stay bitwise
/// identical to the serial sweep.
fn drive_list_tiles(space: &Space, policy: &ListPolicy, run_tile: impl Fn(usize) + Sync) {
    let total = policy.total_tiles();
    let par = |workers: usize| {
        (0..workers).into_par_iter().for_each(|w| {
            let (lo, hi) = policy.worker_tile_range(w, workers);
            for t in lo..hi {
                run_tile(t);
            }
        });
    };
    match space {
        Space::Serial => (0..total).for_each(run_tile),
        Space::Threads(_) | Space::DeviceSim(_) => par(rayon::current_num_threads()),
        Space::SwAthread(_) => unreachable!("SwAthread dispatch goes through the registry"),
    }
}

/// Cost-weighted analogue of [`collect_partials`] for list policies. The
/// per-worker chunks are contiguous and ascending, so flattening them in
/// worker order reproduces the tile order exactly — the reduction join
/// stays deterministic under any worker count.
fn collect_list_partials(
    space: &Space,
    policy: &ListPolicy,
    tile_partial: impl Fn(usize) -> f64 + Sync,
) -> Vec<f64> {
    let total = policy.total_tiles();
    let par = |workers: usize| -> Vec<f64> {
        let chunks: Vec<Vec<f64>> = (0..workers)
            .into_par_iter()
            .map(|w| {
                let (lo, hi) = policy.worker_tile_range(w, workers);
                (lo..hi).map(&tile_partial).collect()
            })
            .collect();
        chunks.into_iter().flatten().collect()
    };
    match space {
        Space::Serial => (0..total).map(tile_partial).collect(),
        Space::Threads(_) | Space::DeviceSim(_) => par(rayon::current_num_threads()),
        Space::SwAthread(_) => unreachable!("SwAthread dispatch goes through the registry"),
    }
}

// ---------------------------------------------------------------------------
// Cost-model-driven tile sizing (SwAthread dense for-launches only)
// ---------------------------------------------------------------------------
//
// On the Sunway backend the tile is the DMA staging unit, so the dispatch
// layer re-tiles dense *for* launches from the functor's `IterCost` and the
// core group's LDM/bandwidth/latency parameters
// ([`sunway_sim::pipeline::choose_tile_elems`]). For-loops write disjoint
// elements, so retiling cannot change results. Reductions and list
// launches keep the caller's tiles untouched: tile geometry is part of
// the deterministic reduction contract (one partial per tile, joined in
// tile order) and of the cost-prefix schedule respectively.

fn sw_retile_1d(sw: &SwSpace, p: RangePolicy, cost: IterCost) -> RangePolicy {
    let t = choose_tile_elems(sw.config(), cost.bytes, p.len());
    p.with_tile(t.max(1))
}

fn sw_retile_2d(sw: &SwSpace, p: MDRangePolicy2, cost: IterCost) -> MDRangePolicy2 {
    let t = choose_tile_elems(sw.config(), cost.bytes, p.extent[0] * p.extent[1]);
    // Keep the caller's row blocking; widen/narrow the streaming (inner)
    // dimension so the tile holds ~the chosen iteration count.
    let w = (t / p.tile[0].max(1)).clamp(1, p.extent[1].max(1));
    p.with_tile([p.tile[0], w])
}

fn sw_retile_3d(sw: &SwSpace, p: MDRangePolicy3, cost: IterCost) -> MDRangePolicy3 {
    let total = p.extent[0] * p.extent[1] * p.extent[2];
    let t = choose_tile_elems(sw.config(), cost.bytes, total);
    let w = (t / (p.tile[0] * p.tile[1]).max(1)).clamp(1, p.extent[2].max(1));
    p.with_tile([p.tile[0], p.tile[1], w])
}

// ---------------------------------------------------------------------------
// parallel_for
// ---------------------------------------------------------------------------

/// 1-D parallel for over `policy` on `space`.
pub fn parallel_for_1d<F: Functor1D + 'static>(space: &Space, policy: RangePolicy, f: &F) {
    let _span = profiling::begin_kernel(
        space,
        PatternKind::ParallelFor,
        std::any::type_name::<F>(),
        PolicyKind::Range,
        policy.len() as u64,
    );
    let total = policy.total_tiles();
    let run_tile = |t: usize| {
        let (lo, hi) = policy.tile_range(t);
        for i in lo..hi {
            f.operator(i);
        }
    };
    match space {
        Space::SwAthread(sw) => {
            let Some(tramp) = registry::lookup_simd(registry::key_of::<F>(), KernelKind::For1D)
            else {
                not_registered::<F>("register_for_1d");
            };
            let cost = f.cost();
            let payload = registry::Payload1D {
                functor: f as *const F as *const (),
                policy: sw_retile_1d(sw, policy, cost),
                cost,
            };
            sw.cg
                .lock()
                .run(tramp, &payload as *const registry::Payload1D as usize);
        }
        host => drive_tiles(host, total, run_tile),
    }
}

/// 2-D parallel for; index order `(j, i)`.
pub fn parallel_for_2d<F: Functor2D + 'static>(space: &Space, policy: MDRangePolicy2, f: &F) {
    let _span = profiling::begin_kernel(
        space,
        PatternKind::ParallelFor,
        std::any::type_name::<F>(),
        PolicyKind::MDRange2,
        (policy.extent[0] * policy.extent[1]) as u64,
    );
    let total = policy.total_tiles();
    let run_tile = |t: usize| {
        let [(j0, j1), (i0, i1)] = policy.tile_bounds(t);
        for j in j0..j1 {
            for i in i0..i1 {
                f.operator(j, i);
            }
        }
    };
    match space {
        Space::SwAthread(sw) => {
            let Some(tramp) = registry::lookup_simd(registry::key_of::<F>(), KernelKind::For2D)
            else {
                not_registered::<F>("register_for_2d");
            };
            let cost = f.cost();
            let payload = registry::Payload2D {
                functor: f as *const F as *const (),
                policy: sw_retile_2d(sw, policy, cost),
                cost,
            };
            sw.cg
                .lock()
                .run(tramp, &payload as *const registry::Payload2D as usize);
        }
        host => drive_tiles(host, total, run_tile),
    }
}

/// 3-D parallel for; index order `(k, j, i)`.
pub fn parallel_for_3d<F: Functor3D + 'static>(space: &Space, policy: MDRangePolicy3, f: &F) {
    let _span = profiling::begin_kernel(
        space,
        PatternKind::ParallelFor,
        std::any::type_name::<F>(),
        PolicyKind::MDRange3,
        (policy.extent[0] * policy.extent[1] * policy.extent[2]) as u64,
    );
    let total = policy.total_tiles();
    let run_tile = |t: usize| {
        let [(k0, k1), (j0, j1), (i0, i1)] = policy.tile_bounds(t);
        for k in k0..k1 {
            for j in j0..j1 {
                for i in i0..i1 {
                    f.operator(k, j, i);
                }
            }
        }
    };
    match space {
        Space::SwAthread(sw) => {
            let Some(tramp) = registry::lookup_simd(registry::key_of::<F>(), KernelKind::For3D)
            else {
                not_registered::<F>("register_for_3d");
            };
            let cost = f.cost();
            let payload = registry::Payload3D {
                functor: f as *const F as *const (),
                policy: sw_retile_3d(sw, policy, cost),
                cost,
            };
            sw.cg
                .lock()
                .run(tramp, &payload as *const registry::Payload3D as usize);
        }
        host => drive_tiles(host, total, run_tile),
    }
}

/// Index-list parallel for (active-set iteration): run `f.operator(n,
/// policy.entry(n))` for every list position `n` in the policy's range.
/// Host backends use the cost-weighted tile drivers; SwAthread goes through
/// the registry to [`registry::tramp_for_list`], whose per-CPE tile ranges
/// are cost-weighted the same way.
pub fn parallel_for_list<F: FunctorList + 'static>(space: &Space, policy: &ListPolicy, f: &F) {
    let _span = profiling::begin_kernel(
        space,
        PatternKind::ParallelFor,
        std::any::type_name::<F>(),
        PolicyKind::List,
        policy.len() as u64,
    );
    let run_tile = |t: usize| {
        let (lo, hi) = policy.tile_range(t);
        for n in lo..hi {
            f.operator(n, policy.entry(n));
        }
    };
    match space {
        Space::SwAthread(sw) => {
            let Some(tramp) = registry::lookup_simd(registry::key_of::<F>(), KernelKind::ForList)
            else {
                not_registered::<F>("register_for_list");
            };
            let payload = registry::PayloadList {
                functor: f as *const F as *const (),
                policy: policy as *const ListPolicy,
                cost: f.cost(),
            };
            sw.cg
                .lock()
                .run(tramp, &payload as *const registry::PayloadList as usize);
        }
        host => drive_list_tiles(host, policy, run_tile),
    }
}

/// Index-list reduction. One partial per tile, joined in tile order —
/// bitwise identical across backends, worker counts and cost weightings.
pub fn parallel_reduce_list<F: ReduceFunctorList + 'static>(
    space: &Space,
    policy: &ListPolicy,
    f: &F,
    op: Reducer,
) -> f64 {
    let _span = profiling::begin_kernel(
        space,
        PatternKind::ParallelReduce,
        std::any::type_name::<F>(),
        PolicyKind::List,
        policy.len() as u64,
    );
    let tile_partial = |t: usize| {
        let (lo, hi) = policy.tile_range(t);
        let mut acc = op.identity();
        for n in lo..hi {
            f.contribute(n, policy.entry(n), &mut acc);
        }
        acc
    };
    let partials: Vec<f64> = match space {
        Space::SwAthread(sw) => {
            let Some(tramp) =
                registry::lookup_simd(registry::key_of::<F>(), KernelKind::ReduceList)
            else {
                not_registered::<F>("register_reduce_list");
            };
            let mut partials = vec![op.identity(); policy.total_tiles()];
            let payload = registry::PayloadReduceList {
                functor: f as *const F as *const (),
                policy: policy as *const ListPolicy,
                cost: f.cost(),
                partials: partials.as_mut_ptr(),
                identity: op.identity(),
            };
            sw.cg.lock().run(
                tramp,
                &payload as *const registry::PayloadReduceList as usize,
            );
            partials
        }
        host => collect_list_partials(host, policy, tile_partial),
    };
    join_partials(&partials, op)
}

// ---------------------------------------------------------------------------
// parallel_reduce
// ---------------------------------------------------------------------------

fn join_partials(partials: &[f64], op: Reducer) -> f64 {
    partials.iter().fold(op.identity(), |a, &b| op.join(a, b))
}

/// 1-D reduction over `policy`. Bitwise identical on every backend.
pub fn parallel_reduce_1d<F: ReduceFunctor1D + 'static>(
    space: &Space,
    policy: RangePolicy,
    f: &F,
    op: Reducer,
) -> f64 {
    let _span = profiling::begin_kernel(
        space,
        PatternKind::ParallelReduce,
        std::any::type_name::<F>(),
        PolicyKind::Range,
        policy.len() as u64,
    );
    let total = policy.total_tiles();
    let tile_partial = |t: usize| {
        let (lo, hi) = policy.tile_range(t);
        let mut acc = op.identity();
        for i in lo..hi {
            f.contribute(i, &mut acc);
        }
        acc
    };
    let partials: Vec<f64> = match space {
        Space::SwAthread(sw) => {
            let Some(tramp) = registry::lookup_simd(registry::key_of::<F>(), KernelKind::Reduce1D)
            else {
                not_registered::<F>("register_reduce_1d");
            };
            let mut partials = vec![op.identity(); total];
            let payload = registry::PayloadReduce1D {
                functor: f as *const F as *const (),
                policy,
                cost: f.cost(),
                partials: partials.as_mut_ptr(),
                identity: op.identity(),
            };
            sw.cg
                .lock()
                .run(tramp, &payload as *const registry::PayloadReduce1D as usize);
            partials
        }
        host => collect_partials(host, total, tile_partial),
    };
    join_partials(&partials, op)
}

/// 2-D reduction.
pub fn parallel_reduce_2d<F: ReduceFunctor2D + 'static>(
    space: &Space,
    policy: MDRangePolicy2,
    f: &F,
    op: Reducer,
) -> f64 {
    let _span = profiling::begin_kernel(
        space,
        PatternKind::ParallelReduce,
        std::any::type_name::<F>(),
        PolicyKind::MDRange2,
        (policy.extent[0] * policy.extent[1]) as u64,
    );
    let total = policy.total_tiles();
    let tile_partial = |t: usize| {
        let [(j0, j1), (i0, i1)] = policy.tile_bounds(t);
        let mut acc = op.identity();
        for j in j0..j1 {
            for i in i0..i1 {
                f.contribute(j, i, &mut acc);
            }
        }
        acc
    };
    let partials: Vec<f64> = match space {
        Space::SwAthread(sw) => {
            let Some(tramp) = registry::lookup_simd(registry::key_of::<F>(), KernelKind::Reduce2D)
            else {
                not_registered::<F>("register_reduce_2d");
            };
            let mut partials = vec![op.identity(); total];
            let payload = registry::PayloadReduce2D {
                functor: f as *const F as *const (),
                policy,
                cost: f.cost(),
                partials: partials.as_mut_ptr(),
                identity: op.identity(),
            };
            sw.cg
                .lock()
                .run(tramp, &payload as *const registry::PayloadReduce2D as usize);
            partials
        }
        host => collect_partials(host, total, tile_partial),
    };
    join_partials(&partials, op)
}

/// 3-D reduction.
pub fn parallel_reduce_3d<F: ReduceFunctor3D + 'static>(
    space: &Space,
    policy: MDRangePolicy3,
    f: &F,
    op: Reducer,
) -> f64 {
    let _span = profiling::begin_kernel(
        space,
        PatternKind::ParallelReduce,
        std::any::type_name::<F>(),
        PolicyKind::MDRange3,
        (policy.extent[0] * policy.extent[1] * policy.extent[2]) as u64,
    );
    let total = policy.total_tiles();
    let tile_partial = |t: usize| {
        let [(k0, k1), (j0, j1), (i0, i1)] = policy.tile_bounds(t);
        let mut acc = op.identity();
        for k in k0..k1 {
            for j in j0..j1 {
                for i in i0..i1 {
                    f.contribute(k, j, i, &mut acc);
                }
            }
        }
        acc
    };
    let partials: Vec<f64> = match space {
        Space::SwAthread(sw) => {
            let Some(tramp) = registry::lookup_simd(registry::key_of::<F>(), KernelKind::Reduce3D)
            else {
                not_registered::<F>("register_reduce_3d");
            };
            let mut partials = vec![op.identity(); total];
            let payload = registry::PayloadReduce3D {
                functor: f as *const F as *const (),
                policy,
                cost: f.cost(),
                partials: partials.as_mut_ptr(),
                identity: op.identity(),
            };
            sw.cg
                .lock()
                .run(tramp, &payload as *const registry::PayloadReduce3D as usize);
            partials
        }
        host => collect_partials(host, total, tile_partial),
    };
    join_partials(&partials, op)
}

/// Block until all outstanding work on `space` completes (Kokkos `fence`).
/// All our backends launch synchronously, so this only marks the fence
/// for an attached profiling tool (Kokkos Tools `kokkosp_*_fence`).
pub fn fence(space: &Space) {
    profiling::mark_fence("fence", space.name());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::{View, View1, View2, View3};
    use std::sync::Arc;
    use sunway_sim::CgConfig;

    // The paper's Code 1: AXPY.
    struct FunctorAxpy {
        a: f64,
        x: View1<f64>,
        y: View1<f64>,
    }
    impl Functor1D for FunctorAxpy {
        fn operator(&self, i: usize) {
            self.y.set_at(i, self.a * self.x.at(i) + self.y.at(i));
        }
    }
    crate::register_for_1d!(my_axpy, FunctorAxpy);

    struct Stencil2 {
        src: View2<f64>,
        dst: View2<f64>,
    }
    impl Functor2D for Stencil2 {
        fn operator(&self, j: usize, i: usize) {
            let [ny, nx] = self.src.dims();
            let c = self.src.at(j, i);
            let n = if j + 1 < ny { self.src.at(j + 1, i) } else { c };
            let s = if j > 0 { self.src.at(j - 1, i) } else { c };
            let e = if i + 1 < nx { self.src.at(j, i + 1) } else { c };
            let w = if i > 0 { self.src.at(j, i - 1) } else { c };
            self.dst.set_at(j, i, 0.2 * (c + n + s + e + w));
        }
    }
    crate::register_for_2d!(stencil2, Stencil2);

    struct Fill3 {
        v: View3<f64>,
    }
    impl Functor3D for Fill3 {
        fn operator(&self, k: usize, j: usize, i: usize) {
            self.v.set_at(k, j, i, (k * 10000 + j * 100 + i) as f64);
        }
    }
    crate::register_for_3d!(fill3, Fill3);

    struct SumSq {
        x: View1<f64>,
    }
    impl ReduceFunctor1D for SumSq {
        fn contribute(&self, i: usize, acc: &mut f64) {
            *acc += self.x.at(i) * self.x.at(i);
        }
    }
    crate::register_reduce_1d!(sum_sq, SumSq);

    // Active-set iteration: dst slot n gets a value gathered via the
    // packed index — exercises both halves of the (n, idx) pair.
    struct ListScatter {
        src: View1<f64>,
        dst: View1<f64>,
    }
    impl FunctorList for ListScatter {
        fn operator(&self, n: usize, idx: u32) {
            self.dst
                .set_at(n, 2.0 * self.src.at(idx as usize) + n as f64);
        }
    }
    crate::register_for_list!(list_scatter, ListScatter);

    struct ListSum {
        src: View1<f64>,
    }
    impl ReduceFunctorList for ListSum {
        fn contribute(&self, _n: usize, idx: u32, acc: &mut f64) {
            *acc += self.src.at(idx as usize) * self.src.at(idx as usize);
        }
    }
    crate::register_reduce_list!(list_sum, ListSum);

    struct Max3 {
        v: View3<f64>,
    }
    impl ReduceFunctor3D for Max3 {
        fn contribute(&self, k: usize, j: usize, i: usize, acc: &mut f64) {
            *acc = acc.max(self.v.at(k, j, i));
        }
    }
    crate::register_reduce_3d!(max3, Max3);

    fn all_spaces() -> Vec<Space> {
        vec![
            Space::serial(),
            Space::threads(),
            Space::device_sim(),
            Space::sw_athread_with(CgConfig::test_small()),
        ]
    }

    #[test]
    fn axpy_identical_on_all_backends() {
        my_axpy();
        let n = 1003;
        let mut reference: Option<Vec<f64>> = None;
        for space in all_spaces() {
            let x: View1<f64> = View::host("x", [n]);
            let y: View1<f64> = View::host("y", [n]);
            for i in 0..n {
                x.set_at(i, (i as f64).sin());
                y.set_at(i, (i as f64).cos());
            }
            let f = FunctorAxpy {
                a: 0.31,
                x,
                y: y.clone(),
            };
            parallel_for_1d(&space, RangePolicy::new(n).with_tile(64), &f);
            let got = y.to_vec();
            match &reference {
                None => reference = Some(got),
                Some(r) => assert_eq!(
                    r.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "backend {} diverged bitwise",
                    space.name()
                ),
            }
        }
    }

    #[test]
    fn stencil_2d_identical_on_all_backends() {
        stencil2();
        let (ny, nx) = (37, 53);
        let mut reference: Option<Vec<u64>> = None;
        for space in all_spaces() {
            let src: View2<f64> = View::host("src", [ny, nx]);
            let dst: View2<f64> = View::host("dst", [ny, nx]);
            for j in 0..ny {
                for i in 0..nx {
                    src.set_at(j, i, ((j * 31 + i * 17) as f64).sin());
                }
            }
            let f = Stencil2 {
                src,
                dst: dst.clone(),
            };
            parallel_for_2d(&space, MDRangePolicy2::new([ny, nx]).with_tile([5, 9]), &f);
            let bits: Vec<u64> = dst.to_vec().iter().map(|v| v.to_bits()).collect();
            match &reference {
                None => reference = Some(bits),
                Some(r) => assert_eq!(r, &bits, "backend {} diverged", space.name()),
            }
        }
    }

    #[test]
    fn for_3d_covers_every_index() {
        fill3();
        for space in all_spaces() {
            let v: View3<f64> = View::host("v", [5, 11, 13]);
            v.fill(-1.0);
            let f = Fill3 { v: v.clone() };
            parallel_for_3d(
                &space,
                MDRangePolicy3::new([5, 11, 13]).with_tile([2, 3, 4]),
                &f,
            );
            for k in 0..5 {
                for j in 0..11 {
                    for i in 0..13 {
                        assert_eq!(
                            v.at(k, j, i),
                            (k * 10000 + j * 100 + i) as f64,
                            "space {}",
                            space.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn reduce_1d_bitwise_identical_on_all_backends() {
        sum_sq();
        let n = 4097;
        let x: View1<f64> = View::host("x", [n]);
        for i in 0..n {
            // awkward magnitudes to expose ordering differences
            x.set_at(i, ((i % 97) as f64 + 0.1) * 10f64.powi((i % 7) as i32 - 3));
        }
        let f = SumSq { x };
        let policy = RangePolicy::new(n).with_tile(128);
        let mut bits = Vec::new();
        for space in all_spaces() {
            let s = parallel_reduce_1d(&space, policy, &f, Reducer::Sum);
            bits.push(s.to_bits());
        }
        assert!(
            bits.iter().all(|&b| b == bits[0]),
            "reduction differed across backends: {bits:?}"
        );
    }

    #[test]
    fn reduce_3d_max() {
        max3();
        let v: View3<f64> = View::host("v", [4, 6, 8]);
        for k in 0..4 {
            for j in 0..6 {
                for i in 0..8 {
                    v.set_at(k, j, i, -((k + j + i) as f64));
                }
            }
        }
        v.set_at(2, 3, 5, 99.5);
        let f = Max3 { v };
        for space in all_spaces() {
            let m = parallel_reduce_3d(&space, MDRangePolicy3::new([4, 6, 8]), &f, Reducer::Max);
            assert_eq!(m, 99.5, "space {}", space.name());
        }
    }

    fn skewed_list_policy(n: usize) -> ListPolicy {
        // Non-monotone active set with a strongly skewed cost profile.
        let indices: Arc<Vec<u32>> = Arc::new(
            (0..n as u32)
                .map(|i| (i.wrapping_mul(2654435761)) % n as u32)
                .collect(),
        );
        let mut prefix = vec![0u64; n + 1];
        for i in 0..n {
            let w = if i % 11 == 0 { 40 } else { 1 + (i % 3) as u64 };
            prefix[i + 1] = prefix[i] + w;
        }
        ListPolicy::new(indices)
            .with_tile(7) // ragged final tile for n not divisible by 7
            .with_cost_prefix(Arc::new(prefix))
    }

    #[test]
    fn list_for_identical_on_all_backends() {
        list_scatter();
        let n = 997;
        let mut reference: Option<Vec<u64>> = None;
        for space in all_spaces() {
            let src: View1<f64> = View::host("src", [n]);
            let dst: View1<f64> = View::host("dst", [n]);
            for i in 0..n {
                src.set_at(i, (i as f64 * 0.37).sin());
            }
            let f = ListScatter {
                src,
                dst: dst.clone(),
            };
            let policy = skewed_list_policy(n);
            parallel_for_list(&space, &policy, &f);
            let bits: Vec<u64> = dst.to_vec().iter().map(|v| v.to_bits()).collect();
            match &reference {
                None => reference = Some(bits),
                Some(r) => assert_eq!(r, &bits, "backend {} diverged", space.name()),
            }
        }
    }

    #[test]
    fn list_reduce_bitwise_identical_on_all_backends() {
        list_sum();
        let n = 1361;
        let src: View1<f64> = View::host("src", [n]);
        for i in 0..n {
            src.set_at(i, ((i % 89) as f64 + 0.3) * 10f64.powi((i % 5) as i32 - 2));
        }
        let f = ListSum { src };
        let policy = skewed_list_policy(n);
        let mut bits = Vec::new();
        for space in all_spaces() {
            let s = parallel_reduce_list(&space, &policy, &f, Reducer::Sum);
            bits.push(s.to_bits());
        }
        assert!(
            bits.iter().all(|&b| b == bits[0]),
            "list reduction differed across backends: {bits:?}"
        );
    }

    #[test]
    fn empty_list_is_a_noop_everywhere() {
        list_scatter();
        for space in all_spaces() {
            let src: View1<f64> = View::host("src", [4]);
            let dst: View1<f64> = View::host("dst", [4]);
            let f = ListScatter {
                src,
                dst: dst.clone(),
            };
            let policy = ListPolicy::new(Arc::new(Vec::new()));
            parallel_for_list(&space, &policy, &f);
            assert!(dst.to_vec().iter().all(|&v| v == 0.0));
        }
    }

    #[test]
    fn sunway_list_launch_accounts_tiles() {
        list_scatter();
        let space = Space::sw_athread_with(CgConfig::test_small());
        let n = 200;
        let src: View1<f64> = View::host("src", [n]);
        let dst: View1<f64> = View::host("dst", [n]);
        let f = ListScatter { src, dst };
        let policy = skewed_list_policy(n);
        parallel_for_list(&space, &policy, &f);
        if let Space::SwAthread(sw) = &space {
            let c = sw.counters();
            assert_eq!(c.kernels_launched, 1);
            assert_eq!(
                c.totals.tiles,
                policy.total_tiles() as u64,
                "every tile executed exactly once across the CPEs"
            );
        } else {
            unreachable!()
        }
    }

    #[test]
    #[should_panic(expected = "not registered for the SwAthread backend")]
    fn unregistered_list_functor_panics_on_sunway() {
        struct UnregisteredList;
        impl FunctorList for UnregisteredList {
            fn operator(&self, _n: usize, _idx: u32) {}
        }
        let space = Space::sw_athread_with(CgConfig::test_small());
        let policy = ListPolicy::new(Arc::new(vec![0, 1, 2]));
        parallel_for_list(&space, &policy, &UnregisteredList);
    }

    #[test]
    fn device_sim_counts_list_launches() {
        list_scatter();
        let space = Space::device_sim();
        let src: View1<f64> = View::host("src", [32]);
        let dst: View1<f64> = View::host("dst", [32]);
        let f = ListScatter { src, dst };
        let policy = ListPolicy::new(Arc::new((0..32).collect()));
        for _ in 0..3 {
            parallel_for_list(&space, &policy, &f);
        }
        if let Space::DeviceSim(d) = &space {
            assert_eq!(d.launches(), 3);
        } else {
            unreachable!()
        }
    }

    #[test]
    fn device_sim_counts_launches() {
        my_axpy();
        let space = Space::device_sim();
        let x: View1<f64> = View::host("x", [64]);
        let y: View1<f64> = View::host("y", [64]);
        let f = FunctorAxpy { a: 1.0, x, y };
        for _ in 0..5 {
            parallel_for_1d(&space, RangePolicy::new(64), &f);
        }
        if let Space::DeviceSim(d) = &space {
            assert_eq!(d.launches(), 5);
        } else {
            unreachable!()
        }
    }

    #[test]
    #[should_panic(expected = "not registered for the SwAthread backend")]
    fn unregistered_functor_panics_on_sunway() {
        struct Unregistered {
            v: View1<f64>,
        }
        impl Functor1D for Unregistered {
            fn operator(&self, i: usize) {
                self.v.set_at(i, 0.0);
            }
        }
        let space = Space::sw_athread_with(CgConfig::test_small());
        let f = Unregistered {
            v: View::host("v", [8]),
        };
        parallel_for_1d(&space, RangePolicy::new(8), &f);
    }

    #[test]
    fn sunway_counters_accumulate_over_launches() {
        my_axpy();
        let space = Space::sw_athread_with(CgConfig::test_small());
        let x: View1<f64> = View::host("x", [512]);
        let y: View1<f64> = View::host("y", [512]);
        let f = FunctorAxpy { a: 2.0, x, y };
        parallel_for_1d(&space, RangePolicy::new(512).with_tile(32), &f);
        if let Space::SwAthread(sw) = &space {
            let c = sw.counters();
            assert_eq!(c.kernels_launched, 1);
            assert!(c.totals.flops > 0);
            assert!(c.totals.dma_get_bytes > 0, "DMA staging was accounted");
        } else {
            unreachable!()
        }
    }

    #[test]
    fn empty_policy_is_a_noop_everywhere() {
        my_axpy();
        for space in all_spaces() {
            let x: View1<f64> = View::host("x", [4]);
            let y: View1<f64> = View::host("y", [4]);
            let f = FunctorAxpy {
                a: 5.0,
                x,
                y: y.clone(),
            };
            parallel_for_1d(&space, RangePolicy::range(0, 0), &f);
            assert!(y.to_vec().iter().all(|&v| v == 0.0));
        }
    }
}
