//! Execution policies and the CPE tile mapping.
//!
//! Implements the paper's Eq. (1) and Eq. (2):
//!
//! ```text
//! total_tile        = Π_n ⌈ len_range_n / len_tile_n ⌉          (1)
//! num_tile_per_cpe  = ⌈ total_tile / num_cpe ⌉                  (2)
//! ```
//!
//! Tiles are the unit of work distribution on CPEs and also the unit of
//! deterministic reduction on every backend: partial sums are produced per
//! tile and combined in tile order, making `parallel_reduce` bitwise
//! identical across Serial, Threads, DeviceSim and SwAthread.

/// 1-D iteration policy `[start, end)` with a tile (chunk) length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RangePolicy {
    pub start: usize,
    pub end: usize,
    pub tile: usize,
}

impl RangePolicy {
    /// Policy over `0..n` with the default tile (256, a cache/LDM-friendly
    /// chunk that also gives Threads enough parallel slack).
    pub fn new(n: usize) -> Self {
        Self {
            start: 0,
            end: n,
            tile: 256,
        }
    }

    /// Policy over `start..end`.
    pub fn range(start: usize, end: usize) -> Self {
        assert!(start <= end);
        Self {
            start,
            end,
            tile: 256,
        }
    }

    /// Override the tile length.
    pub fn with_tile(mut self, tile: usize) -> Self {
        assert!(tile > 0, "tile length must be positive");
        self.tile = tile;
        self
    }

    /// Number of iterations.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Paper Eq. (1) for one dimension.
    pub fn total_tiles(&self) -> usize {
        self.len().div_ceil(self.tile)
    }

    /// Index range of tile `t`.
    pub fn tile_range(&self, t: usize) -> (usize, usize) {
        let lo = self.start + t * self.tile;
        let hi = (lo + self.tile).min(self.end);
        (lo, hi)
    }
}

/// 2-D multidimensional range policy (Kokkos `MDRangePolicy<Rank<2>>`).
/// Index order is `(j, i)` with `i` innermost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MDRangePolicy2 {
    pub extent: [usize; 2],
    pub tile: [usize; 2],
}

impl MDRangePolicy2 {
    pub fn new(extent: [usize; 2]) -> Self {
        Self {
            extent,
            tile: [8, 64],
        }
    }

    pub fn with_tile(mut self, tile: [usize; 2]) -> Self {
        assert!(tile.iter().all(|&t| t > 0));
        self.tile = tile;
        self
    }

    /// Paper Eq. (1): product of per-dimension tile counts.
    pub fn total_tiles(&self) -> usize {
        (0..2)
            .map(|d| self.extent[d].div_ceil(self.tile[d]))
            .product()
    }

    /// Tile counts per dimension.
    pub fn tiles_per_dim(&self) -> [usize; 2] {
        [
            self.extent[0].div_ceil(self.tile[0]),
            self.extent[1].div_ceil(self.tile[1]),
        ]
    }

    /// Decode tile `t` into per-dim index ranges `[(lo,hi); 2]`.
    pub fn tile_bounds(&self, t: usize) -> [(usize, usize); 2] {
        let td = self.tiles_per_dim();
        let tj = t / td[1];
        let ti = t % td[1];
        let j0 = tj * self.tile[0];
        let i0 = ti * self.tile[1];
        [
            (j0, (j0 + self.tile[0]).min(self.extent[0])),
            (i0, (i0 + self.tile[1]).min(self.extent[1])),
        ]
    }
}

/// 3-D multidimensional range policy. Index order is `(k, j, i)`, `i`
/// innermost — LICOM's storage convention.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MDRangePolicy3 {
    pub extent: [usize; 3],
    pub tile: [usize; 3],
}

impl MDRangePolicy3 {
    pub fn new(extent: [usize; 3]) -> Self {
        Self {
            extent,
            tile: [1, 8, 64],
        }
    }

    pub fn with_tile(mut self, tile: [usize; 3]) -> Self {
        assert!(tile.iter().all(|&t| t > 0));
        self.tile = tile;
        self
    }

    /// Paper Eq. (1).
    pub fn total_tiles(&self) -> usize {
        (0..3)
            .map(|d| self.extent[d].div_ceil(self.tile[d]))
            .product()
    }

    pub fn tiles_per_dim(&self) -> [usize; 3] {
        [
            self.extent[0].div_ceil(self.tile[0]),
            self.extent[1].div_ceil(self.tile[1]),
            self.extent[2].div_ceil(self.tile[2]),
        ]
    }

    /// Decode tile `t` into per-dim index ranges.
    pub fn tile_bounds(&self, t: usize) -> [(usize, usize); 3] {
        let td = self.tiles_per_dim();
        let tk = t / (td[1] * td[2]);
        let rem = t % (td[1] * td[2]);
        let tj = rem / td[2];
        let ti = rem % td[2];
        let k0 = tk * self.tile[0];
        let j0 = tj * self.tile[1];
        let i0 = ti * self.tile[2];
        [
            (k0, (k0 + self.tile[0]).min(self.extent[0])),
            (j0, (j0 + self.tile[1]).min(self.extent[1])),
            (i0, (i0 + self.tile[2]).min(self.extent[2])),
        ]
    }
}

/// Paper Eq. (2): tiles each CPE sweeps to cover `total_tiles`.
pub fn tiles_per_cpe(total_tiles: usize, num_cpe: usize) -> usize {
    total_tiles.div_ceil(num_cpe.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq1_1d() {
        let p = RangePolicy::new(1000).with_tile(64);
        assert_eq!(p.total_tiles(), 16); // ceil(1000/64)
    }

    #[test]
    fn eq1_3d_product() {
        let p = MDRangePolicy3::new([30, 218, 360]).with_tile([1, 8, 64]);
        // ceil(30/1)=30, ceil(218/8)=28, ceil(360/64)=6 → 5040
        assert_eq!(p.total_tiles(), 30 * 28 * 6);
    }

    #[test]
    fn eq2_balanced_distribution() {
        assert_eq!(tiles_per_cpe(5040, 64), 79); // ceil
        assert_eq!(tiles_per_cpe(64, 64), 1);
        assert_eq!(tiles_per_cpe(65, 64), 2);
        assert_eq!(tiles_per_cpe(0, 64), 0);
    }

    #[test]
    fn tile_ranges_cover_1d_exactly() {
        let p = RangePolicy::range(5, 103).with_tile(16);
        let mut covered = Vec::new();
        for t in 0..p.total_tiles() {
            let (lo, hi) = p.tile_range(t);
            assert!(lo < hi);
            covered.extend(lo..hi);
        }
        let expect: Vec<usize> = (5..103).collect();
        assert_eq!(covered, expect);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn tile_bounds_cover_2d_exactly() {
        let p = MDRangePolicy2::new([7, 13]).with_tile([3, 5]);
        let mut hit = vec![vec![0u32; 13]; 7];
        for t in 0..p.total_tiles() {
            let [(j0, j1), (i0, i1)] = p.tile_bounds(t);
            for j in j0..j1 {
                for i in i0..i1 {
                    hit[j][i] += 1;
                }
            }
        }
        assert!(hit.iter().flatten().all(|&c| c == 1), "each index once");
    }

    #[test]
    fn tile_bounds_cover_3d_exactly() {
        let p = MDRangePolicy3::new([4, 7, 9]).with_tile([2, 3, 4]);
        let mut hit = vec![0u32; 4 * 7 * 9];
        for t in 0..p.total_tiles() {
            let [(k0, k1), (j0, j1), (i0, i1)] = p.tile_bounds(t);
            for k in k0..k1 {
                for j in j0..j1 {
                    for i in i0..i1 {
                        hit[(k * 7 + j) * 9 + i] += 1;
                    }
                }
            }
        }
        assert!(hit.iter().all(|&c| c == 1));
    }

    #[test]
    #[should_panic(expected = "tile length must be positive")]
    fn zero_tile_rejected() {
        let _ = RangePolicy::new(10).with_tile(0);
    }
}
