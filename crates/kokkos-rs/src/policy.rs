//! Execution policies and the CPE tile mapping.
//!
//! Implements the paper's Eq. (1) and Eq. (2):
//!
//! ```text
//! total_tile        = Π_n ⌈ len_range_n / len_tile_n ⌉          (1)
//! num_tile_per_cpe  = ⌈ total_tile / num_cpe ⌉                  (2)
//! ```
//!
//! Tiles are the unit of work distribution on CPEs and also the unit of
//! deterministic reduction on every backend: partial sums are produced per
//! tile and combined in tile order, making `parallel_reduce` bitwise
//! identical across Serial, Threads, DeviceSim and SwAthread.
//!
//! [`ListPolicy`] extends the same tiling to *compact index lists*: instead
//! of a dense range, iteration walks a shared packed array of indices (the
//! active set — e.g. the wet points of an ocean grid, where roughly a third
//! of a global tripolar domain is land). Tiles may additionally carry a
//! **cost weight** (e.g. wet levels per column); workers/CPEs then split
//! tiles by cumulative cost instead of count ([`ListPolicy::worker_tile_range`]),
//! generalizing the canuto column balancer into the dispatch layer.

use std::sync::Arc;

/// 1-D iteration policy `[start, end)` with a tile (chunk) length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RangePolicy {
    pub start: usize,
    pub end: usize,
    pub tile: usize,
}

impl RangePolicy {
    /// Policy over `0..n` with the default tile (256, a cache/LDM-friendly
    /// chunk that also gives Threads enough parallel slack).
    pub fn new(n: usize) -> Self {
        Self {
            start: 0,
            end: n,
            tile: 256,
        }
    }

    /// Policy over `start..end`.
    pub fn range(start: usize, end: usize) -> Self {
        assert!(start <= end);
        Self {
            start,
            end,
            tile: 256,
        }
    }

    /// Override the tile length.
    pub fn with_tile(mut self, tile: usize) -> Self {
        assert!(tile > 0, "tile length must be positive");
        self.tile = tile;
        self
    }

    /// Number of iterations.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Paper Eq. (1) for one dimension.
    pub fn total_tiles(&self) -> usize {
        self.len().div_ceil(self.tile)
    }

    /// Index range of tile `t`.
    pub fn tile_range(&self, t: usize) -> (usize, usize) {
        let lo = self.start + t * self.tile;
        let hi = (lo + self.tile).min(self.end);
        (lo, hi)
    }
}

/// 2-D multidimensional range policy (Kokkos `MDRangePolicy<Rank<2>>`).
/// Index order is `(j, i)` with `i` innermost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MDRangePolicy2 {
    pub extent: [usize; 2],
    pub tile: [usize; 2],
    /// Origin the iteration indices start from (Kokkos' lower-bound
    /// `MDRangePolicy({b0,b1},{e0,e1})`): the functor sees indices
    /// `offset[d] .. offset[d] + extent[d]`. Lets interior/rim sub-ranges
    /// of one kernel reuse the registered dense launch path.
    pub offset: [usize; 2],
}

impl MDRangePolicy2 {
    pub fn new(extent: [usize; 2]) -> Self {
        Self {
            extent,
            tile: [8, 64],
            offset: [0, 0],
        }
    }

    pub fn with_tile(mut self, tile: [usize; 2]) -> Self {
        assert!(tile.iter().all(|&t| t > 0));
        self.tile = tile;
        self
    }

    /// Shift the iteration origin; `extent` stays the iteration count.
    pub fn with_offset(mut self, offset: [usize; 2]) -> Self {
        self.offset = offset;
        self
    }

    /// Paper Eq. (1): product of per-dimension tile counts.
    pub fn total_tiles(&self) -> usize {
        (0..2)
            .map(|d| self.extent[d].div_ceil(self.tile[d]))
            .product()
    }

    /// Tile counts per dimension.
    pub fn tiles_per_dim(&self) -> [usize; 2] {
        [
            self.extent[0].div_ceil(self.tile[0]),
            self.extent[1].div_ceil(self.tile[1]),
        ]
    }

    /// Decode tile `t` into per-dim index ranges `[(lo,hi); 2]` (shifted
    /// by `offset`, so every backend honors the origin for free).
    pub fn tile_bounds(&self, t: usize) -> [(usize, usize); 2] {
        let td = self.tiles_per_dim();
        let tj = t / td[1];
        let ti = t % td[1];
        let j0 = tj * self.tile[0];
        let i0 = ti * self.tile[1];
        [
            (
                self.offset[0] + j0,
                self.offset[0] + (j0 + self.tile[0]).min(self.extent[0]),
            ),
            (
                self.offset[1] + i0,
                self.offset[1] + (i0 + self.tile[1]).min(self.extent[1]),
            ),
        ]
    }
}

/// 3-D multidimensional range policy. Index order is `(k, j, i)`, `i`
/// innermost — LICOM's storage convention.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MDRangePolicy3 {
    pub extent: [usize; 3],
    pub tile: [usize; 3],
    /// Iteration origin per dimension; see [`MDRangePolicy2::offset`].
    pub offset: [usize; 3],
}

impl MDRangePolicy3 {
    pub fn new(extent: [usize; 3]) -> Self {
        Self {
            extent,
            tile: [1, 8, 64],
            offset: [0, 0, 0],
        }
    }

    pub fn with_tile(mut self, tile: [usize; 3]) -> Self {
        assert!(tile.iter().all(|&t| t > 0));
        self.tile = tile;
        self
    }

    /// Shift the iteration origin; `extent` stays the iteration count.
    pub fn with_offset(mut self, offset: [usize; 3]) -> Self {
        self.offset = offset;
        self
    }

    /// Paper Eq. (1).
    pub fn total_tiles(&self) -> usize {
        (0..3)
            .map(|d| self.extent[d].div_ceil(self.tile[d]))
            .product()
    }

    pub fn tiles_per_dim(&self) -> [usize; 3] {
        [
            self.extent[0].div_ceil(self.tile[0]),
            self.extent[1].div_ceil(self.tile[1]),
            self.extent[2].div_ceil(self.tile[2]),
        ]
    }

    /// Decode tile `t` into per-dim index ranges (shifted by `offset`).
    pub fn tile_bounds(&self, t: usize) -> [(usize, usize); 3] {
        let td = self.tiles_per_dim();
        let tk = t / (td[1] * td[2]);
        let rem = t % (td[1] * td[2]);
        let tj = rem / td[2];
        let ti = rem % td[2];
        let k0 = tk * self.tile[0];
        let j0 = tj * self.tile[1];
        let i0 = ti * self.tile[2];
        [
            (
                self.offset[0] + k0,
                self.offset[0] + (k0 + self.tile[0]).min(self.extent[0]),
            ),
            (
                self.offset[1] + j0,
                self.offset[1] + (j0 + self.tile[1]).min(self.extent[1]),
            ),
            (
                self.offset[2] + i0,
                self.offset[2] + (i0 + self.tile[2]).min(self.extent[2]),
            ),
        ]
    }
}

/// Paper Eq. (2): tiles each CPE sweeps to cover `total_tiles`.
pub fn tiles_per_cpe(total_tiles: usize, num_cpe: usize) -> usize {
    total_tiles.div_ceil(num_cpe.max(1))
}

/// Compact index-list policy: iterate positions `start..end` of a shared
/// packed index array instead of a dense range.
///
/// The functor receives both the list position `n` (disjoint-write slot —
/// well-defined even if the list repeats an index) and the packed index
/// `indices[n]`. Tiling follows Eq. (1) over the *list length*; an optional
/// per-entry cost prefix turns the count-balanced split of Eq. (2) into a
/// cost-balanced one. The `Arc` makes cloning the policy (and slicing CSR
/// sub-ranges out of one shared array) allocation-free.
#[derive(Debug, Clone)]
pub struct ListPolicy {
    indices: Arc<Vec<u32>>,
    /// Iterated sub-range `[start, end)` of the index array (CSR slice).
    pub start: usize,
    pub end: usize,
    pub tile: usize,
    /// Exclusive prefix sum of per-entry costs over the **whole** index
    /// array (`len + 1` entries, `prefix[0] == 0`): the cost of entries
    /// `[a, b)` is `prefix[b] - prefix[a]`, O(1) per tile.
    cost_prefix: Option<Arc<Vec<u64>>>,
}

impl ListPolicy {
    /// Policy over the full index list with the default tile length.
    pub fn new(indices: Arc<Vec<u32>>) -> Self {
        let end = indices.len();
        Self {
            indices,
            start: 0,
            end,
            tile: 256,
            cost_prefix: None,
        }
    }

    /// Restrict iteration to positions `start..end` (e.g. one CSR level of
    /// a per-level 3-D wet-cell list). The cost prefix, if any, still
    /// indexes the full array.
    pub fn slice(mut self, start: usize, end: usize) -> Self {
        assert!(start <= end && end <= self.indices.len());
        self.start = start;
        self.end = end;
        self
    }

    /// Override the tile length.
    pub fn with_tile(mut self, tile: usize) -> Self {
        assert!(tile > 0, "tile length must be positive");
        self.tile = tile;
        self
    }

    /// Attach a per-entry cost prefix (see [`Self::cost_prefix`] docs);
    /// enables cost-weighted tile scheduling on every backend.
    pub fn with_cost_prefix(mut self, prefix: Arc<Vec<u64>>) -> Self {
        assert_eq!(
            prefix.len(),
            self.indices.len() + 1,
            "cost prefix must have indices.len() + 1 entries"
        );
        self.cost_prefix = Some(prefix);
        self
    }

    /// Number of list positions iterated.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The shared packed index array.
    pub fn indices(&self) -> &Arc<Vec<u32>> {
        &self.indices
    }

    /// Packed index at list position `n`.
    #[inline]
    pub fn entry(&self, n: usize) -> u32 {
        self.indices[n]
    }

    /// Paper Eq. (1) over the list length.
    pub fn total_tiles(&self) -> usize {
        self.len().div_ceil(self.tile)
    }

    /// List-position range of tile `t`.
    #[inline]
    pub fn tile_range(&self, t: usize) -> (usize, usize) {
        let lo = self.start + t * self.tile;
        let hi = (lo + self.tile).min(self.end);
        (lo, hi)
    }

    /// Cumulative cost of tiles `[0, t)`. Without a cost prefix every entry
    /// costs 1, so this degenerates to the entry count (Eq. 2 split).
    fn cum_cost(&self, t: usize) -> u64 {
        let hi = (self.start + t * self.tile).min(self.end);
        match &self.cost_prefix {
            Some(p) => p[hi] - p[self.start],
            None => (hi - self.start) as u64,
        }
    }

    /// Cost of tile `t` alone.
    pub fn tile_cost(&self, t: usize) -> u64 {
        self.cum_cost(t + 1) - self.cum_cost(t)
    }

    /// Total cost of the iterated range.
    pub fn total_cost(&self) -> u64 {
        self.cum_cost(self.total_tiles())
    }

    /// Cost-balanced boundary `b(w)`: the smallest tile `t` such that the
    /// cumulative cost of tiles `[0, t)` reaches fraction `w / workers` of
    /// the total. Monotone in `w`, with `b(0) = 0` and `b(workers) = total`.
    fn cost_boundary(&self, w: usize, workers: usize, total: usize) -> usize {
        if w == 0 {
            return 0;
        }
        if w >= workers {
            return total;
        }
        let total_cost = self.cum_cost(total);
        if total_cost == 0 {
            // No cost signal (all-zero weights): fall back to a count split.
            return (w * total) / workers;
        }
        // Binary search (u128 products cannot overflow: cost and counts
        // both fit in u64).
        let goal = total_cost as u128 * w as u128;
        let ww = workers as u128;
        let (mut lo, mut hi) = (0usize, total);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.cum_cost(mid) as u128 * ww >= goal {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        lo
    }

    /// Contiguous tile range `[lo, hi)` worker `w` of `workers` executes
    /// under cost-weighted scheduling. Deterministic for a given `workers`:
    /// the ranges are disjoint, ordered and cover `0..total_tiles()` — so
    /// which worker runs a tile may change with `workers`, but tile
    /// contents and (for reductions) the tile-ordered join never do.
    pub fn worker_tile_range(&self, w: usize, workers: usize) -> (usize, usize) {
        let workers = workers.max(1);
        let total = self.total_tiles();
        (
            self.cost_boundary(w, workers, total),
            self.cost_boundary(w + 1, workers, total),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq1_1d() {
        let p = RangePolicy::new(1000).with_tile(64);
        assert_eq!(p.total_tiles(), 16); // ceil(1000/64)
    }

    #[test]
    fn eq1_3d_product() {
        let p = MDRangePolicy3::new([30, 218, 360]).with_tile([1, 8, 64]);
        // ceil(30/1)=30, ceil(218/8)=28, ceil(360/64)=6 → 5040
        assert_eq!(p.total_tiles(), 30 * 28 * 6);
    }

    #[test]
    fn eq2_balanced_distribution() {
        assert_eq!(tiles_per_cpe(5040, 64), 79); // ceil
        assert_eq!(tiles_per_cpe(64, 64), 1);
        assert_eq!(tiles_per_cpe(65, 64), 2);
        assert_eq!(tiles_per_cpe(0, 64), 0);
    }

    #[test]
    fn tile_ranges_cover_1d_exactly() {
        let p = RangePolicy::range(5, 103).with_tile(16);
        let mut covered = Vec::new();
        for t in 0..p.total_tiles() {
            let (lo, hi) = p.tile_range(t);
            assert!(lo < hi);
            covered.extend(lo..hi);
        }
        let expect: Vec<usize> = (5..103).collect();
        assert_eq!(covered, expect);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn tile_bounds_cover_2d_exactly() {
        let p = MDRangePolicy2::new([7, 13]).with_tile([3, 5]);
        let mut hit = vec![vec![0u32; 13]; 7];
        for t in 0..p.total_tiles() {
            let [(j0, j1), (i0, i1)] = p.tile_bounds(t);
            for j in j0..j1 {
                for i in i0..i1 {
                    hit[j][i] += 1;
                }
            }
        }
        assert!(hit.iter().flatten().all(|&c| c == 1), "each index once");
    }

    #[test]
    fn tile_bounds_cover_3d_exactly() {
        let p = MDRangePolicy3::new([4, 7, 9]).with_tile([2, 3, 4]);
        let mut hit = vec![0u32; 4 * 7 * 9];
        for t in 0..p.total_tiles() {
            let [(k0, k1), (j0, j1), (i0, i1)] = p.tile_bounds(t);
            for k in k0..k1 {
                for j in j0..j1 {
                    for i in i0..i1 {
                        hit[(k * 7 + j) * 9 + i] += 1;
                    }
                }
            }
        }
        assert!(hit.iter().all(|&c| c == 1));
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn offset_tile_bounds_cover_shifted_range_2d() {
        let p = MDRangePolicy2::new([7, 13])
            .with_tile([3, 5])
            .with_offset([2, 4]);
        let mut hit = vec![vec![0u32; 4 + 13]; 2 + 7];
        for t in 0..p.total_tiles() {
            let [(j0, j1), (i0, i1)] = p.tile_bounds(t);
            assert!(j0 >= 2 && j1 <= 2 + 7 && i0 >= 4 && i1 <= 4 + 13);
            for j in j0..j1 {
                for i in i0..i1 {
                    hit[j][i] += 1;
                }
            }
        }
        for (j, row) in hit.iter().enumerate() {
            for (i, &c) in row.iter().enumerate() {
                let inside = (2..2 + 7).contains(&j) && (4..4 + 13).contains(&i);
                assert_eq!(c, u32::from(inside), "({j},{i})");
            }
        }
    }

    #[test]
    fn offset_tile_bounds_cover_shifted_range_3d() {
        let p = MDRangePolicy3::new([4, 7, 9])
            .with_tile([2, 3, 4])
            .with_offset([1, 2, 3]);
        let (pk, pj, pi) = (1 + 4, 2 + 7, 3 + 9);
        let mut hit = vec![0u32; pk * pj * pi];
        for t in 0..p.total_tiles() {
            let [(k0, k1), (j0, j1), (i0, i1)] = p.tile_bounds(t);
            assert!(k0 >= 1 && k1 <= pk && j0 >= 2 && j1 <= pj && i0 >= 3 && i1 <= pi);
            for k in k0..k1 {
                for j in j0..j1 {
                    for i in i0..i1 {
                        hit[(k * pj + j) * pi + i] += 1;
                    }
                }
            }
        }
        let covered: u32 = hit.iter().sum();
        assert_eq!(covered as usize, 4 * 7 * 9);
        assert!(hit.iter().all(|&c| c <= 1));
    }

    #[test]
    #[should_panic(expected = "tile length must be positive")]
    fn zero_tile_rejected() {
        let _ = RangePolicy::new(10).with_tile(0);
    }

    fn list(n: usize, tile: usize) -> ListPolicy {
        ListPolicy::new(Arc::new((0..n as u32).rev().collect())).with_tile(tile)
    }

    #[test]
    fn list_tiles_cover_exactly() {
        let p = list(103, 16).slice(5, 99);
        assert_eq!(p.len(), 94);
        assert_eq!(p.total_tiles(), 94usize.div_ceil(16));
        let mut covered = Vec::new();
        for t in 0..p.total_tiles() {
            let (lo, hi) = p.tile_range(t);
            assert!(lo < hi);
            for n in lo..hi {
                assert_eq!(p.entry(n), (102 - n) as u32);
            }
            covered.extend(lo..hi);
        }
        assert_eq!(covered, (5..99).collect::<Vec<_>>());
    }

    #[test]
    fn list_worker_ranges_partition_tiles() {
        for workers in [1, 2, 3, 7, 64, 200] {
            let p = list(1000, 13);
            let mut next = 0;
            for w in 0..workers {
                let (lo, hi) = p.worker_tile_range(w, workers);
                assert_eq!(lo, next, "ranges contiguous at worker {w}");
                assert!(hi >= lo);
                next = hi;
            }
            assert_eq!(next, p.total_tiles(), "ranges cover all tiles");
        }
    }

    #[test]
    fn list_cost_weighting_balances_skewed_work() {
        // 256 entries: the first 64 cost 31 each, the rest cost 1 —
        // a count split at tile=1 would give worker 0 all the heavy work.
        let n = 256;
        let costs: Vec<u64> = (0..n).map(|i| if i < 64 { 31 } else { 1 }).collect();
        let mut prefix = vec![0u64; n + 1];
        for i in 0..n {
            prefix[i + 1] = prefix[i] + costs[i];
        }
        let p = ListPolicy::new(Arc::new((0..n as u32).collect()))
            .with_tile(1)
            .with_cost_prefix(Arc::new(prefix));
        assert_eq!(p.total_cost(), 64 * 31 + 192);
        let workers = 8;
        let ideal = p.total_cost() as f64 / workers as f64;
        for w in 0..workers {
            let (lo, hi) = p.worker_tile_range(w, workers);
            let cost: u64 = (lo..hi).map(|t| p.tile_cost(t)).sum();
            assert!(
                (cost as f64) < 2.0 * ideal,
                "worker {w} got {cost} of ideal {ideal}"
            );
        }
        // Heavy half spreads across several workers, not just worker 0.
        let (_, hi0) = p.worker_tile_range(0, workers);
        assert!(hi0 < 64, "worker 0 must not own every heavy tile");
    }

    #[test]
    fn list_empty_and_zero_cost() {
        let p = ListPolicy::new(Arc::new(Vec::new()));
        assert!(p.is_empty());
        assert_eq!(p.total_tiles(), 0);
        assert_eq!(p.worker_tile_range(0, 4), (0, 0));
        // All-zero cost prefix falls back to a count split.
        let q = ListPolicy::new(Arc::new(vec![9, 3, 7, 1]))
            .with_tile(1)
            .with_cost_prefix(Arc::new(vec![0; 5]));
        let mut next = 0;
        for w in 0..2 {
            let (lo, hi) = q.worker_tile_range(w, 2);
            assert_eq!(lo, next);
            next = hi;
        }
        assert_eq!(next, 4);
    }

    #[test]
    #[should_panic(expected = "indices.len() + 1")]
    fn list_bad_prefix_rejected() {
        let _ = ListPolicy::new(Arc::new(vec![1, 2, 3])).with_cost_prefix(Arc::new(vec![0, 1]));
    }
}
