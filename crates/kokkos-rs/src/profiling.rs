//! Kokkos-Tools-style profiling hook registry.
//!
//! Real Kokkos exposes a C callback interface (`kokkosp_begin_parallel_for`
//! and friends) that tools like the Kokkos Tools connectors, APEX, and
//! Caliper attach to; every `parallel_for`/`parallel_reduce`/`deep_copy`
//! launch notifies the attached tool with a monotonically-assigned kernel
//! id. This module is the Rust equivalent:
//!
//! * [`ProfilingHooks`] — the callback trait. Every method has a no-op
//!   default body, so the trait itself is the null object.
//! * [`set_hooks`] / [`clear_hooks`] — install or remove a process-global
//!   consumer (e.g. `kokkos_profiling::Profiler`).
//! * Dispatch sites in [`crate::parallel`], [`crate::team`] and
//!   [`crate::view::deep_copy`] create a [`KernelSpan`] guard around the
//!   launch; the guard emits the matching `end_*` event from its `Drop`
//!   impl, so begin/end stay strictly nested **even when a functor
//!   panics** and the stack unwinds through the dispatch.
//! * [`region`] / [`push_region`] / [`pop_region`] — named phase markers
//!   (Kokkos `Kokkos::Profiling::pushRegion`), used by the model drivers
//!   to attribute kernel time to physics phases.
//!
//! ## Zero overhead when disabled
//!
//! The disabled fast path is one `AtomicBool` load (plus, for the
//! `DeviceSim` space, the launch count the space always keeps). No
//! allocation, no lock, no `Instant::now()` — the steady-state
//! zero-allocation property of the model step is preserved with hooks
//! disabled, and `bench`'s `profiling` group asserts the dispatch cost
//! stays within noise of the uninstrumented baseline.
//!
//! ## Launch accounting unification
//!
//! `DeviceSim` used to count launches inside each host tile driver (four
//! call sites). The count is now derived from the same place profiling
//! events are emitted — [`begin_kernel`], the single chokepoint every
//! dispatch passes through — so "kernels launched" can never disagree
//! with the profiler's event stream.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;

use crate::memspace::MemSpace;
use crate::space::Space;

/// Monotonically-assigned id of one kernel launch (unique per process).
pub type KernelId = u64;

/// Which dispatch pattern produced an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PatternKind {
    ParallelFor,
    ParallelReduce,
    DeepCopy,
}

impl PatternKind {
    pub fn name(self) -> &'static str {
        match self {
            PatternKind::ParallelFor => "parallel_for",
            PatternKind::ParallelReduce => "parallel_reduce",
            PatternKind::DeepCopy => "deep_copy",
        }
    }
}

/// Which policy shape the launch iterated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    Range,
    MDRange2,
    MDRange3,
    List,
    Team,
}

impl PolicyKind {
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Range => "Range",
            PolicyKind::MDRange2 => "MDRange2",
            PolicyKind::MDRange3 => "MDRange3",
            PolicyKind::List => "List",
            PolicyKind::Team => "Team",
        }
    }
}

/// Everything a tool learns at `begin_parallel_*`.
#[derive(Debug, Clone, Copy)]
pub struct KernelInfo {
    /// Short functor type name (path and generics stripped).
    pub name: &'static str,
    /// Execution-space name (`Serial`, `Threads`, `DeviceSim`, `SwAthread`).
    pub space: &'static str,
    pub pattern: PatternKind,
    pub policy: PolicyKind,
    /// Total iterations the policy covers (list length for `List`,
    /// extent product for ranges, league size for `Team`).
    pub work_items: u64,
}

/// Everything a tool learns at `begin_deep_copy`.
#[derive(Debug, Clone, Copy)]
pub struct DeepCopyInfo<'a> {
    pub dst_label: &'a str,
    pub src_label: &'a str,
    pub dst_space: MemSpace,
    pub src_space: MemSpace,
    pub bytes: u64,
}

/// The Kokkos-Tools callback surface. Every method defaults to a no-op,
/// so `ProfilingHooks` doubles as its own null object; consumers override
/// only what they consume.
#[allow(unused_variables)]
pub trait ProfilingHooks: Send + Sync {
    fn begin_parallel_for(&self, kid: KernelId, info: &KernelInfo) {}
    fn end_parallel_for(&self, kid: KernelId) {}
    fn begin_parallel_reduce(&self, kid: KernelId, info: &KernelInfo) {}
    fn end_parallel_reduce(&self, kid: KernelId) {}
    fn begin_deep_copy(&self, kid: KernelId, info: &DeepCopyInfo<'_>) {}
    fn end_deep_copy(&self, kid: KernelId) {}
    fn push_region(&self, name: &'static str) {}
    fn pop_region(&self, name: &'static str) {}
    fn mark_fence(&self, name: &'static str, space: &'static str) {}
}

/// The null tool: inherits every default no-op body.
pub struct NullHooks;
impl ProfilingHooks for NullHooks {}

/// Minimal kernel-event consumer for the flight recorder. Unlike
/// [`ProfilingHooks`] (a full Kokkos-Tools surface with per-instance
/// keying), a flight sink sees only the span edges the black box needs,
/// and its process-wide armed flag ([`set_flight_armed`]) is maintained
/// by the recorder's own thread-scope machinery — this crate stays free
/// of any dependency on the transport where the rings live.
pub trait FlightSink: Send + Sync {
    fn kernel_begin(&self, kid: KernelId, name: &'static str, space: &'static str, work_items: u64);
    fn kernel_end(&self, kid: KernelId);
}

static FLIGHT_SINK: OnceLock<Arc<dyn FlightSink>> = OnceLock::new();
/// Mirrors "any thread has an armed flight scope" into this crate so the
/// dispatch chokepoint can skip flight work with one relaxed load.
static FLIGHT_ARMED: AtomicBool = AtomicBool::new(false);

/// Install the process-wide flight sink (first install wins; the
/// recorder installs a single bridge once).
pub fn install_flight_sink(sink: Arc<dyn FlightSink>) {
    let _ = FLIGHT_SINK.set(sink);
}

/// Mirror the recorder's armed state (called from its arm observer on
/// the 0→1 / 1→0 armed-thread transitions).
pub fn set_flight_armed(armed: bool) {
    FLIGHT_ARMED.store(armed, Ordering::Release);
}

/// Is any flight scope armed in the process?
#[inline(always)]
pub fn flight_armed() -> bool {
    FLIGHT_ARMED.load(Ordering::Relaxed)
}

fn current_flight_sink() -> Option<&'static Arc<dyn FlightSink>> {
    if !flight_armed() {
        return None;
    }
    FLIGHT_SINK.get()
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_KERNEL_ID: AtomicU64 = AtomicU64::new(0);
static HOOKS: Mutex<Option<Arc<dyn ProfilingHooks>>> = Mutex::new(None);

/// Identifies one model instance's profiling consumer in the keyed
/// registry. `0` is reserved for "no instance" (the process-global tool).
pub type InstanceKey = u64;

static NEXT_INSTANCE_KEY: AtomicU64 = AtomicU64::new(1);
static INSTANCE_HOOKS: Mutex<
    Option<std::collections::HashMap<InstanceKey, Arc<dyn ProfilingHooks>>>,
> = Mutex::new(None);
/// Registered instance-hook count, mirrored outside the map's lock so
/// enable/disable transitions can maintain the single `ENABLED` flag.
static INSTANCE_COUNT: AtomicU64 = AtomicU64::new(0);

std::thread_local! {
    /// The instance whose hooks receive events dispatched from this
    /// thread (0 = none; fall through to the process-global tool). Set
    /// by [`enter_instance`] around each scheduling slice, so a serving
    /// layer stepping many `Model`s on shared worker threads attributes
    /// every kernel to the instance that launched it.
    static CURRENT_INSTANCE: std::cell::Cell<InstanceKey> = const { std::cell::Cell::new(0) };
}

fn refresh_enabled() {
    let any = INSTANCE_COUNT.load(Ordering::Relaxed) > 0 || HOOKS.lock().is_some();
    ENABLED.store(any, Ordering::Release);
}

/// Install a process-global profiling tool. Replaces any previous tool.
/// Dispatches from threads inside an [`enter_instance`] scope with
/// registered instance hooks do NOT reach the global tool — per-instance
/// consumers shadow it, which is the isolation multi-instance serving
/// needs.
pub fn set_hooks(hooks: Arc<dyn ProfilingHooks>) {
    *HOOKS.lock() = Some(hooks);
    ENABLED.store(true, Ordering::Release);
}

/// Remove the installed tool; dispatch returns to the zero-overhead path
/// (unless per-instance hooks remain registered).
pub fn clear_hooks() {
    *HOOKS.lock() = None;
    refresh_enabled();
}

/// Allocate a fresh, process-unique instance key (never 0).
pub fn next_instance_key() -> InstanceKey {
    NEXT_INSTANCE_KEY.fetch_add(1, Ordering::Relaxed)
}

/// Register a per-instance profiling consumer under `key`. While a
/// thread is inside [`enter_instance`]`(key)`, every kernel span, region
/// and fence it dispatches is delivered to these hooks *instead of* the
/// process-global tool — two `Model`s stepping in one process never
/// cross-attribute kernels.
pub fn register_instance_hooks(key: InstanceKey, hooks: Arc<dyn ProfilingHooks>) {
    assert_ne!(key, 0, "instance key 0 is reserved");
    let mut map = INSTANCE_HOOKS.lock();
    let map = map.get_or_insert_with(Default::default);
    if map.insert(key, hooks).is_none() {
        INSTANCE_COUNT.fetch_add(1, Ordering::Relaxed);
    }
    ENABLED.store(true, Ordering::Release);
}

/// Remove the consumer registered under `key` (no-op if absent).
pub fn unregister_instance_hooks(key: InstanceKey) {
    let mut guard = INSTANCE_HOOKS.lock();
    if let Some(map) = guard.as_mut() {
        if map.remove(&key).is_some() {
            INSTANCE_COUNT.fetch_sub(1, Ordering::Relaxed);
        }
    }
    drop(guard);
    refresh_enabled();
}

/// RAII scope marking this thread's dispatches as belonging to one
/// instance; restores the previous instance (scopes nest) on drop.
pub struct InstanceScope {
    prev: InstanceKey,
}

/// Enter an instance scope on this thread: until the returned guard
/// drops, kernel/region/fence events dispatched from this thread route
/// to the hooks registered under `key` (falling through to the global
/// tool if none are).
pub fn enter_instance(key: InstanceKey) -> InstanceScope {
    let prev = CURRENT_INSTANCE.with(|c| c.replace(key));
    InstanceScope { prev }
}

impl Drop for InstanceScope {
    fn drop(&mut self) {
        CURRENT_INSTANCE.with(|c| c.set(self.prev));
    }
}

/// The instance key active on this thread (0 = none).
pub fn current_instance() -> InstanceKey {
    CURRENT_INSTANCE.with(|c| c.get())
}

/// Whether a tool is currently attached.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Acquire)
}

/// Kernel-launch ids assigned so far (monotone; next launch gets this id).
pub fn kernel_ids_assigned() -> u64 {
    NEXT_KERNEL_ID.load(Ordering::Relaxed)
}

fn current_hooks() -> Option<Arc<dyn ProfilingHooks>> {
    if !enabled() {
        return None;
    }
    let key = CURRENT_INSTANCE.with(|c| c.get());
    if key != 0 && INSTANCE_COUNT.load(Ordering::Relaxed) > 0 {
        if let Some(h) = INSTANCE_HOOKS
            .lock()
            .as_ref()
            .and_then(|m| m.get(&key))
            .cloned()
        {
            return Some(h);
        }
    }
    HOOKS.lock().clone()
}

/// Strip path and generic parameters from a type name:
/// `licom::eos::FunctorEos` → `FunctorEos`.
pub fn short_type_name(full: &'static str) -> &'static str {
    let no_generics = match full.find('<') {
        Some(p) => &full[..p],
        None => full,
    };
    match no_generics.rfind("::") {
        Some(p) => &no_generics[p + 2..],
        None => no_generics,
    }
}

/// RAII span for one kernel launch: `begin_*` fired on construction,
/// `end_*` fired from `Drop` (so it also fires during unwinding).
pub struct KernelSpan {
    armed: Option<(Arc<dyn ProfilingHooks>, KernelId, PatternKind)>,
    flight: Option<(&'static Arc<dyn FlightSink>, KernelId)>,
}

/// Open a kernel span. This is the single chokepoint every dispatch in
/// [`crate::parallel`] and [`crate::team`] passes through; `DeviceSim`
/// launch accounting lives here (and only here).
#[inline]
pub(crate) fn begin_kernel(
    space: &Space,
    pattern: PatternKind,
    functor_type: &'static str,
    policy: PolicyKind,
    work_items: u64,
) -> KernelSpan {
    if let Space::DeviceSim(d) = space {
        d.record_launch();
    }
    let hooks = current_hooks();
    let flight = current_flight_sink();
    if hooks.is_none() && flight.is_none() {
        return KernelSpan {
            armed: None,
            flight: None,
        };
    }
    let kid = NEXT_KERNEL_ID.fetch_add(1, Ordering::Relaxed);
    let name = short_type_name(functor_type);
    if let Some(sink) = flight {
        sink.kernel_begin(kid, name, space.name(), work_items);
    }
    let armed = hooks.map(|hooks| {
        let info = KernelInfo {
            name,
            space: space.name(),
            pattern,
            policy,
            work_items,
        };
        match pattern {
            PatternKind::ParallelReduce => hooks.begin_parallel_reduce(kid, &info),
            _ => hooks.begin_parallel_for(kid, &info),
        }
        (hooks, kid, pattern)
    });
    KernelSpan {
        armed,
        flight: flight.map(|sink| (sink, kid)),
    }
}

impl Drop for KernelSpan {
    fn drop(&mut self) {
        if let Some((hooks, kid, pattern)) = self.armed.take() {
            match pattern {
                PatternKind::ParallelReduce => hooks.end_parallel_reduce(kid),
                _ => hooks.end_parallel_for(kid),
            }
        }
        if let Some((sink, kid)) = self.flight.take() {
            sink.kernel_end(kid);
        }
    }
}

/// RAII span for one `deep_copy`.
pub struct DeepCopySpan {
    armed: Option<(Arc<dyn ProfilingHooks>, KernelId)>,
}

#[inline]
pub(crate) fn begin_deep_copy(info: &DeepCopyInfo<'_>) -> DeepCopySpan {
    let Some(hooks) = current_hooks() else {
        return DeepCopySpan { armed: None };
    };
    let kid = NEXT_KERNEL_ID.fetch_add(1, Ordering::Relaxed);
    hooks.begin_deep_copy(kid, info);
    DeepCopySpan {
        armed: Some((hooks, kid)),
    }
}

impl Drop for DeepCopySpan {
    fn drop(&mut self) {
        if let Some((hooks, kid)) = self.armed.take() {
            hooks.end_deep_copy(kid);
        }
    }
}

/// Push a named region (Kokkos `pushRegion`). Prefer [`region`], whose
/// guard cannot be forgotten on an early return or panic.
#[inline]
pub fn push_region(name: &'static str) {
    if let Some(hooks) = current_hooks() {
        hooks.push_region(name);
    }
}

/// Pop a named region (Kokkos `popRegion`).
#[inline]
pub fn pop_region(name: &'static str) {
    if let Some(hooks) = current_hooks() {
        hooks.pop_region(name);
    }
}

/// Mark a fence (all our backends launch synchronously, so this is a
/// point event, not a span).
#[inline]
pub fn mark_fence(name: &'static str, space: &'static str) {
    if let Some(hooks) = current_hooks() {
        hooks.mark_fence(name, space);
    }
}

/// RAII region guard: pushes on construction, pops on drop (including
/// during unwinding).
pub struct RegionGuard {
    name: Option<&'static str>,
}

/// Open a named region; the region closes when the guard drops.
#[inline]
pub fn region(name: &'static str) -> RegionGuard {
    if enabled() {
        push_region(name);
        RegionGuard { name: Some(name) }
    } else {
        RegionGuard { name: None }
    }
}

impl Drop for RegionGuard {
    fn drop(&mut self) {
        if let Some(name) = self.name.take() {
            pop_region(name);
        }
    }
}

/// Serializes tests (in this crate and downstream) that install global
/// hooks, so concurrent test threads don't tear down each other's tool.
pub fn test_registry_lock() -> parking_lot::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock()
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex as PMutex;

    #[derive(Default)]
    struct Recorder {
        log: PMutex<Vec<String>>,
    }

    impl ProfilingHooks for Recorder {
        fn begin_parallel_for(&self, kid: KernelId, info: &KernelInfo) {
            self.log.lock().push(format!(
                "begin_for {kid} {} {} {} {}",
                info.name,
                info.space,
                info.policy.name(),
                info.work_items
            ));
        }
        fn end_parallel_for(&self, kid: KernelId) {
            self.log.lock().push(format!("end_for {kid}"));
        }
        fn push_region(&self, name: &'static str) {
            self.log.lock().push(format!("push {name}"));
        }
        fn pop_region(&self, name: &'static str) {
            self.log.lock().push(format!("pop {name}"));
        }
    }

    #[test]
    fn short_names_strip_paths_and_generics() {
        assert_eq!(short_type_name("licom::eos::FunctorEos"), "FunctorEos");
        assert_eq!(short_type_name("FunctorAxpy"), "FunctorAxpy");
        assert_eq!(
            short_type_name("a::b::Wrap<c::d::Inner>"),
            "Wrap" // generics stripped before the path split
        );
    }

    #[test]
    fn disabled_registry_is_inert() {
        clear_hooks();
        assert!(!enabled());
        let span = begin_kernel(
            &Space::serial(),
            PatternKind::ParallelFor,
            "X",
            PolicyKind::Range,
            1,
        );
        drop(span);
        push_region("r");
        pop_region("r");
        mark_fence("f", "Serial");
        // No tool attached: nothing to observe, nothing panicked.
    }

    #[test]
    fn region_guard_pushes_and_pops() {
        let _serial = test_registry_lock();
        let rec = Arc::new(Recorder::default());
        set_hooks(rec.clone());
        {
            let _r = region("phase");
            rec.log.lock().push("inside".into());
        }
        clear_hooks();
        // Other tests in this process may dispatch kernels while our
        // recorder is attached; keep only this test's own entries.
        let log: Vec<String> = rec
            .log
            .lock()
            .iter()
            .filter(|l| l.contains("phase") || *l == "inside")
            .cloned()
            .collect();
        assert_eq!(log, vec!["push phase", "inside", "pop phase"]);
    }

    #[test]
    fn instance_hooks_shadow_global_and_never_cross_attribute() {
        let _serial = test_registry_lock();
        let global = Arc::new(Recorder::default());
        let a = Arc::new(Recorder::default());
        let b = Arc::new(Recorder::default());
        set_hooks(global.clone());
        let (ka, kb) = (next_instance_key(), next_instance_key());
        assert_ne!(ka, kb);
        register_instance_hooks(ka, a.clone());
        register_instance_hooks(kb, b.clone());

        let launch = |name: &'static str| {
            let _s = begin_kernel(
                &Space::serial(),
                PatternKind::ParallelFor,
                name,
                PolicyKind::Range,
                1,
            );
        };
        {
            let _scope = enter_instance(ka);
            assert_eq!(current_instance(), ka);
            launch("InstA");
            {
                // Scopes nest and restore.
                let _inner = enter_instance(kb);
                launch("InstB");
            }
            assert_eq!(current_instance(), ka);
        }
        assert_eq!(current_instance(), 0);
        launch("GlobalK");

        unregister_instance_hooks(ka);
        unregister_instance_hooks(kb);
        clear_hooks();

        let has = |rec: &Recorder, what: &str| rec.log.lock().iter().any(|l| l.contains(what));
        assert!(has(&a, "InstA") && !has(&a, "InstB") && !has(&a, "GlobalK"));
        assert!(has(&b, "InstB") && !has(&b, "InstA"));
        assert!(has(&global, "GlobalK") && !has(&global, "InstA") && !has(&global, "InstB"));
    }

    #[test]
    fn scoped_dispatch_without_registration_falls_back_to_global() {
        let _serial = test_registry_lock();
        let global = Arc::new(Recorder::default());
        set_hooks(global.clone());
        let key = next_instance_key();
        {
            let _scope = enter_instance(key);
            let _s = begin_kernel(
                &Space::serial(),
                PatternKind::ParallelFor,
                "FallbackK",
                PolicyKind::Range,
                1,
            );
        }
        clear_hooks();
        assert!(global.log.lock().iter().any(|l| l.contains("FallbackK")));
    }

    #[test]
    fn instance_registry_alone_enables_dispatch() {
        let _serial = test_registry_lock();
        clear_hooks();
        let rec = Arc::new(Recorder::default());
        let key = next_instance_key();
        register_instance_hooks(key, rec.clone());
        assert!(enabled());
        {
            let _scope = enter_instance(key);
            let _s = begin_kernel(
                &Space::serial(),
                PatternKind::ParallelFor,
                "OnlyInstance",
                PolicyKind::Range,
                1,
            );
        }
        unregister_instance_hooks(key);
        assert!(rec.log.lock().iter().any(|l| l.contains("OnlyInstance")));
    }

    #[test]
    fn kernel_ids_are_monotone() {
        let _serial = test_registry_lock();
        let rec = Arc::new(Recorder::default());
        set_hooks(rec.clone());
        for _ in 0..3 {
            let _s = begin_kernel(
                &Space::serial(),
                PatternKind::ParallelFor,
                "KidProbe",
                PolicyKind::Range,
                4,
            );
        }
        clear_hooks();
        let log = rec.log.lock().clone();
        let ids: Vec<u64> = log
            .iter()
            .filter(|l| l.starts_with("begin_for") && l.contains("KidProbe"))
            .map(|l| l.split_whitespace().nth(1).unwrap().parse().unwrap())
            .collect();
        assert_eq!(ids.len(), 3);
        assert!(ids.windows(2).all(|w| w[1] > w[0]), "ids {ids:?}");
    }
}
