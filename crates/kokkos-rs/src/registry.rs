//! Functor registration and launch-time matching — the paper's §V-B
//! innovation, reproduced.
//!
//! The Athread boundary ([`sunway_sim::CpeKernel`]) accepts only a plain
//! `fn` pointer plus one `usize`. A generic `parallel_for<F>` therefore
//! cannot hand `F` to the CPEs directly. Following the paper:
//!
//! 1. **Preset functions** — for each concrete functor type, a monomorphic
//!    trampoline (`tramp_for_1d::<F>` etc.) "executes kernel statements by
//!    explicitly invoking the overloaded `operator()` method".
//! 2. **Registration** — `register_for_1d!` (the analogue of
//!    `KOKKOS_REGISTER_FOR_1D(Arg1, Arg2)`) defines an init function that
//!    inserts `(type key → trampoline)` into a global registry. Model code
//!    calls these during initialization, as the paper registers presets
//!    "during the initialization of Kokkos".
//! 3. **Callback matching** — at launch, the `SwAthread` space looks the
//!    functor's type key up and spawns the matched trampoline on the CPEs.
//!
//! The registry is a **singly linked list**, the data structure the paper
//! selected ("a trade-off between the temporal and spatial complexities
//! while maintaining robustness", O(n) lookup). A SIMD-accelerated lookup
//! over a mirrored key array ([`lookup_simd_hit_index`]) reproduces the
//! paper's LDM + SIMD matching optimization; the microbenchmarks compare
//! the two.

use std::any::TypeId;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use sunway_sim::{CpeCtx, CpeKernel};

use crate::functor::{
    Functor1D, Functor2D, Functor3D, FunctorList, IterCost, ReduceFunctor1D, ReduceFunctor2D,
    ReduceFunctor3D, ReduceFunctorList,
};
use crate::policy::{tiles_per_cpe, ListPolicy, MDRangePolicy2, MDRangePolicy3, RangePolicy};

/// What flavour of launch a registered trampoline implements. `FOR` vs
/// `REDUCE` and the rank are part of the macro name in the paper
/// (`KOKKOS_REGISTER_FOR_1D`, `..._REDUCE_2D`, ...); we check it at lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelKind {
    For1D,
    For2D,
    For3D,
    Reduce1D,
    Reduce2D,
    Reduce3D,
    /// Compact index-list launch ([`crate::policy::ListPolicy`]).
    ForList,
    ReduceList,
    /// Hierarchical team launch with LDM scratch (see [`crate::team`]).
    Team,
}

struct Node {
    key: u64,
    name: &'static str,
    kind: KernelKind,
    tramp: CpeKernel,
    next: Option<Box<Node>>,
}

struct Registry {
    head: Option<Box<Node>>,
    len: usize,
    /// Mirrored key array for the SIMD-accelerated matcher.
    keys: Vec<u64>,
    /// Entry table parallel to `keys`.
    flat: Vec<(KernelKind, CpeKernel, &'static str)>,
}

static REGISTRY: Mutex<Registry> = Mutex::new(Registry {
    head: None,
    len: 0,
    keys: Vec::new(),
    flat: Vec::new(),
});

/// Nodes traversed by linked-list lookups (for the matching benchmark).
static NODES_WALKED: AtomicU64 = AtomicU64::new(0);
/// Lookups performed.
static LOOKUPS: AtomicU64 = AtomicU64::new(0);

/// Stable 64-bit key for a functor type.
pub fn key_of<F: 'static>() -> u64 {
    let mut h = DefaultHasher::new();
    TypeId::of::<F>().hash(&mut h);
    h.finish()
}

fn insert(key: u64, name: &'static str, kind: KernelKind, tramp: CpeKernel) {
    let mut reg = REGISTRY.lock().unwrap();
    // Idempotent: re-registering the same functor type is a no-op.
    let mut cur = reg.head.as_deref();
    while let Some(n) = cur {
        if n.key == key && n.kind == kind {
            return;
        }
        cur = n.next.as_deref();
    }
    let node = Box::new(Node {
        key,
        name,
        kind,
        tramp,
        next: reg.head.take(),
    });
    reg.head = Some(node);
    reg.len += 1;
    reg.keys.push(key);
    reg.flat.push((kind, tramp, name));
}

/// Linked-list lookup (the paper's primary path). Returns the trampoline.
pub fn lookup(key: u64, kind: KernelKind) -> Option<CpeKernel> {
    let reg = REGISTRY.lock().unwrap();
    LOOKUPS.fetch_add(1, Ordering::Relaxed);
    let mut walked = 0;
    let mut cur = reg.head.as_deref();
    while let Some(n) = cur {
        walked += 1;
        if n.key == key && n.kind == kind {
            NODES_WALKED.fetch_add(walked, Ordering::Relaxed);
            return Some(n.tramp);
        }
        cur = n.next.as_deref();
    }
    NODES_WALKED.fetch_add(walked, Ordering::Relaxed);
    None
}

/// SIMD-accelerated lookup over the mirrored key array (paper's LDM+SIMD
/// matching optimization). Functionally identical to [`lookup`].
pub fn lookup_simd(key: u64, kind: KernelKind) -> Option<CpeKernel> {
    let reg = REGISTRY.lock().unwrap();
    LOOKUPS.fetch_add(1, Ordering::Relaxed);
    let mut from = 0;
    while let Some(i) = sunway_sim::simd::find_u64(&reg.keys[from..], key) {
        let idx = from + i;
        let (k, t, _) = reg.flat[idx];
        if k == kind {
            return Some(t);
        }
        from = idx + 1;
    }
    None
}

/// Index the SIMD matcher would hit for `key` — exposed for tests/benches.
pub fn lookup_simd_hit_index(key: u64) -> Option<usize> {
    let reg = REGISTRY.lock().unwrap();
    sunway_sim::simd::find_u64(&reg.keys, key)
}

/// Registered-functor count and lookup statistics:
/// `(registered, lookups, nodes_walked)`.
pub fn stats() -> (usize, u64, u64) {
    let reg = REGISTRY.lock().unwrap();
    (
        reg.len,
        LOOKUPS.load(Ordering::Relaxed),
        NODES_WALKED.load(Ordering::Relaxed),
    )
}

/// Human-readable listing of registered kernels (name, kind).
pub fn registered_kernels() -> Vec<(&'static str, KernelKind)> {
    let reg = REGISTRY.lock().unwrap();
    let mut out = Vec::with_capacity(reg.len);
    let mut cur = reg.head.as_deref();
    while let Some(n) = cur {
        out.push((n.name, n.kind));
        cur = n.next.as_deref();
    }
    out
}

// ---------------------------------------------------------------------------
// Launch payloads: the single `usize` argument smuggled across the C-like
// boundary points at one of these, living on the launching thread's stack
// for the (blocking) duration of the kernel.
// ---------------------------------------------------------------------------

#[doc(hidden)]
pub struct Payload1D {
    pub functor: *const (),
    pub policy: RangePolicy,
    pub cost: IterCost,
}

#[doc(hidden)]
pub struct Payload2D {
    pub functor: *const (),
    pub policy: MDRangePolicy2,
    pub cost: IterCost,
}

#[doc(hidden)]
pub struct Payload3D {
    pub functor: *const (),
    pub policy: MDRangePolicy3,
    pub cost: IterCost,
}

#[doc(hidden)]
pub struct PayloadList {
    pub functor: *const (),
    /// Borrowed from the launching frame (`ListPolicy` is not `Copy`);
    /// valid for the blocking duration of the kernel, like `functor`.
    pub policy: *const ListPolicy,
    pub cost: IterCost,
}

#[doc(hidden)]
pub struct PayloadReduceList {
    pub functor: *const (),
    pub policy: *const ListPolicy,
    pub cost: IterCost,
    pub partials: *mut f64,
    pub identity: f64,
}

#[doc(hidden)]
pub struct PayloadReduce1D {
    pub functor: *const (),
    pub policy: RangePolicy,
    pub cost: IterCost,
    /// Per-tile partials, length `policy.total_tiles()`; disjoint writes.
    pub partials: *mut f64,
    pub identity: f64,
}

#[doc(hidden)]
pub struct PayloadReduce2D {
    pub functor: *const (),
    pub policy: MDRangePolicy2,
    pub cost: IterCost,
    pub partials: *mut f64,
    pub identity: f64,
}

#[doc(hidden)]
pub struct PayloadReduce3D {
    pub functor: *const (),
    pub policy: MDRangePolicy3,
    pub cost: IterCost,
    pub partials: *mut f64,
    pub identity: f64,
}

/// Split a tile's modeled `View` traffic into DMA-in and DMA-out bytes.
/// Stencil/tendency kernels read more operands than they write (a 2:1
/// split is representative of the licom hot loops); both directions flow
/// through the double-buffered pipe.
#[inline]
fn tile_bytes(cost: IterCost, iters: u64) -> (u64, u64) {
    let total = cost.bytes * iters;
    let put = total / 3;
    (total - put, put)
}

/// Drive one CPE's contiguous tile range through the §V-C2 double-buffered
/// DMA pipeline: `iters_of(t)` gives tile `t`'s iteration count (for the
/// prefetch of `t+1`'s bytes), `body(ctx, t)` executes it. FLOP accounting
/// happens here so every trampoline charges identically.
#[inline]
fn drive_pipelined(
    ctx: &mut CpeCtx,
    cost: IterCost,
    tile_elems: usize,
    t0: usize,
    t1: usize,
    iters_of: impl Fn(usize) -> u64,
    mut body: impl FnMut(usize),
) {
    if t0 >= t1 {
        return;
    }
    if t1 - t0 == 1 {
        // Single tile: nothing to double-buffer against; take the cheap
        // single-staged path (same cycle accounting, no pipe bookkeeping).
        let iters = iters_of(t0);
        let (in_b, out_b) = tile_bytes(cost, iters);
        sunway_sim::pipeline::stream_single_tile(ctx, tile_elems, in_b, out_b, |ctx| {
            body(t0);
            ctx.account_flops_simd(cost.flops * iters);
        });
        return;
    }
    let mut pipe = sunway_sim::DmaPipe::begin(ctx, tile_elems);
    for t in t0..t1 {
        let iters = iters_of(t);
        let (in_b, out_b) = tile_bytes(cost, iters);
        let next_in = if t + 1 < t1 {
            Some(tile_bytes(cost, iters_of(t + 1)).0)
        } else {
            None
        };
        pipe.tile(ctx, in_b, out_b, next_in, |ctx| {
            body(t);
            ctx.account_flops_simd(cost.flops * iters);
        });
    }
    pipe.finish(ctx);
}

// ---------------------------------------------------------------------------
// Preset trampolines ("preset functions that execute kernel statements by
// explicitly invoking the overloaded operator() method").
// ---------------------------------------------------------------------------

#[doc(hidden)]
pub fn tramp_for_1d<F: Functor1D>(ctx: &mut CpeCtx, arg: usize) {
    let p = unsafe { &*(arg as *const Payload1D) };
    let f = unsafe { &*(p.functor as *const F) };
    let total = p.policy.total_tiles();
    let per = tiles_per_cpe(total, ctx.num_cpes());
    let first = ctx.cpe_id() * per;
    let last = (first + per).min(total);
    let iters = |t: usize| {
        let (lo, hi) = p.policy.tile_range(t);
        (hi - lo) as u64
    };
    drive_pipelined(ctx, p.cost, p.policy.tile, first, last, iters, |t| {
        let (lo, hi) = p.policy.tile_range(t);
        for i in lo..hi {
            f.operator(i);
        }
    });
}

#[doc(hidden)]
pub fn tramp_for_2d<F: Functor2D>(ctx: &mut CpeCtx, arg: usize) {
    let p = unsafe { &*(arg as *const Payload2D) };
    let f = unsafe { &*(p.functor as *const F) };
    let total = p.policy.total_tiles();
    let per = tiles_per_cpe(total, ctx.num_cpes());
    let first = ctx.cpe_id() * per;
    let last = (first + per).min(total);
    let iters = |t: usize| {
        let [(j0, j1), (i0, i1)] = p.policy.tile_bounds(t);
        ((j1 - j0) * (i1 - i0)) as u64
    };
    let tile_elems = p.policy.tile[0] * p.policy.tile[1];
    drive_pipelined(ctx, p.cost, tile_elems, first, last, iters, |t| {
        let [(j0, j1), (i0, i1)] = p.policy.tile_bounds(t);
        for j in j0..j1 {
            for i in i0..i1 {
                f.operator(j, i);
            }
        }
    });
}

#[doc(hidden)]
pub fn tramp_for_3d<F: Functor3D>(ctx: &mut CpeCtx, arg: usize) {
    let p = unsafe { &*(arg as *const Payload3D) };
    let f = unsafe { &*(p.functor as *const F) };
    let total = p.policy.total_tiles();
    let per = tiles_per_cpe(total, ctx.num_cpes());
    let first = ctx.cpe_id() * per;
    let last = (first + per).min(total);
    let iters = |t: usize| {
        let [(k0, k1), (j0, j1), (i0, i1)] = p.policy.tile_bounds(t);
        ((k1 - k0) * (j1 - j0) * (i1 - i0)) as u64
    };
    let tile_elems = p.policy.tile[0] * p.policy.tile[1] * p.policy.tile[2];
    drive_pipelined(ctx, p.cost, tile_elems, first, last, iters, |t| {
        let [(k0, k1), (j0, j1), (i0, i1)] = p.policy.tile_bounds(t);
        for k in k0..k1 {
            for j in j0..j1 {
                for i in i0..i1 {
                    f.operator(k, j, i);
                }
            }
        }
    });
}

#[doc(hidden)]
pub fn tramp_for_list<F: FunctorList>(ctx: &mut CpeCtx, arg: usize) {
    let p = unsafe { &*(arg as *const PayloadList) };
    let f = unsafe { &*(p.functor as *const F) };
    let policy = unsafe { &*p.policy };
    // Cost-weighted Eq. (2): each CPE takes the contiguous tile range whose
    // cumulative cost share is its own, not a fixed tile count.
    let (t0, t1) = policy.worker_tile_range(ctx.cpe_id(), ctx.num_cpes());
    let iters = |t: usize| {
        let (lo, hi) = policy.tile_range(t);
        (hi - lo) as u64
    };
    drive_pipelined(ctx, p.cost, policy.tile, t0, t1, iters, |t| {
        let (lo, hi) = policy.tile_range(t);
        for n in lo..hi {
            f.operator(n, policy.entry(n));
        }
    });
}

#[doc(hidden)]
pub fn tramp_reduce_list<F: ReduceFunctorList>(ctx: &mut CpeCtx, arg: usize) {
    let p = unsafe { &*(arg as *const PayloadReduceList) };
    let f = unsafe { &*(p.functor as *const F) };
    let policy = unsafe { &*p.policy };
    let (t0, t1) = policy.worker_tile_range(ctx.cpe_id(), ctx.num_cpes());
    let iters = |t: usize| {
        let (lo, hi) = policy.tile_range(t);
        (hi - lo) as u64
    };
    drive_pipelined(ctx, p.cost, policy.tile, t0, t1, iters, |t| {
        let (lo, hi) = policy.tile_range(t);
        let mut acc = p.identity;
        for n in lo..hi {
            f.contribute(n, policy.entry(n), &mut acc);
        }
        // SAFETY: worker tile ranges are disjoint; tile t has one owner.
        unsafe { *p.partials.add(t) = acc };
    });
}

#[doc(hidden)]
pub fn tramp_reduce_1d<F: ReduceFunctor1D>(ctx: &mut CpeCtx, arg: usize) {
    let p = unsafe { &*(arg as *const PayloadReduce1D) };
    let f = unsafe { &*(p.functor as *const F) };
    let total = p.policy.total_tiles();
    let per = tiles_per_cpe(total, ctx.num_cpes());
    let first = ctx.cpe_id() * per;
    let last = (first + per).min(total);
    let iters = |t: usize| {
        let (lo, hi) = p.policy.tile_range(t);
        (hi - lo) as u64
    };
    drive_pipelined(ctx, p.cost, p.policy.tile, first, last, iters, |t| {
        let (lo, hi) = p.policy.tile_range(t);
        let mut acc = p.identity;
        for i in lo..hi {
            f.contribute(i, &mut acc);
        }
        // SAFETY: each tile index t is owned by exactly one CPE.
        unsafe { *p.partials.add(t) = acc };
    });
}

#[doc(hidden)]
pub fn tramp_reduce_2d<F: ReduceFunctor2D>(ctx: &mut CpeCtx, arg: usize) {
    let p = unsafe { &*(arg as *const PayloadReduce2D) };
    let f = unsafe { &*(p.functor as *const F) };
    let total = p.policy.total_tiles();
    let per = tiles_per_cpe(total, ctx.num_cpes());
    let first = ctx.cpe_id() * per;
    let last = (first + per).min(total);
    let iters = |t: usize| {
        let [(j0, j1), (i0, i1)] = p.policy.tile_bounds(t);
        ((j1 - j0) * (i1 - i0)) as u64
    };
    let tile_elems = p.policy.tile[0] * p.policy.tile[1];
    drive_pipelined(ctx, p.cost, tile_elems, first, last, iters, |t| {
        let [(j0, j1), (i0, i1)] = p.policy.tile_bounds(t);
        let mut acc = p.identity;
        for j in j0..j1 {
            for i in i0..i1 {
                f.contribute(j, i, &mut acc);
            }
        }
        unsafe { *p.partials.add(t) = acc };
    });
}

#[doc(hidden)]
pub fn tramp_reduce_3d<F: ReduceFunctor3D>(ctx: &mut CpeCtx, arg: usize) {
    let p = unsafe { &*(arg as *const PayloadReduce3D) };
    let f = unsafe { &*(p.functor as *const F) };
    let total = p.policy.total_tiles();
    let per = tiles_per_cpe(total, ctx.num_cpes());
    let first = ctx.cpe_id() * per;
    let last = (first + per).min(total);
    let iters = |t: usize| {
        let [(k0, k1), (j0, j1), (i0, i1)] = p.policy.tile_bounds(t);
        ((k1 - k0) * (j1 - j0) * (i1 - i0)) as u64
    };
    let tile_elems = p.policy.tile[0] * p.policy.tile[1] * p.policy.tile[2];
    drive_pipelined(ctx, p.cost, tile_elems, first, last, iters, |t| {
        let [(k0, k1), (j0, j1), (i0, i1)] = p.policy.tile_bounds(t);
        let mut acc = p.identity;
        for k in k0..k1 {
            for j in j0..j1 {
                for i in i0..i1 {
                    f.contribute(k, j, i, &mut acc);
                }
            }
        }
        unsafe { *p.partials.add(t) = acc };
    });
}

// ---------------------------------------------------------------------------
// Registration entry points used by the macros.
// ---------------------------------------------------------------------------

pub fn register_1d<F: Functor1D + 'static>(name: &'static str) {
    insert(key_of::<F>(), name, KernelKind::For1D, tramp_for_1d::<F>);
}

pub fn register_2d<F: Functor2D + 'static>(name: &'static str) {
    insert(key_of::<F>(), name, KernelKind::For2D, tramp_for_2d::<F>);
}

pub fn register_3d<F: Functor3D + 'static>(name: &'static str) {
    insert(key_of::<F>(), name, KernelKind::For3D, tramp_for_3d::<F>);
}

pub fn register_list<F: FunctorList + 'static>(name: &'static str) {
    insert(
        key_of::<F>(),
        name,
        KernelKind::ForList,
        tramp_for_list::<F>,
    );
}

pub fn register_reduce_list<F: ReduceFunctorList + 'static>(name: &'static str) {
    insert(
        key_of::<F>(),
        name,
        KernelKind::ReduceList,
        tramp_reduce_list::<F>,
    );
}

pub fn register_reduce_1d<F: ReduceFunctor1D + 'static>(name: &'static str) {
    insert(
        key_of::<F>(),
        name,
        KernelKind::Reduce1D,
        tramp_reduce_1d::<F>,
    );
}

pub fn register_reduce_2d<F: ReduceFunctor2D + 'static>(name: &'static str) {
    insert(
        key_of::<F>(),
        name,
        KernelKind::Reduce2D,
        tramp_reduce_2d::<F>,
    );
}

pub fn register_reduce_3d<F: ReduceFunctor3D + 'static>(name: &'static str) {
    insert(
        key_of::<F>(),
        name,
        KernelKind::Reduce3D,
        tramp_reduce_3d::<F>,
    );
}

/// Registration hook for team trampolines (used by `crate::team`).
pub fn insert_team(key: u64, name: &'static str, tramp: CpeKernel) {
    insert(key, name, KernelKind::Team, tramp);
}

/// `KOKKOS_REGISTER_FOR_1D(Arg1, Arg2)`: defines an init function `Arg1`
/// that registers the preset trampoline for functor class `Arg2`. Call
/// `Arg1()` during initialization (idempotent).
#[macro_export]
macro_rules! register_for_1d {
    ($name:ident, $f:ty) => {
        #[allow(non_snake_case)]
        pub fn $name() {
            $crate::registry::register_1d::<$f>(stringify!($name));
        }
    };
}

/// `KOKKOS_REGISTER_FOR_2D` analogue; see `register_for_1d!`.
#[macro_export]
macro_rules! register_for_2d {
    ($name:ident, $f:ty) => {
        #[allow(non_snake_case)]
        pub fn $name() {
            $crate::registry::register_2d::<$f>(stringify!($name));
        }
    };
}

/// `KOKKOS_REGISTER_FOR_3D` analogue; see `register_for_1d!`.
#[macro_export]
macro_rules! register_for_3d {
    ($name:ident, $f:ty) => {
        #[allow(non_snake_case)]
        pub fn $name() {
            $crate::registry::register_3d::<$f>(stringify!($name));
        }
    };
}

/// `KOKKOS_REGISTER_FOR_LIST` analogue (index-list launch); see
/// `register_for_1d!`.
#[macro_export]
macro_rules! register_for_list {
    ($name:ident, $f:ty) => {
        #[allow(non_snake_case)]
        pub fn $name() {
            $crate::registry::register_list::<$f>(stringify!($name));
        }
    };
}

/// `KOKKOS_REGISTER_REDUCE_LIST` analogue; see `register_for_1d!`.
#[macro_export]
macro_rules! register_reduce_list {
    ($name:ident, $f:ty) => {
        #[allow(non_snake_case)]
        pub fn $name() {
            $crate::registry::register_reduce_list::<$f>(stringify!($name));
        }
    };
}

/// `KOKKOS_REGISTER_REDUCE_1D` analogue; see `register_for_1d!`.
#[macro_export]
macro_rules! register_reduce_1d {
    ($name:ident, $f:ty) => {
        #[allow(non_snake_case)]
        pub fn $name() {
            $crate::registry::register_reduce_1d::<$f>(stringify!($name));
        }
    };
}

/// `KOKKOS_REGISTER_REDUCE_2D` analogue; see `register_for_1d!`.
#[macro_export]
macro_rules! register_reduce_2d {
    ($name:ident, $f:ty) => {
        #[allow(non_snake_case)]
        pub fn $name() {
            $crate::registry::register_reduce_2d::<$f>(stringify!($name));
        }
    };
}

/// `KOKKOS_REGISTER_REDUCE_3D` analogue; see `register_for_1d!`.
#[macro_export]
macro_rules! register_reduce_3d {
    ($name:ident, $f:ty) => {
        #[allow(non_snake_case)]
        pub fn $name() {
            $crate::registry::register_reduce_3d::<$f>(stringify!($name));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::{View, View1};

    struct Scale {
        x: View1<f64>,
        a: f64,
    }
    impl Functor1D for Scale {
        fn operator(&self, i: usize) {
            self.x.set_at(i, self.a * self.x.at(i));
        }
    }

    struct Other;
    impl Functor1D for Other {
        fn operator(&self, _i: usize) {}
    }

    #[test]
    fn register_and_lookup() {
        register_1d::<Scale>("scale");
        register_1d::<Scale>("scale"); // idempotent
        let t = lookup(key_of::<Scale>(), KernelKind::For1D);
        assert!(t.is_some());
        let t2 = lookup_simd(key_of::<Scale>(), KernelKind::For1D);
        assert_eq!(t.map(|f| f as usize), t2.map(|f| f as usize));
    }

    #[test]
    fn lookup_miss_returns_none() {
        struct NeverRegistered;
        impl Functor1D for NeverRegistered {
            fn operator(&self, _i: usize) {}
        }
        assert!(lookup(key_of::<NeverRegistered>(), KernelKind::For1D).is_none());
        assert!(lookup_simd(key_of::<NeverRegistered>(), KernelKind::For1D).is_none());
    }

    #[test]
    fn kind_is_part_of_the_match() {
        register_1d::<Other>("other_for");
        // Registered as FOR, looked up as REDUCE → miss.
        assert!(lookup(key_of::<Other>(), KernelKind::Reduce1D).is_none());
    }

    #[test]
    fn trampoline_executes_functor_on_simulated_cpes() {
        register_1d::<Scale>("scale2");
        let x: View1<f64> = View::host("x", [100]);
        for i in 0..100 {
            x.set_at(i, i as f64);
        }
        let f = Scale {
            x: x.clone(),
            a: 3.0,
        };
        let payload = Payload1D {
            functor: &f as *const Scale as *const (),
            policy: RangePolicy::new(100).with_tile(7),
            cost: f.cost(),
        };
        let tramp = lookup(key_of::<Scale>(), KernelKind::For1D).unwrap();
        let mut cg = sunway_sim::CoreGroup::new(sunway_sim::CgConfig::test_small());
        cg.run(tramp, &payload as *const Payload1D as usize);
        for i in 0..100 {
            assert_eq!(x.at(i), 3.0 * i as f64);
        }
        assert!(cg.counters().totals.flops > 0, "cost accounting ran");
    }

    #[test]
    fn stats_count_registrations_and_walks() {
        register_1d::<Scale>("scale3");
        let (len0, lk0, _) = stats();
        assert!(len0 >= 1);
        let _ = lookup(key_of::<Scale>(), KernelKind::For1D);
        let (_, lk1, _) = stats();
        assert_eq!(lk1, lk0 + 1);
    }

    #[test]
    fn registered_kernels_lists_names() {
        register_1d::<Scale>("scale4");
        let names: Vec<&str> = registered_kernels().iter().map(|(n, _)| *n).collect();
        // The first registration for Scale wins the name slot.
        assert!(names.iter().any(|n| n.starts_with("scale")));
    }
}
