//! Execution spaces: where a kernel runs.
//!
//! Four backends, matching the paper's Table I coverage:
//!
//! * [`Space::Serial`] — reference loop; baseline for bitwise comparisons
//!   (plays the role of the original Fortran code path).
//! * [`Space::Threads`] — rayon work-stealing pool; the OpenMP analogue
//!   used on the ARM Taishan server.
//! * [`Space::DeviceSim`] — a CUDA/HIP-like device: kernels execute as a
//!   grid of tile-blocks, launches are counted and carry a fixed overhead,
//!   and data is expected to live in [`MemSpace::Device`] views that must
//!   be staged over PCIe with `deep_copy` (the counters in
//!   [`crate::memspace`] make the staging visible).
//! * [`Space::SwAthread`] — the Sunway backend (this work): launches go
//!   through the functor registry to a pre-registered trampoline executed
//!   by a simulated CPE cluster, with LDM/DMA cycle accounting.
//!
//! A `Space` is chosen at runtime (`Space::from_name`), so the *same model
//! binary* runs on every backend — the heart of the portability claim.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use sunway_sim::{CgConfig, CgCounters, CoreGroup};

use crate::memspace::MemSpace;

/// Marker/config for the rayon-backed host-parallel space.
#[derive(Clone, Debug, Default)]
pub struct ThreadsSpace;

/// Simulated discrete accelerator.
#[derive(Clone)]
pub struct DeviceSpace {
    /// Threads per block — metadata mirroring CUDA launch geometry.
    pub threads_per_block: usize,
    launches: Arc<AtomicU64>,
}

impl DeviceSpace {
    pub fn new() -> Self {
        Self {
            threads_per_block: 256,
            launches: Arc::new(AtomicU64::new(0)),
        }
    }

    pub(crate) fn record_launch(&self) {
        self.launches.fetch_add(1, Ordering::Relaxed);
    }

    /// Kernel launches issued on this device so far.
    pub fn launches(&self) -> u64 {
        self.launches.load(Ordering::Relaxed)
    }
}

impl Default for DeviceSpace {
    fn default() -> Self {
        Self::new()
    }
}

/// The Sunway Athread space: one simulated core group.
#[derive(Clone)]
pub struct SwSpace {
    pub(crate) cg: Arc<Mutex<CoreGroup>>,
    /// Immutable copy of the CG's hardware description, kept outside the
    /// mutex so per-launch tile sizing doesn't take the lock.
    cfg: CgConfig,
}

impl SwSpace {
    pub fn new(cfg: CgConfig) -> Self {
        Self {
            cg: Arc::new(Mutex::new(CoreGroup::new(cfg.clone()))),
            cfg,
        }
    }

    /// The core group's hardware configuration (for cost-model-driven
    /// tile sizing at dispatch time).
    pub fn config(&self) -> &CgConfig {
        &self.cfg
    }

    /// Snapshot of the core group's aggregated counters.
    pub fn counters(&self) -> CgCounters {
        self.cg.lock().counters().clone()
    }

    /// Reset the core group's counters.
    pub fn reset_counters(&self) {
        self.cg.lock().reset_counters();
    }

    /// CPE clock (Hz), for converting counters to simulated seconds.
    pub fn clock_hz(&self) -> f64 {
        self.cfg.clock_hz
    }
}

/// A runtime-selected execution space.
#[derive(Clone)]
pub enum Space {
    Serial,
    Threads(ThreadsSpace),
    DeviceSim(DeviceSpace),
    SwAthread(SwSpace),
}

impl Space {
    /// Serial reference space.
    pub fn serial() -> Self {
        Space::Serial
    }

    /// Host-parallel space on the global rayon pool.
    pub fn threads() -> Self {
        Space::Threads(ThreadsSpace)
    }

    /// Simulated GPU device.
    pub fn device_sim() -> Self {
        Space::DeviceSim(DeviceSpace::new())
    }

    /// Simulated Sunway core group with default SW26010 Pro configuration.
    pub fn sw_athread() -> Self {
        Space::SwAthread(SwSpace::new(CgConfig::default()))
    }

    /// Simulated Sunway core group with a custom configuration (tests use
    /// a small one for speed).
    pub fn sw_athread_with(cfg: CgConfig) -> Self {
        Space::SwAthread(SwSpace::new(cfg))
    }

    /// Parse a backend name (CLI/environment selection).
    pub fn from_name(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "serial" => Some(Self::serial()),
            "threads" | "openmp" => Some(Self::threads()),
            "devicesim" | "device" | "cuda" | "hip" | "gpu" => Some(Self::device_sim()),
            "swathread" | "sunway" | "athread" => Some(Self::sw_athread()),
            _ => None,
        }
    }

    /// Backend name.
    pub fn name(&self) -> &'static str {
        match self {
            Space::Serial => "Serial",
            Space::Threads(_) => "Threads",
            Space::DeviceSim(_) => "DeviceSim",
            Space::SwAthread(_) => "SwAthread",
        }
    }

    /// The memory space kernels on this backend expect data in.
    pub fn memspace(&self) -> MemSpace {
        match self {
            Space::DeviceSim(_) => MemSpace::Device,
            _ => MemSpace::Host,
        }
    }

    /// Whether host MPI buffers can be used directly (no device staging).
    /// False on `DeviceSim` — the paper's systems "lack support for
    /// GPU-aware MPI technology".
    pub fn unified_with_host(&self) -> bool {
        !matches!(self, Space::DeviceSim(_))
    }
}

impl std::fmt::Debug for Space {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Space::{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_name_roundtrip() {
        for name in ["Serial", "Threads", "DeviceSim", "SwAthread"] {
            let s = Space::from_name(name).unwrap();
            assert_eq!(s.name(), name);
        }
        assert!(Space::from_name("tpu").is_none());
    }

    #[test]
    fn aliases_resolve() {
        assert_eq!(Space::from_name("cuda").unwrap().name(), "DeviceSim");
        assert_eq!(Space::from_name("sunway").unwrap().name(), "SwAthread");
        assert_eq!(Space::from_name("openmp").unwrap().name(), "Threads");
    }

    #[test]
    fn memspace_and_unification() {
        assert_eq!(Space::serial().memspace(), MemSpace::Host);
        assert_eq!(Space::device_sim().memspace(), MemSpace::Device);
        assert!(Space::serial().unified_with_host());
        assert!(!Space::device_sim().unified_with_host());
        // Sunway MPE/CPE share memory — unified, per paper §V-B.
        assert!(Space::sw_athread_with(CgConfig::test_small()).unified_with_host());
    }
}
