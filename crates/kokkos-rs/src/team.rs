//! Hierarchical (team) parallelism with per-team scratch memory.
//!
//! Kokkos' `TeamPolicy` gives each league member a scratch pad that maps
//! to shared memory on GPUs and to **LDM on the Sunway backend** — the
//! abstraction the paper's architecture-specific kernels (§V-C2) lean on:
//! "developers can optimize memory latency by using LDM … by defining and
//! using local arrays within the functor".
//!
//! Our simplified model: a league of `league_size` teams, each invoked
//! once with a zeroed `f64` scratch slice of the requested length. On
//! `Serial`/`Threads`/`DeviceSim` the scratch is heap temporary; on
//! `SwAthread` it is **allocated from the executing CPE's 256 kB LDM**,
//! so a kernel whose scratch demand exceeds LDM fails exactly as it
//! would on hardware (see the `ldm_overflow` test).

use sunway_sim::CpeCtx;

use crate::functor::IterCost;
use crate::policy::tiles_per_cpe;
use crate::registry::{self, KernelKind};
use crate::space::Space;

/// League execution policy: `league_size` teams, each with
/// `scratch_len` f64 values of team-private scratch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TeamPolicy {
    pub league_size: usize,
    pub scratch_len: usize,
}

impl TeamPolicy {
    pub fn new(league_size: usize, scratch_len: usize) -> Self {
        Self {
            league_size,
            scratch_len,
        }
    }
}

/// A team kernel: invoked once per league rank with its scratch pad.
pub trait FunctorTeam: Sync {
    fn operator(&self, league_rank: usize, scratch: &mut [f64]);

    fn cost(&self) -> IterCost {
        IterCost::default()
    }
}

#[doc(hidden)]
pub struct PayloadTeam {
    pub functor: *const (),
    pub policy: TeamPolicy,
    pub cost: IterCost,
}

#[doc(hidden)]
pub fn tramp_team<F: FunctorTeam>(ctx: &mut CpeCtx, arg: usize) {
    let p = unsafe { &*(arg as *const PayloadTeam) };
    let f = unsafe { &*(p.functor as *const F) };
    let per = tiles_per_cpe(p.policy.league_size, ctx.num_cpes());
    let first = ctx.cpe_id() * per;
    let ldm = ctx.ldm();
    for league in first..(first + per).min(p.policy.league_size) {
        // Team scratch lives in LDM — overflow panics like hardware.
        let mut scratch = ldm
            .alloc::<f64>(p.policy.scratch_len)
            .unwrap_or_else(|e| panic!("team scratch does not fit in LDM: {e}"));
        f.operator(league, &mut scratch);
        ctx.account_flops_simd(p.cost.flops);
        ctx.account_dma_traffic(p.cost.bytes as usize);
    }
}

/// Register a team functor for the `SwAthread` backend
/// (`KOKKOS_REGISTER_TEAM` analogue).
pub fn register_team<F: FunctorTeam + 'static>(name: &'static str) {
    registry::insert_team(registry::key_of::<F>(), name, tramp_team::<F>);
}

/// Macro sugar mirroring [`crate::register_for_1d!`].
#[macro_export]
macro_rules! register_team {
    ($name:ident, $f:ty) => {
        #[allow(non_snake_case)]
        pub fn $name() {
            $crate::team::register_team::<$f>(stringify!($name));
        }
    };
}

/// Launch a team kernel on `space`.
pub fn parallel_for_team<F: FunctorTeam + 'static>(space: &Space, policy: TeamPolicy, f: &F) {
    let _span = crate::profiling::begin_kernel(
        space,
        crate::profiling::PatternKind::ParallelFor,
        std::any::type_name::<F>(),
        crate::profiling::PolicyKind::Team,
        policy.league_size as u64,
    );
    match space {
        Space::Serial => {
            let mut scratch = vec![0.0f64; policy.scratch_len];
            for league in 0..policy.league_size {
                scratch.fill(0.0);
                f.operator(league, &mut scratch);
            }
        }
        Space::Threads(_) | Space::DeviceSim(_) => {
            use rayon::prelude::*;
            (0..policy.league_size).into_par_iter().for_each(|league| {
                let mut scratch = vec![0.0f64; policy.scratch_len];
                f.operator(league, &mut scratch);
            });
        }
        Space::SwAthread(sw) => {
            let Some(tramp) = registry::lookup_simd(registry::key_of::<F>(), KernelKind::Team)
            else {
                panic!(
                    "team functor `{}` not registered for SwAthread; add \
                     `register_team!(<name>, {});` and call `<name>()` at init",
                    std::any::type_name::<F>(),
                    std::any::type_name::<F>()
                );
            };
            let payload = PayloadTeam {
                functor: f as *const F as *const (),
                policy,
                cost: f.cost(),
            };
            sw.cg
                .lock()
                .run(tramp, &payload as *const PayloadTeam as usize);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::{View, View1, View2};
    use sunway_sim::CgConfig;

    /// Per-column running mean through team scratch: scratch holds the
    /// column copy (the LDM-staging pattern of §V-C2).
    struct ColumnSmooth {
        input: View2<f64>,
        output: View2<f64>,
        len: usize,
    }
    impl FunctorTeam for ColumnSmooth {
        #[allow(clippy::needless_range_loop)]
        fn operator(&self, league: usize, scratch: &mut [f64]) {
            for k in 0..self.len {
                scratch[k] = self.input.at(league, k);
            }
            for k in 0..self.len {
                let lo = k.saturating_sub(1);
                let hi = (k + 1).min(self.len - 1);
                let mut s = 0.0;
                for item in scratch.iter().take(hi + 1).skip(lo) {
                    s += item;
                }
                self.output.set_at(league, k, s / (hi - lo + 1) as f64);
            }
        }
    }
    crate::register_team!(column_smooth, ColumnSmooth);

    fn all_spaces() -> Vec<Space> {
        vec![
            Space::serial(),
            Space::threads(),
            Space::device_sim(),
            Space::sw_athread_with(CgConfig::test_small()),
        ]
    }

    #[test]
    fn team_kernel_identical_on_all_backends() {
        column_smooth();
        let (cols, len) = (37, 21);
        let mut reference: Option<Vec<f64>> = None;
        for space in all_spaces() {
            let input: View2<f64> =
                View::from_fn("in", [cols, len], |[c, k]| ((c * 13 + k * 7) as f64).sin());
            let output: View2<f64> = View::host("out", [cols, len]);
            let f = ColumnSmooth {
                input,
                output: output.clone(),
                len,
            };
            parallel_for_team(&space, TeamPolicy::new(cols, len), &f);
            let got = output.to_vec();
            match &reference {
                None => reference = Some(got),
                Some(r) => assert_eq!(r, &got, "{} diverged", space.name()),
            }
        }
    }

    struct ScratchIsolation {
        out: View1<f64>,
    }
    impl FunctorTeam for ScratchIsolation {
        fn operator(&self, league: usize, scratch: &mut [f64]) {
            // Scratch must arrive zeroed — any leakage from another team
            // would show up here.
            assert!(scratch.iter().all(|&x| x == 0.0), "dirty scratch");
            scratch[0] = league as f64 + 1.0;
            self.out.set_at(league, scratch[0]);
        }
    }
    crate::register_team!(scratch_isolation, ScratchIsolation);

    #[test]
    fn scratch_is_private_and_zeroed() {
        scratch_isolation();
        for space in all_spaces() {
            let out: View1<f64> = View::host("o", [50]);
            let f = ScratchIsolation { out: out.clone() };
            parallel_for_team(&space, TeamPolicy::new(50, 16), &f);
            for league in 0..50 {
                assert_eq!(out.at(league), league as f64 + 1.0);
            }
        }
    }

    struct Greedy;
    impl FunctorTeam for Greedy {
        fn operator(&self, _league: usize, _scratch: &mut [f64]) {}
    }
    crate::register_team!(greedy_team, Greedy);

    #[test]
    #[should_panic(expected = "does not fit in LDM")]
    fn ldm_overflow_fails_like_hardware() {
        greedy_team();
        let space = Space::sw_athread_with(CgConfig::test_small()); // 16 kB LDM
                                                                    // 4096 f64 = 32 kB > 16 kB test LDM.
        parallel_for_team(&space, TeamPolicy::new(4, 4096), &Greedy);
    }

    #[test]
    fn huge_scratch_is_fine_on_host_backends() {
        greedy_team();
        parallel_for_team(&Space::serial(), TeamPolicy::new(2, 1 << 20), &Greedy);
        parallel_for_team(&Space::threads(), TeamPolicy::new(2, 1 << 20), &Greedy);
    }
}
