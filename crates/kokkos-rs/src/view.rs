//! Multi-dimensional `View`s — the Kokkos data abstraction.
//!
//! A [`View`] is a reference-counted, rank-`R` array with a runtime
//! [`Layout`] and a [`MemSpace`] tag. Like `Kokkos::View`, copies are
//! *shallow* (they alias the same allocation), element access goes through
//! `&self`, and writing from inside a parallel region is legal **iff**
//! iterations touch disjoint elements — the usual Kokkos contract, which
//! our kernels uphold and the cross-backend bitwise tests verify.
//!
//! Layout matters for the paper's 3-D halo optimization: LICOM stores
//! fields as `(k, j, i)`; [`Layout::Right`] makes `i` fastest ("horizontal
//! major order"), [`Layout::Left`] makes `k` fastest ("vertical major
//! order"). The Fig. 5 transpose kernels in `halo-exchange` convert halo
//! strips between the two.

use std::cell::UnsafeCell;
use std::sync::Arc;

use crate::memspace::{self, MemSpace};

/// Element ordering of a `View`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Layout {
    /// C order: the **last** index is contiguous (Kokkos `LayoutRight`).
    Right,
    /// Fortran order: the **first** index is contiguous (Kokkos `LayoutLeft`).
    Left,
}

struct ViewBuf<T> {
    data: UnsafeCell<Box<[T]>>,
}

// SAFETY: Views follow the Kokkos aliasing model — concurrent mutation is
// only performed by parallel kernels over provably disjoint index sets
// (each linear index written by at most one iteration). All bulk accessors
// that could observe torn state are documented with that precondition.
unsafe impl<T: Send + Sync> Sync for ViewBuf<T> {}
unsafe impl<T: Send + Sync> Send for ViewBuf<T> {}

/// A rank-`R` multi-dimensional array with shared ownership.
pub struct View<T, const R: usize> {
    buf: Arc<ViewBuf<T>>,
    dims: [usize; R],
    strides: [usize; R],
    layout: Layout,
    space: MemSpace,
    label: Arc<str>,
    /// Linear offset into the allocation (nonzero for subviews).
    base_offset: usize,
}

/// Rank aliases matching Kokkos spelling (`View1<f64>` ~ `View<double*>`).
pub type View1<T> = View<T, 1>;
pub type View2<T> = View<T, 2>;
pub type View3<T> = View<T, 3>;
pub type View4<T> = View<T, 4>;

impl<T, const R: usize> Clone for View<T, R> {
    /// Shallow copy: aliases the same allocation, as in Kokkos.
    fn clone(&self) -> Self {
        Self {
            buf: Arc::clone(&self.buf),
            dims: self.dims,
            strides: self.strides,
            layout: self.layout,
            space: self.space,
            label: Arc::clone(&self.label),
            base_offset: self.base_offset,
        }
    }
}

fn strides_for(dims: &[usize], layout: Layout) -> Vec<usize> {
    let r = dims.len();
    let mut strides = vec![0usize; r];
    match layout {
        Layout::Right => {
            let mut s = 1;
            for d in (0..r).rev() {
                strides[d] = s;
                s *= dims[d];
            }
        }
        Layout::Left => {
            let mut s = 1;
            for d in 0..r {
                strides[d] = s;
                s *= dims[d];
            }
        }
    }
    strides
}

impl<T: Clone + Default + Send + Sync, const R: usize> View<T, R> {
    /// Allocate a zero-initialised (`T::default()`) view.
    pub fn new(label: &str, dims: [usize; R], layout: Layout, space: MemSpace) -> Self {
        let len: usize = dims.iter().product();
        let data: Box<[T]> = vec![T::default(); len].into_boxed_slice();
        let mut strides = [0usize; R];
        strides.copy_from_slice(&strides_for(&dims, layout));
        Self {
            buf: Arc::new(ViewBuf {
                data: UnsafeCell::new(data),
            }),
            dims,
            strides,
            layout,
            space,
            label: Arc::from(label),
            base_offset: 0,
        }
    }

    /// Host view with default (`Right`) layout — the common case.
    pub fn host(label: &str, dims: [usize; R]) -> Self {
        Self::new(label, dims, Layout::Right, MemSpace::Host)
    }

    /// A new view with the same shape/layout in `space` (Kokkos
    /// `create_mirror_view`), contents zero-initialised.
    pub fn mirror(&self, space: MemSpace) -> Self {
        Self::new(&self.label, self.dims, self.layout, space)
    }
}

impl<T, const R: usize> View<T, R> {
    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// True when any extent is zero.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Extents per rank.
    pub fn dims(&self) -> [usize; R] {
        self.dims
    }

    /// Extent of rank `d`.
    pub fn extent(&self, d: usize) -> usize {
        self.dims[d]
    }

    /// Element layout.
    pub fn layout(&self) -> Layout {
        self.layout
    }

    /// Memory space tag.
    pub fn space(&self) -> MemSpace {
        self.space
    }

    /// Debug label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Linear offset of a logical index.
    #[inline(always)]
    pub fn offset(&self, idx: [usize; R]) -> usize {
        let mut off = 0;
        for d in 0..R {
            debug_assert!(
                idx[d] < self.dims[d],
                "index {:?} out of bounds {:?} in view '{}'",
                idx,
                self.dims,
                self.label
            );
            off += idx[d] * self.strides[d];
        }
        off
    }

    #[inline(always)]
    fn ptr(&self) -> *mut T {
        // SAFETY: pointer derived from a live allocation kept alive by Arc.
        unsafe { (*self.buf.data.get()).as_mut_ptr().add(self.base_offset) }
    }

    /// True when this view addresses its allocation from the start with
    /// the canonical strides of its layout (i.e. is not a subview).
    pub fn is_root_view(&self) -> bool {
        self.base_offset == 0
    }

    /// Read the whole allocation as a slice **in storage order**.
    ///
    /// Precondition (Kokkos model): no kernel is concurrently writing.
    /// Only meaningful for root views whose elements are contiguous;
    /// subviews with gaps would expose unrelated storage.
    pub fn as_slice(&self) -> &[T] {
        assert!(self.is_root_view(), "as_slice on subview '{}'", self.label);
        unsafe { std::slice::from_raw_parts(self.ptr(), self.len()) }
    }

    /// Raw pointer to the first element (storage order), for bulk-copy
    /// kernels (halo pack/unpack) that carve out provably disjoint
    /// sub-slices. Callers must uphold the Kokkos aliasing contract:
    /// concurrent accesses through this pointer target disjoint elements,
    /// and the pointer is not used past the view's lifetime.
    pub fn data_ptr(&self) -> *mut T {
        self.ptr()
    }
}

impl<T: Copy, const R: usize> View<T, R> {
    /// Read element at `idx`.
    #[inline(always)]
    pub fn get(&self, idx: [usize; R]) -> T {
        let off = self.offset(idx);
        unsafe { *self.ptr().add(off) }
    }

    /// Write element at `idx`. Goes through `&self` per the Kokkos model;
    /// concurrent writers must target disjoint elements.
    #[inline(always)]
    pub fn set(&self, idx: [usize; R], v: T) {
        let off = self.offset(idx);
        unsafe { *self.ptr().add(off) = v }
    }

    /// Read element at a raw linear (storage-order) offset.
    #[inline(always)]
    pub fn get_linear(&self, off: usize) -> T {
        debug_assert!(off < self.len());
        unsafe { *self.ptr().add(off) }
    }

    /// Write element at a raw linear (storage-order) offset.
    #[inline(always)]
    pub fn set_linear(&self, off: usize, v: T) {
        debug_assert!(off < self.len());
        unsafe { *self.ptr().add(off) = v }
    }

    /// Fill every element with `v` (single-threaded).
    pub fn fill(&self, v: T) {
        let p = self.ptr();
        for i in 0..self.len() {
            unsafe { *p.add(i) = v }
        }
    }

    /// Overwrite the allocation from a storage-order slice.
    pub fn copy_from_slice(&self, src: &[T]) {
        assert_eq!(src.len(), self.len(), "copy_from_slice length mismatch");
        let p = self.ptr();
        for (i, &v) in src.iter().enumerate() {
            unsafe { *p.add(i) = v }
        }
    }

    /// Snapshot the allocation into a `Vec` in storage order.
    pub fn to_vec(&self) -> Vec<T> {
        self.as_slice().to_vec()
    }
}

// Ergonomic per-rank accessors.
impl<T: Copy> View<T, 1> {
    #[inline(always)]
    pub fn at(&self, i: usize) -> T {
        self.get([i])
    }
    #[inline(always)]
    pub fn set_at(&self, i: usize, v: T) {
        self.set([i], v)
    }
}

impl<T: Copy> View<T, 2> {
    #[inline(always)]
    pub fn at(&self, i: usize, j: usize) -> T {
        self.get([i, j])
    }
    #[inline(always)]
    pub fn set_at(&self, i: usize, j: usize, v: T) {
        self.set([i, j], v)
    }
}

impl<T: Copy> View<T, 3> {
    #[inline(always)]
    pub fn at(&self, k: usize, j: usize, i: usize) -> T {
        self.get([k, j, i])
    }
    #[inline(always)]
    pub fn set_at(&self, k: usize, j: usize, i: usize, v: T) {
        self.set([k, j, i], v)
    }
}

impl<T: Copy> View<T, 4> {
    #[inline(always)]
    pub fn at(&self, a: usize, k: usize, j: usize, i: usize) -> T {
        self.get([a, k, j, i])
    }
    #[inline(always)]
    pub fn set_at(&self, a: usize, k: usize, j: usize, i: usize, v: T) {
        self.set([a, k, j, i], v)
    }
}

/// Logical deep copy `src → dst` (Kokkos `deep_copy`).
///
/// Shapes must match; layouts may differ (the copy is index-wise, with a
/// `memcpy` fast path when layouts agree). Crossing memory spaces records
/// PCIe traffic in [`crate::memspace`].
pub fn deep_copy<T: Copy + Send + Sync, const R: usize>(dst: &View<T, R>, src: &View<T, R>) {
    assert_eq!(dst.dims(), src.dims(), "deep_copy shape mismatch");
    let bytes = std::mem::size_of::<T>() * src.len();
    let _span = crate::profiling::begin_deep_copy(&crate::profiling::DeepCopyInfo {
        dst_label: dst.label(),
        src_label: src.label(),
        dst_space: dst.space(),
        src_space: src.space(),
        bytes: bytes as u64,
    });
    match (src.space(), dst.space()) {
        (MemSpace::Host, MemSpace::Device) => memspace::record_h2d(bytes),
        (MemSpace::Device, MemSpace::Host) => memspace::record_d2h(bytes),
        _ => {}
    }
    if dst.layout() == src.layout() {
        dst.copy_from_slice(src.as_slice());
        return;
    }
    // Layout conversion: iterate logical indices.
    let dims = src.dims();
    let len = src.len();
    let mut idx = [0usize; R];
    for _ in 0..len {
        dst.set(idx, src.get(idx));
        // odometer increment, last rank fastest
        for d in (0..R).rev() {
            idx[d] += 1;
            if idx[d] < dims[d] {
                break;
            }
            idx[d] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_right_last_index_contiguous() {
        let v: View2<f64> = View::new("a", [3, 4], Layout::Right, MemSpace::Host);
        assert_eq!(v.offset([0, 0]), 0);
        assert_eq!(v.offset([0, 1]), 1);
        assert_eq!(v.offset([1, 0]), 4);
    }

    #[test]
    fn layout_left_first_index_contiguous() {
        let v: View2<f64> = View::new("a", [3, 4], Layout::Left, MemSpace::Host);
        assert_eq!(v.offset([1, 0]), 1);
        assert_eq!(v.offset([0, 1]), 3);
    }

    #[test]
    fn set_get_roundtrip_3d() {
        let v: View3<f64> = View::host("t", [2, 3, 4]);
        for k in 0..2 {
            for j in 0..3 {
                for i in 0..4 {
                    v.set_at(k, j, i, (k * 100 + j * 10 + i) as f64);
                }
            }
        }
        assert_eq!(v.at(1, 2, 3), 123.0);
        assert_eq!(v.at(0, 0, 0), 0.0);
        assert_eq!(v.len(), 24);
    }

    #[test]
    fn clones_alias_the_same_storage() {
        let a: View1<f64> = View::host("x", [10]);
        let b = a.clone();
        a.set_at(3, 7.5);
        assert_eq!(b.at(3), 7.5);
    }

    #[test]
    fn deep_copy_same_layout() {
        let a: View2<f64> = View::host("a", [5, 5]);
        let b: View2<f64> = View::host("b", [5, 5]);
        for i in 0..25 {
            a.set_linear(i, i as f64);
        }
        deep_copy(&b, &a);
        assert_eq!(b.to_vec(), a.to_vec());
    }

    #[test]
    fn deep_copy_converts_layout() {
        let a: View2<f64> = View::new("a", [2, 3], Layout::Right, MemSpace::Host);
        let b: View2<f64> = View::new("b", [2, 3], Layout::Left, MemSpace::Host);
        for i in 0..2 {
            for j in 0..3 {
                a.set_at(i, j, (10 * i + j) as f64);
            }
        }
        deep_copy(&b, &a);
        for i in 0..2 {
            for j in 0..3 {
                assert_eq!(b.at(i, j), (10 * i + j) as f64, "logical equality");
            }
        }
        // but the storage order differs
        assert_ne!(a.to_vec(), b.to_vec());
    }

    #[test]
    fn deep_copy_counts_pcie_traffic() {
        crate::memspace::reset_transfer_stats();
        let h: View1<f64> = View::new("h", [100], Layout::Right, MemSpace::Host);
        let d: View1<f64> = h.mirror(MemSpace::Device);
        deep_copy(&d, &h);
        deep_copy(&h, &d);
        let s = crate::memspace::transfer_stats();
        assert_eq!(s.h2d_bytes, 800);
        assert_eq!(s.d2h_bytes, 800);
    }

    #[test]
    #[should_panic(expected = "deep_copy shape mismatch")]
    fn deep_copy_rejects_shape_mismatch() {
        let a: View1<f64> = View::host("a", [3]);
        let b: View1<f64> = View::host("b", [4]);
        deep_copy(&b, &a);
    }

    #[test]
    fn fill_and_to_vec() {
        let v: View1<i32> = View::host("v", [4]);
        v.fill(9);
        assert_eq!(v.to_vec(), vec![9, 9, 9, 9]);
    }

    #[test]
    fn mirror_preserves_shape_and_layout() {
        let a: View3<f64> = View::new("a", [2, 3, 4], Layout::Left, MemSpace::Host);
        let d = a.mirror(MemSpace::Device);
        assert_eq!(d.dims(), [2, 3, 4]);
        assert_eq!(d.layout(), Layout::Left);
        assert_eq!(d.space(), MemSpace::Device);
        assert_eq!(d.label(), "a");
    }

    #[test]
    fn concurrent_disjoint_writes_are_consistent() {
        // The Kokkos aliasing model in action: many threads, disjoint indices.
        let v: View1<u64> = View::host("p", [10_000]);
        std::thread::scope(|s| {
            for t in 0..4 {
                let v = v.clone();
                s.spawn(move || {
                    let mut i = t;
                    while i < 10_000 {
                        v.set_at(i, i as u64 * 2);
                        i += 4;
                    }
                });
            }
        });
        for i in 0..10_000 {
            assert_eq!(v.at(i), i as u64 * 2);
        }
    }
}

/// A borrowed lower-rank slice of a `View` (Kokkos `subview` with one
/// index fixed). Shares storage with the parent; reads/writes are live.
impl<T: Copy + Send + Sync> View<T, 3> {
    /// The rank-2 slice at level `k` (shares storage with `self`).
    pub fn level(&self, k: usize) -> View<T, 2> {
        assert!(k < self.dims[0], "level {k} out of {}", self.dims[0]);
        // Only contiguous level slices are expressible as a rank-2 view
        // with plain strides; both layouts qualify because k is the
        // slowest (Right) or fastest (Left) index.
        let dims = [self.dims[1], self.dims[2]];
        let (strides, offset) = match self.layout {
            Layout::Right => ([self.strides[1], self.strides[2]], k * self.strides[0]),
            Layout::Left => ([self.strides[1], self.strides[2]], k * self.strides[0]),
        };
        View {
            buf: Arc::clone(&self.buf),
            dims,
            strides,
            layout: self.layout,
            space: self.space,
            label: Arc::from(format!("{}[k={k}]", self.label)),
            base_offset: self.base_offset + offset,
        }
    }
}

impl<T: Clone + Default + Send + Sync, const R: usize> View<T, R> {
    /// Allocate and initialise from a function of the logical index.
    pub fn from_fn(label: &str, dims: [usize; R], f: impl Fn([usize; R]) -> T) -> Self
    where
        T: Copy,
    {
        let v = Self::host(label, dims);
        let len = v.len();
        let mut idx = [0usize; R];
        for _ in 0..len {
            v.set(idx, f(idx));
            for d in (0..R).rev() {
                idx[d] += 1;
                if idx[d] < dims[d] {
                    break;
                }
                idx[d] = 0;
            }
        }
        v
    }
}

#[cfg(test)]
mod subview_tests {
    use super::*;

    #[test]
    fn level_slice_shares_storage() {
        let v: View3<f64> = View::host("v", [3, 4, 5]);
        for k in 0..3 {
            for j in 0..4 {
                for i in 0..5 {
                    v.set_at(k, j, i, (k * 100 + j * 10 + i) as f64);
                }
            }
        }
        let s = v.level(1);
        assert_eq!(s.dims(), [4, 5]);
        assert_eq!(s.at(2, 3), 123.0);
        s.set_at(0, 0, -7.0);
        assert_eq!(v.at(1, 0, 0), -7.0, "writes through the slice are live");
    }

    #[test]
    fn level_slice_layout_left() {
        let v: View3<f64> = View::new("v", [3, 4, 5], Layout::Left, MemSpace::Host);
        v.set_at(2, 1, 4, 9.5);
        let s = v.level(2);
        assert_eq!(s.at(1, 4), 9.5);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn level_out_of_range_panics() {
        let v: View3<f64> = View::host("v", [2, 2, 2]);
        let _ = v.level(2);
    }

    #[test]
    fn from_fn_initialises_by_logical_index() {
        let v: View2<f64> = View::from_fn("f", [3, 4], |[j, i]| (10 * j + i) as f64);
        assert_eq!(v.at(2, 3), 23.0);
        let l: View2<f64> = View::new("l", [3, 4], Layout::Left, MemSpace::Host);
        deep_copy(&l, &v);
        assert_eq!(l.at(2, 3), 23.0);
    }

    #[test]
    fn f32_views_work() {
        let v: View1<f32> = View::host("v32", [8]);
        v.fill(0.5f32);
        assert_eq!(v.at(3), 0.5f32);
    }
}
