//! Property-based tests of the portability layer's invariants.

use kokkos_rs::{
    deep_copy, parallel_for_1d, parallel_reduce_1d, Functor1D, Layout, MemSpace, RangePolicy,
    ReduceFunctor1D, Reducer, Space, View, View1, View2,
};
use proptest::prelude::*;

struct Scale {
    x: View1<f64>,
    a: f64,
}
impl Functor1D for Scale {
    fn operator(&self, i: usize) {
        self.x.set_at(i, self.a * self.x.at(i));
    }
}
kokkos_rs::register_for_1d!(prop_scale, Scale);

struct Sum {
    x: View1<f64>,
}
impl ReduceFunctor1D for Sum {
    fn contribute(&self, i: usize, acc: &mut f64) {
        *acc += self.x.at(i);
    }
}
kokkos_rs::register_reduce_1d!(prop_sum, Sum);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// deep_copy across layouts is a logical identity for any shape.
    #[test]
    fn prop_deep_copy_layout_roundtrip(ny in 1usize..12, nx in 1usize..12, seed in 0u64..500) {
        let a: View2<f64> = View::from_fn("a", [ny, nx], |[j, i]| {
            ((j * 31 + i * 7) as u64).wrapping_mul(seed + 1) as f64
        });
        let left: View2<f64> = View::new("l", [ny, nx], Layout::Left, MemSpace::Host);
        let back: View2<f64> = View::host("b", [ny, nx]);
        deep_copy(&left, &a);
        deep_copy(&back, &left);
        for j in 0..ny {
            for i in 0..nx {
                prop_assert_eq!(a.at(j, i).to_bits(), back.at(j, i).to_bits());
            }
        }
    }

    /// Reductions are bitwise identical across every backend and any
    /// tile size.
    #[test]
    fn prop_reduce_backend_invariant(n in 1usize..2000, tile in 1usize..300, seed in 0u64..100) {
        prop_sum();
        let x: View1<f64> = View::from_fn("x", [n], |[i]| {
            (((i as u64 + 1).wrapping_mul(seed * 2654435761 + 1) % 1000) as f64 - 500.0) * 1.0e-3
        });
        let f = Sum { x };
        let policy = RangePolicy::new(n).with_tile(tile);
        let spaces = [
            Space::serial(),
            Space::threads(),
            Space::device_sim(),
            Space::sw_athread_with(sunway_sim::CgConfig::test_small()),
        ];
        let bits: Vec<u64> = spaces
            .iter()
            .map(|s| parallel_reduce_1d(s, policy, &f, Reducer::Sum).to_bits())
            .collect();
        prop_assert!(bits.iter().all(|&b| b == bits[0]), "bits {:?}", bits);
    }

    /// Tile size never changes parallel_for results (disjoint writes).
    #[test]
    fn prop_for_tile_invariant(n in 1usize..1500, t1 in 1usize..200, t2 in 1usize..200) {
        prop_scale();
        let run = |tile: usize| {
            let x: View1<f64> = View::from_fn("x", [n], |[i]| i as f64 + 0.5);
            let f = Scale { x: x.clone(), a: 1.25 };
            parallel_for_1d(&Space::threads(), RangePolicy::new(n).with_tile(tile), &f);
            x.to_vec()
        };
        prop_assert_eq!(run(t1), run(t2));
    }

    /// Min/Max reducers agree with the std fold on any data.
    #[test]
    fn prop_min_max_reducers(vals in proptest::collection::vec(-1e6f64..1e6, 1..500)) {
        struct MinF { x: View1<f64> }
        impl ReduceFunctor1D for MinF {
            fn contribute(&self, i: usize, acc: &mut f64) { *acc = acc.min(self.x.at(i)); }
        }
        let x: View1<f64> = View::host("x", [vals.len()]);
        x.copy_from_slice(&vals);
        let f = MinF { x };
        let got = parallel_reduce_1d(&Space::threads(), RangePolicy::new(vals.len()), &f, Reducer::Min);
        let want = vals.iter().cloned().fold(f64::INFINITY, f64::min);
        prop_assert_eq!(got, want);
    }
}
