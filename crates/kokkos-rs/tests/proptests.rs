//! Property-based tests of the portability layer's invariants.

use std::sync::Arc;

use kokkos_rs::{
    deep_copy, parallel_for_1d, parallel_for_list, parallel_reduce_1d, parallel_reduce_list,
    Functor1D, FunctorList, Layout, ListPolicy, MemSpace, RangePolicy, ReduceFunctor1D,
    ReduceFunctorList, Reducer, Space, View, View1, View2,
};
use proptest::prelude::*;

struct Scale {
    x: View1<f64>,
    a: f64,
}
impl Functor1D for Scale {
    fn operator(&self, i: usize) {
        self.x.set_at(i, self.a * self.x.at(i));
    }
}
kokkos_rs::register_for_1d!(prop_scale, Scale);

struct Sum {
    x: View1<f64>,
}
impl ReduceFunctor1D for Sum {
    fn contribute(&self, i: usize, acc: &mut f64) {
        *acc += self.x.at(i);
    }
}
kokkos_rs::register_reduce_1d!(prop_sum, Sum);

/// Gather through an index list: `dst[idx] = a * src[idx]`. Duplicate
/// indices write the same value, so the result is deterministic for any
/// list ordering.
struct GatherScale {
    src: View1<f64>,
    dst: View1<f64>,
    a: f64,
}
impl FunctorList for GatherScale {
    fn operator(&self, _n: usize, idx: u32) {
        let i = idx as usize;
        self.dst.set_at(i, self.a * self.src.at(i));
    }
}
kokkos_rs::register_for_list!(prop_gather_scale, GatherScale);

/// List reduction weighted by the list position `n`, so any deviation
/// from tile-ordered joining changes the bits.
struct ListSum {
    x: View1<f64>,
}
impl ReduceFunctorList for ListSum {
    fn contribute(&self, n: usize, idx: u32, acc: &mut f64) {
        *acc += self.x.at(idx as usize) * (n as f64 * 1.0e-3 + 1.0);
    }
}
kokkos_rs::register_reduce_list!(prop_list_sum, ListSum);

fn all_spaces() -> [Space; 4] {
    [
        Space::serial(),
        Space::threads(),
        Space::device_sim(),
        Space::sw_athread_with(sunway_sim::CgConfig::test_small()),
    ]
}

/// Arbitrary index list: possibly empty, unsorted, with duplicates — the
/// shapes a wet-point set never has but the policy must still handle.
/// Tests clamp entries to their view extent.
fn index_list() -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(0u32..400, 0..200)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// deep_copy across layouts is a logical identity for any shape.
    #[test]
    fn prop_deep_copy_layout_roundtrip(ny in 1usize..12, nx in 1usize..12, seed in 0u64..500) {
        let a: View2<f64> = View::from_fn("a", [ny, nx], |[j, i]| {
            ((j * 31 + i * 7) as u64).wrapping_mul(seed + 1) as f64
        });
        let left: View2<f64> = View::new("l", [ny, nx], Layout::Left, MemSpace::Host);
        let back: View2<f64> = View::host("b", [ny, nx]);
        deep_copy(&left, &a);
        deep_copy(&back, &left);
        for j in 0..ny {
            for i in 0..nx {
                prop_assert_eq!(a.at(j, i).to_bits(), back.at(j, i).to_bits());
            }
        }
    }

    /// Reductions are bitwise identical across every backend and any
    /// tile size.
    #[test]
    fn prop_reduce_backend_invariant(n in 1usize..2000, tile in 1usize..300, seed in 0u64..100) {
        prop_sum();
        let x: View1<f64> = View::from_fn("x", [n], |[i]| {
            (((i as u64 + 1).wrapping_mul(seed * 2654435761 + 1) % 1000) as f64 - 500.0) * 1.0e-3
        });
        let f = Sum { x };
        let policy = RangePolicy::new(n).with_tile(tile);
        let spaces = [
            Space::serial(),
            Space::threads(),
            Space::device_sim(),
            Space::sw_athread_with(sunway_sim::CgConfig::test_small()),
        ];
        let bits: Vec<u64> = spaces
            .iter()
            .map(|s| parallel_reduce_1d(s, policy, &f, Reducer::Sum).to_bits())
            .collect();
        prop_assert!(bits.iter().all(|&b| b == bits[0]), "bits {:?}", bits);
    }

    /// Tile size never changes parallel_for results (disjoint writes).
    #[test]
    fn prop_for_tile_invariant(n in 1usize..1500, t1 in 1usize..200, t2 in 1usize..200) {
        prop_scale();
        let run = |tile: usize| {
            let x: View1<f64> = View::from_fn("x", [n], |[i]| i as f64 + 0.5);
            let f = Scale { x: x.clone(), a: 1.25 };
            parallel_for_1d(&Space::threads(), RangePolicy::new(n).with_tile(tile), &f);
            x.to_vec()
        };
        prop_assert_eq!(run(t1), run(t2));
    }

    /// ListPolicy parallel_for writes exactly the listed entries, bitwise
    /// identically on every backend, for ragged tile edges, empty lists,
    /// and non-monotone index lists with duplicates.
    #[test]
    fn prop_list_for_backend_invariant(
        n in 1usize..400,
        idxs in index_list(),
        tile in 1usize..64,
        seed in 0u64..100,
    ) {
        prop_gather_scale();
        let idxs: Vec<u32> = idxs.into_iter().filter(|&i| (i as usize) < n).collect();
        let src: View1<f64> = View::from_fn("src", [n], |[i]| {
            (((i as u64 + 3).wrapping_mul(seed * 2654435761 + 7) % 997) as f64 - 498.0) * 1.0e-3
        });
        let policy = ListPolicy::new(Arc::new(idxs.clone())).with_tile(tile);
        let mut runs: Vec<Vec<u64>> = Vec::new();
        for space in all_spaces() {
            let dst: View1<f64> = View::from_fn("dst", [n], |[i]| -(i as f64));
            let f = GatherScale { src: src.clone(), dst: dst.clone(), a: 1.0 + seed as f64 * 1.0e-2 };
            parallel_for_list(&space, &policy, &f);
            // Listed entries got the gathered value; unlisted stayed put.
            for i in 0..n {
                let want = if idxs.contains(&(i as u32)) { f.a * src.at(i) } else { -(i as f64) };
                prop_assert_eq!(dst.at(i).to_bits(), want.to_bits(), "entry {}", i);
            }
            runs.push(dst.to_vec().iter().map(|v| v.to_bits()).collect());
        }
        prop_assert!(runs.iter().all(|r| r == &runs[0]), "backends diverged");
    }

    /// ListPolicy reductions join tile partials in tile order: bitwise
    /// identical across backends and tile sizes, with or without a cost
    /// prefix steering the worker split.
    #[test]
    fn prop_list_reduce_backend_invariant(
        n in 1usize..400,
        idxs in index_list(),
        tile in 1usize..64,
        seed in 0u64..100,
    ) {
        prop_list_sum();
        let idxs: Vec<u32> = idxs.into_iter().filter(|&i| (i as usize) < n).collect();
        let x: View1<f64> = View::from_fn("x", [n], |[i]| {
            (((i as u64 + 11).wrapping_mul(seed.wrapping_mul(6364136223846793005) + 13) % 811) as f64 - 405.0) * 1.0e-3
        });
        let f = ListSum { x };
        // Reference: sequential fold in list order.
        let mut want = 0.0;
        for (m, &idx) in idxs.iter().enumerate() {
            f.contribute(m, idx, &mut want);
        }
        // Cost prefix with pseudo-random per-entry weights (>=1 each).
        let mut prefix = Vec::with_capacity(idxs.len() + 1);
        let mut acc = 0u64;
        prefix.push(0);
        for (m, _) in idxs.iter().enumerate() {
            acc += 1 + (m as u64 * 2654435761 + seed) % 37;
            prefix.push(acc);
        }
        let plain = ListPolicy::new(Arc::new(idxs.clone())).with_tile(tile);
        let costed = ListPolicy::new(Arc::new(idxs))
            .with_tile(tile)
            .with_cost_prefix(Arc::new(prefix));
        let mut bits = Vec::new();
        for policy in [&plain, &costed] {
            for space in all_spaces() {
                bits.push(parallel_reduce_list(&space, policy, &f, Reducer::Sum).to_bits());
            }
        }
        prop_assert!(bits.iter().all(|&b| b == bits[0]), "bits {:?}", bits);
        // Tile-ordered joining with tile=1 degenerates to the sequential
        // list-order fold only when each tile holds one entry; the policy
        // contract is cross-backend identity, but a singleton-tile run must
        // also match the plain fold exactly.
        let singleton = ListPolicy::new(plain.indices().clone()).with_tile(1);
        let got = parallel_reduce_list(&Space::serial(), &singleton, &f, Reducer::Sum);
        prop_assert_eq!(got.to_bits(), want.to_bits());
    }

    /// Min/Max reducers agree with the std fold on any data.
    #[test]
    fn prop_min_max_reducers(vals in proptest::collection::vec(-1e6f64..1e6, 1..500)) {
        struct MinF { x: View1<f64> }
        impl ReduceFunctor1D for MinF {
            fn contribute(&self, i: usize, acc: &mut f64) { *acc = acc.min(self.x.at(i)); }
        }
        let x: View1<f64> = View::host("x", [vals.len()]);
        x.copy_from_slice(&vals);
        let f = MinF { x };
        let got = parallel_reduce_1d(&Space::threads(), RangePolicy::new(vals.len()), &f, Reducer::Min);
        let want = vals.iter().cloned().fold(f64::INFINITY, f64::min);
        prop_assert_eq!(got, want);
    }
}
