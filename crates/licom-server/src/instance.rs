//! One served model instance: a full [`licom::Model`] on a private
//! single-rank world, with an isolated checkpoint ring and a profiling
//! identity of its own.
//!
//! Instances are deliberately *not* tied to the thread that created them
//! — `Model` is a plain owned value over `Send + Sync` views, so a
//! worker can step instance A for one slice, park it, and a different
//! worker can pick it up for the next slice. The private
//! [`mpi_sim::World::solo`] communicator keeps mailboxes, buffer pools
//! and traffic counters per-instance, so two instances never alias
//! communication state no matter which threads run them.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};

use kokkos_rs::profiling::{enter_instance, next_instance_key, InstanceKey};
use licom::{CheckpointManager, Model};
use mpi_sim::World;

use crate::job::JobSpec;

/// What one `step_once` call did, beyond advancing the model.
#[derive(Debug, Clone, Copy, Default)]
pub struct StepOutcome {
    /// A checkpoint ring slot was written after this step.
    pub checkpointed: bool,
    /// The instance rolled back to this step (instead of advancing).
    pub rolled_back_to: Option<u64>,
}

/// A servable model instance (see module docs).
pub struct Instance {
    /// Server-wide instance name, e.g. `"m17"` — the Prometheus
    /// `instance` label value.
    pub name: String,
    pub tenant: String,
    /// Profiling identity: kernels dispatched while stepping this
    /// instance are attributed to this key (never to the global tool or
    /// a sibling instance).
    pub key: InstanceKey,
    model: Model,
    ckpt: Option<CheckpointManager>,
    ckpt_every: u64,
    rollback_at: Option<u64>,
    ckpt_dir: Option<PathBuf>,
}

impl Instance {
    /// Build the instance: private solo world, model, and (if the spec
    /// asks for one) a checkpoint ring in its own directory under
    /// `ckpt_base`. Expensive — the server calls this lazily on a worker
    /// thread, not at submission.
    pub fn build(name: String, spec: &JobSpec, ckpt_base: &std::path::Path) -> Instance {
        let comm = World::solo();
        // Post-mortem bundles from every instance land next to the
        // checkpoint rings (one `_flight` dir per server; bundle names
        // are unique), not in the global temp fallback.
        let mut opts = spec.model_options();
        opts.flight_dir = Some(ckpt_base.join("_flight"));
        let model = Model::new(&comm, spec.cfg.clone(), spec.space.clone(), opts);
        let (ckpt, ckpt_every, rollback_at, ckpt_dir) = match &spec.checkpoint {
            None => (None, 0, None, None),
            Some(p) => {
                let dir = ckpt_base.join(&name);
                std::fs::create_dir_all(&dir).expect("create per-instance checkpoint dir");
                (
                    Some(CheckpointManager::new(&dir, p.ring)),
                    p.every_steps.max(1),
                    p.rollback_at,
                    Some(dir),
                )
            }
        };
        Instance {
            name,
            tenant: spec.tenant.clone(),
            key: next_instance_key(),
            model,
            ckpt,
            ckpt_every,
            rollback_at,
            ckpt_dir,
        }
    }

    pub fn steps_taken(&self) -> u64 {
        self.model.steps_taken()
    }

    pub fn checksum(&self) -> u64 {
        self.model.checksum()
    }

    /// Named counters of this instance's [`licom::Timers`], for labeled
    /// exposition.
    pub fn counters(&self) -> Vec<(&'static str, u64)> {
        self.model.timers.counters()
    }

    /// Phase seconds of this instance's [`licom::Timers`].
    pub fn phase_seconds(&self) -> Vec<(&'static str, f64)> {
        self.model.timers.phase_seconds()
    }

    /// This instance's private-world traffic counters.
    pub fn traffic(&self) -> mpi_sim::TrafficSnapshot {
        self.model.comm().traffic()
    }

    /// Record a flight-recorder event into this instance's private
    /// ring (the solo world keeps black boxes per-instance).
    pub fn flight_note(&self, kind: mpi_sim::flight::FlightEventKind, a: u64, b: u64, c: u64) {
        self.model.flight_note(kind, a, b, c);
    }

    /// Snapshot this instance's black box into a post-mortem bundle
    /// (once per instance; see [`licom::Model::dump_flight`]).
    pub fn dump_flight(&self, reason: &str) -> Option<PathBuf> {
        self.model.dump_flight(reason)
    }

    /// Advance one step (or roll back, if the spec injected a rollback
    /// at the current step count). Kernel dispatches inside are
    /// attributed to this instance's profiling key. Errors are stringly
    /// typed — the server marks the job `Failed` and moves on; one bad
    /// instance must never poison the pool.
    pub fn step_once(&mut self, cancel: &AtomicBool) -> Result<StepOutcome, String> {
        let _scope = enter_instance(self.key);
        let mut out = StepOutcome::default();

        if let Some(at) = self.rollback_at {
            if self.model.steps_taken() >= at {
                self.rollback_at = None; // fire once
                let ckpt = self
                    .ckpt
                    .as_ref()
                    .expect("rollback_at requires a checkpoint policy");
                let step = ckpt
                    .restore_latest_collective(&mut self.model)
                    .map_err(|e| format!("rollback failed: {e:?}"))?;
                out.rolled_back_to = Some(step);
                return Ok(out);
            }
        }

        // A cancel observed between steps keeps slices responsive even
        // when slice_steps is large.
        if cancel.load(Ordering::Relaxed) {
            return Ok(out);
        }

        self.model
            .try_step()
            .map_err(|e| format!("step failed: {e}"))?;

        if let Some(ckpt) = self.ckpt.as_mut() {
            if self.model.steps_taken().is_multiple_of(self.ckpt_every) {
                ckpt.save(&self.model)
                    .map_err(|e| format!("checkpoint failed: {e:?}"))?;
                out.checkpointed = true;
            }
        }
        Ok(out)
    }
}

impl Drop for Instance {
    fn drop(&mut self) {
        if let Some(dir) = &self.ckpt_dir {
            let _ = std::fs::remove_dir_all(dir);
        }
    }
}
