//! Job vocabulary of the serving engine: what a tenant submits, what the
//! server reports back, and why a submission can be refused.

use licom::ModelOptions;
use mpi_sim::RetryPolicy;
use ocean_grid::ModelConfig;

/// Server-assigned job identifier, unique for the server's lifetime.
pub type JobId = u64;

/// Scheduling priority. The fair-share scheduler converts priority into a
/// stride weight: a `High` job's tenant accumulates virtual time four
/// times slower than a `Low` one, so it is picked four times as often
/// under contention — but never starves anyone (stride scheduling is
/// proportional-share, not strict-priority).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Priority {
    Low,
    Normal,
    High,
}

impl Priority {
    /// Stride weight (share of the pool under contention).
    pub fn weight(self) -> u64 {
        match self {
            Priority::Low => 1,
            Priority::Normal => 2,
            Priority::High => 4,
        }
    }
}

/// Periodic checkpointing for one instance: an isolated per-instance
/// ring (its own directory), written every `every_steps` steps.
#[derive(Debug, Clone)]
pub struct CheckpointPolicy {
    pub every_steps: u64,
    /// Ring depth (number of retained slots).
    pub ring: usize,
    /// Roll back to the latest checkpoint once, when `steps_taken`
    /// first reaches this count — then replay forward. Exercises the
    /// recovery path mid-serve; the deterministic model makes the final
    /// checksum bitwise identical to an undisturbed run.
    pub rollback_at: Option<u64>,
}

/// One tenant's request: step a model instance `steps` times on `space`
/// and stream progress back.
#[derive(Clone)]
pub struct JobSpec {
    pub tenant: String,
    pub priority: Priority,
    pub cfg: ModelConfig,
    pub space: kokkos_rs::Space,
    pub steps: u64,
    pub checkpoint: Option<CheckpointPolicy>,
}

impl JobSpec {
    /// A small default job: `steps` steps of a laptop-scale grid on the
    /// given space, normal priority, no checkpointing.
    pub fn small(tenant: &str, space: kokkos_rs::Space, steps: u64) -> Self {
        JobSpec {
            tenant: tenant.to_string(),
            priority: Priority::Normal,
            cfg: ocean_grid::Resolution::Coarse100km
                .config()
                .scaled_down(20, 2),
            space,
            steps,
            checkpoint: None,
        }
    }

    /// Model options used for every served instance: full physics, but
    /// fast-failing retries and no telemetry ring (hundreds of instances
    /// would otherwise hold hundreds of sample rings).
    pub fn model_options(&self) -> ModelOptions {
        ModelOptions {
            retry: RetryPolicy::test_small(),
            telemetry: None,
            ..ModelOptions::default()
        }
    }
}

/// Why `submit` refused a job. All three are backpressure signals the
/// caller is expected to handle (retry later, shed load, or give up) —
/// the server never queues unboundedly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The tenant already has `quota` jobs queued or running.
    QuotaExceeded { tenant: String, quota: usize },
    /// The global admission queue is full.
    Backpressure { capacity: usize },
    /// The server is draining and accepts no new work.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QuotaExceeded { tenant, quota } => {
                write!(f, "tenant {tenant:?} at quota ({quota} jobs in flight)")
            }
            SubmitError::Backpressure { capacity } => {
                write!(f, "admission queue full ({capacity} jobs)")
            }
            SubmitError::ShuttingDown => write!(f, "server is shutting down"),
        }
    }
}

/// Lifecycle of a job as reported by `status` / the event stream.
#[derive(Debug, Clone, PartialEq)]
pub enum JobStatus {
    Queued,
    Running { steps_done: u64 },
    Completed { checksum: u64, steps: u64 },
    Cancelled { steps_done: u64 },
    Failed { reason: String },
}

impl JobStatus {
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobStatus::Completed { .. } | JobStatus::Cancelled { .. } | JobStatus::Failed { .. }
        )
    }
}

/// Streamed progress events, delivered in order on the channel returned
/// by `submit`. `Completed`/`Cancelled`/`Failed` is always the last
/// event; the channel hangs up after it.
#[derive(Debug, Clone, PartialEq)]
pub enum JobEvent {
    /// The instance was built and took its first slice.
    Started {
        instance: String,
    },
    /// A scheduling slice finished; cumulative step count.
    Progress {
        steps_done: u64,
    },
    /// A checkpoint ring slot was written at this step.
    Checkpointed {
        at_step: u64,
    },
    /// The instance rolled back to `to_step` and is replaying.
    RolledBack {
        to_step: u64,
    },
    Completed {
        checksum: u64,
        steps: u64,
    },
    Cancelled {
        steps_done: u64,
    },
    Failed {
        reason: String,
    },
}
