//! # licom-server — multi-tenant ensemble serving over shared execution spaces
//!
//! Kilometer-scale models are run operationally as *ensembles*: many
//! perturbed instances of the same model advancing together, sharing one
//! machine. This crate is the serving engine for that mode — hundreds of
//! concurrent [`licom::Model`] instances, each on its own private
//! single-rank world ([`mpi_sim::World::solo`]), scheduled over the
//! **shared** execution-space thread pools by a fair-share + priority
//! scheduler.
//!
//! | Piece | Where |
//! |---|---|
//! | Instance table: model + checkpoint ring + profiling identity | [`instance`] |
//! | Stride scheduler: per-tenant virtual time, priority weights, quotas | [`scheduler`] |
//! | Job API: `submit` / `status` / `cancel` / streamed [`JobEvent`]s | [`server`] |
//! | Step-latency histogram + Prometheus exposition | [`metrics`] |
//! | `traffic-gen`: seeded bursty Poisson load generator | [`traffic`] |
//!
//! ## Contracts
//!
//! - **No lost or duplicated jobs**: every admitted job reaches exactly
//!   one terminal status (`Completed`/`Cancelled`/`Failed`), observable
//!   via both `status` and the job's event stream.
//! - **Bounded admission**: per-tenant quotas and a global queue cap
//!   turn overload into typed [`SubmitError`]s, never unbounded queues.
//! - **Isolation**: instances never alias state — concurrent serving is
//!   bitwise identical to running the same specs sequentially, on every
//!   execution space (`tests/isolation.rs` asserts this, including an
//!   instance that checkpoints and rolls back mid-run).
//! - **Fair share**: equal-priority tenants receive step counts within
//!   a few percent of each other under saturation; priorities shift the
//!   ratio proportionally without starving anyone.

pub mod instance;
pub mod job;
pub mod metrics;
pub mod scheduler;
pub mod server;
pub mod traffic;

pub use instance::{Instance, StepOutcome};
pub use job::{CheckpointPolicy, JobEvent, JobId, JobSpec, JobStatus, Priority, SubmitError};
pub use metrics::{LatencyHistogram, ServerMetrics};
pub use scheduler::Scheduler;
pub use server::{JobHandle, Server, ServerConfig, ServerMetricsSnapshot};
pub use traffic::{generate, grid_mix, Arrival, Rng, TrafficConfig};
