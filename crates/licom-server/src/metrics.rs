//! Serving metrics: lock-free aggregate counters, a fixed-bucket
//! step-latency histogram with quantile readout, and Prometheus text
//! exposition (aggregate families plus per-instance labeled shards).

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Geometric latency buckets: `BASE_NS * RATIO^i` upper bounds. 56
/// buckets at ratio 1.5 starting from 1 µs span ~1 µs to ~80 min —
/// far beyond any step latency this repo can produce — with ≤50%
/// quantile resolution error, which is plenty for p50/p95/p99 gates.
const BUCKETS: usize = 56;
const BASE_NS: f64 = 1_000.0;
const RATIO: f64 = 1.5;

fn bucket_of(ns: u64) -> usize {
    let mut bound = BASE_NS;
    for i in 0..BUCKETS - 1 {
        if (ns as f64) <= bound {
            return i;
        }
        bound *= RATIO;
    }
    BUCKETS - 1
}

/// Concurrent fixed-bucket histogram. Recording is one atomic add; the
/// quantile readout walks 56 counters. Quantiles are reported as the
/// bucket's upper bound (conservative: never under-reports a p99).
pub struct LatencyHistogram {
    counts: [AtomicU64; BUCKETS],
    total: AtomicU64,
    sum_ns: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    pub fn new() -> Self {
        LatencyHistogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            total: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
        }
    }

    pub fn record(&self, ns: u64) {
        self.counts[bucket_of(ns)].fetch_add(1, Relaxed);
        self.total.fetch_add(1, Relaxed);
        self.sum_ns.fetch_add(ns, Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.total.load(Relaxed)
    }

    pub fn mean_ns(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum_ns.load(Relaxed) as f64 / n as f64
        }
    }

    /// Upper bound of the bucket holding the `q`-quantile sample
    /// (`q` in `[0, 1]`). Returns 0 when empty.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        let mut bound = BASE_NS;
        for i in 0..BUCKETS {
            seen += self.counts[i].load(Relaxed);
            if seen >= target {
                return bound as u64;
            }
            if i < BUCKETS - 1 {
                bound *= RATIO;
            }
        }
        bound as u64
    }
}

/// Aggregate serving counters, all monotone, all updated lock-free from
/// worker and submission paths.
#[derive(Default)]
pub struct ServerMetrics {
    pub jobs_submitted: AtomicU64,
    pub jobs_completed: AtomicU64,
    pub jobs_cancelled: AtomicU64,
    pub jobs_failed: AtomicU64,
    pub rejected_quota: AtomicU64,
    pub rejected_backpressure: AtomicU64,
    pub steps_total: AtomicU64,
    pub slices_total: AtomicU64,
    pub checkpoints_total: AtomicU64,
    pub rollbacks_total: AtomicU64,
    /// Occupancy gauge (not a counter): workers currently stepping a
    /// claimed batch. Raised after a claim, lowered when the batch is
    /// handed back — the difference from `cfg.workers` is idle capacity.
    pub workers_busy: AtomicU64,
    pub step_latency: LatencyHistogram,
}

impl ServerMetrics {
    pub fn new() -> Self {
        Self::default()
    }

    /// Counter table for `render_named_counters` — one stable name per
    /// aggregate counter.
    pub fn counter_table(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("jobs_submitted", self.jobs_submitted.load(Relaxed)),
            ("jobs_completed", self.jobs_completed.load(Relaxed)),
            ("jobs_cancelled", self.jobs_cancelled.load(Relaxed)),
            ("jobs_failed", self.jobs_failed.load(Relaxed)),
            ("rejected_quota", self.rejected_quota.load(Relaxed)),
            (
                "rejected_backpressure",
                self.rejected_backpressure.load(Relaxed),
            ),
            ("steps_total", self.steps_total.load(Relaxed)),
            ("slices_total", self.slices_total.load(Relaxed)),
            ("checkpoints_total", self.checkpoints_total.load(Relaxed)),
            ("rollbacks_total", self.rollbacks_total.load(Relaxed)),
        ]
    }

    /// The three published step-latency percentiles, in nanoseconds:
    /// `(p50, p95, p99)`.
    pub fn latency_percentiles_ns(&self) -> (u64, u64, u64) {
        let h = &self.step_latency;
        (
            h.quantile_ns(0.50),
            h.quantile_ns(0.95),
            h.quantile_ns(0.99),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_monotone_and_bounded() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1_000), 0);
        assert!(bucket_of(1_001) >= 1);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        let mut prev = 0;
        for ns in [1u64, 10, 100, 1_000, 10_000, 1_000_000, 10_000_000_000] {
            let b = bucket_of(ns);
            assert!(b >= prev);
            prev = b;
        }
    }

    #[test]
    fn quantiles_conservative() {
        let h = LatencyHistogram::new();
        for _ in 0..99 {
            h.record(1_000); // bucket 0, bound 1 µs
        }
        h.record(1_000_000_000); // one 1 s outlier
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile_ns(0.50), 1_000);
        // p99 is the 99th sample — still in the fast bucket.
        assert_eq!(h.quantile_ns(0.99), 1_000);
        // p100 lands in the outlier's bucket; upper bound ≥ the sample.
        assert!(h.quantile_ns(1.0) >= 1_000_000_000);
        assert!(h.mean_ns() > 0.0);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile_ns(0.99), 0);
        assert_eq!(h.mean_ns(), 0.0);
    }
}
