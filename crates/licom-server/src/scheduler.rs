//! Fair-share + priority scheduler: stride scheduling over tenants.
//!
//! Each tenant owns a FIFO of runnable jobs and a virtual-time `pass`.
//! Picking always takes the tenant with the smallest pass (ties broken
//! by name, so scheduling is deterministic given a submission order) and
//! charges it `STRIDE / weight` where `weight` comes from the picked
//! job's [`Priority`](crate::job::Priority). Equal-weight tenants
//! therefore interleave 1:1 over slices regardless of how many jobs
//! each has queued — fair share, not fair-per-job — and a weight-4
//! tenant gets 4× the slices of a weight-1 tenant under contention
//! while the weight-1 tenant still runs (proportional share never
//! starves).
//!
//! This is a pure data structure — no threads, no locks — so the policy
//! is unit-testable in isolation; the server wraps it in a mutex.

use std::collections::{BTreeMap, VecDeque};

use crate::job::JobId;

/// Virtual-time quantum. `pass += STRIDE / weight` per pick; with
/// weights ≤ 8 the division stays exact and overflow needs ~2^43 picks.
const STRIDE: u64 = 1 << 20;

#[derive(Default)]
struct TenantState {
    pass: u64,
    /// Slice-queue: jobs ready for their next slice, FIFO within the
    /// tenant. Entries carry the job's stride weight.
    queue: VecDeque<(JobId, u64)>,
    /// Jobs admitted and not yet terminal (queued, claimed, or being
    /// stepped) — the quota denominator.
    pub in_flight: usize,
    /// Total model steps delivered to this tenant (fairness numerator).
    pub steps_done: u64,
}

/// See module docs.
#[derive(Default)]
pub struct Scheduler {
    tenants: BTreeMap<String, TenantState>,
    /// Pass of the most recent pick — the global virtual clock. Tenants
    /// (re)activating start here, so idleness neither banks credit nor
    /// costs a newcomer.
    global_pass: u64,
    queued: usize,
}

impl Scheduler {
    pub fn new() -> Self {
        Self::default()
    }

    /// Jobs currently queued for a slice (excludes claimed ones).
    pub fn queued(&self) -> usize {
        self.queued
    }

    pub fn tenant_in_flight(&self, tenant: &str) -> usize {
        self.tenants.get(tenant).map_or(0, |t| t.in_flight)
    }

    /// Admit a new job: counts against quota and joins the slice queue.
    pub fn admit(&mut self, tenant: &str, id: JobId, weight: u64) {
        let t = self.tenants.entry(tenant.to_string()).or_default();
        t.in_flight += 1;
        if t.queue.is_empty() {
            t.pass = t.pass.max(self.global_pass);
        }
        t.queue.push_back((id, weight));
        self.queued += 1;
    }

    /// Re-queue a job that finished a slice but isn't done.
    pub fn requeue(&mut self, tenant: &str, id: JobId, weight: u64) {
        let t = self
            .tenants
            .get_mut(tenant)
            .expect("requeue of unknown tenant");
        if t.queue.is_empty() {
            t.pass = t.pass.max(self.global_pass);
        }
        t.queue.push_back((id, weight));
        self.queued += 1;
    }

    /// A job reached a terminal state: release its quota slot.
    pub fn retire(&mut self, tenant: &str, steps_delivered: u64) {
        let t = self
            .tenants
            .get_mut(tenant)
            .expect("retire of unknown tenant");
        t.in_flight -= 1;
        t.steps_done += steps_delivered;
    }

    /// Credit steps delivered by a non-final slice (fairness bookkeeping
    /// only; terminal accounting goes through [`Self::retire`]).
    pub fn credit_steps(&mut self, tenant: &str, steps: u64) {
        if let Some(t) = self.tenants.get_mut(tenant) {
            t.steps_done += steps;
        }
    }

    /// Pick the next job to slice: min-pass tenant, FIFO within it.
    pub fn pick(&mut self) -> Option<JobId> {
        let (name, _) = self
            .tenants
            .iter()
            .filter(|(_, t)| !t.queue.is_empty())
            .min_by_key(|(name, t)| (t.pass, name.as_str()))?;
        let name = name.clone();
        let t = self.tenants.get_mut(&name).unwrap();
        let (id, weight) = t.queue.pop_front().unwrap();
        t.pass += STRIDE / weight.max(1);
        self.global_pass = t.pass;
        self.queued -= 1;
        Some(id)
    }

    /// Per-tenant delivered-step totals, sorted by tenant name.
    pub fn tenant_steps(&self) -> Vec<(String, u64)> {
        self.tenants
            .iter()
            .map(|(n, t)| (n.clone(), t.steps_done))
            .collect()
    }

    /// Per-tenant occupancy gauges, sorted by tenant name:
    /// `(tenant, queued, running)` where `queued` is this tenant's
    /// slice-queue depth and `running` its claimed-or-stepping jobs
    /// (admitted minus queued). Retired tenants linger at zero — stable
    /// label sets scrape better than vanishing ones.
    pub fn tenant_gauges(&self) -> Vec<(String, u64, u64)> {
        self.tenants
            .iter()
            .map(|(n, t)| {
                let queued = t.queue.len() as u64;
                let running = (t.in_flight as u64).saturating_sub(queued);
                (n.clone(), queued, running)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_weights_interleave_fairly() {
        let mut s = Scheduler::new();
        // Tenant a floods 8 jobs, tenant b has 4 — fair share means the
        // pick sequence alternates a/b until b runs dry.
        for i in 0..8 {
            s.admit("a", i, 1);
        }
        for i in 8..12 {
            s.admit("b", i, 1);
        }
        let mut picks = Vec::new();
        while let Some(id) = s.pick() {
            picks.push(id);
        }
        // First 8 picks alternate tenants (4 each), then a drains.
        let a_in_first_8 = picks[..8].iter().filter(|id| **id < 8).count();
        assert_eq!(a_in_first_8, 4, "pick order: {picks:?}");
        assert_eq!(picks.len(), 12);
    }

    #[test]
    fn weight_4_tenant_gets_4x_slices() {
        let mut s = Scheduler::new();
        // Long-running jobs: each pick requeues, so the ratio of picks
        // measures steady-state share.
        s.admit("hi", 0, 4);
        s.admit("lo", 1, 1);
        let mut hi = 0;
        let mut lo = 0;
        for _ in 0..500 {
            let id = s.pick().unwrap();
            if id == 0 {
                hi += 1;
                s.requeue("hi", 0, 4);
            } else {
                lo += 1;
                s.requeue("lo", 1, 1);
            }
        }
        let ratio = hi as f64 / lo as f64;
        assert!((3.5..=4.5).contains(&ratio), "hi={hi} lo={lo}");
        assert!(lo > 0, "low priority must not starve");
    }

    #[test]
    fn late_arrival_is_not_penalized() {
        let mut s = Scheduler::new();
        s.admit("a", 0, 1);
        // a runs alone for a while, accumulating pass.
        for _ in 0..100 {
            assert_eq!(s.pick(), Some(0));
            s.requeue("a", 0, 1);
        }
        // b arrives late: it must start at the global clock, not at 0
        // (which would let it monopolize until it caught up).
        s.admit("b", 1, 1);
        let mut first_10 = Vec::new();
        for _ in 0..10 {
            let id = s.pick().unwrap();
            let tenant = if id == 0 { "a" } else { "b" };
            s.requeue(tenant, id, 1);
            first_10.push(id);
        }
        let b_count = first_10.iter().filter(|id| **id == 1).count();
        assert!((4..=6).contains(&b_count), "picks: {first_10:?}");
    }

    #[test]
    fn quota_accounting() {
        let mut s = Scheduler::new();
        s.admit("a", 0, 1);
        s.admit("a", 1, 1);
        assert_eq!(s.tenant_in_flight("a"), 2);
        assert_eq!(s.queued(), 2);
        s.pick();
        assert_eq!(s.queued(), 1);
        assert_eq!(s.tenant_in_flight("a"), 2, "claimed still counts");
        s.retire("a", 5);
        assert_eq!(s.tenant_in_flight("a"), 1);
        assert_eq!(s.tenant_steps(), vec![("a".to_string(), 5)]);
    }
}
