//! The serving engine: an instance table, a worker pool, and the job
//! API (`submit` / `status` / `cancel` / streamed events).
//!
//! ## Execution model
//!
//! Workers are plain OS threads contending on one mutex-protected
//! scheduler. A worker claims up to `batch_size` jobs (stride order),
//! releases the lock, and steps each claimed instance for a slice of
//! `slice_steps` model steps. All instances dispatch their kernels into
//! the **shared** execution-space pools (`Threads`/`DeviceSim`/
//! `SwAthread` all back onto the one rayon pool), so concurrency across
//! instances comes from workers slicing in parallel while each slice's
//! inner parallelism shares the pool — the multi-tenant analogue of the
//! paper's many-instances-per-node ensemble configuration.
//!
//! ## Isolation
//!
//! Every instance owns a private solo world (mailboxes, pools, traffic),
//! its own checkpoint-ring directory, its own `Timers`, and a profiling
//! [`InstanceKey`](kokkos_rs::profiling::InstanceKey) — the only shared
//! mutable state is the scheduler and the (atomic) metrics. The
//! isolation tests assert the strong version of this: N instances
//! interleaved on a shared pool finish bitwise identical to the same
//! specs run sequentially.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::{Condvar, Mutex};

use crate::instance::Instance;
use crate::job::{JobEvent, JobId, JobSpec, JobStatus, SubmitError};
use crate::metrics::ServerMetrics;
use crate::scheduler::Scheduler;

/// Engine knobs. Defaults serve hundreds of tiny instances on a laptop.
#[derive(Clone)]
pub struct ServerConfig {
    /// Worker threads stepping instances (outer concurrency).
    pub workers: usize,
    /// Model steps per scheduling slice. Larger amortizes scheduling;
    /// smaller tightens fairness granularity and cancel latency.
    pub slice_steps: u64,
    /// Jobs a worker claims per scheduler visit (batched stepping).
    pub batch_size: usize,
    /// Global bound on slice-queued jobs; beyond it `submit` returns
    /// [`SubmitError::Backpressure`].
    pub queue_capacity: usize,
    /// Per-tenant bound on in-flight (queued + running) jobs; beyond it
    /// `submit` returns [`SubmitError::QuotaExceeded`].
    pub tenant_quota: usize,
    /// Base directory for per-instance checkpoint rings.
    pub ckpt_base: PathBuf,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            slice_steps: 2,
            batch_size: 4,
            queue_capacity: 4096,
            tenant_quota: 1024,
            ckpt_base: std::env::temp_dir().join(format!("licom-server-{}", std::process::id())),
        }
    }
}

/// Returned by [`Server::submit`]: the job id plus the ordered event
/// stream ([`JobEvent`]); the sender hangs up after the terminal event.
pub struct JobHandle {
    pub id: JobId,
    pub events: Receiver<JobEvent>,
}

struct JobEntry {
    spec: JobSpec,
    /// `Some` when parked between slices; taken by the stepping worker.
    instance: Option<Box<Instance>>,
    steps_done: u64,
    cancel: Arc<AtomicBool>,
    tx: Sender<JobEvent>,
}

struct Inner {
    sched: Scheduler,
    jobs: HashMap<JobId, JobEntry>,
    status: HashMap<JobId, JobStatus>,
    next_id: JobId,
    next_instance: u64,
    draining: bool,
}

struct Shared {
    cfg: ServerConfig,
    metrics: ServerMetrics,
    state: Mutex<Inner>,
    cv: Condvar,
}

/// See module docs.
pub struct Server {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    pub fn start(cfg: ServerConfig) -> Server {
        std::fs::create_dir_all(&cfg.ckpt_base).expect("create checkpoint base dir");
        let shared = Arc::new(Shared {
            cfg: cfg.clone(),
            metrics: ServerMetrics::new(),
            state: Mutex::new(Inner {
                sched: Scheduler::new(),
                jobs: HashMap::new(),
                status: HashMap::new(),
                next_id: 1,
                next_instance: 0,
                draining: false,
            }),
            cv: Condvar::new(),
        });
        let workers = (0..cfg.workers.max(1))
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("licom-serve-{w}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker")
            })
            .collect();
        Server { shared, workers }
    }

    /// Admit a job or refuse with a backpressure signal. Never blocks.
    pub fn submit(&self, spec: JobSpec) -> Result<JobHandle, SubmitError> {
        let shared = &self.shared;
        let mut st = shared.state.lock();
        if st.draining {
            return Err(SubmitError::ShuttingDown);
        }
        if st.sched.tenant_in_flight(&spec.tenant) >= shared.cfg.tenant_quota {
            shared.metrics.rejected_quota.fetch_add(1, Relaxed);
            return Err(SubmitError::QuotaExceeded {
                tenant: spec.tenant.clone(),
                quota: shared.cfg.tenant_quota,
            });
        }
        if st.sched.queued() >= shared.cfg.queue_capacity {
            shared.metrics.rejected_backpressure.fetch_add(1, Relaxed);
            return Err(SubmitError::Backpressure {
                capacity: shared.cfg.queue_capacity,
            });
        }
        let id = st.next_id;
        st.next_id += 1;
        let (tx, rx) = channel();
        let weight = spec.priority.weight();
        st.sched.admit(&spec.tenant, id, weight);
        st.jobs.insert(
            id,
            JobEntry {
                spec,
                instance: None,
                steps_done: 0,
                cancel: Arc::new(AtomicBool::new(false)),
                tx,
            },
        );
        st.status.insert(id, JobStatus::Queued);
        shared.metrics.jobs_submitted.fetch_add(1, Relaxed);
        drop(st);
        shared.cv.notify_one();
        Ok(JobHandle { id, events: rx })
    }

    /// Current status; statuses of finished jobs are retained.
    pub fn status(&self, id: JobId) -> Option<JobStatus> {
        self.shared.state.lock().status.get(&id).cloned()
    }

    /// Request cancellation. Returns `false` if the job is unknown or
    /// already terminal. Cancellation is observed at the next step
    /// boundary; a queued job is cancelled without ever building its
    /// instance.
    pub fn cancel(&self, id: JobId) -> bool {
        let st = self.shared.state.lock();
        match st.jobs.get(&id) {
            Some(e) => {
                e.cancel.store(true, Relaxed);
                true
            }
            None => false,
        }
    }

    pub fn metrics(&self) -> &ServerMetrics {
        &self.shared.metrics
    }

    /// Per-tenant delivered model steps (fair-share measurement).
    pub fn tenant_steps(&self) -> Vec<(String, u64)> {
        self.shared.state.lock().sched.tenant_steps()
    }

    /// Aggregate + per-instance Prometheus exposition. Aggregate
    /// counters come out as `licom_server_counter_total{name=...}`,
    /// step-latency quantiles as `licom_server_step_latency_ns`, and
    /// every live instance contributes
    /// `licom_step_total{instance="m17",tenant="a"}`.
    pub fn render_prometheus(&self) -> String {
        let mut out = kokkos_profiling::render_named_counters(
            "licom_server_counter_total",
            "Aggregate serving counters.",
            &self.shared.metrics.counter_table(),
        );
        let (p50, p95, p99) = self.shared.metrics.latency_percentiles_ns();
        out.push_str(
            "# HELP licom_server_step_latency_ns Step latency quantiles over all instances.\n\
             # TYPE licom_server_step_latency_ns gauge\n",
        );
        for (q, v) in [("0.5", p50), ("0.95", p95), ("0.99", p99)] {
            out.push_str(&format!(
                "licom_server_step_latency_ns{{quantile=\"{q}\"}} {v}\n"
            ));
        }
        let st = self.shared.state.lock();
        let mut rows: Vec<(String, String, u64)> = st
            .jobs
            .values()
            .filter_map(|e| {
                e.instance
                    .as_ref()
                    .map(|i| (i.name.clone(), i.tenant.clone(), i.steps_taken()))
            })
            .collect();
        rows.sort();
        out.push_str(
            "# HELP licom_step_total Model steps taken, per live instance.\n\
             # TYPE licom_step_total counter\n",
        );
        for (name, tenant, steps) in rows {
            out.push_str(&format!(
                "licom_step_total{{instance=\"{name}\",tenant=\"{tenant}\"}} {steps}\n"
            ));
        }
        // Scheduler occupancy gauges: queue depth and running jobs per
        // tenant, plus worker occupancy — the saturation signals that
        // make the fairness counters above interpretable.
        let gauges = st.sched.tenant_gauges();
        let depth: Vec<(&str, u64)> = gauges.iter().map(|(n, q, _)| (n.as_str(), *q)).collect();
        let running: Vec<(&str, u64)> = gauges.iter().map(|(n, _, r)| (n.as_str(), *r)).collect();
        drop(st);
        out.push_str(&kokkos_profiling::render_named_gauges(
            "licom_sched_queue_depth",
            "Jobs queued for a slice, per tenant.",
            "tenant",
            &depth,
        ));
        out.push_str(&kokkos_profiling::render_named_gauges(
            "licom_tenant_running",
            "Jobs claimed or stepping (admitted minus queued), per tenant.",
            "tenant",
            &running,
        ));
        out.push_str(&kokkos_profiling::render_gauge(
            "licom_workers_busy",
            "Workers currently stepping a claimed batch.",
            self.shared.metrics.workers_busy.load(Relaxed),
        ));
        out
    }

    /// Full labeled shard for one parked instance — traffic, named
    /// counters and phase seconds, every sample tagged
    /// `{instance=...,tenant=...}`. `None` while a worker holds the
    /// instance or before it is built.
    pub fn render_instance_shard(&self, id: JobId) -> Option<String> {
        let st = self.shared.state.lock();
        let inst = st.jobs.get(&id)?.instance.as_ref()?;
        Some(kokkos_profiling::render_prometheus_labeled(
            &inst.traffic(),
            &inst.counters(),
            &inst.phase_seconds(),
            &[("instance", &inst.name), ("tenant", &inst.tenant)],
        ))
    }

    /// Stop admitting new jobs; already-admitted work keeps running.
    /// Subsequent `submit` calls return [`SubmitError::ShuttingDown`].
    pub fn drain(&self) {
        {
            let mut st = self.shared.state.lock();
            st.draining = true;
        }
        self.shared.cv.notify_all();
    }

    /// Drain: stop admitting, run every queued job to a terminal state,
    /// then join the workers.
    pub fn join(mut self) -> ServerMetricsSnapshot {
        self.drain();
        for h in self.workers.drain(..) {
            h.join().expect("worker panicked");
        }
        let m = &self.shared.metrics;
        let (p50, p95, p99) = m.latency_percentiles_ns();
        ServerMetricsSnapshot {
            jobs_submitted: m.jobs_submitted.load(Relaxed),
            jobs_completed: m.jobs_completed.load(Relaxed),
            jobs_cancelled: m.jobs_cancelled.load(Relaxed),
            jobs_failed: m.jobs_failed.load(Relaxed),
            rejected_quota: m.rejected_quota.load(Relaxed),
            rejected_backpressure: m.rejected_backpressure.load(Relaxed),
            steps_total: m.steps_total.load(Relaxed),
            mean_step_ns: m.step_latency.mean_ns(),
            p50_step_ns: p50,
            p95_step_ns: p95,
            p99_step_ns: p99,
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // A dropped (not joined) server still drains cleanly.
        {
            let mut st = self.shared.state.lock();
            st.draining = true;
        }
        self.shared.cv.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// Plain-value summary returned by [`Server::join`] for experiment
/// binaries and gates.
#[derive(Debug, Clone)]
pub struct ServerMetricsSnapshot {
    pub jobs_submitted: u64,
    pub jobs_completed: u64,
    pub jobs_cancelled: u64,
    pub jobs_failed: u64,
    pub rejected_quota: u64,
    pub rejected_backpressure: u64,
    pub steps_total: u64,
    pub mean_step_ns: f64,
    pub p50_step_ns: u64,
    pub p95_step_ns: u64,
    pub p99_step_ns: u64,
}

/// What a worker decided about a job after stepping its slice.
enum SliceEnd {
    Requeue,
    Completed { checksum: u64, steps: u64 },
    Cancelled { steps_done: u64 },
    Failed { reason: String },
}

/// Everything a worker pulls out of the job table to step a slice
/// outside the lock: id, spec, the (possibly not-yet-built) instance,
/// steps done so far, the cancel flag, and the event channel.
type ClaimedJob = (
    JobId,
    JobSpec,
    Option<Box<Instance>>,
    u64,
    Arc<AtomicBool>,
    Sender<JobEvent>,
);

fn worker_loop(shared: &Shared) {
    loop {
        // Claim up to batch_size jobs under the lock.
        let mut claimed: Vec<ClaimedJob> = Vec::new();
        {
            let mut st = shared.state.lock();
            loop {
                for _ in 0..shared.cfg.batch_size {
                    let Some(id) = st.sched.pick() else { break };
                    let e = st.jobs.get_mut(&id).expect("picked job exists");
                    claimed.push((
                        id,
                        e.spec.clone(),
                        e.instance.take(),
                        e.steps_done,
                        Arc::clone(&e.cancel),
                        e.tx.clone(),
                    ));
                }
                if !claimed.is_empty() {
                    break;
                }
                if st.draining && st.jobs.is_empty() {
                    return;
                }
                shared.cv.wait(&mut st);
            }
        }

        shared.metrics.workers_busy.fetch_add(1, Relaxed);
        for (id, spec, instance, steps_before, cancel, tx) in claimed {
            let (instance, end) =
                step_slice(shared, id, &spec, instance, steps_before, &cancel, &tx);

            let mut st = shared.state.lock();
            let steps_now = instance.as_ref().map_or(steps_before, |i| i.steps_taken());
            // Fairness ledger: only *forward* progress counts (a rollback
            // slice can deliver negative raw delta).
            let delta = steps_now.saturating_sub(steps_before);
            st.sched.credit_steps(&spec.tenant, delta);
            shared.metrics.slices_total.fetch_add(1, Relaxed);
            match end {
                SliceEnd::Requeue => {
                    let e = st.jobs.get_mut(&id).expect("sliced job exists");
                    e.instance = instance;
                    e.steps_done = steps_now;
                    st.status.insert(
                        id,
                        JobStatus::Running {
                            steps_done: steps_now,
                        },
                    );
                    let _ = tx.send(JobEvent::Progress {
                        steps_done: steps_now,
                    });
                    st.sched.requeue(&spec.tenant, id, spec.priority.weight());
                    drop(st);
                    shared.cv.notify_one();
                }
                terminal => {
                    st.jobs.remove(&id);
                    st.sched.retire(&spec.tenant, 0);
                    let (status, event) = match terminal {
                        SliceEnd::Completed { checksum, steps } => {
                            shared.metrics.jobs_completed.fetch_add(1, Relaxed);
                            (
                                JobStatus::Completed { checksum, steps },
                                JobEvent::Completed { checksum, steps },
                            )
                        }
                        SliceEnd::Cancelled { steps_done } => {
                            shared.metrics.jobs_cancelled.fetch_add(1, Relaxed);
                            (
                                JobStatus::Cancelled { steps_done },
                                JobEvent::Cancelled { steps_done },
                            )
                        }
                        SliceEnd::Failed { reason } => {
                            shared.metrics.jobs_failed.fetch_add(1, Relaxed);
                            (
                                JobStatus::Failed {
                                    reason: reason.clone(),
                                },
                                JobEvent::Failed { reason },
                            )
                        }
                        SliceEnd::Requeue => unreachable!(),
                    };
                    st.status.insert(id, status);
                    let _ = tx.send(event);
                    let draining = st.draining;
                    drop(instance); // checkpoint dir cleanup outside map
                    drop(st);
                    if draining {
                        shared.cv.notify_all();
                    }
                }
            }
        }
        shared.metrics.workers_busy.fetch_sub(1, Relaxed);
    }
}

/// Step one claimed job for a slice; returns the (possibly just-built)
/// instance and the slice verdict. Runs without the scheduler lock.
fn step_slice(
    shared: &Shared,
    id: JobId,
    spec: &JobSpec,
    instance: Option<Box<Instance>>,
    steps_before: u64,
    cancel: &AtomicBool,
    tx: &Sender<JobEvent>,
) -> (Option<Box<Instance>>, SliceEnd) {
    // Cancelled while queued: never build the model.
    if cancel.load(Relaxed) {
        return (
            instance,
            SliceEnd::Cancelled {
                steps_done: steps_before,
            },
        );
    }
    let mut inst = match instance {
        Some(i) => i,
        None => {
            let name = {
                let mut st = shared.state.lock();
                st.next_instance += 1;
                format!("m{}", st.next_instance)
            };
            let built = Box::new(Instance::build(name, spec, &shared.cfg.ckpt_base));
            let _ = tx.send(JobEvent::Started {
                instance: built.name.clone(),
            });
            built
        }
    };
    // The black box records why this instance is running now: which job
    // the scheduler picked and where it stood when the slice began.
    inst.flight_note(
        mpi_sim::flight::FlightEventKind::SchedDecision,
        id,
        inst.steps_taken(),
        0,
    );

    for _ in 0..shared.cfg.slice_steps {
        if inst.steps_taken() >= spec.steps {
            break;
        }
        if cancel.load(Relaxed) {
            let steps_done = inst.steps_taken();
            return (Some(inst), SliceEnd::Cancelled { steps_done });
        }
        let t0 = Instant::now();
        match inst.step_once(cancel) {
            Ok(outcome) => {
                let ns = t0.elapsed().as_nanos() as u64;
                if let Some(step) = outcome.rolled_back_to {
                    shared.metrics.rollbacks_total.fetch_add(1, Relaxed);
                    let _ = tx.send(JobEvent::RolledBack { to_step: step });
                    continue; // a rollback is not a step
                }
                shared.metrics.step_latency.record(ns);
                shared.metrics.steps_total.fetch_add(1, Relaxed);
                if outcome.checkpointed {
                    shared.metrics.checkpoints_total.fetch_add(1, Relaxed);
                    let _ = tx.send(JobEvent::Checkpointed {
                        at_step: inst.steps_taken(),
                    });
                }
            }
            Err(reason) => {
                // Job failure is a dump trigger: the guard/drift edge
                // inside try_step may already have claimed this
                // instance's bundle, in which case this is a no-op.
                inst.flight_note(
                    mpi_sim::flight::FlightEventKind::JobFail,
                    id,
                    inst.steps_taken(),
                    0,
                );
                inst.dump_flight("job-fail");
                return (Some(inst), SliceEnd::Failed { reason });
            }
        }
    }

    if inst.steps_taken() >= spec.steps {
        let end = SliceEnd::Completed {
            checksum: inst.checksum(),
            steps: inst.steps_taken(),
        };
        (Some(inst), end)
    } else {
        (Some(inst), SliceEnd::Requeue)
    }
}
