//! `traffic-gen`: a deterministic bursty load generator for the serving
//! engine.
//!
//! Arrivals are a Poisson process (exponential inter-arrival gaps drawn
//! from a seeded xorshift generator) whose rate switches between a base
//! and a burst level on a fixed cadence — the classic on/off bursty
//! model. Each arrival draws a tenant, a priority, and one of three grid
//! sizes. Everything is a pure function of the seed, so a load test is
//! reproducible run to run.

use crate::job::{CheckpointPolicy, JobSpec, Priority};
use kokkos_rs::Space;
use ocean_grid::Resolution;

/// Deterministic xorshift64* generator — no external RNG dependency.
pub struct Rng(u64);

impl Rng {
    pub fn new(seed: u64) -> Rng {
        Rng(seed.max(1))
    }

    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `(0, 1]` (never 0, so `ln` is safe).
    pub fn uniform(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64 + 1.0) / (1u64 << 53) as f64
    }

    /// Exponential with mean `mean`.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        -mean * self.uniform().ln()
    }

    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[(self.next_u64() % items.len() as u64) as usize]
    }
}

/// Load-shape knobs.
#[derive(Clone)]
pub struct TrafficConfig {
    pub seed: u64,
    /// Total jobs to generate.
    pub jobs: usize,
    /// Mean arrivals per simulated second outside bursts.
    pub base_rate: f64,
    /// Rate multiplier during a burst.
    pub burst_factor: f64,
    /// Burst cadence: every `burst_period` simulated seconds, the first
    /// `burst_fraction` of the period is bursty.
    pub burst_period: f64,
    pub burst_fraction: f64,
    /// Tenant names to draw from (uniformly).
    pub tenants: Vec<String>,
    /// Steps per job, drawn uniformly from this inclusive range.
    pub steps: (u64, u64),
    /// Execution space for generated jobs.
    pub space: Space,
    /// Fraction of jobs (in 1/256ths) that carry a checkpoint ring.
    pub checkpoint_per_256: u8,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            seed: 0x5eed_1ab5,
            jobs: 64,
            base_rate: 200.0,
            burst_factor: 8.0,
            burst_period: 1.0,
            burst_fraction: 0.25,
            tenants: vec!["a".into(), "b".into(), "c".into(), "d".into()],
            steps: (4, 10),
            space: Space::threads(),
            checkpoint_per_256: 32,
        }
    }
}

/// One generated arrival: when (seconds from start, for pacing) and what.
pub struct Arrival {
    pub at_seconds: f64,
    pub spec: JobSpec,
}

/// The three mixed grid sizes: small/medium/large laptop-scale cuts of
/// the Table III coarse configuration.
pub fn grid_mix() -> Vec<ocean_grid::ModelConfig> {
    vec![
        Resolution::Coarse100km.config().scaled_down(24, 2), // 15×9×2
        Resolution::Coarse100km.config().scaled_down(20, 2), // 18×10×2
        Resolution::Coarse100km.config().scaled_down(15, 3), // 24×14×3
    ]
}

/// Generate the full arrival schedule for `cfg`, sorted by time.
pub fn generate(cfg: &TrafficConfig) -> Vec<Arrival> {
    let mut rng = Rng::new(cfg.seed);
    let grids = grid_mix();
    let priorities = [Priority::Low, Priority::Normal, Priority::High];
    let mut t = 0.0f64;
    let mut out = Vec::with_capacity(cfg.jobs);
    for _ in 0..cfg.jobs {
        // Rate depends on where we are in the burst cadence.
        let phase = (t / cfg.burst_period).fract();
        let rate = if phase < cfg.burst_fraction {
            cfg.base_rate * cfg.burst_factor
        } else {
            cfg.base_rate
        };
        t += rng.exponential(1.0 / rate);
        let steps_span = cfg.steps.1 - cfg.steps.0 + 1;
        let steps = cfg.steps.0 + rng.next_u64() % steps_span;
        let checkpoint = if (rng.next_u64() % 256) < u64::from(cfg.checkpoint_per_256) {
            Some(CheckpointPolicy {
                every_steps: 2,
                ring: 2,
                rollback_at: None,
            })
        } else {
            None
        };
        out.push(Arrival {
            at_seconds: t,
            spec: JobSpec {
                tenant: rng.pick(&cfg.tenants).clone(),
                priority: *rng.pick(&priorities),
                cfg: rng.pick(&grids).clone(),
                space: cfg.space.clone(),
                steps,
                checkpoint,
            },
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let cfg = TrafficConfig::default();
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.at_seconds.to_bits(), y.at_seconds.to_bits());
            assert_eq!(x.spec.tenant, y.spec.tenant);
            assert_eq!(x.spec.steps, y.spec.steps);
            assert_eq!(x.spec.cfg.nx, y.spec.cfg.nx);
        }
    }

    #[test]
    fn arrivals_are_ordered_and_mixed() {
        let cfg = TrafficConfig {
            jobs: 200,
            ..TrafficConfig::default()
        };
        let arrivals = generate(&cfg);
        assert!(arrivals
            .windows(2)
            .all(|w| w[0].at_seconds <= w[1].at_seconds));
        let tenants: std::collections::HashSet<_> =
            arrivals.iter().map(|a| a.spec.tenant.clone()).collect();
        assert_eq!(tenants.len(), 4, "all tenants drawn");
        let grids: std::collections::HashSet<_> = arrivals.iter().map(|a| a.spec.cfg.nx).collect();
        assert_eq!(grids.len(), 3, "all grid sizes drawn");
        assert!(arrivals.iter().any(|a| a.spec.checkpoint.is_some()));
        assert!(arrivals
            .iter()
            .all(|a| (cfg.steps.0..=cfg.steps.1).contains(&a.spec.steps)));
    }

    #[test]
    fn bursts_cluster_arrivals() {
        let cfg = TrafficConfig {
            jobs: 2000,
            ..TrafficConfig::default()
        };
        let arrivals = generate(&cfg);
        // The bursty quarter of each period must hold well over a
        // quarter of the arrivals (8× rate ⇒ expect ~73%).
        let in_burst = arrivals
            .iter()
            .filter(|a| (a.at_seconds / cfg.burst_period).fract() < cfg.burst_fraction)
            .count();
        assert!(
            in_burst as f64 > 0.5 * arrivals.len() as f64,
            "{in_burst}/{} arrivals in burst windows",
            arrivals.len()
        );
    }
}
