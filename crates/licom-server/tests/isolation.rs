//! Concurrent-instance isolation: serving N instances interleaved over
//! the shared pools must be **bitwise identical** to running the same
//! specs one after another — on every execution space, including when
//! one instance checkpoints and rolls back mid-run.
//!
//! This is the serving engine's analogue of the model's portability
//! contract (same answer on every backend): same answer under any
//! scheduling interleaving.

use kokkos_rs::Space;
use licom_server::{
    CheckpointPolicy, JobSpec, JobStatus, Priority, Server, ServerConfig, SubmitError,
};
use mpi_sim::World;

fn ckpt_base(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("licom-server-test-{}-{tag}", std::process::id()))
}

/// The specs under test: four instances with distinct grids and step
/// counts; instance 2 checkpoints every 2 steps and rolls back once at
/// step 5, then replays.
fn specs(space: &Space) -> Vec<JobSpec> {
    let base = ocean_grid::Resolution::Coarse100km.config();
    let mut v = Vec::new();
    for (i, (div, nz, steps)) in [(24, 2, 6u64), (20, 2, 8), (20, 3, 9), (15, 2, 7)]
        .iter()
        .enumerate()
    {
        let mut spec = JobSpec {
            tenant: format!("t{}", i % 2),
            priority: Priority::Normal,
            cfg: base.scaled_down(*div, *nz),
            space: space.clone(),
            steps: *steps,
            checkpoint: None,
        };
        if i == 2 {
            spec.checkpoint = Some(CheckpointPolicy {
                every_steps: 2,
                ring: 2,
                rollback_at: Some(5),
            });
        }
        v.push(spec);
    }
    v
}

/// Sequential reference: step each spec's model directly, no server.
fn sequential_checksums(space: &Space) -> Vec<u64> {
    specs(space)
        .iter()
        .map(|spec| {
            let comm = World::solo();
            let mut m = licom::Model::new(
                &comm,
                spec.cfg.clone(),
                spec.space.clone(),
                spec.model_options(),
            );
            // The reference run ignores checkpoint/rollback: a rollback
            // plus replay must land on the undisturbed trajectory.
            for _ in 0..spec.steps {
                m.try_step().expect("reference step");
            }
            assert_eq!(m.steps_taken(), spec.steps);
            m.checksum()
        })
        .collect()
}

fn served_checksums(space: &Space, tag: &str) -> Vec<u64> {
    let server = Server::start(ServerConfig {
        workers: 3,
        slice_steps: 2,
        batch_size: 2,
        ckpt_base: ckpt_base(tag),
        ..ServerConfig::default()
    });
    let handles: Vec<_> = specs(space)
        .into_iter()
        .map(|s| server.submit(s).expect("submit"))
        .collect();
    let ids: Vec<_> = handles.iter().map(|h| h.id).collect();
    let snap = server.join();
    assert_eq!(snap.jobs_failed, 0, "no failures");
    // Reconstruct statuses via the event streams (server is gone).
    handles
        .into_iter()
        .zip(ids)
        .map(|(h, _id)| {
            let mut checksum = None;
            for ev in h.events.iter() {
                if let licom_server::JobEvent::Completed { checksum: c, .. } = ev {
                    checksum = Some(c);
                }
            }
            checksum.expect("job completed")
        })
        .collect()
}

fn assert_isolated(space: Space, tag: &str) {
    let seq = sequential_checksums(&space);
    let srv = served_checksums(&space, tag);
    assert_eq!(
        seq, srv,
        "concurrent serving diverged from sequential on {space:?}"
    );
}

#[test]
fn serial_space_isolated() {
    assert_isolated(Space::serial(), "serial");
}

#[test]
fn threads_space_isolated() {
    assert_isolated(Space::threads(), "threads");
}

#[test]
fn device_sim_space_isolated() {
    assert_isolated(Space::device_sim(), "devsim");
}

#[test]
fn sw_athread_space_isolated() {
    assert_isolated(Space::sw_athread(), "sw");
}

/// The rollback instance really does roll back (the event stream shows
/// it) and still matches the undisturbed reference — recovery is
/// invisible in the final state.
#[test]
fn rollback_mid_run_is_bitwise_invisible() {
    let space = Space::threads();
    let spec = specs(&space).remove(2);
    assert!(spec.checkpoint.as_ref().unwrap().rollback_at.is_some());

    let reference = sequential_checksums(&space)[2];
    let server = Server::start(ServerConfig {
        workers: 2,
        ckpt_base: ckpt_base("rollback"),
        ..ServerConfig::default()
    });
    let handle = server.submit(spec).unwrap();
    let id = handle.id;
    let events: Vec<_> = handle.events.iter().collect();
    let status = server.status(id).expect("status retained");
    drop(server);

    assert!(
        events
            .iter()
            .any(|e| matches!(e, licom_server::JobEvent::RolledBack { .. })),
        "rollback event missing: {events:?}"
    );
    assert!(
        events
            .iter()
            .any(|e| matches!(e, licom_server::JobEvent::Checkpointed { .. })),
        "checkpoint event missing"
    );
    match status {
        JobStatus::Completed { checksum, steps } => {
            assert_eq!(steps, 9);
            assert_eq!(checksum, reference, "rollback+replay diverged");
        }
        other => panic!("unexpected status {other:?}"),
    }
}

/// Submitting while draining is refused, not silently dropped; work
/// admitted before the drain still completes.
#[test]
fn draining_refuses_new_work() {
    let space = Space::serial();
    let server = Server::start(ServerConfig {
        workers: 1,
        ckpt_base: ckpt_base("drain"),
        ..ServerConfig::default()
    });
    let h = server
        .submit(JobSpec::small("t", space.clone(), 2))
        .unwrap();
    server.drain();
    assert_eq!(
        server.submit(JobSpec::small("t", space, 1)).err(),
        Some(SubmitError::ShuttingDown)
    );
    let snap = server.join();
    assert_eq!(snap.jobs_completed, 1);
    assert!(matches!(
        h.events.iter().last(),
        Some(licom_server::JobEvent::Completed { .. })
    ));
}
