//! Serving semantics: admission control, fair share, cancellation,
//! event-stream ordering, and the no-lost-no-duplicated-jobs contract.

use std::time::{Duration, Instant};

use kokkos_rs::Space;
use licom_server::{
    generate, JobEvent, JobSpec, JobStatus, Priority, Server, ServerConfig, SubmitError,
    TrafficConfig,
};

fn ckpt_base(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("licom-serving-test-{}-{tag}", std::process::id()))
}

fn tiny(tenant: &str, priority: Priority, steps: u64) -> JobSpec {
    JobSpec {
        priority,
        ..JobSpec::small(tenant, Space::serial(), steps)
    }
}

/// Poll per-tenant delivered steps until `total` steps have landed or
/// the deadline passes; returns the snapshot.
fn steps_at(server: &Server, total: u64, deadline: Duration) -> Vec<(String, u64)> {
    let t0 = Instant::now();
    loop {
        let snap = server.tenant_steps();
        if snap.iter().map(|(_, s)| s).sum::<u64>() >= total {
            return snap;
        }
        assert!(
            t0.elapsed() < deadline,
            "timed out waiting for {total} steps"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// Equal-priority tenants with equal backlogs receive step counts
/// within 10% of each other at any saturated point — fair share, not
/// first-come-first-served.
#[test]
fn equal_tenants_within_10_percent() {
    let server = Server::start(ServerConfig {
        workers: 2,
        slice_steps: 1,
        batch_size: 1,
        ckpt_base: ckpt_base("fair"),
        ..ServerConfig::default()
    });
    let mut handles = Vec::new();
    for i in 0..20 {
        // Interleave submissions so neither tenant owns the queue head.
        handles.push(server.submit(tiny("a", Priority::Normal, 8)).unwrap());
        handles.push(server.submit(tiny("b", Priority::Normal, 8)).unwrap());
        let _ = i;
    }
    // Sample mid-run: both tenants still have backlog at 160/320 steps.
    let snap = steps_at(&server, 160, Duration::from_secs(60));
    let a = snap.iter().find(|(n, _)| n == "a").unwrap().1 as f64;
    let b = snap.iter().find(|(n, _)| n == "b").unwrap().1 as f64;
    let err = (a - b).abs() / a.max(b);
    assert!(err <= 0.10, "fair-share error {err:.3} (a={a} b={b})");
    let snap = server.join();
    assert_eq!(snap.jobs_completed, 40);
}

/// A high-priority tenant gets a proportionally larger share, and the
/// low-priority tenant is never starved.
#[test]
fn priority_shifts_share_without_starvation() {
    let server = Server::start(ServerConfig {
        workers: 2,
        slice_steps: 1,
        batch_size: 1,
        ckpt_base: ckpt_base("prio"),
        ..ServerConfig::default()
    });
    for _ in 0..20 {
        server.submit(tiny("hi", Priority::High, 8)).unwrap();
        server.submit(tiny("lo", Priority::Low, 8)).unwrap();
    }
    let snap = steps_at(&server, 150, Duration::from_secs(60));
    let hi = snap.iter().find(|(n, _)| n == "hi").unwrap().1;
    let lo = snap.iter().find(|(n, _)| n == "lo").unwrap().1;
    assert!(
        hi > 2 * lo,
        "weight-4 tenant should dominate a weight-1 tenant: hi={hi} lo={lo}"
    );
    assert!(lo > 0, "proportional share never starves: lo={lo}");
    server.join();
}

#[test]
fn tenant_quota_enforced() {
    let server = Server::start(ServerConfig {
        workers: 1,
        tenant_quota: 4,
        ckpt_base: ckpt_base("quota"),
        ..ServerConfig::default()
    });
    // Head job is long, so the other three stay in flight.
    let mut handles = vec![server.submit(tiny("t", Priority::Normal, 200)).unwrap()];
    for _ in 0..3 {
        handles.push(server.submit(tiny("t", Priority::Normal, 4)).unwrap());
    }
    match server.submit(tiny("t", Priority::Normal, 4)) {
        Err(SubmitError::QuotaExceeded { tenant, quota }) => {
            assert_eq!(tenant, "t");
            assert_eq!(quota, 4);
        }
        other => panic!("expected quota rejection, got {:?}", other.map(|h| h.id)),
    }
    // A different tenant is unaffected by t's quota.
    handles.push(server.submit(tiny("u", Priority::Normal, 4)).unwrap());
    let snap = server.join();
    assert_eq!(snap.rejected_quota, 1);
    assert_eq!(snap.jobs_completed, 5);
}

#[test]
fn global_backpressure_enforced() {
    let server = Server::start(ServerConfig {
        workers: 1,
        queue_capacity: 2,
        ckpt_base: ckpt_base("bp"),
        ..ServerConfig::default()
    });
    // Distinct tenants so the per-tenant quota never triggers; the head
    // job occupies the worker while the queue fills.
    server.submit(tiny("t0", Priority::Normal, 300)).unwrap();
    std::thread::sleep(Duration::from_millis(5)); // let the worker claim it
    server.submit(tiny("t1", Priority::Normal, 4)).unwrap();
    server.submit(tiny("t2", Priority::Normal, 4)).unwrap();
    match server.submit(tiny("t3", Priority::Normal, 4)) {
        Err(SubmitError::Backpressure { capacity }) => assert_eq!(capacity, 2),
        other => panic!("expected backpressure, got {:?}", other.map(|h| h.id)),
    }
    let snap = server.join();
    assert_eq!(snap.rejected_backpressure, 1);
    assert_eq!(snap.jobs_completed, 3);
}

/// Cancelling a queued job never builds its model; cancelling a running
/// one stops at a step boundary. Both deliver a terminal `Cancelled`.
#[test]
fn cancel_queued_and_running() {
    let server = Server::start(ServerConfig {
        workers: 1,
        ckpt_base: ckpt_base("cancel"),
        ..ServerConfig::default()
    });
    let long = server.submit(tiny("t", Priority::Normal, 400)).unwrap();
    let queued = server.submit(tiny("t", Priority::Normal, 50)).unwrap();
    assert!(server.cancel(queued.id), "queued job known");

    // Running cancel: wait until the long job reports progress.
    let mut started = false;
    for ev in long.events.iter() {
        match ev {
            JobEvent::Progress { steps_done } if steps_done > 0 => {
                started = true;
                break;
            }
            _ => {}
        }
    }
    assert!(started);
    assert!(server.cancel(long.id));
    // Once both are terminal, a stale cancel is refused.
    let long_events: Vec<_> = long.events.iter().collect();
    assert!(matches!(
        long_events.last(),
        Some(JobEvent::Cancelled { .. })
    ));
    assert!(
        !server.cancel(long.id),
        "terminal job no longer cancellable"
    );

    let snap = server.join();
    assert_eq!(snap.jobs_cancelled, 2);
    assert_eq!(snap.jobs_completed, 0);

    // Queued cancel: no Started event — the instance was never built.
    let queued_events: Vec<_> = queued.events.iter().collect();
    assert!(
        !queued_events
            .iter()
            .any(|e| matches!(e, JobEvent::Started { .. })),
        "cancelled-while-queued job must not build a model: {queued_events:?}"
    );
    assert!(matches!(
        queued_events.last(),
        Some(JobEvent::Cancelled { steps_done: 0 })
    ));
}

/// Event streams are ordered: Started, monotone Progress, exactly one
/// terminal event, then hang-up. Statuses agree.
#[test]
fn event_stream_ordering_and_terminal_status() {
    let server = Server::start(ServerConfig {
        workers: 2,
        ckpt_base: ckpt_base("events"),
        ..ServerConfig::default()
    });
    let h = server.submit(tiny("t", Priority::Normal, 10)).unwrap();
    let events: Vec<_> = h.events.iter().collect(); // ends on hang-up
    assert!(matches!(events.first(), Some(JobEvent::Started { .. })));
    let mut last_progress = 0;
    let mut terminals = 0;
    for e in &events {
        match e {
            JobEvent::Progress { steps_done } => {
                assert!(*steps_done >= last_progress, "progress regressed");
                last_progress = *steps_done;
            }
            JobEvent::Completed { steps, .. } => {
                terminals += 1;
                assert_eq!(*steps, 10);
            }
            JobEvent::Cancelled { .. } | JobEvent::Failed { .. } => terminals += 1,
            _ => {}
        }
    }
    assert_eq!(terminals, 1, "exactly one terminal event: {events:?}");
    assert!(matches!(events.last(), Some(JobEvent::Completed { .. })));
    assert!(matches!(
        server.status(h.id),
        Some(JobStatus::Completed { steps: 10, .. })
    ));
    server.join();
}

/// 64 mixed-size, mixed-priority instances from `traffic-gen` on the
/// shared Threads pool: every job reaches exactly one terminal state —
/// nothing lost, nothing duplicated — and the scrape carries
/// per-instance labels.
#[test]
fn traffic_gen_smoke_64_instances_threads() {
    let server = Server::start(ServerConfig {
        workers: 4,
        ckpt_base: ckpt_base("smoke64"),
        ..ServerConfig::default()
    });
    let cfg = TrafficConfig {
        jobs: 64,
        steps: (2, 5),
        ..TrafficConfig::default()
    };
    let handles: Vec<_> = generate(&cfg)
        .into_iter()
        .map(|a| server.submit(a.spec).expect("admission within bounds"))
        .collect();
    assert_eq!(handles.len(), 64);

    // Scrape mid-run until at least one live instance shows up labeled.
    let t0 = Instant::now();
    loop {
        let scrape = server.render_prometheus();
        // Occupancy gauges are in every scrape, live instance or not.
        assert!(scrape.contains("# TYPE licom_sched_queue_depth gauge"));
        assert!(scrape.contains("# TYPE licom_tenant_running gauge"));
        assert!(scrape.contains("licom_workers_busy "));
        if scrape.contains("licom_step_total{instance=\"m") {
            assert!(scrape.contains("tenant=\""));
            assert!(scrape.contains("licom_sched_queue_depth{tenant=\""));
            break;
        }
        if t0.elapsed() > Duration::from_secs(60) {
            break; // all jobs may already be done on a fast machine
        }
        std::thread::sleep(Duration::from_millis(1));
    }

    let mut terminal_events = 0;
    for h in &handles {
        let events: Vec<_> = h.events.iter().collect();
        terminal_events += events
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    JobEvent::Completed { .. }
                        | JobEvent::Cancelled { .. }
                        | JobEvent::Failed { .. }
                )
            })
            .count();
    }
    assert_eq!(terminal_events, 64, "exactly one terminal event per job");
    let snap = server.join();
    assert_eq!(snap.jobs_submitted, 64);
    assert_eq!(
        snap.jobs_completed + snap.jobs_cancelled + snap.jobs_failed,
        64
    );
    assert_eq!(snap.jobs_failed, 0);
    assert!(snap.steps_total > 0);
    assert!(snap.p99_step_ns >= snap.p50_step_ns);
}
