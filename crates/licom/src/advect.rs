//! Two-step shape-preserving tracer advection (Yu 1994) —
//! `advection_tracer`, the paper's hottest kernel (§V-C2).
//!
//! The scheme is dimension-split (x → y → z). Each 1-D pass computes
//! flux-form face transports in two conceptual steps:
//!
//! 1. a **monotone upstream** face value (the "shape-preserving"
//!    predictor), then
//! 2. a **limited anti-diffusive correction** — a van-Leer-limited
//!    second-order increment scaled by `(1 − CFL)` — which restores
//!    second-order accuracy wherever the profile is smooth without
//!    creating new extrema (the TVD property tested by the proptests).
//!
//! With `limited = false` only step 1 runs (the diffusive reference the
//! two-step scheme improves on). Fluxes are length-weighted, so each pass
//! conserves the tracer integral exactly in closed basins; the vertical
//! velocity is diagnosed from continuity so the z-pass telescopes to the
//! (zero-flux) surface and bottom boundaries.
//!
//! The kernel reads 3 fields over a ±2 stencil with heavy branching —
//! precisely the "very low computation-to-memory access ratio and
//! severely scattered memory access" profile the paper optimizes with
//! architecture-specific code; the `cost()` hooks carry that profile into
//! the Sunway cycle model.

use kokkos_rs::{
    parallel_for_2d, parallel_for_3d, parallel_for_list, Functor2D, Functor3D, FunctorList,
    IterCost, ListPolicy, MDRangePolicy2, MDRangePolicy3, Space, View1, View2, View3,
};

use halo_exchange::{FoldKind, Halo3D, HaloError, StepGraph, HALO as H};

use crate::localgrid::LocalGrid;

/// How [`advect_tracer`] refreshes the intermediate field's halos between
/// the x and y passes.
pub enum TmpExchange<'a> {
    /// Blocking refresh — the dense reference schedule.
    Blocking(&'a dyn Fn(&View3<f64>) -> Result<(), HaloError>),
    /// Split-phase refresh: post the exchange after the x pass, compute
    /// the interior rows of the y-pass flux while messages are in flight
    /// (driven by a [`StepGraph`]), then finish and sweep the boundary
    /// rim rows. Bitwise identical to [`TmpExchange::Blocking`]: the rim
    /// and interior partitions are disjoint and each flux cell's inputs
    /// are the same in either schedule.
    Overlap { halo: &'a Halo3D, tag_base: u64 },
}

/// Van Leer limiter φ(r); φ(r)·dq is evaluated safely for tiny dq.
#[inline]
fn van_leer(r: f64) -> f64 {
    (r + r.abs()) / (1.0 + r.abs())
}

/// Limited face value for donor-cell `qc` with downwind `qd`, upwind
/// `qu` (behind the donor), local CFL `c`.
#[inline]
fn face_value(qu: f64, qc: f64, qd: f64, c: f64, limited: bool) -> f64 {
    if !limited {
        return qc;
    }
    let dq = qd - qc;
    if dq.abs() < 1e-30 {
        return qc;
    }
    let r = (qc - qu) / dq;
    qc + 0.5 * van_leer(r) * (1.0 - c) * dq
}

/// Zonal face transports `F = uf · q_face · dy` at the **east** face of
/// each cell. Iterates `i ∈ 0..nx+1` mapped to `il = i + H - 1` so the
/// west face of the first owned cell is included.
pub struct FunctorFluxX {
    pub q: View3<f64>,
    pub u: View3<f64>,
    pub flux: View3<f64>,
    pub kmt: View2<i32>,
    pub dxt: View1<f64>,
    pub dyt: f64,
    pub dt: f64,
    pub limited: bool,
}

impl Functor3D for FunctorFluxX {
    fn operator(&self, k: usize, j: usize, i: usize) {
        let jl = j + H;
        let il = i + H - 1;
        let ki = k as i32;
        if self.kmt.at(jl, il) <= ki || self.kmt.at(jl, il + 1) <= ki {
            self.flux.set_at(k, jl, il, 0.0);
            return;
        }
        // Face velocity from the two adjacent B-grid corners.
        let uf = 0.5 * (self.u.at(k, jl, il) + self.u.at(k, jl - 1, il));
        let c = (uf.abs() * self.dt / self.dxt.at(jl)).min(1.0);
        let qf = if uf >= 0.0 {
            face_value(
                self.q.at(k, jl, il - 1),
                self.q.at(k, jl, il),
                self.q.at(k, jl, il + 1),
                c,
                self.limited,
            )
        } else {
            face_value(
                self.q.at(k, jl, il + 2),
                self.q.at(k, jl, il + 1),
                self.q.at(k, jl, il),
                c,
                self.limited,
            )
        };
        self.flux.set_at(k, jl, il, uf * qf * self.dyt);
    }

    fn cost(&self) -> IterCost {
        IterCost {
            flops: 25,
            bytes: 88,
        }
    }
}

kokkos_rs::register_for_3d!(kernel_flux_x, FunctorFluxX);

/// Apply the zonal flux divergence: `q1 = q − dt (Fe − Fw) / area`.
pub struct FunctorApplyX {
    pub q: View3<f64>,
    pub q1: View3<f64>,
    pub flux: View3<f64>,
    pub kmt: View2<i32>,
    pub dxt: View1<f64>,
    pub dyt: f64,
    pub dt: f64,
}

impl Functor3D for FunctorApplyX {
    fn operator(&self, k: usize, j: usize, i: usize) {
        let (jl, il) = (j + H, i + H);
        let q = self.q.at(k, jl, il);
        if self.kmt.at(jl, il) <= k as i32 {
            self.q1.set_at(k, jl, il, q);
            return;
        }
        let area = self.dxt.at(jl) * self.dyt;
        let div = self.flux.at(k, jl, il) - self.flux.at(k, jl, il - 1);
        self.q1.set_at(k, jl, il, q - self.dt * div / area);
    }

    fn cost(&self) -> IterCost {
        IterCost {
            flops: 6,
            bytes: 48,
        }
    }
}

kokkos_rs::register_for_3d!(kernel_apply_x, FunctorApplyX);

/// Meridional face transports `F = vf · q_face · dx_face` at the
/// **north** face; `j ∈ 0..ny+1` maps to `jl = j + H - 1`.
pub struct FunctorFluxY {
    pub q: View3<f64>,
    pub v: View3<f64>,
    pub flux: View3<f64>,
    pub kmt: View2<i32>,
    pub dxt: View1<f64>,
    pub dyt: f64,
    pub dt: f64,
    pub limited: bool,
}

impl Functor3D for FunctorFluxY {
    fn operator(&self, k: usize, j: usize, i: usize) {
        let jl = j + H - 1;
        let il = i + H;
        let ki = k as i32;
        if self.kmt.at(jl, il) <= ki || self.kmt.at(jl + 1, il) <= ki {
            self.flux.set_at(k, jl, il, 0.0);
            return;
        }
        let vf = 0.5 * (self.v.at(k, jl, il) + self.v.at(k, jl, il - 1));
        let c = (vf.abs() * self.dt / self.dyt).min(1.0);
        let qf = if vf >= 0.0 {
            face_value(
                self.q.at(k, jl - 1, il),
                self.q.at(k, jl, il),
                self.q.at(k, jl + 1, il),
                c,
                self.limited,
            )
        } else {
            face_value(
                self.q.at(k, jl + 2, il),
                self.q.at(k, jl + 1, il),
                self.q.at(k, jl, il),
                c,
                self.limited,
            )
        };
        let dx_face = 0.5 * (self.dxt.at(jl) + self.dxt.at(jl + 1));
        self.flux.set_at(k, jl, il, vf * qf * dx_face);
    }

    fn cost(&self) -> IterCost {
        IterCost {
            flops: 27,
            bytes: 88,
        }
    }
}

kokkos_rs::register_for_3d!(kernel_flux_y, FunctorFluxY);

/// Apply the meridional flux divergence.
pub struct FunctorApplyY {
    pub q: View3<f64>,
    pub q1: View3<f64>,
    pub flux: View3<f64>,
    pub kmt: View2<i32>,
    pub dxt: View1<f64>,
    pub dyt: f64,
    pub dt: f64,
}

impl Functor3D for FunctorApplyY {
    fn operator(&self, k: usize, j: usize, i: usize) {
        let (jl, il) = (j + H, i + H);
        let q = self.q.at(k, jl, il);
        if self.kmt.at(jl, il) <= k as i32 {
            self.q1.set_at(k, jl, il, q);
            return;
        }
        let area = self.dxt.at(jl) * self.dyt;
        let div = self.flux.at(k, jl, il) - self.flux.at(k, jl - 1, il);
        self.q1.set_at(k, jl, il, q - self.dt * div / area);
    }

    fn cost(&self) -> IterCost {
        IterCost {
            flops: 6,
            bytes: 48,
        }
    }
}

kokkos_rs::register_for_3d!(kernel_apply_y, FunctorApplyY);

/// Diagnose the interface vertical velocity from continuity, bottom-up:
/// `w(k) = w(k+1) − dz_k · div_h(k)`, `w(nz) = 0`. Column-wise.
pub struct FunctorDiagnoseW {
    pub u: View3<f64>,
    pub v: View3<f64>,
    pub w: View3<f64>,
    pub kmt: View2<i32>,
    pub dxt: View1<f64>,
    pub dyt: f64,
    pub dz: View1<f64>,
    pub nz: usize,
}

impl FunctorDiagnoseW {
    #[inline]
    fn face_u(&self, k: usize, jl: usize, il: usize) -> f64 {
        // East face of (jl, il); zero if either side dry.
        let ki = k as i32;
        if self.kmt.at(jl, il) <= ki || self.kmt.at(jl, il + 1) <= ki {
            0.0
        } else {
            0.5 * (self.u.at(k, jl, il) + self.u.at(k, jl - 1, il))
        }
    }

    #[inline]
    fn face_v(&self, k: usize, jl: usize, il: usize) -> f64 {
        // North face of (jl, il).
        let ki = k as i32;
        if self.kmt.at(jl, il) <= ki || self.kmt.at(jl + 1, il) <= ki {
            0.0
        } else {
            0.5 * (self.v.at(k, jl, il) + self.v.at(k, jl, il - 1))
        }
    }
}

impl FunctorDiagnoseW {
    /// Diagnose one column at **padded** indices (shared by the dense and
    /// active-set launches). Land columns only re-zero `w`, which nothing
    /// else writes — so the active-set launch can skip them bitwise-safely.
    fn column(&self, jl: usize, il: usize) {
        let kmt = self.kmt.at(jl, il) as usize;
        for k in kmt..=self.nz {
            self.w.set_at(k, jl, il, 0.0);
        }
        if kmt == 0 {
            return;
        }
        let area = self.dxt.at(jl) * self.dyt;
        let mut w = 0.0; // bottom interface of deepest wet layer
        self.w.set_at(kmt, jl, il, 0.0);
        for k in (0..kmt).rev() {
            let fe = self.face_u(k, jl, il) * self.dyt;
            let fw = self.face_u(k, jl, il - 1) * self.dyt;
            let dxn = 0.5 * (self.dxt.at(jl) + self.dxt.at(jl + 1));
            let dxs = 0.5 * (self.dxt.at(jl) + self.dxt.at(jl - 1));
            let fn_ = self.face_v(k, jl, il) * dxn;
            let fs = self.face_v(k, jl - 1, il) * dxs;
            let div = (fe - fw + fn_ - fs) / area;
            w -= self.dz.at(k) * div;
            self.w.set_at(k, jl, il, w);
        }
    }
}

impl Functor2D for FunctorDiagnoseW {
    fn operator(&self, j: usize, i: usize) {
        self.column(j + H, i + H);
    }

    fn cost(&self) -> IterCost {
        IterCost {
            flops: 20 * self.nz as u64,
            bytes: 120 * self.nz as u64,
        }
    }
}

kokkos_rs::register_for_2d!(kernel_diagnose_w, FunctorDiagnoseW);

/// Active-set continuity diagnosis: entry `idx` is a packed wet T column.
pub struct FunctorDiagnoseWList {
    pub f: FunctorDiagnoseW,
    pub pi: usize,
}

impl FunctorList for FunctorDiagnoseWList {
    fn operator(&self, _n: usize, idx: u32) {
        let packed = idx as usize;
        self.f.column(packed / self.pi, packed % self.pi);
    }

    fn cost(&self) -> IterCost {
        self.f.cost()
    }
}

kokkos_rs::register_for_list!(kernel_diagnose_w_list, FunctorDiagnoseWList);

/// Vertical pass: limited upstream fluxes through interfaces and the
/// divergence update, column-wise (the column loop *is* the stencil, so
/// one functor does both steps).
pub struct FunctorAdvectZ {
    pub q: View3<f64>,
    pub q1: View3<f64>,
    pub w: View3<f64>,
    pub kmt: View2<i32>,
    pub dz: View1<f64>,
    pub dt: f64,
    pub nz: usize,
    pub limited: bool,
}

impl FunctorAdvectZ {
    /// One column at **padded** indices. As used by [`advect_tracer`] the
    /// pass is in place (`q` and `q1` alias), so the land/below-`kmt`
    /// copy-through is the identity — the active-set launch skips it.
    fn column(&self, jl: usize, il: usize) {
        let kmt = self.kmt.at(jl, il) as usize;
        for k in kmt..self.nz {
            self.q1.set_at(k, jl, il, self.q.at(k, jl, il));
        }
        if kmt == 0 {
            return;
        }
        // Interface fluxes f[k], k = 0..=kmt; f[kmt] (bottom) is zero.
        // w > 0 is upward: donor is the layer below the interface
        // (layer k). The surface interface carries the free-surface
        // dilution flux w(0)·q(0): without it, persistent surface
        // convergence (rising η) pumps tracer into a fixed-thickness top
        // layer with nothing to balance it, and coastal cells warm
        // secularly. With it, the fixed control volume exchanges tracer
        // with the moving surface at the surface value — bounded and
        // zero-mean under oscillating η.
        let mut f = [0.0f64; 257];
        assert!(kmt < 257, "column deeper than supported 256 levels");
        f[0] = self.w.at(0, jl, il) * self.q.at(0, jl, il);
        for (k, fk) in f.iter_mut().enumerate().take(kmt).skip(1) {
            let w = self.w.at(k, jl, il);
            let c = (w.abs() * self.dt / self.dz.at(k)).min(1.0);
            let qf = if w >= 0.0 {
                // Donor layer k (below interface k); upwind is k+1.
                let qu = if k + 1 < kmt {
                    self.q.at(k + 1, jl, il)
                } else {
                    self.q.at(k, jl, il)
                };
                face_value(
                    qu,
                    self.q.at(k, jl, il),
                    self.q.at(k - 1, jl, il),
                    c,
                    self.limited,
                )
            } else {
                // Donor layer k-1 (above); upwind is k-2.
                let qu = if k >= 2 {
                    self.q.at(k - 2, jl, il)
                } else {
                    self.q.at(k - 1, jl, il)
                };
                face_value(
                    qu,
                    self.q.at(k - 1, jl, il),
                    self.q.at(k, jl, il),
                    c,
                    self.limited,
                )
            };
            *fk = w * qf;
        }
        for k in 0..kmt {
            // d(q)/dt = -(f[k] - f[k+1]) / dz  (f positive upward).
            let q = self.q.at(k, jl, il);
            let dq = -self.dt * (f[k] - f[k + 1]) / self.dz.at(k);
            self.q1.set_at(k, jl, il, q + dq);
        }
    }
}

impl Functor2D for FunctorAdvectZ {
    fn operator(&self, j: usize, i: usize) {
        self.column(j + H, i + H);
    }

    fn cost(&self) -> IterCost {
        IterCost {
            flops: 30 * self.nz as u64,
            bytes: 80 * self.nz as u64,
        }
    }
}

kokkos_rs::register_for_2d!(kernel_advect_z, FunctorAdvectZ);

/// Active-set vertical pass: entry `idx` is a packed wet T column. Only
/// valid when the pass is in place (`q` aliases `q1`), as in
/// [`advect_tracer`] — see [`FunctorAdvectZ::column`].
pub struct FunctorAdvectZList {
    pub f: FunctorAdvectZ,
    pub pi: usize,
}

impl FunctorList for FunctorAdvectZList {
    fn operator(&self, _n: usize, idx: u32) {
        let packed = idx as usize;
        self.f.column(packed / self.pi, packed % self.pi);
    }

    fn cost(&self) -> IterCost {
        self.f.cost()
    }
}

kokkos_rs::register_for_list!(kernel_advect_z_list, FunctorAdvectZList);

/// Register this module's functors.
pub fn register() {
    kernel_flux_x();
    kernel_apply_x();
    kernel_flux_y();
    kernel_apply_y();
    kernel_diagnose_w();
    kernel_diagnose_w_list();
    kernel_advect_z();
    kernel_advect_z_list();
}

/// Full dimension-split advection of tracer `q` over `dt`, writing
/// `q_out`. `w` must already be diagnosed ([`FunctorDiagnoseW`]).
/// Requires valid halos on `q`, `u`, `v`. Uses `tmp` as the intermediate
/// field and `flux` as face-transport scratch. `exchange` refreshes the
/// intermediate field's halos between the x and y passes (the y-stencil
/// reads `tmp` at `j±2`, which the x-pass does not compute in the halo
/// rows); with [`TmpExchange::Overlap`] that refresh overlaps the
/// interior y-pass flux rows, which read no `tmp` ghost row.
///
/// `wet_cols` (packed owned wet T columns) routes the column-local z pass
/// through the active-set launch; the x/y passes stay dense because their
/// apply steps copy `q → q1` on land — a real write into the scratch
/// field that skipping would lose.
#[allow(clippy::too_many_arguments)]
pub fn advect_tracer(
    space: &Space,
    g: &LocalGrid,
    q: &View3<f64>,
    q_out: &View3<f64>,
    tmp: &View3<f64>,
    flux: &View3<f64>,
    u: &View3<f64>,
    v: &View3<f64>,
    w: &View3<f64>,
    dt: f64,
    limited: bool,
    wet_cols: Option<&ListPolicy>,
    exchange: TmpExchange<'_>,
) -> Result<(), HaloError> {
    let (nx, ny, nz) = (g.nx, g.ny, g.nz);
    // X pass: q -> tmp.
    {
        let _r = kokkos_rs::profiling::region("adv:xpass");
        let fx = FunctorFluxX {
            q: q.clone(),
            u: u.clone(),
            flux: flux.clone(),
            kmt: g.kmt.clone(),
            dxt: g.dxt.clone(),
            dyt: g.dyt,
            dt,
            limited,
        };
        parallel_for_3d(space, MDRangePolicy3::new([nz, ny, nx + 1]), &fx);
        let ax = FunctorApplyX {
            q: q.clone(),
            q1: tmp.clone(),
            flux: flux.clone(),
            kmt: g.kmt.clone(),
            dxt: g.dxt.clone(),
            dyt: g.dyt,
            dt,
        };
        parallel_for_3d(space, MDRangePolicy3::new([nz, ny, nx]), &ax);
    }
    // Refresh the intermediate field's halos, then the y pass. The flux
    // stencil reads `tmp` rows `jl-1..=jl+2` (`jl = j + H - 1`) and no
    // east/west ghost column, so flux rows `j ∈ [2, ny-2]` touch owned
    // rows only — they are the interior partition that overlaps the
    // exchange; rows `{0, 1, ny-1, ny}` are the rim swept after it
    // finishes. Either schedule computes every flux cell from identical
    // inputs, so the split is bitwise equal to the dense pass.
    let fy = FunctorFluxY {
        q: tmp.clone(),
        v: v.clone(),
        flux: flux.clone(),
        kmt: g.kmt.clone(),
        dxt: g.dxt.clone(),
        dyt: g.dyt,
        dt,
        limited,
    };
    match exchange {
        TmpExchange::Blocking(exchange_tmp) => {
            {
                let _r = kokkos_rs::profiling::region("adv:halo");
                exchange_tmp(tmp)?;
            }
            let _r = kokkos_rs::profiling::region("adv:ypass");
            parallel_for_3d(space, MDRangePolicy3::new([nz, ny + 1, nx]), &fy);
        }
        TmpExchange::Overlap { halo, tag_base } if ny >= 5 => {
            let _r = kokkos_rs::profiling::region("adv:ypass-overlap");
            let mut pend = Some(halo.begin_exchange(tmp, FoldKind::Scalar, tag_base)?);
            let mut graph = StepGraph::new();
            let comm = graph.comm(
                |blocking| {
                    if blocking {
                        match pend.take() {
                            Some(p) => p.finish().map(|()| true),
                            None => Ok(true),
                        }
                    } else {
                        pend.as_mut().map_or(Ok(true), |p| p.poll())
                    }
                },
                &[],
            );
            let interior = graph.compute(
                || {
                    parallel_for_3d(
                        space,
                        MDRangePolicy3::new([nz, ny - 3, nx]).with_offset([0, 2, 0]),
                        &fy,
                    );
                    Ok(())
                },
                &[],
            );
            graph.compute(
                || {
                    parallel_for_3d(space, MDRangePolicy3::new([nz, 2, nx]), &fy);
                    parallel_for_3d(
                        space,
                        MDRangePolicy3::new([nz, 2, nx]).with_offset([0, ny - 1, 0]),
                        &fy,
                    );
                    Ok(())
                },
                &[comm, interior],
            );
            graph.run()?;
        }
        TmpExchange::Overlap { halo, tag_base } => {
            // Too narrow to carve an interior: finish, then dense pass.
            halo.begin_exchange(tmp, FoldKind::Scalar, tag_base)?
                .finish()?;
            let _r = kokkos_rs::profiling::region("adv:ypass");
            parallel_for_3d(space, MDRangePolicy3::new([nz, ny + 1, nx]), &fy);
        }
    }
    {
        let _r = kokkos_rs::profiling::region("adv:ypass");
        let ay = FunctorApplyY {
            q: tmp.clone(),
            q1: q_out.clone(),
            flux: flux.clone(),
            kmt: g.kmt.clone(),
            dxt: g.dxt.clone(),
            dyt: g.dyt,
            dt,
        };
        parallel_for_3d(space, MDRangePolicy3::new([nz, ny, nx]), &ay);
    }
    // Z pass in place on q_out (column-local, no halo needed).
    let _r = kokkos_rs::profiling::region("adv:zpass");
    let az = FunctorAdvectZ {
        q: q_out.clone(),
        q1: q_out.clone(),
        w: w.clone(),
        kmt: g.kmt.clone(),
        dz: g.dz.clone(),
        dt,
        nz,
        limited,
    };
    match wet_cols {
        Some(cols) => parallel_for_list(space, cols, &FunctorAdvectZList { f: az, pi: g.pi }),
        None => parallel_for_2d(space, MDRangePolicy2::new([ny, nx]), &az),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn van_leer_limiter_properties() {
        assert_eq!(van_leer(-1.0), 0.0); // extremum → pure upstream
        assert_eq!(van_leer(0.0), 0.0);
        assert!((van_leer(1.0) - 1.0).abs() < 1e-12); // smooth → centered
        for r in [-10.0, -0.5, 0.3, 1.0, 7.0] {
            let p = van_leer(r);
            assert!((0.0..=2.0).contains(&p), "φ({r}) = {p}");
        }
    }

    #[test]
    fn face_value_reduces_to_upstream_when_unlimited_flag_off() {
        assert_eq!(face_value(1.0, 2.0, 5.0, 0.1, false), 2.0);
    }

    #[test]
    fn face_value_bounded_by_neighbors() {
        // The corrected face value stays between donor and downwind.
        for (qu, qc, qd) in [(0.0, 1.0, 2.0), (3.0, 2.0, 0.0), (1.0, 1.0, 1.0)] {
            for c in [0.0, 0.3, 0.9] {
                let f = face_value(qu, qc, qd, c, true);
                let (lo, hi) = (qc.min(qd), qc.max(qd));
                assert!(f >= lo - 1e-12 && f <= hi + 1e-12);
            }
        }
    }

    /// 1-D periodic advection with the same face logic: the update must
    /// never create values outside the initial [min, max] (shape
    /// preservation), for any velocity within CFL. `flux` is caller-owned
    /// scratch (east face of cell i), sized `q.len()` — hoisted out so
    /// repeated applications don't reallocate per call (the same
    /// steady-state discipline as the model's `Workspace`).
    fn advect_1d(q: &[f64], u: f64, c: f64, limited: bool, flux: &mut [f64]) -> Vec<f64> {
        let n = q.len();
        assert_eq!(flux.len(), n);
        let get = |i: i64| q[i.rem_euclid(n as i64) as usize];
        for i in 0..n as i64 {
            let qf = if u >= 0.0 {
                face_value(get(i - 1), get(i), get(i + 1), c, limited)
            } else {
                face_value(get(i + 2), get(i + 1), get(i), c, limited)
            };
            flux[i as usize] = u * qf;
        }
        (0..n)
            .map(|i| {
                let fw = flux[(i + n - 1) % n];
                q[i] - (c / u.abs().max(1e-30)) * (flux[i] - fw) * u.signum().abs()
            })
            .collect()
    }

    proptest! {
        #[test]
        fn prop_1d_advection_preserves_bounds(
            vals in proptest::collection::vec(-10.0f64..10.0, 8..40),
            c in 0.01f64..0.95,
            positive in proptest::bool::ANY,
            limited in proptest::bool::ANY,
        ) {
            let u = if positive { 1.0 } else { -1.0 };
            let lo = vals.iter().cloned().fold(f64::MAX, f64::min);
            let hi = vals.iter().cloned().fold(f64::MIN, f64::max);
            let mut q = vals.clone();
            let mut flux = vec![0.0; q.len()];
            for _ in 0..5 {
                q = advect_1d(&q, u, c, limited, &mut flux);
                for &x in &q {
                    prop_assert!(x >= lo - 1e-9 && x <= hi + 1e-9,
                        "new extremum {x} outside [{lo}, {hi}]");
                }
            }
        }

        #[test]
        fn prop_1d_advection_conserves_mass(
            vals in proptest::collection::vec(-5.0f64..5.0, 8..30),
            c in 0.05f64..0.9,
        ) {
            let total: f64 = vals.iter().sum();
            let mut flux = vec![0.0; vals.len()];
            let q = advect_1d(&vals, 1.0, c, true, &mut flux);
            let total2: f64 = q.iter().sum();
            prop_assert!((total - total2).abs() < 1e-9 * (1.0 + total.abs()));
        }
    }

    #[test]
    fn two_step_is_less_diffusive_than_upstream() {
        // Advect a smooth bump one full revolution; the limited scheme
        // must retain more of the peak than pure upstream.
        let n = 50;
        let q0: Vec<f64> = (0..n)
            .map(|i| (-((i as f64 - 12.0) / 4.0).powi(2)).exp())
            .collect();
        let c = 0.5;
        let steps = (n as f64 / c) as usize; // one revolution
        let run = |limited: bool| {
            let mut q = q0.clone();
            let mut flux = vec![0.0; n];
            for _ in 0..steps {
                q = advect_1d(&q, 1.0, c, limited, &mut flux);
            }
            q.iter().cloned().fold(f64::MIN, f64::max)
        };
        let peak_two_step = run(true);
        let peak_upstream = run(false);
        assert!(
            peak_two_step > peak_upstream + 0.05,
            "two-step peak {peak_two_step} vs upstream {peak_upstream}"
        );
        assert!(peak_two_step <= 1.0 + 1e-9, "no overshoot");
    }
}
