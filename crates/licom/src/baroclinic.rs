//! Baroclinic momentum: the B-grid 3-D momentum tendency and the
//! leapfrog/Asselin machinery.
//!
//! Tendency terms at velocity corners (all masked by `kmu`):
//! baroclinic pressure gradient, Coriolis, centered horizontal advection
//! of momentum, free-slip Laplacian viscosity (evaluated at the old time
//! level, as leapfrog stability requires), and quadratic bottom drag.
//! Wind stress is added separately ([`crate::forcing`]); the surface
//! (barotropic) pressure gradient lives in the split-explicit solver and
//! its window average re-enters through [`FunctorBtCorrect`], which
//! replaces the depth-mean of the updated 3-D velocity with the
//! barotropic transport (mode consistency).
//!
//! Vertical momentum advection is neglected (a documented fidelity
//! simplification — it is dynamically subdominant at these scales and
//! does not change the kernel's computational profile).

use kokkos_rs::{Functor2D, Functor3D, FunctorList, IterCost, View1, View2, View3};
use ocean_grid::RHO0;

use halo_exchange::HALO as H;

use crate::constants::{ASSELIN, BOTTOM_DRAG};

/// The model's heavyweight 3-D stencil kernel: full momentum tendency.
pub struct FunctorMomentumTend {
    pub u_cur: View3<f64>,
    pub v_cur: View3<f64>,
    pub u_old: View3<f64>,
    pub v_old: View3<f64>,
    /// Baroclinic hydrostatic pressure at T cells.
    pub pressure: View3<f64>,
    pub ut: View3<f64>,
    pub vt: View3<f64>,
    pub kmu: View2<i32>,
    pub fcor: View1<f64>,
    pub dxt: View1<f64>,
    pub dyt: f64,
    pub dz: View1<f64>,
    /// Horizontal viscosity (m²/s), resolution-adaptive.
    pub visc: f64,
}

impl FunctorMomentumTend {
    /// Tendency at one point, **padded** indices (shared launch shapes).
    fn at_point(&self, k: usize, jl: usize, il: usize) {
        let ki = k as i32;
        if self.kmu.at(jl, il) <= ki {
            self.ut.set_at(k, jl, il, 0.0);
            self.vt.set_at(k, jl, il, 0.0);
            return;
        }
        let dx_c = 0.5 * (self.dxt.at(jl) + self.dxt.at(jl + 1));
        let dy = self.dyt;

        // Baroclinic pressure gradient (T cells around the corner).
        let p = &self.pressure;
        let gx = 0.5
            * ((p.at(k, jl, il + 1) - p.at(k, jl, il))
                + (p.at(k, jl + 1, il + 1) - p.at(k, jl + 1, il)))
            / dx_c;
        let gy = 0.5
            * ((p.at(k, jl + 1, il) - p.at(k, jl, il))
                + (p.at(k, jl + 1, il + 1) - p.at(k, jl, il + 1)))
            / dy;

        let f = self.fcor.at(jl);
        let u = self.u_cur.at(k, jl, il);
        let v = self.v_cur.at(k, jl, il);

        // Wet-neighbor helper for free-slip viscosity and advection:
        // returns the neighbor value, or the center value if dry.
        let nb = |field: &View3<f64>, jn: usize, inn: usize, center: f64| -> f64 {
            if self.kmu.at(jn, inn) > ki {
                field.at(k, jn, inn)
            } else {
                center
            }
        };

        let u_e = nb(&self.u_cur, jl, il + 1, u);
        let u_w = nb(&self.u_cur, jl, il - 1, u);
        let u_n = nb(&self.u_cur, jl + 1, il, u);
        let u_s = nb(&self.u_cur, jl - 1, il, u);
        let v_e = nb(&self.v_cur, jl, il + 1, v);
        let v_w = nb(&self.v_cur, jl, il - 1, v);
        let v_n = nb(&self.v_cur, jl + 1, il, v);
        let v_s = nb(&self.v_cur, jl - 1, il, v);

        // Centered horizontal advection.
        let adv_u = u * (u_e - u_w) / (2.0 * dx_c) + v * (u_n - u_s) / (2.0 * dy);
        let adv_v = u * (v_e - v_w) / (2.0 * dx_c) + v * (v_n - v_s) / (2.0 * dy);

        // Free-slip Laplacian viscosity at the old level.
        let uo = self.u_old.at(k, jl, il);
        let vo = self.v_old.at(k, jl, il);
        let uo_e = nb(&self.u_old, jl, il + 1, uo);
        let uo_w = nb(&self.u_old, jl, il - 1, uo);
        let uo_n = nb(&self.u_old, jl + 1, il, uo);
        let uo_s = nb(&self.u_old, jl - 1, il, uo);
        let vo_e = nb(&self.v_old, jl, il + 1, vo);
        let vo_w = nb(&self.v_old, jl, il - 1, vo);
        let vo_n = nb(&self.v_old, jl + 1, il, vo);
        let vo_s = nb(&self.v_old, jl - 1, il, vo);
        let lap_u = (uo_e - 2.0 * uo + uo_w) / (dx_c * dx_c) + (uo_n - 2.0 * uo + uo_s) / (dy * dy);
        let lap_v = (vo_e - 2.0 * vo + vo_w) / (dx_c * dx_c) + (vo_n - 2.0 * vo + vo_s) / (dy * dy);

        let mut du = -gx / RHO0 + f * v - adv_u + self.visc * lap_u;
        let mut dv = -gy / RHO0 - f * u - adv_v + self.visc * lap_v;

        // Quadratic bottom drag on the deepest wet layer (old level).
        if ki == self.kmu.at(jl, il) - 1 {
            let speed = (uo * uo + vo * vo).sqrt();
            let fac = BOTTOM_DRAG * speed / self.dz.at(k);
            du -= fac * uo;
            dv -= fac * vo;
        }

        self.ut.set_at(k, jl, il, du);
        self.vt.set_at(k, jl, il, dv);
    }
}

impl Functor3D for FunctorMomentumTend {
    fn operator(&self, k: usize, j: usize, i: usize) {
        self.at_point(k, j + H, i + H);
    }

    fn cost(&self) -> IterCost {
        // The genuine hotspot: ~80 flops over ~25 stencil reads.
        IterCost {
            flops: 80,
            bytes: 220,
        }
    }
}

kokkos_rs::register_for_3d!(kernel_momentum_tend, FunctorMomentumTend);

/// Active-set momentum tendency: entry `idx` is a packed wet velocity
/// cell `(k·pj + jl)·pi + il` (`k < kmu`). Dry cells keep the tendency
/// views' initial zeros — exactly what the dense launch writes, and
/// `ut`/`vt` are consumed only where `kmu > k` — so the skip is bitwise
/// neutral.
pub struct FunctorMomentumTendList {
    pub f: FunctorMomentumTend,
    pub pj: usize,
    pub pi: usize,
}

impl FunctorList for FunctorMomentumTendList {
    fn operator(&self, _n: usize, idx: u32) {
        let idx = idx as usize;
        let il = idx % self.pi;
        let rest = idx / self.pi;
        self.f.at_point(rest / self.pj, rest % self.pj, il);
    }

    fn cost(&self) -> IterCost {
        self.f.cost()
    }
}

kokkos_rs::register_for_list!(kernel_momentum_tend_list, FunctorMomentumTendList);

/// Leapfrog update `new = old + dt2 · tend`, masked.
pub struct FunctorLeapfrog3D {
    pub old: View3<f64>,
    pub new: View3<f64>,
    pub tend: View3<f64>,
    pub mask: View2<i32>,
    pub dt2: f64,
}

impl Functor3D for FunctorLeapfrog3D {
    fn operator(&self, k: usize, j: usize, i: usize) {
        let (jl, il) = (j + H, i + H);
        if self.mask.at(jl, il) <= k as i32 {
            self.new.set_at(k, jl, il, 0.0);
            return;
        }
        self.new.set_at(
            k,
            jl,
            il,
            self.old.at(k, jl, il) + self.dt2 * self.tend.at(k, jl, il),
        );
    }

    fn cost(&self) -> IterCost {
        IterCost {
            flops: 2,
            bytes: 36,
        }
    }
}

kokkos_rs::register_for_3d!(kernel_leapfrog_3d, FunctorLeapfrog3D);

/// Asselin filter on a 3-D leapfrog triple.
pub struct FunctorAsselin3D {
    pub old: View3<f64>,
    pub cur: View3<f64>,
    pub new: View3<f64>,
}

impl Functor3D for FunctorAsselin3D {
    fn operator(&self, k: usize, j: usize, i: usize) {
        let (jl, il) = (j + H, i + H);
        let c = self.cur.at(k, jl, il);
        self.cur.set_at(
            k,
            jl,
            il,
            c + ASSELIN * (self.old.at(k, jl, il) - 2.0 * c + self.new.at(k, jl, il)),
        );
    }

    fn cost(&self) -> IterCost {
        IterCost {
            flops: 5,
            bytes: 40,
        }
    }
}

kokkos_rs::register_for_3d!(kernel_asselin_3d, FunctorAsselin3D);

/// Mode-consistency correction: replace the depth-mean of the updated
/// 3-D velocity with the barotropic window average.
pub struct FunctorBtCorrect {
    pub u: View3<f64>,
    pub v: View3<f64>,
    pub ubt: View2<f64>,
    pub vbt: View2<f64>,
    pub kmu: View2<i32>,
    pub dz: View1<f64>,
}

impl FunctorBtCorrect {
    /// One corner at **padded** indices (shared launch shapes).
    fn column(&self, jl: usize, il: usize) {
        let kb = self.kmu.at(jl, il) as usize;
        if kb == 0 {
            return;
        }
        let mut su = 0.0;
        let mut sv = 0.0;
        let mut h = 0.0;
        for k in 0..kb {
            let dz = self.dz.at(k);
            su += self.u.at(k, jl, il) * dz;
            sv += self.v.at(k, jl, il) * dz;
            h += dz;
        }
        let du = self.ubt.at(jl, il) - su / h;
        let dv = self.vbt.at(jl, il) - sv / h;
        for k in 0..kb {
            self.u.set_at(k, jl, il, self.u.at(k, jl, il) + du);
            self.v.set_at(k, jl, il, self.v.at(k, jl, il) + dv);
        }
    }
}

impl Functor2D for FunctorBtCorrect {
    fn operator(&self, j: usize, i: usize) {
        self.column(j + H, i + H);
    }

    fn cost(&self) -> IterCost {
        IterCost {
            flops: 300,
            bytes: 2000,
        }
    }
}

kokkos_rs::register_for_2d!(kernel_bt_correct, FunctorBtCorrect);

/// Active-set mode correction: entry `idx` is a packed wet velocity
/// corner; the dense launch's dry-corner early-return is the exact
/// complement of the set.
pub struct FunctorBtCorrectList {
    pub f: FunctorBtCorrect,
    pub pi: usize,
}

impl FunctorList for FunctorBtCorrectList {
    fn operator(&self, _n: usize, idx: u32) {
        let packed = idx as usize;
        self.f.column(packed / self.pi, packed % self.pi);
    }

    fn cost(&self) -> IterCost {
        self.f.cost()
    }
}

kokkos_rs::register_for_list!(kernel_bt_correct_list, FunctorBtCorrectList);

/// Register this module's functors.
pub fn register() {
    kernel_momentum_tend();
    kernel_momentum_tend_list();
    kernel_leapfrog_3d();
    kernel_asselin_3d();
    kernel_bt_correct();
    kernel_bt_correct_list();
}

#[cfg(test)]
mod tests {
    use super::*;
    use kokkos_rs::View;

    const OMEGA: f64 = 7.292_115e-5;

    fn grid_views(nz: usize, n: usize) -> (View2<i32>, View1<f64>, View1<f64>, View1<f64>) {
        let (pj, pi) = (n + 2 * H, n + 2 * H);
        let kmu: View2<i32> = View::host("kmu", [pj, pi]);
        kmu.fill(nz as i32);
        let fcor: View1<f64> = View::host("fcor", [pj]);
        fcor.fill(2.0 * OMEGA * 0.5); // 30° N
        let dxt: View1<f64> = View::host("dxt", [pj]);
        dxt.fill(100_000.0);
        let dz: View1<f64> = View::host("dz", [nz]);
        dz.fill(50.0);
        (kmu, fcor, dxt, dz)
    }

    fn tend_functor(nz: usize, n: usize) -> FunctorMomentumTend {
        let (pj, pi) = (n + 2 * H, n + 2 * H);
        let d3 = [nz, pj, pi];
        let (kmu, fcor, dxt, dz) = grid_views(nz, n);
        FunctorMomentumTend {
            u_cur: View::host("uc", d3),
            v_cur: View::host("vc", d3),
            u_old: View::host("uo", d3),
            v_old: View::host("vo", d3),
            pressure: View::host("p", d3),
            ut: View::host("ut", d3),
            vt: View::host("vt", d3),
            kmu,
            fcor,
            dxt,
            dyt: 100_000.0,
            dz,
            visc: 1.0e3,
        }
    }

    #[test]
    fn geostrophic_balance_tendency() {
        // A zonal pressure gradient must produce f·v response only: with
        // v chosen geostrophic (v = gx / (ρ0 f)), du/dt ≈ 0.
        let f = tend_functor(1, 4);
        // p increasing eastward: dp/dx = 0.01 Pa/m.
        for jl in 0..f.pressure.dims()[1] {
            for il in 0..f.pressure.dims()[2] {
                f.pressure.set_at(0, jl, il, 0.01 * il as f64 * 100_000.0);
            }
        }
        let fc = f.fcor.at(H);
        let v_geo = 0.01 / (RHO0 * fc);
        f.v_cur.fill(v_geo);
        f.operator(0, 1, 1);
        let du = f.ut.at(0, H + 1, H + 1);
        assert!(du.abs() < 1e-10, "geostrophic residual du/dt = {du}");
    }

    #[test]
    fn coriolis_turns_flow_clockwise_north() {
        let f = tend_functor(1, 4);
        f.u_cur.fill(1.0);
        f.operator(0, 1, 1);
        // Northern hemisphere: eastward flow gets southward acceleration.
        assert!(f.vt.at(0, H + 1, H + 1) < 0.0);
        assert!(
            f.ut.at(0, H + 1, H + 1).abs() < 1e-12,
            "no du for uniform u"
        );
    }

    #[test]
    fn viscosity_damps_a_spike() {
        let f = tend_functor(1, 5);
        f.u_old.set_at(0, H + 2, H + 2, 1.0);
        // u_cur zero → no advection/coriolis; spike must get negative
        // tendency at its center, positive at neighbors.
        f.operator(0, 2, 2);
        assert!(f.ut.at(0, H + 2, H + 2) < 0.0);
        f.operator(0, 2, 1);
        assert!(f.ut.at(0, H + 2, H + 1) > 0.0);
    }

    #[test]
    fn dry_corners_produce_zero_tendency() {
        let f = tend_functor(2, 4);
        f.kmu.set_at(H + 1, H + 1, 0);
        f.u_cur.fill(5.0);
        f.operator(0, 1, 1);
        assert_eq!(f.ut.at(0, H + 1, H + 1), 0.0);
        assert_eq!(f.vt.at(0, H + 1, H + 1), 0.0);
    }

    #[test]
    fn bottom_drag_opposes_old_velocity() {
        let f = tend_functor(2, 4);
        f.u_old.fill(1.0);
        f.operator(1, 1, 1); // bottom layer (kmu-1 == 1)
        let du_bottom = f.ut.at(1, H + 1, H + 1);
        f.operator(0, 1, 1);
        let du_top = f.ut.at(0, H + 1, H + 1);
        assert!(
            du_bottom < du_top,
            "drag must decelerate the bottom layer: {du_bottom} vs {du_top}"
        );
    }

    #[test]
    fn leapfrog_and_asselin() {
        let d3 = [1, 1 + 2 * H, 1 + 2 * H];
        let old: View3<f64> = View::host("o", d3);
        let cur: View3<f64> = View::host("c", d3);
        let new: View3<f64> = View::host("n", d3);
        let tend: View3<f64> = View::host("t", d3);
        let mask: View2<i32> = View::host("m", [1 + 2 * H, 1 + 2 * H]);
        mask.fill(1);
        old.fill(1.0);
        tend.fill(0.5);
        let lf = FunctorLeapfrog3D {
            old: old.clone(),
            new: new.clone(),
            tend,
            mask,
            dt2: 2.0,
        };
        lf.operator(0, 0, 0);
        assert_eq!(new.at(0, H, H), 2.0);
        cur.fill(1.2);
        let asl = FunctorAsselin3D {
            old,
            cur: cur.clone(),
            new,
        };
        asl.operator(0, 0, 0);
        // 1.2 + 0.1*(1 - 2.4 + 2) = 1.26
        assert!((cur.at(0, H, H) - 1.26).abs() < 1e-12);
    }

    #[test]
    fn bt_correct_sets_depth_mean() {
        let nz = 4;
        let d3 = [nz, 1 + 2 * H, 1 + 2 * H];
        let u: View3<f64> = View::host("u", d3);
        let v: View3<f64> = View::host("v", d3);
        for k in 0..nz {
            u.set_at(k, H, H, k as f64); // mean 1.5
        }
        let ubt: View2<f64> = View::host("ubt", [1 + 2 * H, 1 + 2 * H]);
        let vbt: View2<f64> = View::host("vbt", [1 + 2 * H, 1 + 2 * H]);
        ubt.fill(2.0);
        let kmu: View2<i32> = View::host("kmu", [1 + 2 * H, 1 + 2 * H]);
        kmu.fill(nz as i32);
        let dz: View1<f64> = View::host("dz", [nz]);
        dz.fill(25.0);
        let f = FunctorBtCorrect {
            u: u.clone(),
            v,
            ubt,
            vbt,
            kmu,
            dz,
        };
        f.operator(0, 0);
        let mean: f64 = (0..nz).map(|k| u.at(k, H, H)).sum::<f64>() / nz as f64;
        assert!((mean - 2.0).abs() < 1e-12, "depth mean now {mean}");
        // Shear preserved: u(k) − u(0) unchanged.
        assert!((u.at(3, H, H) - u.at(0, H, H) - 3.0).abs() < 1e-12);
    }
}
