//! Split-explicit barotropic (free-surface) solver.
//!
//! The fast external gravity-wave mode is integrated with many small
//! leapfrog substeps (`dt_barotropic`, e.g. 2 s at km scale vs the 20 s
//! baroclinic step — Table III), forced by the depth-mean of the
//! baroclinic tendency. The window-averaged surface height and transport
//! feed back into the 3-D solution (mode splitting). Each substep
//! performs a 2-D halo update of η and the barotropic velocities — this
//! is why the *halo update is the model's serial bottleneck* (§V-D): at
//! km scale there are 10 substeps per baroclinic step, each with its own
//! exchange.
//!
//! Near the tripolar cap the zonal spacing tightens and the explicit
//! substep would violate the gravity-wave CFL; like LICOM (and POP), a
//! zonal **polar filter** smooths the fast fields on the offending rows.

use kokkos_rs::{
    parallel_for_2d, Functor2D, FunctorList, FunctorPair2D, FunctorTriple2D, IterCost,
    MDRangePolicy2, Space, View1, View2,
};
use ocean_grid::GRAVITY;

use halo_exchange::{FoldKind, Halo2D, HaloError, PendingExchange2, HALO as H};

use crate::constants::ASSELIN;
use crate::localgrid::LocalGrid;
use crate::state::State;

/// Depth-mean of a 3-D tendency at B-grid corners, weighted by layer
/// thickness over the corner's active column.
pub struct FunctorDepthMean {
    pub tend: kokkos_rs::View3<f64>,
    pub out: View2<f64>,
    pub kmu: View2<i32>,
    pub dz: View1<f64>,
}

impl FunctorDepthMean {
    /// One corner at **padded** indices (shared by both launch shapes).
    fn column(&self, jl: usize, il: usize) {
        let kb = self.kmu.at(jl, il) as usize;
        if kb == 0 {
            self.out.set_at(jl, il, 0.0);
            return;
        }
        let mut sum = 0.0;
        let mut h = 0.0;
        for k in 0..kb {
            let dz = self.dz.at(k);
            sum += self.tend.at(k, jl, il) * dz;
            h += dz;
        }
        self.out.set_at(jl, il, sum / h);
    }
}

impl Functor2D for FunctorDepthMean {
    fn operator(&self, j: usize, i: usize) {
        self.column(j + H, i + H);
    }

    fn cost(&self) -> IterCost {
        IterCost {
            flops: 60,
            bytes: 500,
        }
    }
}

kokkos_rs::register_for_2d!(kernel_depth_mean, FunctorDepthMean);

/// Active-set depth mean: entry `idx` is a packed wet velocity corner
/// (`kmu > 0`). Dry corners keep the output's initial zero — exactly what
/// the dense launch writes, and nothing else writes `out` — so the skip
/// is bitwise neutral. (The substep kernels [`FunctorBtEta`]/
/// [`FunctorBtVel`] deliberately stay dense: the zonal polar filter and
/// the Asselin filter write land cells unmasked, so their land zeros are
/// real state the next substep's stencils read.)
pub struct FunctorDepthMeanList {
    pub f: FunctorDepthMean,
    pub pi: usize,
}

impl FunctorList for FunctorDepthMeanList {
    fn operator(&self, _n: usize, idx: u32) {
        let packed = idx as usize;
        self.f.column(packed / self.pi, packed % self.pi);
    }

    fn cost(&self) -> IterCost {
        self.f.cost()
    }
}

kokkos_rs::register_for_list!(kernel_depth_mean_list, FunctorDepthMeanList);

/// One leapfrog continuity substep:
/// `η_new = η_old − dt2 · ∇·(H u_bt) / area` on T cells.
pub struct FunctorBtEta {
    pub eta_old: View2<f64>,
    pub eta_new: View2<f64>,
    pub ub: View2<f64>,
    pub vb: View2<f64>,
    pub depth: View2<f64>,
    pub kmt: View2<i32>,
    pub dxt: View1<f64>,
    pub dyt: f64,
    pub dt2: f64,
}

impl FunctorBtEta {
    /// Zonal transport through the east face of `(jl, il)`.
    #[inline]
    fn flux_e(&self, jl: usize, il: usize) -> f64 {
        if self.kmt.at(jl, il) == 0 || self.kmt.at(jl, il + 1) == 0 {
            return 0.0;
        }
        let uf = 0.5 * (self.ub.at(jl, il) + self.ub.at(jl - 1, il));
        let h = self.depth.at(jl, il).min(self.depth.at(jl, il + 1));
        uf * h * self.dyt
    }

    /// Meridional transport through the north face of `(jl, il)`.
    #[inline]
    fn flux_n(&self, jl: usize, il: usize) -> f64 {
        if self.kmt.at(jl, il) == 0 || self.kmt.at(jl + 1, il) == 0 {
            return 0.0;
        }
        let vf = 0.5 * (self.vb.at(jl, il) + self.vb.at(jl, il - 1));
        let h = self.depth.at(jl, il).min(self.depth.at(jl + 1, il));
        let dx_face = 0.5 * (self.dxt.at(jl) + self.dxt.at(jl + 1));
        vf * h * dx_face
    }
}

impl Functor2D for FunctorBtEta {
    fn operator(&self, j: usize, i: usize) {
        let (jl, il) = (j + H, i + H);
        if self.kmt.at(jl, il) == 0 {
            self.eta_new.set_at(jl, il, 0.0);
            return;
        }
        let area = self.dxt.at(jl) * self.dyt;
        let div = self.flux_e(jl, il) - self.flux_e(jl, il - 1) + self.flux_n(jl, il)
            - self.flux_n(jl - 1, il);
        self.eta_new
            .set_at(jl, il, self.eta_old.at(jl, il) - self.dt2 * div / area);
    }

    fn cost(&self) -> IterCost {
        IterCost {
            flops: 30,
            bytes: 180,
        }
    }
}

kokkos_rs::register_for_2d!(kernel_bt_eta, FunctorBtEta);

/// One leapfrog momentum substep at B-grid corners:
/// `u_new = u_old + dt2 (−g ∂η/∂x + f v + Gu)` (and the v analogue).
pub struct FunctorBtVel {
    pub u_old: View2<f64>,
    pub v_old: View2<f64>,
    pub u_cur: View2<f64>,
    pub v_cur: View2<f64>,
    pub eta_cur: View2<f64>,
    pub u_new: View2<f64>,
    pub v_new: View2<f64>,
    pub gu: View2<f64>,
    pub gv: View2<f64>,
    pub fcor: View1<f64>,
    pub kmu: View2<i32>,
    pub dxt: View1<f64>,
    pub dyt: f64,
    pub dt2: f64,
}

impl Functor2D for FunctorBtVel {
    fn operator(&self, j: usize, i: usize) {
        let (jl, il) = (j + H, i + H);
        if self.kmu.at(jl, il) == 0 {
            self.u_new.set_at(jl, il, 0.0);
            self.v_new.set_at(jl, il, 0.0);
            return;
        }
        let dx_c = 0.5 * (self.dxt.at(jl) + self.dxt.at(jl + 1));
        let e = &self.eta_cur;
        let gx = 0.5
            * ((e.at(jl, il + 1) - e.at(jl, il)) + (e.at(jl + 1, il + 1) - e.at(jl + 1, il)))
            / dx_c;
        let gy = 0.5
            * ((e.at(jl + 1, il) - e.at(jl, il)) + (e.at(jl + 1, il + 1) - e.at(jl, il + 1)))
            / self.dyt;
        let f = self.fcor.at(jl);
        let u = self.u_cur.at(jl, il);
        let v = self.v_cur.at(jl, il);
        self.u_new.set_at(
            jl,
            il,
            self.u_old.at(jl, il) + self.dt2 * (-GRAVITY * gx + f * v + self.gu.at(jl, il)),
        );
        self.v_new.set_at(
            jl,
            il,
            self.v_old.at(jl, il) + self.dt2 * (-GRAVITY * gy - f * u + self.gv.at(jl, il)),
        );
    }

    fn cost(&self) -> IterCost {
        IterCost {
            flops: 28,
            bytes: 150,
        }
    }
}

kokkos_rs::register_for_2d!(kernel_bt_vel, FunctorBtVel);

/// Asselin time filter on a 2-D leapfrog triple:
/// `cur += γ (old − 2 cur + new)`.
pub struct FunctorAsselin2D {
    pub old: View2<f64>,
    pub cur: View2<f64>,
    pub new: View2<f64>,
}

impl Functor2D for FunctorAsselin2D {
    fn operator(&self, j: usize, i: usize) {
        let (jl, il) = (j + H, i + H);
        let c = self.cur.at(jl, il);
        self.cur.set_at(
            jl,
            il,
            c + ASSELIN * (self.old.at(jl, il) - 2.0 * c + self.new.at(jl, il)),
        );
    }

    fn cost(&self) -> IterCost {
        IterCost {
            flops: 5,
            bytes: 32,
        }
    }
}

kokkos_rs::register_for_2d!(kernel_asselin_2d, FunctorAsselin2D);

/// Zonal 1-2-1 filter on flagged rows (`rows[jl] != 0`), writing `dst`;
/// identity elsewhere.
pub struct FunctorZonalFilter {
    pub src: View2<f64>,
    pub dst: View2<f64>,
    pub rows: View1<i32>,
}

impl Functor2D for FunctorZonalFilter {
    fn operator(&self, j: usize, i: usize) {
        let (jl, il) = (j + H, i + H);
        let v = if self.rows.at(jl) != 0 {
            0.25 * self.src.at(jl, il - 1)
                + 0.5 * self.src.at(jl, il)
                + 0.25 * self.src.at(jl, il + 1)
        } else {
            self.src.at(jl, il)
        };
        self.dst.set_at(jl, il, v);
    }

    fn cost(&self) -> IterCost {
        IterCost {
            flops: 4,
            bytes: 40,
        }
    }
}

kokkos_rs::register_for_2d!(kernel_zonal_filter, FunctorZonalFilter);

/// Copy owned cells of a 2-D view.
pub struct FunctorCopy2D {
    pub src: View2<f64>,
    pub dst: View2<f64>,
}

impl Functor2D for FunctorCopy2D {
    fn operator(&self, j: usize, i: usize) {
        let (jl, il) = (j + H, i + H);
        self.dst.set_at(jl, il, self.src.at(jl, il));
    }

    fn cost(&self) -> IterCost {
        IterCost {
            flops: 0,
            bytes: 16,
        }
    }
}

kokkos_rs::register_for_2d!(kernel_copy_2d, FunctorCopy2D);

/// `acc += x` over the full padded block (halos included, so the
/// window-averaged fields inherit valid halos).
pub struct FunctorAccum2D {
    pub acc: View2<f64>,
    pub x: View2<f64>,
}

impl Functor2D for FunctorAccum2D {
    fn operator(&self, j: usize, i: usize) {
        self.acc.set_at(j, i, self.acc.at(j, i) + self.x.at(j, i));
    }

    fn cost(&self) -> IterCost {
        IterCost {
            flops: 1,
            bytes: 24,
        }
    }
}

kokkos_rs::register_for_2d!(kernel_accum_2d, FunctorAccum2D);

/// `dst = src * scale` over the full padded block.
pub struct FunctorScaleAssign2D {
    pub src: View2<f64>,
    pub dst: View2<f64>,
    pub scale: f64,
}

impl Functor2D for FunctorScaleAssign2D {
    fn operator(&self, j: usize, i: usize) {
        self.dst.set_at(j, i, self.src.at(j, i) * self.scale);
    }

    fn cost(&self) -> IterCost {
        IterCost {
            flops: 1,
            bytes: 16,
        }
    }
}

kokkos_rs::register_for_2d!(kernel_scale_assign_2d, FunctorScaleAssign2D);

// Fused per-substep launches (kernel fusion): the substep loop issues many
// small 2-D kernels over the same policy, and on the Sunway backend each
// launch pays registry dispatch plus CPE spin-up. Fusing same-shaped
// updates with disjoint write sets into one body keeps results bitwise
// identical (per-cell arithmetic and per-array update order are unchanged)
// while cutting the launch count of the barotropic loop by ~2.5x.

/// η + (u,v) leapfrog updates of one substep in a single launch. Safe to
/// fuse: `FunctorBtVel` reads the `[c]` η level, never the `[n]` level
/// `FunctorBtEta` writes.
type FunctorBtStep = FunctorPair2D<FunctorBtEta, FunctorBtVel>;
/// The three window accumulators (η, u, v) in one launch.
type FunctorAccum3 = FunctorTriple2D<FunctorAccum2D, FunctorAccum2D, FunctorAccum2D>;
/// Asselin filter on all three fields in one launch.
type FunctorAsselin3 = FunctorTriple2D<FunctorAsselin2D, FunctorAsselin2D, FunctorAsselin2D>;
/// Three scaled copies (level init / window averaging) in one launch.
type FunctorScaleAssign3 =
    FunctorTriple2D<FunctorScaleAssign2D, FunctorScaleAssign2D, FunctorScaleAssign2D>;

kokkos_rs::register_for_2d!(kernel_bt_step, FunctorBtStep);
kokkos_rs::register_for_2d!(kernel_accum_3, FunctorAccum3);
kokkos_rs::register_for_2d!(kernel_asselin_3, FunctorAsselin3);
kokkos_rs::register_for_2d!(kernel_scale_assign_3, FunctorScaleAssign3);

fn accum3(accs: &[View2<f64>; 3], xs: [&View2<f64>; 3]) -> FunctorAccum3 {
    FunctorTriple2D {
        a: FunctorAccum2D {
            acc: accs[0].clone(),
            x: xs[0].clone(),
        },
        b: FunctorAccum2D {
            acc: accs[1].clone(),
            x: xs[1].clone(),
        },
        c: FunctorAccum2D {
            acc: accs[2].clone(),
            x: xs[2].clone(),
        },
    }
}

/// Register this module's functors.
pub fn register() {
    kernel_depth_mean();
    kernel_depth_mean_list();
    kernel_bt_eta();
    kernel_bt_vel();
    kernel_asselin_2d();
    kernel_zonal_filter();
    kernel_copy_2d();
    kernel_accum_2d();
    kernel_scale_assign_2d();
    kernel_bt_step();
    kernel_accum_3();
    kernel_asselin_3();
    kernel_scale_assign_3();
}

/// Add the previous substep's `[n]` values into the accumulators over the
/// four **ghost rectangles** of the padded block. The dense schedule
/// accumulates the full padded block right after its blocking exchange;
/// the overlap pipeline accumulates owned cells immediately and settles
/// this ghost "debt" once the deferred exchange finishes. Each acc cell
/// still receives exactly one addition per substep, in substep order, so
/// the result is bitwise identical.
fn flush_ghost_debt(
    space: &Space,
    g: &LocalGrid,
    accs: &[View2<f64>; 3],
    debt: &mut Option<[View2<f64>; 3]>,
) {
    let Some(fields) = debt.take() else { return };
    let rects = [
        MDRangePolicy2::new([H, g.pi]),
        MDRangePolicy2::new([H, g.pi]).with_offset([H + g.ny, 0]),
        MDRangePolicy2::new([g.ny, H]).with_offset([H, 0]),
        MDRangePolicy2::new([g.ny, H]).with_offset([H, H + g.nx]),
    ];
    let f = accum3(accs, [&fields[0], &fields[1], &fields[2]]);
    for r in rects {
        parallel_for_2d(space, r, &f);
    }
}

/// Integrate the barotropic system over one leapfrog window (`2 dt_c`),
/// starting from `state.eta[cur]`, `state.ubt`, `state.vbt`, forced by
/// the depth-mean tendencies `gu`, `gv`. On return `state.eta[new]`,
/// `state.ubt`, `state.vbt` hold the window averages (with valid halos).
/// `Err` means a per-substep halo update stayed unrecoverable after the
/// integrity layer's retries; the barotropic work arrays are then in an
/// undefined state and the caller must roll back.
///
/// With `overlap = false` every substep ends with blocking per-field halo
/// updates — the dense reference schedule. With `overlap = true` the
/// substeps form a software pipeline: the `[n]`-level exchange is posted
/// as one batched split-phase message set and carried into the *next*
/// substep, whose interior cells (reading no ghost) run while it is in
/// flight; the boundary rim runs after `finish()`. The window
/// accumulation follows with an owned-now/ghost-later split (see
/// [`flush_ghost_debt`]). Both schedules are bitwise identical.
#[allow(clippy::too_many_arguments)]
pub fn integrate(
    space: &Space,
    g: &LocalGrid,
    state: &mut State,
    halo: &Halo2D,
    gu: &View2<f64>,
    gv: &View2<f64>,
    dtb: f64,
    substeps: usize,
    filter_rows: &View1<i32>,
    filter_passes: usize,
    overlap: bool,
) -> Result<(), HaloError> {
    // The pipeline needs an interior to hide the exchange behind.
    let overlap = overlap && g.ny >= 3 && g.nx >= 3;
    let policy = MDRangePolicy2::new([g.ny, g.nx]);
    let full = MDRangePolicy2::new([g.pj, g.pi]);
    // Working triple: indices into state.bt_* (old, cur, new roles).
    let (mut o, mut c, mut n) = (0usize, 1usize, 2usize);
    let init_region = kokkos_rs::profiling::region("bt:init");
    for lev in 0..3 {
        parallel_for_2d(
            space,
            full,
            &FunctorTriple2D {
                a: FunctorScaleAssign2D {
                    src: state.eta[state.cur()].clone(),
                    dst: state.bt_eta[lev].clone(),
                    scale: 1.0,
                },
                b: FunctorScaleAssign2D {
                    src: state.ubt.clone(),
                    dst: state.bt_u[lev].clone(),
                    scale: 1.0,
                },
                c: FunctorScaleAssign2D {
                    src: state.vbt.clone(),
                    dst: state.bt_v[lev].clone(),
                    scale: 1.0,
                },
            },
        );
    }
    // Window accumulators: persistent workspace views, zeroed at entry
    // (a fresh allocation arrived zeroed; `fill` keeps that bitwise).
    let acc_eta = state.work.acc_eta.clone();
    let acc_u = state.work.acc_u.clone();
    let acc_v = state.work.acc_v.clone();
    acc_eta.fill(0.0);
    acc_u.fill(0.0);
    acc_v.fill(0.0);
    drop(init_region);

    // Pipeline state (overlap mode): the previous substep's `[n]`-level
    // exchange still in flight, and the accumulator ghost rectangles owed
    // the previous `[n]` values.
    let mut pend: Option<PendingExchange2<'_>> = None;
    let mut debt: Option<[View2<f64>; 3]> = None;

    for step in 0..substeps {
        let _substep = kokkos_rs::profiling::region("bt:substep");
        // First substep is forward Euler (old == cur at entry).
        let dt2 = if step == 0 { dtb } else { 2.0 * dtb };
        let f_eta = FunctorBtEta {
            eta_old: state.bt_eta[o].clone(),
            eta_new: state.bt_eta[n].clone(),
            ub: state.bt_u[c].clone(),
            vb: state.bt_v[c].clone(),
            depth: g.depth.clone(),
            kmt: g.kmt.clone(),
            dxt: g.dxt.clone(),
            dyt: g.dyt,
            dt2,
        };
        let f_vel = FunctorBtVel {
            u_old: state.bt_u[o].clone(),
            v_old: state.bt_v[o].clone(),
            u_cur: state.bt_u[c].clone(),
            v_cur: state.bt_v[c].clone(),
            eta_cur: state.bt_eta[c].clone(),
            u_new: state.bt_u[n].clone(),
            v_new: state.bt_v[n].clone(),
            gu: gu.clone(),
            gv: gv.clone(),
            fcor: g.fcor.clone(),
            kmu: g.kmu.clone(),
            dxt: g.dxt.clone(),
            dyt: g.dyt,
            dt2,
        };
        // Fused η+velocity substep (see `FunctorBtStep`).
        let f_step = FunctorPair2D { a: f_eta, b: f_vel };
        match pend.take() {
            Some(p) => {
                // The exchange posted last substep covers this substep's
                // `[c]` ghosts. Both stencils have radius 1, so cells at
                // least one row/column inside the owned block read no
                // ghost — run them while the messages are in flight.
                let interior = MDRangePolicy2::new([g.ny - 2, g.nx - 2]).with_offset([1, 1]);
                parallel_for_2d(space, interior, &f_step);
                {
                    let _r = kokkos_rs::profiling::region("bt:halo");
                    p.finish()?;
                }
                flush_ghost_debt(
                    space,
                    g,
                    &[acc_eta.clone(), acc_u.clone(), acc_v.clone()],
                    &mut debt,
                );
                // Boundary rim: the one-cell band around the owned block.
                for rp in [
                    MDRangePolicy2::new([1, g.nx]),
                    MDRangePolicy2::new([1, g.nx]).with_offset([g.ny - 1, 0]),
                    MDRangePolicy2::new([g.ny - 2, 1]).with_offset([1, 0]),
                    MDRangePolicy2::new([g.ny - 2, 1]).with_offset([1, g.nx - 1]),
                ] {
                    parallel_for_2d(space, rp, &f_step);
                }
            }
            None => {
                parallel_for_2d(space, policy, &f_step);
            }
        }
        // Asselin on the middle level, all three fields fused.
        parallel_for_2d(
            space,
            policy,
            &FunctorTriple2D {
                a: FunctorAsselin2D {
                    old: state.bt_eta[o].clone(),
                    cur: state.bt_eta[c].clone(),
                    new: state.bt_eta[n].clone(),
                },
                b: FunctorAsselin2D {
                    old: state.bt_u[o].clone(),
                    cur: state.bt_u[c].clone(),
                    new: state.bt_u[n].clone(),
                },
                c: FunctorAsselin2D {
                    old: state.bt_v[o].clone(),
                    cur: state.bt_v[c].clone(),
                    new: state.bt_v[n].clone(),
                },
            },
        );
        // Halo updates of the new level, then polar filter, then window
        // accumulation. Overlap mode defers whichever exchange comes last
        // (the bare `[n]` update, or the final filter pass's) into `pend`,
        // and accumulates owned cells now / ghost rectangles at `finish`.
        if overlap {
            let batch = [
                (&state.bt_eta[n], FoldKind::Scalar),
                (&state.bt_u[n], FoldKind::Vector),
                (&state.bt_v[n], FoldKind::Vector),
            ];
            if filter_passes == 0 {
                let _r = kokkos_rs::profiling::region("bt:halo");
                pend = Some(halo.begin_exchange_many(&batch, 500)?);
            } else {
                {
                    let _r = kokkos_rs::profiling::region("bt:halo");
                    halo.try_exchange_many(&batch, 500)?;
                }
                let filter_region = kokkos_rs::profiling::region("bt:filter");
                for pass in 0..filter_passes {
                    for field in [&state.bt_eta[n], &state.bt_u[n], &state.bt_v[n]] {
                        parallel_for_2d(
                            space,
                            policy,
                            &FunctorZonalFilter {
                                src: field.clone(),
                                dst: state.work.filter2.clone(),
                                rows: filter_rows.clone(),
                            },
                        );
                        parallel_for_2d(
                            space,
                            policy,
                            &FunctorCopy2D {
                                src: state.work.filter2.clone(),
                                dst: field.clone(),
                            },
                        );
                    }
                    if pass + 1 == filter_passes {
                        pend = Some(halo.begin_exchange_many(&batch, 530)?);
                    } else {
                        halo.try_exchange_many(&batch, 530)?;
                    }
                }
                drop(filter_region);
            }
            let own = MDRangePolicy2::new([g.ny, g.nx]).with_offset([H, H]);
            parallel_for_2d(
                space,
                own,
                &accum3(
                    &[acc_eta.clone(), acc_u.clone(), acc_v.clone()],
                    [&state.bt_eta[n], &state.bt_u[n], &state.bt_v[n]],
                ),
            );
            debt = Some([
                state.bt_eta[n].clone(),
                state.bt_u[n].clone(),
                state.bt_v[n].clone(),
            ]);
        } else {
            {
                let _r = kokkos_rs::profiling::region("bt:halo");
                halo.try_exchange(&state.bt_eta[n], FoldKind::Scalar, 500)?;
                halo.try_exchange(&state.bt_u[n], FoldKind::Vector, 510)?;
                halo.try_exchange(&state.bt_v[n], FoldKind::Vector, 520)?;
            }
            // Polar filter on the new level.
            let filter_region = kokkos_rs::profiling::region("bt:filter");
            for _ in 0..filter_passes {
                for (field, kind, base) in [
                    (&state.bt_eta[n], FoldKind::Scalar, 530u64),
                    (&state.bt_u[n], FoldKind::Vector, 540),
                    (&state.bt_v[n], FoldKind::Vector, 550),
                ] {
                    parallel_for_2d(
                        space,
                        policy,
                        &FunctorZonalFilter {
                            src: field.clone(),
                            dst: state.work.filter2.clone(),
                            rows: filter_rows.clone(),
                        },
                    );
                    parallel_for_2d(
                        space,
                        policy,
                        &FunctorCopy2D {
                            src: state.work.filter2.clone(),
                            dst: field.clone(),
                        },
                    );
                    halo.try_exchange(field, kind, base)?;
                }
            }
            drop(filter_region);
            // Accumulate window averages (full padded block: halos valid).
            parallel_for_2d(
                space,
                full,
                &accum3(
                    &[acc_eta.clone(), acc_u.clone(), acc_v.clone()],
                    [&state.bt_eta[n], &state.bt_u[n], &state.bt_v[n]],
                ),
            );
        }
        // Rotate (old ← cur ← new ← old).
        let t = o;
        o = c;
        c = n;
        n = t;
    }
    // Drain the pipeline: the final substep's exchange and its
    // accumulator ghost debt.
    if let Some(p) = pend.take() {
        let _r = kokkos_rs::profiling::region("bt:halo");
        p.finish()?;
    }
    flush_ghost_debt(
        space,
        g,
        &[acc_eta.clone(), acc_u.clone(), acc_v.clone()],
        &mut debt,
    );
    let _average = kokkos_rs::profiling::region("bt:average");
    let scale = 1.0 / substeps as f64;
    let nl = state.new_lev();
    parallel_for_2d(
        space,
        full,
        &FunctorTriple2D {
            a: FunctorScaleAssign2D {
                src: acc_eta,
                dst: state.eta[nl].clone(),
                scale,
            },
            b: FunctorScaleAssign2D {
                src: acc_u,
                dst: state.ubt.clone(),
                scale,
            },
            c: FunctorScaleAssign2D {
                src: acc_v,
                dst: state.vbt.clone(),
                scale,
            },
        },
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use kokkos_rs::{View, View3};

    fn views2(n: usize) -> (usize, usize) {
        (n + 2 * H, n + 2 * H)
    }

    #[test]
    fn bt_eta_flat_state_is_steady() {
        let (pj, pi) = views2(4);
        let f = FunctorBtEta {
            eta_old: View::host("eo", [pj, pi]),
            eta_new: View::host("en", [pj, pi]),
            ub: View::host("ub", [pj, pi]),
            vb: View::host("vb", [pj, pi]),
            depth: View::host("d", [pj, pi]),
            kmt: View::host("k", [pj, pi]),
            dxt: View::host("dx", [pj]),
            dyt: 1.0e5,
            dt2: 100.0,
        };
        f.depth.fill(4000.0);
        f.kmt.fill(5);
        f.dxt.fill(1.0e5);
        f.eta_old.fill(0.3);
        // No flow → continuity keeps eta.
        f.operator(1, 1);
        assert_eq!(f.eta_new.at(H + 1, H + 1), 0.3);
    }

    #[test]
    fn bt_eta_divergence_lowers_surface() {
        let (pj, pi) = views2(4);
        let f = FunctorBtEta {
            eta_old: View::host("eo", [pj, pi]),
            eta_new: View::host("en", [pj, pi]),
            ub: View::host("ub", [pj, pi]),
            vb: View::host("vb", [pj, pi]),
            depth: View::host("d", [pj, pi]),
            kmt: View::host("k", [pj, pi]),
            dxt: View::host("dx", [pj]),
            dyt: 1.0e5,
            dt2: 100.0,
        };
        f.depth.fill(4000.0);
        f.kmt.fill(5);
        f.dxt.fill(1.0e5);
        // Diverging zonal flow around the center cell: u > 0 east of it,
        // u < 0 west (corner velocities).
        for jl in 0..pj {
            for il in 0..pi {
                f.ub.set_at(jl, il, if il >= H + 2 { 0.1 } else { -0.1 });
            }
        }
        f.operator(2, 2); // cell (H+2, H+2): east face +, west face −
        assert!(
            f.eta_new.at(H + 2, H + 2) < 0.0,
            "divergence must lower eta: {}",
            f.eta_new.at(H + 2, H + 2)
        );
    }

    #[test]
    fn bt_vel_pressure_gradient_accelerates_downslope() {
        let (pj, pi) = views2(4);
        let f = FunctorBtVel {
            u_old: View::host("uo", [pj, pi]),
            v_old: View::host("vo", [pj, pi]),
            u_cur: View::host("uc", [pj, pi]),
            v_cur: View::host("vc", [pj, pi]),
            eta_cur: View::host("ec", [pj, pi]),
            u_new: View::host("un", [pj, pi]),
            v_new: View::host("vn", [pj, pi]),
            gu: View::host("gu", [pj, pi]),
            gv: View::host("gv", [pj, pi]),
            fcor: View::host("fc", [pj]),
            kmu: View::host("km", [pj, pi]),
            dxt: View::host("dx", [pj]),
            dyt: 1.0e5,
            dt2: 50.0,
        };
        f.kmu.fill(5);
        f.dxt.fill(1.0e5);
        // eta sloping up to the east: du/dt = -g deta/dx < 0.
        for jl in 0..pj {
            for il in 0..pi {
                f.eta_cur.set_at(jl, il, 0.01 * il as f64);
            }
        }
        f.operator(1, 1);
        let du = f.u_new.at(H + 1, H + 1);
        let expect = -GRAVITY * (0.01 / 1.0e5) * 50.0;
        assert!((du - expect).abs() < 1e-12, "du {du} vs analytic {expect}");
        assert_eq!(f.v_new.at(H + 1, H + 1), 0.0);
    }

    #[test]
    fn zonal_filter_damps_two_grid_wave_and_preserves_mean() {
        let (pj, pi) = views2(8);
        let src: kokkos_rs::View2<f64> = View::host("s", [pj, pi]);
        let dst: kokkos_rs::View2<f64> = View::host("d", [pj, pi]);
        let rows: View1<i32> = View::host("r", [pj]);
        rows.set_at(H + 1, 1);
        for il in 0..pi {
            // 2Δx wave on the flagged row, smooth on others.
            src.set_at(H + 1, il, if il % 2 == 0 { 1.0 } else { -1.0 });
            src.set_at(H + 2, il, 5.0);
        }
        let f = FunctorZonalFilter {
            src: src.clone(),
            dst: dst.clone(),
            rows,
        };
        for j in 0..8 {
            for i in 0..8 {
                f.operator(j, i);
            }
        }
        // 1-2-1 annihilates the 2Δx wave...
        for il in H..H + 8 {
            assert!(dst.at(H + 1, il).abs() < 1e-15);
        }
        // ...and leaves unflagged rows untouched.
        assert_eq!(dst.at(H + 2, H + 3), 5.0);
    }

    #[test]
    fn depth_mean_weights_by_thickness() {
        let (pj, pi) = views2(2);
        let nz = 3;
        let tend: View3<f64> = View::host("t", [nz, pj, pi]);
        let f = FunctorDepthMean {
            tend: tend.clone(),
            out: View::host("o", [pj, pi]),
            kmu: View::host("k", [pj, pi]),
            dz: View::host("dz", [nz]),
        };
        f.kmu.fill(3);
        f.dz.set_at(0, 10.0);
        f.dz.set_at(1, 20.0);
        f.dz.set_at(2, 70.0);
        tend.set_at(0, H, H, 1.0);
        tend.set_at(1, H, H, 2.0);
        tend.set_at(2, H, H, 3.0);
        f.operator(0, 0);
        let want = (10.0 + 40.0 + 210.0) / 100.0;
        assert!((f.out.at(H, H) - want).abs() < 1e-12);
    }

    #[test]
    fn stability_functions_registered() {
        register();
        // Registration is idempotent and names exist.
        let names: Vec<&str> = kokkos_rs::registry::registered_kernels()
            .iter()
            .map(|(n, _)| *n)
            .collect();
        assert!(names.contains(&"kernel_bt_eta"));
        assert!(names.contains(&"kernel_bt_vel"));
    }
}
