//! *canuto* vertical mixing and its load balancing (paper §V-C1).
//!
//! The canuto second-order-closure scheme assigns vertical viscosity and
//! diffusivity from the local gradient Richardson number
//! `Ri = N² / S²`. We use quasi-equilibrium stability functions with the
//! Canuto-scheme asymptotics — neutral-limit constants, convective
//! saturation for `Ri < 0`, and heat mixing shutting down faster than
//! momentum as stratification grows — in place of the full multi-term
//! closure (a fidelity simplification documented in DESIGN.md; the
//! computational *shape* — an expensive per-interface evaluation on ocean
//! columns only — is preserved, which is what the optimization targets).
//!
//! "The canuto parameterization calculation is the second most
//! computationally expensive kernel. This kernel is oriented vertically
//! in the downward direction when the Earth's surface is oceanic" — so on
//! a rectangular launch, ranks and CPEs assigned land do nothing while
//! ocean lanes grind: load imbalance. Three launch modes reproduce the
//! paper's progression:
//!
//! 1. [`FunctorCanutoRect`] — rectangle launch, land iterations idle
//!    (the "before" of Fig. 4);
//! 2. [`FunctorCanutoCols`] — the rank's wet columns packed densely as a
//!    [`kokkos_rs::ListPolicy`] with per-column depth costs (within-rank
//!    balancing, now in the generic dispatch layer);
//! 3. [`balanced_cross_rank`] — ranks even out their wet-column counts by
//!    shipping column inputs to under-loaded ranks and collecting the
//!    results (the full Fig. 4 scheme).
//!
//! All three produce **bitwise identical** coefficients.

use kokkos_rs::{Functor2D, FunctorList, IterCost, View1, View2, View3};
use mpi_sim::Comm;
use ocean_grid::{GRAVITY, RHO0};

use halo_exchange::HALO as H;

use crate::constants::{KH_BACKGROUND, KM_BACKGROUND, K_MAX};

/// Stability functions: `(s_m, s_h)` from the gradient Richardson number.
///
/// Deliberately iterative/expensive in the same way the real closure is:
/// a small fixed-point refinement models the scheme's implicit
/// turbulence-level equation.
pub fn stability_functions(ri: f64) -> (f64, f64) {
    if !ri.is_finite() {
        return (0.0, 0.0);
    }
    if ri < 0.0 {
        // Convective regime: saturated mixing.
        return (1.0, 1.0);
    }
    // Quasi-equilibrium fixed point: x = 1 / (1 + 10 Ri x)², solved by a
    // few damped iterations (converges for all Ri ≥ 0).
    let mut x: f64 = 1.0;
    for _ in 0..8 {
        let next = 1.0 / (1.0 + 10.0 * ri * x).powi(2);
        x = 0.5 * (x + next);
    }
    let s_m = x;
    let s_h = x / (1.0 + 3.0 * ri);
    (s_m, s_h)
}

/// Mixing coefficients from `Ri`: background plus closure contribution.
pub fn mixing_coefficients(ri: f64) -> (f64, f64) {
    let (s_m, s_h) = stability_functions(ri);
    (KM_BACKGROUND + K_MAX * s_m, KH_BACKGROUND + K_MAX * s_h)
}

/// The field set the column computation reads/writes.
#[derive(Clone)]
pub struct CanutoFields {
    pub rho: View3<f64>,
    pub u: View3<f64>,
    pub v: View3<f64>,
    /// Output: viscosity at interfaces (`nz+1` levels).
    pub km: View3<f64>,
    /// Output: diffusivity at interfaces.
    pub kh: View3<f64>,
    pub kmt: View2<i32>,
    pub z_t: View1<f64>,
    pub nz: usize,
}

impl CanutoFields {
    /// Shear-squared and buoyancy-frequency-squared at interface `k`
    /// (between layers `k-1` and `k`) of column `(jl, il)`.
    fn n2_s2(&self, k: usize, jl: usize, il: usize) -> (f64, f64) {
        let dzw = self.z_t.at(k) - self.z_t.at(k - 1);
        let n2 = GRAVITY / RHO0 * (self.rho.at(k, jl, il) - self.rho.at(k - 1, jl, il)) / dzw;
        // Velocity at the T column: average of the 4 surrounding corners.
        let uc = |kk: usize| {
            0.25 * (self.u.at(kk, jl, il)
                + self.u.at(kk, jl - 1, il)
                + self.u.at(kk, jl, il - 1)
                + self.u.at(kk, jl - 1, il - 1))
        };
        let vc = |kk: usize| {
            0.25 * (self.v.at(kk, jl, il)
                + self.v.at(kk, jl - 1, il)
                + self.v.at(kk, jl, il - 1)
                + self.v.at(kk, jl - 1, il - 1))
        };
        let du = (uc(k) - uc(k - 1)) / dzw;
        let dv = (vc(k) - vc(k - 1)) / dzw;
        (n2, du * du + dv * dv)
    }

    /// Full column evaluation: interfaces `1..kmt` get closure values,
    /// the rest background.
    pub fn compute_column(&self, jl: usize, il: usize) {
        let kmt = self.kmt.at(jl, il) as usize;
        for k in 0..=self.nz {
            if k >= 1 && k < kmt {
                let (n2, s2) = self.n2_s2(k, jl, il);
                let ri = n2 / s2.max(1e-12);
                let (km, kh) = mixing_coefficients(ri);
                self.km.set_at(k, jl, il, km);
                self.kh.set_at(k, jl, il, kh);
            } else {
                self.km.set_at(k, jl, il, KM_BACKGROUND);
                self.kh.set_at(k, jl, il, KH_BACKGROUND);
            }
        }
    }
}

/// Rectangle launch: every `(j, i)` iterated, land does (almost) nothing.
pub struct FunctorCanutoRect {
    pub f: CanutoFields,
}

impl Functor2D for FunctorCanutoRect {
    fn operator(&self, j: usize, i: usize) {
        self.f.compute_column(j + H, i + H);
    }

    fn cost(&self) -> IterCost {
        // ~90 flops per wet interface (fixed-point iterations included).
        IterCost {
            flops: 90 * self.f.nz as u64,
            bytes: 100 * self.f.nz as u64,
        }
    }
}

kokkos_rs::register_for_2d!(kernel_canuto_rect, FunctorCanutoRect);

/// Packed wet-column launch through the generic [`kokkos_rs::ListPolicy`]:
/// entry `idx` is a packed `jl * pi + il` wet column. The policy carries
/// the per-column wet depth as its cost, so every backend splits the
/// closure work by cumulative wet levels rather than column count.
/// (Successor of the bespoke `FunctorCanutoList`, which carried its own
/// index view.)
pub struct FunctorCanutoCols {
    pub f: CanutoFields,
    pub pi: usize,
}

impl FunctorList for FunctorCanutoCols {
    fn operator(&self, _n: usize, idx: u32) {
        let packed = idx as usize;
        self.f.compute_column(packed / self.pi, packed % self.pi);
    }

    fn cost(&self) -> IterCost {
        IterCost {
            flops: 90 * self.f.nz as u64,
            bytes: 100 * self.f.nz as u64,
        }
    }
}

kokkos_rs::register_for_list!(kernel_canuto_cols, FunctorCanutoCols);

/// Register this module's functors.
pub fn register() {
    kernel_canuto_rect();
    kernel_canuto_cols();
}

/// Evaluate the expensive closure for a buffer of `(n², s²)` interface
/// pairs (the unit of work shipped between ranks). Layout: for each
/// column, `nlev` pairs; output `(km, kh)` pairs in the same order.
pub fn evaluate_buffer(n2s2: &[f64]) -> Vec<f64> {
    assert_eq!(n2s2.len() % 2, 0);
    let mut out = Vec::with_capacity(n2s2.len());
    for pair in n2s2.chunks_exact(2) {
        let ri = pair[0] / pair[1].max(1e-12);
        let (km, kh) = mixing_coefficients(ri);
        out.push(km);
        out.push(kh);
    }
    out
}

/// Report of one balanced cross-rank canuto evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BalanceReport {
    pub local_columns: usize,
    pub columns_sent: usize,
    pub columns_received: usize,
    /// max/mean wet-column imbalance before balancing.
    pub imbalance_before: f64,
    /// max/mean of (local − sent + received) after balancing.
    pub imbalance_after: f64,
}

/// The full Fig. 4 scheme: gather per-rank wet-column counts, ship the
/// surplus columns' `(N², S²)` inputs from overloaded to under-loaded
/// ranks, evaluate everywhere, and return the coefficients to the owner.
/// Bitwise identical to evaluating locally.
///
/// `wet_cols` are this rank's packed wet columns (as in
/// [`FunctorCanutoCols`]). Columns are shipped from the tail of the list.
pub fn balanced_cross_rank(
    comm: &Comm,
    fields: &CanutoFields,
    wet_cols: &[i32],
    pi: usize,
) -> BalanceReport {
    let _r = kokkos_rs::profiling::region("canuto:balance");
    let nz = fields.nz;
    let nranks = comm.size();
    let counts: Vec<usize> = comm
        .allgather(vec![wet_cols.len()])
        .into_iter()
        .map(|v| v[0])
        .collect();
    let total: usize = counts.iter().sum();
    let fair = total.div_ceil(nranks.max(1));
    let mean = total as f64 / nranks as f64;
    let imbalance_before = if total == 0 {
        1.0
    } else {
        *counts.iter().max().unwrap() as f64 / mean.max(1e-9)
    };

    // Deterministic donor→receiver matching, in rank order.
    let mut surplus: Vec<(usize, usize)> = counts
        .iter()
        .enumerate()
        .filter(|(_, &c)| c > fair)
        .map(|(r, &c)| (r, c - fair))
        .collect();
    let mut deficit: Vec<(usize, usize)> = counts
        .iter()
        .enumerate()
        .filter(|(_, &c)| c < fair)
        .map(|(r, &c)| (r, fair - c))
        .collect();
    // transfers[(donor, receiver)] = n columns
    let mut transfers: Vec<(usize, usize, usize)> = Vec::new();
    let (mut si, mut di) = (0, 0);
    while si < surplus.len() && di < deficit.len() {
        let n = surplus[si].1.min(deficit[di].1);
        if n > 0 {
            transfers.push((surplus[si].0, deficit[di].0, n));
        }
        surplus[si].1 -= n;
        deficit[di].1 -= n;
        if surplus[si].1 == 0 {
            si += 1;
        }
        if deficit[di].1 == 0 {
            di += 1;
        }
    }

    let me = comm.rank();
    let mut sent = 0usize;
    let mut received = 0usize;

    // Donor side: evaluate the kept head locally, ship the tail inputs.
    let my_out: Vec<(usize, usize, usize)> = transfers
        .iter()
        .filter(|(d, _, _)| *d == me)
        .cloned()
        .collect();
    let total_out: usize = my_out.iter().map(|(_, _, n)| n).sum();
    let keep = wet_cols.len() - total_out;
    for &col in &wet_cols[..keep] {
        let p = col as usize;
        fields.compute_column(p / pi, p % pi);
    }
    // Fixed record size: nz-1 interface pairs per column (dry interfaces
    // padded with a s2<0 sentinel). Messages go through the pooled
    // send/recv path, so repeated balanced evaluations reuse buffers.
    let rec = (nz.saturating_sub(1)) * 2;
    // Pack tail inputs per receiver (in transfer order), straight into
    // the pooled message buffer.
    let mut cursor = keep;
    for &(_, recv, n) in &my_out {
        let cols = &wet_cols[cursor..cursor + n];
        comm.send_into(recv, 9000, n * rec, |buf| {
            let mut pos = 0;
            for &col in cols {
                let p = col as usize;
                let (jl, il) = (p / pi, p % pi);
                let kmt = fields.kmt.at(jl, il) as usize;
                for k in 1..=nz.saturating_sub(1) {
                    if k < kmt {
                        let (n2, s2) = fields.n2_s2(k, jl, il);
                        buf[pos] = n2;
                        buf[pos + 1] = s2;
                    } else {
                        buf[pos] = 0.0;
                        buf[pos + 1] = -1.0; // sentinel: background interface
                    }
                    pos += 2;
                }
            }
        });
        sent += n;
        cursor += n;
    }
    // Receiver side: evaluate shipped columns and send coefficients back.
    let my_in: Vec<(usize, usize, usize)> = transfers
        .iter()
        .filter(|(_, r, _)| *r == me)
        .cloned()
        .collect();
    for &(donor, _, n) in &my_in {
        comm.recv_into(donor, 9000, |buf| {
            assert_eq!(buf.len(), n * rec);
            comm.send_into(donor, 9001, buf.len(), |out| {
                for (pair, o) in buf.chunks_exact(2).zip(out.chunks_exact_mut(2)) {
                    if pair[1] < 0.0 {
                        o[0] = KM_BACKGROUND;
                        o[1] = KH_BACKGROUND;
                    } else {
                        let ri = pair[0] / pair[1].max(1e-12);
                        let (km, kh) = mixing_coefficients(ri);
                        o[0] = km;
                        o[1] = kh;
                    }
                }
            });
        });
        received += n;
    }
    // Donor collects results and writes them into km/kh.
    let mut cursor = keep;
    for &(_, recv, n) in &my_out {
        let cols = &wet_cols[cursor..cursor + n];
        comm.recv_into(recv, 9001, |out| {
            assert_eq!(out.len(), n * rec);
            for (ci, &col) in cols.iter().enumerate() {
                let p = col as usize;
                let (jl, il) = (p / pi, p % pi);
                // Surface and bottom interfaces are background, as in
                // compute_column.
                let kmt = fields.kmt.at(jl, il) as usize;
                for k in 0..=nz {
                    let (km, kh) = if k >= 1 && k < kmt && k < nz {
                        let off = ci * rec + (k - 1) * 2;
                        (out[off], out[off + 1])
                    } else {
                        (KM_BACKGROUND, KH_BACKGROUND)
                    };
                    fields.km.set_at(k, jl, il, km);
                    fields.kh.set_at(k, jl, il, kh);
                }
            }
        });
        cursor += n;
    }

    let after_local = keep + received;
    let after: Vec<usize> = comm
        .allgather(vec![after_local])
        .into_iter()
        .map(|v| v[0])
        .collect();
    let imbalance_after = if total == 0 {
        1.0
    } else {
        *after.iter().max().unwrap() as f64 / mean.max(1e-9)
    };
    BalanceReport {
        local_columns: wet_cols.len(),
        columns_sent: sent,
        columns_received: received,
        imbalance_before,
        imbalance_after,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stability_functions_asymptotics() {
        let (sm0, sh0) = stability_functions(0.0);
        assert!((sm0 - 1.0).abs() < 1e-9, "neutral momentum: {sm0}");
        assert!((sh0 - 1.0).abs() < 1e-9);
        // Convective saturation.
        assert_eq!(stability_functions(-3.0), (1.0, 1.0));
        // Strong stratification kills mixing, heat faster than momentum.
        let (sm, sh) = stability_functions(5.0);
        assert!(sm < 0.1, "s_m(5) = {sm}");
        assert!(sh < sm, "s_h must shut down faster");
        // Monotone decreasing in Ri.
        let mut prev = 2.0;
        for i in 0..40 {
            let ri = i as f64 * 0.25;
            let (sm, _) = stability_functions(ri);
            assert!(sm <= prev + 1e-12);
            prev = sm;
        }
    }

    #[test]
    fn coefficients_bounded() {
        for ri in [-10.0, -0.1, 0.0, 0.3, 2.0, 100.0] {
            let (km, kh) = mixing_coefficients(ri);
            assert!((KM_BACKGROUND..=K_MAX + KM_BACKGROUND).contains(&km));
            assert!((KH_BACKGROUND..=K_MAX + KH_BACKGROUND).contains(&kh));
        }
    }

    #[test]
    fn evaluate_buffer_matches_pointwise() {
        let inputs = vec![1e-5, 1e-6, -1e-5, 1e-6, 0.0, 1e-4];
        let out = evaluate_buffer(&inputs);
        for (pair, got) in inputs.chunks_exact(2).zip(out.chunks_exact(2)) {
            let want = mixing_coefficients(pair[0] / pair[1].max(1e-12));
            assert_eq!((got[0], got[1]), want);
        }
    }
}
