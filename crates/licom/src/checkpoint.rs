//! CRC-protected checkpoint ring and rollback-and-replay recovery.
//!
//! The restart files in [`crate::io`] assume a clean shutdown. This module
//! is the *in-campaign* safety net: a ring of K per-rank checkpoints, each
//! field protected by a CRC32, written atomically (tmp + fsync + rename)
//! so a crash mid-write can never destroy the previous good slot. When a
//! step fails — a halo strip unrecoverable after retries, a physics guard
//! trip — [`crate::Model::run_steps_resilient`] agrees collectively on the
//! newest checkpoint *every* rank can verify, restores it, and replays.
//! Replay is deterministic (same seeds, same reduction order on every
//! backend), so a recovered run is bitwise identical to a fault-free one.
//!
//! The serialized image is a plain byte buffer (see [`encode`]/[`decode`])
//! so corruption handling can be tested without a model: `decode` returns
//! a typed [`CheckpointError`] on any malformed input and never panics.

use std::io::Write;
use std::path::PathBuf;

use mpi_sim::{crc32_f64, ReduceOp};

use crate::model::{Model, StepError};
use crate::timers::Timers;

const MAGIC: &[u8; 8] = b"LICOMCKP";
const VERSION: u64 = 1;
/// Sanity cap on field-name length; real names are < 16 bytes.
const MAX_NAME: usize = 256;

/// Errors from checkpoint encode/decode/restore. Malformed or corrupt
/// input always surfaces here — never as a panic.
#[derive(Debug)]
pub enum CheckpointError {
    Io(std::io::Error),
    /// Not a checkpoint, wrong version, or structurally malformed.
    Format(String),
    /// Structure is intact but a field's CRC does not match.
    Corrupt {
        field: String,
    },
    /// Valid checkpoint for a different geometry/rank layout.
    Mismatch(String),
    /// No slot that every rank can verify exists.
    NoUsableCheckpoint,
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::Format(m) => write!(f, "checkpoint format error: {m}"),
            CheckpointError::Corrupt { field } => {
                write!(f, "checkpoint field '{field}' failed CRC verification")
            }
            CheckpointError::Mismatch(m) => write!(f, "checkpoint mismatch: {m}"),
            CheckpointError::NoUsableCheckpoint => {
                write!(f, "no checkpoint verifiable on every rank")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

/// In-memory image of one rank's checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointData {
    /// Global grid extents and rank layout: `[nx, ny, nz, rank, size]`.
    pub geometry: [u64; 5],
    /// Model step count the state corresponds to.
    pub step: u64,
    /// Named prognostic arrays, in a fixed order.
    pub fields: Vec<(String, Vec<f64>)>,
}

/// Serialize a checkpoint image. Layout (little-endian): magic, version,
/// geometry, step, field count, then per field
/// `[name_len][name][len][crc32][data…]`.
pub fn encode(ck: &CheckpointData) -> Vec<u8> {
    let payload: usize = ck
        .fields
        .iter()
        .map(|(n, d)| 8 + n.len() + 16 + 8 * d.len())
        .sum();
    let mut out = Vec::with_capacity(8 + 8 * 8 + payload);
    out.extend_from_slice(MAGIC);
    for v in [VERSION]
        .iter()
        .chain(ck.geometry.iter())
        .chain([ck.step, ck.fields.len() as u64].iter())
    {
        out.extend_from_slice(&v.to_le_bytes());
    }
    for (name, data) in &ck.fields {
        out.extend_from_slice(&(name.len() as u64).to_le_bytes());
        out.extend_from_slice(name.as_bytes());
        out.extend_from_slice(&(data.len() as u64).to_le_bytes());
        out.extend_from_slice(&(crc32_f64(data) as u64).to_le_bytes());
        for &x in data {
            out.extend_from_slice(&x.to_le_bytes());
        }
    }
    out
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        if self.buf.len() - self.pos < n {
            return Err(CheckpointError::Format(format!(
                "truncated at byte {} (need {n} more)",
                self.pos
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

/// Deserialize and fully verify a checkpoint image. Every field's CRC is
/// checked; any structural damage yields a typed error, never a panic or
/// an unbounded allocation.
pub fn decode(buf: &[u8]) -> Result<CheckpointData, CheckpointError> {
    let mut c = Cursor { buf, pos: 0 };
    if c.take(8)? != MAGIC {
        return Err(CheckpointError::Format("bad magic".into()));
    }
    let version = c.u64()?;
    if version != VERSION {
        return Err(CheckpointError::Format(format!(
            "unsupported version {version}"
        )));
    }
    let mut geometry = [0u64; 5];
    for g in geometry.iter_mut() {
        *g = c.u64()?;
    }
    let step = c.u64()?;
    let nfields = c.u64()? as usize;
    // Each field needs ≥ 24 bytes of framing; reject absurd counts before
    // reserving anything.
    if nfields > c.remaining() / 24 + 1 {
        return Err(CheckpointError::Format(format!(
            "field count {nfields} impossible for {} remaining bytes",
            c.remaining()
        )));
    }
    let mut fields = Vec::with_capacity(nfields);
    for _ in 0..nfields {
        let name_len = c.u64()? as usize;
        if name_len > MAX_NAME {
            return Err(CheckpointError::Format(format!(
                "field name length {name_len} exceeds cap {MAX_NAME}"
            )));
        }
        let name = String::from_utf8_lossy(c.take(name_len)?).into_owned();
        let len = c.u64()? as usize;
        let crc = c.u64()?;
        // Length is validated against the actual remaining bytes before
        // the data allocation happens inside take().
        let raw =
            c.take(len.checked_mul(8).ok_or_else(|| {
                CheckpointError::Format(format!("field '{name}' length overflow"))
            })?)?;
        let data: Vec<f64> = raw
            .chunks_exact(8)
            .map(|b| f64::from_le_bytes(b.try_into().unwrap()))
            .collect();
        if crc32_f64(&data) as u64 != crc {
            return Err(CheckpointError::Corrupt { field: name });
        }
        fields.push((name, data));
    }
    if c.remaining() != 0 {
        return Err(CheckpointError::Format(format!(
            "{} trailing bytes",
            c.remaining()
        )));
    }
    Ok(CheckpointData {
        geometry,
        step,
        fields,
    })
}

/// The prognostic snapshot a checkpoint carries: the same field set as the
/// restart files (leapfrog roles of u/v/t/s/eta plus barotropic ubt/vbt).
fn capture(m: &Model) -> CheckpointData {
    let mut fields = Vec::with_capacity(17);
    for (role, lev) in [
        ("old", m.state.old()),
        ("cur", m.state.cur()),
        ("new", m.state.new_lev()),
    ] {
        fields.push((format!("u_{role}"), m.state.u[lev].to_vec()));
        fields.push((format!("v_{role}"), m.state.v[lev].to_vec()));
        fields.push((format!("t_{role}"), m.state.t[lev].to_vec()));
        fields.push((format!("s_{role}"), m.state.s[lev].to_vec()));
        fields.push((format!("eta_{role}"), m.state.eta[lev].to_vec()));
    }
    fields.push(("ubt".into(), m.state.ubt.to_vec()));
    fields.push(("vbt".into(), m.state.vbt.to_vec()));
    CheckpointData {
        geometry: [
            m.cfg.nx as u64,
            m.cfg.ny as u64,
            m.cfg.nz as u64,
            m.comm().rank() as u64,
            m.comm().size() as u64,
        ],
        step: m.steps_taken(),
        fields,
    }
}

/// Load a verified image back into the model's prognostic state. The
/// caller is responsible for [`Model::reset_transients`] afterwards.
fn apply(m: &mut Model, ck: &CheckpointData) -> Result<(), CheckpointError> {
    let want = [
        m.cfg.nx as u64,
        m.cfg.ny as u64,
        m.cfg.nz as u64,
        m.comm().rank() as u64,
        m.comm().size() as u64,
    ];
    if ck.geometry != want {
        return Err(CheckpointError::Mismatch(format!(
            "checkpoint geometry {:?} vs model {:?}",
            ck.geometry, want
        )));
    }
    let expect = capture(m);
    if ck.fields.len() != expect.fields.len() {
        return Err(CheckpointError::Mismatch(format!(
            "{} fields, model expects {}",
            ck.fields.len(),
            expect.fields.len()
        )));
    }
    // Validate all names/lengths first so a mismatch cannot leave the
    // state half-restored.
    for ((name, data), (want_name, want_data)) in ck.fields.iter().zip(expect.fields.iter()) {
        if name != want_name || data.len() != want_data.len() {
            return Err(CheckpointError::Mismatch(format!(
                "field '{name}' ({} values) where '{want_name}' ({}) expected",
                data.len(),
                want_data.len()
            )));
        }
    }
    let mut it = ck.fields.iter();
    for (role, lev) in [
        ("old", m.state.old()),
        ("cur", m.state.cur()),
        ("new", m.state.new_lev()),
    ] {
        let _ = role;
        m.state.u[lev].copy_from_slice(&it.next().unwrap().1);
        m.state.v[lev].copy_from_slice(&it.next().unwrap().1);
        m.state.t[lev].copy_from_slice(&it.next().unwrap().1);
        m.state.s[lev].copy_from_slice(&it.next().unwrap().1);
        m.state.eta[lev].copy_from_slice(&it.next().unwrap().1);
    }
    m.state.ubt.copy_from_slice(&it.next().unwrap().1);
    m.state.vbt.copy_from_slice(&it.next().unwrap().1);
    Ok(())
}

/// A bounded ring of atomic per-rank checkpoints.
pub struct CheckpointManager {
    dir: PathBuf,
    ring: usize,
    next_slot: usize,
    written: u64,
}

impl CheckpointManager {
    /// Checkpoints go to `dir`, cycling through `ring` slots (≥ 1).
    pub fn new(dir: impl Into<PathBuf>, ring: usize) -> Self {
        Self {
            dir: dir.into(),
            ring: ring.max(1),
            next_slot: 0,
            written: 0,
        }
    }

    /// Checkpoints written so far through this manager.
    pub fn checkpoints_written(&self) -> u64 {
        self.written
    }

    fn slot_path(&self, slot: usize, rank: usize) -> PathBuf {
        self.dir.join(format!("ckpt_slot{slot}_rank{rank:05}.bin"))
    }

    /// Write this rank's checkpoint into the next ring slot: tmp file,
    /// fsync, atomic rename. A crash at any point leaves either the old
    /// slot or the new one — never a torn file.
    pub fn save(&mut self, m: &Model) -> Result<(), CheckpointError> {
        std::fs::create_dir_all(&self.dir)?;
        let bytes = encode(&capture(m));
        let path = self.slot_path(self.next_slot, m.comm().rank());
        let tmp = path.with_extension("tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, &path)?;
        m.flight_note(
            mpi_sim::flight::FlightEventKind::CheckpointSave,
            m.steps_taken(),
            self.next_slot as u64,
            bytes.len() as u64,
        );
        self.next_slot = (self.next_slot + 1) % self.ring;
        self.written += 1;
        Ok(())
    }

    /// Newest step this rank can fully verify (decode + CRC + geometry),
    /// with the slot image. Unreadable or corrupt slots are skipped, not
    /// errors — that is the failure mode the ring exists for.
    fn latest_good(&self, m: &Model) -> Option<CheckpointData> {
        let mut best: Option<CheckpointData> = None;
        for slot in 0..self.ring {
            let path = self.slot_path(slot, m.comm().rank());
            let Ok(bytes) = std::fs::read(&path) else {
                continue;
            };
            let Ok(ck) = decode(&bytes) else { continue };
            if best.as_ref().is_none_or(|b| ck.step > b.step) {
                best = Some(ck);
            }
        }
        best
    }

    /// Collectively restore the newest checkpoint step that **every**
    /// rank can verify, returning that step. Uses a min-allreduce so all
    /// ranks agree even when some have newer (or corrupted) slots.
    pub fn restore_latest_collective(&self, m: &mut Model) -> Result<u64, CheckpointError> {
        let local = self.latest_good(m);
        let local_step = local.as_ref().map_or(-1.0, |ck| ck.step as f64);
        let agreed = m.comm().allreduce_f64(local_step, ReduceOp::Min);
        if agreed < 0.0 {
            return Err(CheckpointError::NoUsableCheckpoint);
        }
        let step = agreed as u64;
        // The agreed step may be older than this rank's newest slot; find
        // the matching one.
        let ck = if local.as_ref().map(|ck| ck.step) == Some(step) {
            local.unwrap()
        } else {
            (0..self.ring)
                .filter_map(|slot| {
                    std::fs::read(self.slot_path(slot, m.comm().rank()))
                        .ok()
                        .and_then(|b| decode(&b).ok())
                })
                .find(|ck| ck.step == step)
                .ok_or(CheckpointError::NoUsableCheckpoint)?
        };
        apply(m, &ck)?;
        m.reset_transients();
        m.set_steps_taken(step);
        m.flight_note(
            mpi_sim::flight::FlightEventKind::CheckpointRestore,
            step,
            0,
            0,
        );
        Ok(step)
    }
}

/// When to checkpoint and how hard to try before giving up.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryPolicy {
    /// Write a checkpoint every this many completed steps.
    pub checkpoint_every: u64,
    /// Rollbacks tolerated across the whole run before surfacing failure.
    pub max_rollbacks: u32,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        Self {
            checkpoint_every: 5,
            max_rollbacks: 8,
        }
    }
}

/// What a resilient run did.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RecoveryStats {
    pub steps_completed: u64,
    pub rollbacks: u32,
    pub steps_replayed: u64,
    pub halo_errors: u64,
    pub guard_trips: u64,
    /// Physics drift trips escalated by the telemetry monitor
    /// ([`crate::telemetry::TelemetryConfig::escalate`]).
    pub drift_trips: u64,
    pub checkpoints_written: u64,
}

/// A resilient run that could not reach its target.
#[derive(Debug)]
pub enum RecoveryError {
    /// `max_rollbacks` exceeded; the last step error is attached.
    RollbackBudgetExhausted {
        stats: RecoveryStats,
        last: Option<StepError>,
    },
    /// Rollback itself failed (no usable checkpoint, I/O error, …).
    Checkpoint(CheckpointError),
}

impl From<CheckpointError> for RecoveryError {
    fn from(e: CheckpointError) -> Self {
        RecoveryError::Checkpoint(e)
    }
}

impl std::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryError::RollbackBudgetExhausted { stats, last } => write!(
                f,
                "rollback budget exhausted after {} rollbacks (last error: {})",
                stats.rollbacks,
                last.as_ref().map_or("none".into(), |e| e.to_string())
            ),
            RecoveryError::Checkpoint(e) => write!(f, "recovery failed: {e}"),
        }
    }
}

impl std::error::Error for RecoveryError {}

fn publish(timers: &mut Timers, stats: &RecoveryStats) {
    timers.add_count("rollbacks", stats.rollbacks as u64);
    timers.add_count("steps_replayed", stats.steps_replayed);
    timers.add_count("halo_errors", stats.halo_errors);
    timers.add_count("guard_trips", stats.guard_trips);
    timers.add_count("escalated_drift_trips", stats.drift_trips);
    timers.add_count("checkpoints_written", stats.checkpoints_written);
}

impl Model {
    /// Advance to `target` total steps, surviving step failures by
    /// rolling back to the newest collectively-verified checkpoint and
    /// replaying. A baseline checkpoint is written before the first step
    /// so rollback is always possible.
    ///
    /// Every step ends with a one-value status vote (min-allreduce over
    /// ok/fail): either *all* ranks commit the step or *all* roll back,
    /// so a failure on one rank can never fork the ensemble. Requires
    /// integrity framing ([`crate::model::ModelOptions::integrity`]) so a
    /// mid-step abort on one rank times out — not deadlocks — its peers.
    pub fn run_steps_resilient(
        &mut self,
        target: u64,
        mgr: &mut CheckpointManager,
        policy: &RecoveryPolicy,
    ) -> Result<RecoveryStats, RecoveryError> {
        assert!(
            self.opts.integrity,
            "run_steps_resilient requires ModelOptions::integrity"
        );
        let mut stats = RecoveryStats::default();
        let mut last_err: Option<StepError> = None;
        // Window every monotone counter against its value at entry: the
        // manager and the transport both outlive this call, so a resumed
        // run re-publishing their lifetime totals would double-count
        // earlier windows in the timers report.
        let t0 = self.comm().traffic();
        let ckpt0 = mgr.checkpoints_written();
        if self.steps_taken() < target {
            mgr.save(self)?;
        }
        let mut since_ckpt: u64 = 0;
        let mut replaying_to: u64 = 0;
        while self.steps_taken() < target {
            // Pin the step number being attempted *before* stepping: a
            // rank whose own try_step succeeds (its carried exchanges
            // completed before a peer aborted) has already advanced
            // steps_taken when the vote fails, and using the advanced
            // value would overcount its replay window by one.
            let attempted = self.steps_taken() + 1;
            let res = self.try_step();
            let ok = match &res {
                Ok(()) => true,
                Err(e) => {
                    match e {
                        StepError::Halo(_) => stats.halo_errors += 1,
                        StepError::Guard(_) => stats.guard_trips += 1,
                        StepError::Drift(_) => stats.drift_trips += 1,
                    }
                    last_err = Some(res.unwrap_err());
                    false
                }
            };
            // Status vote: the step is committed only if every rank
            // finished it cleanly. Min over {0,1} = logical AND.
            let all_ok = self
                .comm()
                .allreduce_f64(if ok { 1.0 } else { 0.0 }, ReduceOp::Min)
                > 0.5;
            if all_ok {
                stats.steps_completed += 1;
                if self.steps_taken() < replaying_to {
                    stats.steps_replayed += 1;
                }
                since_ckpt += 1;
                if since_ckpt >= policy.checkpoint_every && self.steps_taken() < target {
                    mgr.save(self)?;
                    since_ckpt = 0;
                }
            } else {
                stats.rollbacks += 1;
                // The flight recorder black-boxes both rollback exits:
                // budget exhaustion is a terminal failure edge, and even
                // a recoverable rollback is worth a bundle (claim-once
                // per world means only the first incident writes).
                self.flight_note(
                    mpi_sim::flight::FlightEventKind::Rollback,
                    attempted,
                    u64::from(stats.rollbacks),
                    0,
                );
                if stats.rollbacks > policy.max_rollbacks {
                    self.dump_flight("rollback-budget-exhausted");
                    stats.checkpoints_written = mgr.checkpoints_written() - ckpt0;
                    publish(&mut self.timers, &stats);
                    self.fold_traffic_window(&t0);
                    return Err(RecoveryError::RollbackBudgetExhausted {
                        stats,
                        last: last_err,
                    });
                }
                self.dump_flight("rollback");
                replaying_to = replaying_to.max(attempted);
                mgr.restore_latest_collective(self)?;
                since_ckpt = 0;
            }
        }
        stats.checkpoints_written = mgr.checkpoints_written() - ckpt0;
        publish(&mut self.timers, &stats);
        self.fold_traffic_window(&t0);
        Ok(stats)
    }

    /// Fold the transport's fault/recovery counters accumulated since the
    /// `t0` snapshot into the timers so one report shows the whole story.
    /// Runs on both the success and the budget-exhausted exit of
    /// [`Model::run_steps_resilient`] — skipping it on the error path
    /// would silently lose the failed window's retries from the report.
    fn fold_traffic_window(&mut self, t0: &mpi_sim::TrafficSnapshot) {
        let w = self.comm().traffic().delta(t0);
        self.timers
            .add_count("faults_injected", w.faults_injected());
        self.timers.add_count("crc_failures", w.crc_failures);
        self.timers.add_count("halo_retries", w.halo_retries);
        self.timers.add_count("resends_served", w.resends_served);
        self.timers.add_count("recv_timeouts", w.recv_timeouts);
        self.timers.add_count("rank_stalls", w.rank_stalls);
    }
}

/// Convenience: `slot_path` naming, exposed for tests and tooling.
pub fn slot_file_name(slot: usize, rank: usize) -> String {
    format!("ckpt_slot{slot}_rank{rank:05}.bin")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CheckpointData {
        CheckpointData {
            geometry: [16, 10, 5, 0, 1],
            step: 42,
            fields: vec![
                ("u_cur".into(), vec![1.5, -2.25, 0.0, f64::MIN_POSITIVE]),
                ("eta_cur".into(), vec![0.125; 7]),
            ],
        }
    }

    #[test]
    fn encode_decode_roundtrips() {
        let ck = sample();
        assert_eq!(decode(&encode(&ck)).unwrap(), ck);
    }

    #[test]
    fn payload_corruption_is_typed_not_panic() {
        let mut bytes = encode(&sample());
        let n = bytes.len();
        bytes[n - 3] ^= 0x40; // inside the last field's data
        match decode(&bytes) {
            Err(CheckpointError::Corrupt { field }) => assert_eq!(field, "eta_cur"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn truncation_and_garbage_are_typed_not_panic() {
        let bytes = encode(&sample());
        for cut in [0, 1, 7, 8, 20, bytes.len() - 1] {
            assert!(decode(&bytes[..cut]).is_err(), "cut at {cut} must error");
        }
        assert!(decode(b"not a checkpoint at all").is_err());
        // Absurd field count must not allocate or panic.
        let mut evil = bytes.clone();
        let nfields_off = 8 + 8 * 7;
        evil[nfields_off..nfields_off + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(decode(&evil).is_err());
    }
}
