//! Diagnostics: energy, tracer inventories, and the Rossby number field
//! used for the paper's submesoscale analysis (Fig. 6).

use kokkos_rs::{
    parallel_for_2d, parallel_reduce_2d, parallel_reduce_3d, Functor2D, IterCost, MDRangePolicy2,
    MDRangePolicy3, ReduceFunctor2D, ReduceFunctor3D, Reducer, Space, View1, View2, View3,
};

use halo_exchange::HALO as H;

use crate::localgrid::LocalGrid;

/// Σ ½(u²+v²)·dz·area over wet corners (J/kg·m³ ~ per unit density).
pub struct ReduceKineticEnergy {
    pub u: View3<f64>,
    pub v: View3<f64>,
    pub kmu: View2<i32>,
    pub dz: View1<f64>,
    pub dxt: View1<f64>,
    pub dyt: f64,
}

impl ReduceFunctor3D for ReduceKineticEnergy {
    fn contribute(&self, k: usize, j: usize, i: usize, acc: &mut f64) {
        let (jl, il) = (j + H, i + H);
        if self.kmu.at(jl, il) <= k as i32 {
            return;
        }
        let u = self.u.at(k, jl, il);
        let v = self.v.at(k, jl, il);
        let area = 0.5 * (self.dxt.at(jl) + self.dxt.at(jl + 1)) * self.dyt;
        *acc += 0.5 * (u * u + v * v) * self.dz.at(k) * area;
    }

    fn cost(&self) -> IterCost {
        IterCost {
            flops: 9,
            bytes: 50,
        }
    }
}

kokkos_rs::register_reduce_3d!(kernel_reduce_ke, ReduceKineticEnergy);

/// Σ q·dz·area over wet cells (tracer inventory; conservation tests).
pub struct ReduceTracerTotal {
    pub q: View3<f64>,
    pub kmt: View2<i32>,
    pub dz: View1<f64>,
    pub dxt: View1<f64>,
    pub dyt: f64,
}

impl ReduceFunctor3D for ReduceTracerTotal {
    fn contribute(&self, k: usize, j: usize, i: usize, acc: &mut f64) {
        let (jl, il) = (j + H, i + H);
        if self.kmt.at(jl, il) <= k as i32 {
            return;
        }
        *acc += self.q.at(k, jl, il) * self.dz.at(k) * self.dxt.at(jl) * self.dyt;
    }

    fn cost(&self) -> IterCost {
        IterCost {
            flops: 4,
            bytes: 40,
        }
    }
}

kokkos_rs::register_reduce_3d!(kernel_reduce_tracer, ReduceTracerTotal);

/// max |q| over wet cells (CFL / blow-up sentinel).
pub struct ReduceMaxAbs {
    pub q: View3<f64>,
    pub kmt: View2<i32>,
}

impl ReduceFunctor3D for ReduceMaxAbs {
    fn contribute(&self, k: usize, j: usize, i: usize, acc: &mut f64) {
        let (jl, il) = (j + H, i + H);
        if self.kmt.at(jl, il) <= k as i32 {
            return;
        }
        *acc = acc.max(self.q.at(k, jl, il).abs());
    }

    fn cost(&self) -> IterCost {
        IterCost {
            flops: 2,
            bytes: 16,
        }
    }
}

kokkos_rs::register_reduce_3d!(kernel_reduce_max_abs, ReduceMaxAbs);

/// Mean SST over wet surface cells: returns Σ sst·area (divide by Σ area).
pub struct ReduceSstArea {
    pub t: View3<f64>,
    pub kmt: View2<i32>,
    pub dxt: View1<f64>,
    pub dyt: f64,
    /// false → accumulate area only; true → accumulate sst·area.
    pub weighted: bool,
}

impl ReduceFunctor2D for ReduceSstArea {
    fn contribute(&self, j: usize, i: usize, acc: &mut f64) {
        let (jl, il) = (j + H, i + H);
        if self.kmt.at(jl, il) == 0 {
            return;
        }
        let area = self.dxt.at(jl) * self.dyt;
        *acc += if self.weighted {
            self.t.at(0, jl, il) * area
        } else {
            area
        };
    }

    fn cost(&self) -> IterCost {
        IterCost {
            flops: 3,
            bytes: 30,
        }
    }
}

kokkos_rs::register_reduce_2d!(kernel_reduce_sst, ReduceSstArea);

/// Surface Rossby number `Ro = ζ/f` at T cells: the submesoscale
/// activity metric of Fig. 6 (`|Ro| ~ O(1)` marks active submesoscales).
pub struct FunctorRossby {
    pub u: View3<f64>,
    pub v: View3<f64>,
    pub out: View2<f64>,
    pub kmt: View2<i32>,
    pub fcor: View1<f64>,
    pub dxt: View1<f64>,
    pub dyt: f64,
}

impl Functor2D for FunctorRossby {
    fn operator(&self, j: usize, i: usize) {
        let (jl, il) = (j + H, i + H);
        if self.kmt.at(jl, il) == 0 {
            self.out.set_at(jl, il, 0.0);
            return;
        }
        // ζ at the T center from the 4 surrounding corners.
        let ve = 0.5 * (self.v.at(0, jl, il) + self.v.at(0, jl - 1, il));
        let vw = 0.5 * (self.v.at(0, jl, il - 1) + self.v.at(0, jl - 1, il - 1));
        let un = 0.5 * (self.u.at(0, jl, il) + self.u.at(0, jl, il - 1));
        let us = 0.5 * (self.u.at(0, jl - 1, il) + self.u.at(0, jl - 1, il - 1));
        let zeta = (ve - vw) / self.dxt.at(jl) - (un - us) / self.dyt;
        let f = self.fcor.at(jl);
        let ro = if f.abs() < 1e-9 { 0.0 } else { zeta / f };
        self.out.set_at(jl, il, ro);
    }

    fn cost(&self) -> IterCost {
        IterCost {
            flops: 14,
            bytes: 90,
        }
    }
}

kokkos_rs::register_for_2d!(kernel_rossby, FunctorRossby);

/// Register this module's functors.
pub fn register() {
    kernel_reduce_ke();
    kernel_reduce_tracer();
    kernel_reduce_max_abs();
    kernel_reduce_sst();
    kernel_rossby();
}

/// Scalar diagnostics of one rank's state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Diagnostics {
    pub kinetic_energy: f64,
    pub heat_content: f64,
    pub salt_content: f64,
    pub max_speed: f64,
    pub mean_sst: f64,
}

/// Compute local (per-rank) diagnostics. Summation is tile-ordered and
/// deterministic; combine across ranks with `allreduce` as needed.
pub fn local_diagnostics(
    space: &Space,
    g: &LocalGrid,
    u: &View3<f64>,
    v: &View3<f64>,
    t: &View3<f64>,
    s: &View3<f64>,
) -> Diagnostics {
    let p3 = MDRangePolicy3::new([g.nz, g.ny, g.nx]);
    let p2 = MDRangePolicy2::new([g.ny, g.nx]);
    let ke = parallel_reduce_3d(
        space,
        p3,
        &ReduceKineticEnergy {
            u: u.clone(),
            v: v.clone(),
            kmu: g.kmu.clone(),
            dz: g.dz.clone(),
            dxt: g.dxt.clone(),
            dyt: g.dyt,
        },
        Reducer::Sum,
    );
    let heat = parallel_reduce_3d(
        space,
        p3,
        &ReduceTracerTotal {
            q: t.clone(),
            kmt: g.kmt.clone(),
            dz: g.dz.clone(),
            dxt: g.dxt.clone(),
            dyt: g.dyt,
        },
        Reducer::Sum,
    );
    let salt = parallel_reduce_3d(
        space,
        p3,
        &ReduceTracerTotal {
            q: s.clone(),
            kmt: g.kmt.clone(),
            dz: g.dz.clone(),
            dxt: g.dxt.clone(),
            dyt: g.dyt,
        },
        Reducer::Sum,
    );
    let max_u = parallel_reduce_3d(
        space,
        p3,
        &ReduceMaxAbs {
            q: u.clone(),
            kmt: g.kmu_as_kmt(),
        },
        Reducer::Max,
    );
    let max_v = parallel_reduce_3d(
        space,
        p3,
        &ReduceMaxAbs {
            q: v.clone(),
            kmt: g.kmu_as_kmt(),
        },
        Reducer::Max,
    );
    let sst_sum = parallel_reduce_2d(
        space,
        p2,
        &ReduceSstArea {
            t: t.clone(),
            kmt: g.kmt.clone(),
            dxt: g.dxt.clone(),
            dyt: g.dyt,
            weighted: true,
        },
        Reducer::Sum,
    );
    let area = parallel_reduce_2d(
        space,
        p2,
        &ReduceSstArea {
            t: t.clone(),
            kmt: g.kmt.clone(),
            dxt: g.dxt.clone(),
            dyt: g.dyt,
            weighted: false,
        },
        Reducer::Sum,
    );
    Diagnostics {
        kinetic_energy: ke,
        heat_content: heat,
        salt_content: salt,
        max_speed: max_u.max(max_v).max(0.0),
        mean_sst: if area > 0.0 { sst_sum / area } else { 0.0 },
    }
}

impl LocalGrid {
    /// The `kmu` view plays `kmt`'s role for corner-based reductions.
    pub fn kmu_as_kmt(&self) -> View2<i32> {
        self.kmu.clone()
    }
}

/// Compute the surface Rossby-number field into `out` and return the
/// owned-cell quantiles `(q50, q90, q99, max)` of `|Ro|` — the Fig. 6
/// submesoscale-richness metric.
pub fn rossby_quantiles(
    space: &Space,
    g: &LocalGrid,
    u: &View3<f64>,
    v: &View3<f64>,
    out: &View2<f64>,
) -> (f64, f64, f64, f64) {
    parallel_for_2d(
        space,
        MDRangePolicy2::new([g.ny, g.nx]),
        &FunctorRossby {
            u: u.clone(),
            v: v.clone(),
            out: out.clone(),
            kmt: g.kmt.clone(),
            fcor: g.fcor.clone(),
            dxt: g.dxt.clone(),
            dyt: g.dyt,
        },
    );
    let mut vals: Vec<f64> = Vec::new();
    for jl in H..H + g.ny {
        for il in H..H + g.nx {
            if g.kmt.at(jl, il) > 0 {
                vals.push(out.at(jl, il).abs());
            }
        }
    }
    if vals.is_empty() {
        return (0.0, 0.0, 0.0, 0.0);
    }
    vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let q = |p: f64| vals[((vals.len() - 1) as f64 * p) as usize];
    (q(0.5), q(0.9), q(0.99), *vals.last().unwrap())
}

#[cfg(test)]
mod tests {
    use super::*;
    use kokkos_rs::View;

    #[test]
    fn rossby_of_solid_body_rotation() {
        // u = -Ω y, v = Ω x → ζ = 2Ω everywhere.
        let (n, nz) = (8, 1);
        let (pj, pi) = (n + 2 * H, n + 2 * H);
        let u: View3<f64> = View::host("u", [nz, pj, pi]);
        let v: View3<f64> = View::host("v", [nz, pj, pi]);
        let out: View2<f64> = View::host("out", [pj, pi]);
        let kmt: View2<i32> = View::host("kmt", [pj, pi]);
        let fcor: View1<f64> = View::host("f", [pj]);
        let dxt: View1<f64> = View::host("dx", [pj]);
        kmt.fill(1);
        fcor.fill(1e-4);
        dxt.fill(1000.0);
        let omega = 1e-5;
        for jl in 0..pj {
            for il in 0..pi {
                u.set_at(0, jl, il, -omega * (jl as f64) * 1000.0);
                v.set_at(0, jl, il, omega * (il as f64) * 1000.0);
            }
        }
        let f = FunctorRossby {
            u,
            v,
            out: out.clone(),
            kmt,
            fcor,
            dxt,
            dyt: 1000.0,
        };
        for j in 0..n {
            for i in 0..n {
                f.operator(j, i);
            }
        }
        // Ro = 2Ω / f = 2e-5 / 1e-4 = 0.2.
        for j in 0..n {
            for i in 0..n {
                let ro = out.at(H + j, H + i);
                assert!((ro - 0.2).abs() < 1e-9, "Ro = {ro}");
            }
        }
    }
}

/// Meridional overturning streamfunction ψ(j, k) in Sverdrups (10⁶ m³/s):
/// the zonally-integrated meridional transport accumulated from the
/// bottom, `ψ(j, k) = Σ_{k' ≥ k} Σ_i v_face · dx_face · dz_{k'}` — the
/// classic MOC diagnostic of large-scale ocean circulation (returns a
/// `ny × (nz+1)` matrix over owned rows; combine across zonal ranks by
/// summation).
#[allow(clippy::needless_range_loop)] // j indexes both psi and the grid rows
pub fn overturning_streamfunction(g: &LocalGrid, v: &View3<f64>) -> Vec<Vec<f64>> {
    let mut psi = vec![vec![0.0; g.nz + 1]; g.ny];
    for j in 0..g.ny {
        let jl = j + H;
        // Transport through the north face of row jl, per level.
        let mut per_level = vec![0.0; g.nz];
        for i in 0..g.nx {
            let il = i + H;
            for (k, t) in per_level.iter_mut().enumerate() {
                if g.kmt.at(jl, il) as usize > k && g.kmt.at(jl + 1, il) as usize > k {
                    let vf = 0.5 * (v.at(k, jl, il) + v.at(k, jl, il - 1));
                    let dx_face = 0.5 * (g.dxt.at(jl) + g.dxt.at(jl + 1));
                    *t += vf * dx_face * g.dz.at(k);
                }
            }
        }
        // Accumulate from the bottom (ψ = 0 at the floor).
        let mut acc = 0.0;
        for k in (0..g.nz).rev() {
            acc += per_level[k];
            psi[j][k] = acc / 1.0e6; // Sv
        }
    }
    psi
}

/// Barotropic (vertically integrated) transport streamfunction ψ_b(j)
/// profile: cumulative zonal integral of depth-integrated v along the
/// row, in Sverdrups. Returns per-row maxima — the gyre-strength scalar.
pub fn gyre_strength_sv(g: &LocalGrid, v: &View3<f64>) -> f64 {
    let mut max_abs: f64 = 0.0;
    for j in 0..g.ny {
        let jl = j + H;
        let mut psi = 0.0f64;
        for i in 0..g.nx {
            let il = i + H;
            let mut column = 0.0;
            for k in 0..g.kmt.at(jl, il).max(0) as usize {
                let vf = 0.5 * (v.at(k, jl, il) + v.at(k, jl, il - 1));
                column += vf * g.dz.at(k);
            }
            psi += column * g.dxt.at(jl);
            max_abs = max_abs.max(psi.abs() / 1.0e6);
        }
    }
    max_abs
}

#[cfg(test)]
mod moc_tests {
    use super::*;
    use halo_exchange::Halo2D;
    use kokkos_rs::View;
    use mpi_sim::{CartComm, World};
    use ocean_grid::{Bathymetry, GlobalGrid};

    fn local(nx: usize, ny: usize, nz: usize) -> LocalGrid {
        let global = GlobalGrid::build(nx, ny, nz, &Bathymetry::Flat(4000.0), false);
        World::run(1, move |comm| {
            let cart = CartComm::new(comm.clone(), 1, 1, true);
            let halo = Halo2D::new(&cart, nx, ny);
            LocalGrid::build(&global, &halo)
        })
        .pop()
        .unwrap()
    }

    #[test]
    fn resting_ocean_has_zero_overturning() {
        let g = local(12, 8, 5);
        let v: View3<f64> = View::host("v", [g.nz, g.pj, g.pi]);
        let psi = overturning_streamfunction(&g, &v);
        assert!(psi.iter().flatten().all(|&x| x == 0.0));
        assert_eq!(gyre_strength_sv(&g, &v), 0.0);
    }

    #[test]
    fn uniform_northward_flow_gives_monotone_psi() {
        let g = local(12, 8, 5);
        let v: View3<f64> = View::host("v", [g.nz, g.pj, g.pi]);
        v.fill(0.1);
        let psi = overturning_streamfunction(&g, &v);
        // ψ grows monotonically from bottom (0) to surface.
        for row in &psi {
            for k in 1..g.nz {
                assert!(row[k - 1] >= row[k], "ψ must accumulate upward");
            }
            assert!(row[0] > 0.0);
        }
        // Magnitude check against the same face metric the function uses.
        let dx_face = 0.5 * (g.dxt.at(H) + g.dxt.at(H + 1));
        let depth: f64 = (0..g.nz).map(|k| g.dz.at(k)).sum();
        let expect_sv = 0.1 * 12.0 * dx_face * depth / 1e6;
        assert!(
            (psi[0][0] - expect_sv).abs() / expect_sv < 1e-9,
            "{} vs {expect_sv}",
            psi[0][0]
        );
    }

    #[test]
    fn sheared_flow_produces_overturning_cell() {
        // Northward at the top, southward below: a classic cell with an
        // interior ψ extremum.
        let g = local(10, 6, 6);
        let v: View3<f64> = View::host("v", [g.nz, g.pj, g.pi]);
        // Zero-net column transport: northward in the top two layers,
        // exactly compensated below → ψ(surface) = 0, interior cell.
        let top: f64 = (0..2).map(|k| g.dz.at(k)).sum();
        let deep: f64 = (2..g.nz).map(|k| g.dz.at(k)).sum();
        let v_deep = -0.2 * top / deep;
        for k in 0..g.nz {
            let val = if k < 2 { 0.2 } else { v_deep };
            for jl in 0..g.pj {
                for il in 0..g.pi {
                    v.set_at(k, jl, il, val);
                }
            }
        }
        let psi = overturning_streamfunction(&g, &v);
        let row = &psi[2];
        let interior_max = row.iter().map(|x| x.abs()).fold(0.0f64, f64::max);
        let surface = row[0].abs();
        assert!(
            surface < 1e-9 * interior_max.max(1.0),
            "net transport should cancel: {surface}"
        );
        assert!(interior_max > 0.0, "interior overturning cell expected");
    }
}
