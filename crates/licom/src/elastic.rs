//! Elastic rank-death recovery: survivor consensus, spare adoption, and
//! restore from the checkpoint ring.
//!
//! [`crate::Model::run_steps_resilient`] survives *message* faults by
//! rollback-and-replay, but its status vote is a blocking collective: a
//! fail-stop rank would strand every survivor. This module is the
//! ULFM-style driver above it. A world is launched with spare ranks
//! ([`mpi_sim::WorldConfig::spares`]); the first `size - spares` world
//! ranks take compute **roles** and spares idle in a wake-poll loop.
//! Every wait is deadline-bounded by the one [`RetryPolicy`] threaded
//! through [`ModelOptions`], so no blocking path can hang on a corpse.
//!
//! On a detected death (a step vote or halo wait returns a typed
//! `PeerDead`), every live rank runs the same recovery round:
//!
//! 1. survivors WAKE every idle spare (control-plane `u8` messages,
//!    exempt from `f64` fault injection);
//! 2. all live ranks — survivors *and* spares — run
//!    [`mpi_sim::Comm::agree_on_survivors`], converging on an identical
//!    survivor set;
//! 3. roles are reassigned deterministically: each dead role adopts the
//!    lowest-numbered surviving spare, so every participant computes the
//!    same mapping with no further communication;
//! 4. the role holders re-form the compute group as a derived
//!    communicator ([`mpi_sim::Comm::with_members`], salted by the
//!    recovery round so stale wire traffic cannot cross rounds). A
//!    spare's group rank *equals the dead rank's role*, so checkpoint
//!    geometry and per-role file names match unchanged;
//! 5. everyone rebuilds the model, restores the newest commonly-held
//!    image from the PR-3 checkpoint ring (collective min-vote), and
//!    replays. Replay is deterministic — group collectives fold in role
//!    order exactly like the original world's — so the completed run is
//!    bitwise identical to a failure-free one.

use std::collections::HashSet;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use kokkos_rs::Space;
use mpi_sim::{Comm, CommError, RetryPolicy};
use ocean_grid::ModelConfig;

use crate::checkpoint::{CheckpointError, CheckpointManager, RecoveryPolicy};
use crate::model::{Model, ModelOptions};

/// Control-plane tags on the *world* communicator, far above the model's
/// tag space and the failure-protocol bases in `mpi_sim::failure`.
const WAKE: u64 = 0x7C57_0000_0000_0000;
const DONE: u64 = 0x7C57_0000_0000_0001;

/// How an elastic run is shaped.
#[derive(Debug, Clone)]
pub struct ElasticConfig {
    /// Total model steps to reach.
    pub target_steps: u64,
    /// Checkpoint ring directory (shared by all ranks).
    pub ckpt_dir: PathBuf,
    /// Ring depth K (slots per role).
    pub ring: usize,
    /// Message-fault rollback policy (checkpoint cadence + budget).
    pub recovery: RecoveryPolicy,
}

/// What an elastic run did, identical on every surviving role holder.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ElasticStats {
    pub steps_completed: u64,
    /// Fail-stop deaths detected and recovered from.
    pub rank_deaths_recovered: u64,
    /// Steps re-executed because a death forced a rollback (bounded by
    /// the checkpoint interval per death).
    pub recovery_replay_steps: u64,
    /// Message-fault rollbacks (the PR-3 path, still active underneath).
    pub rollbacks: u32,
    /// Wall-clock from entering the fatal step to the typed PeerDead
    /// observation, summed over deaths (detection latency).
    pub detection_ns: u64,
    /// Wall-clock from PeerDead to the restored, replay-ready model,
    /// summed over deaths (MTTR minus replay).
    pub recovery_wall_ns: u64,
}

/// How this rank's participation ended.
pub enum ElasticOutcome {
    /// Held a role at the end; carries the final model and stats.
    Completed {
        model: Box<Model>,
        stats: ElasticStats,
    },
    /// Served as a spare and was never elected (or was retired by DONE).
    Spared,
    /// This rank was the seeded fatality.
    Died,
}

/// An elastic run that could not reach its target.
#[derive(Debug)]
pub enum ElasticError {
    /// More deaths than available spares.
    SparesExhausted { role: usize },
    /// The step vote failed for a reason other than a peer death (e.g. a
    /// stalled-but-alive rank outlasting the vote deadline).
    Vote(CommError),
    /// Message-fault rollback budget exhausted.
    RollbackBudgetExhausted,
    /// Checkpoint restore failed.
    Checkpoint(CheckpointError),
}

impl From<CheckpointError> for ElasticError {
    fn from(e: CheckpointError) -> Self {
        ElasticError::Checkpoint(e)
    }
}

impl std::fmt::Display for ElasticError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ElasticError::SparesExhausted { role } => {
                write!(f, "no spare left to adopt dead role {role}")
            }
            ElasticError::Vote(e) => write!(f, "step vote failed: {e}"),
            ElasticError::RollbackBudgetExhausted => write!(f, "rollback budget exhausted"),
            ElasticError::Checkpoint(e) => write!(f, "elastic recovery failed: {e}"),
        }
    }
}

impl std::error::Error for ElasticError {}

/// Deterministic role reassignment: every dead role adopts the
/// lowest-numbered survivor not already holding a role. Pure function of
/// `(roles, survivors)`, so all participants compute the identical map.
fn reassign(roles: &[usize], survivors: &[usize]) -> Result<Vec<usize>, ElasticError> {
    let live: HashSet<usize> = survivors.iter().copied().collect();
    let held: HashSet<usize> = roles.iter().copied().collect();
    let mut avail = survivors.iter().filter(|r| !held.contains(r)).copied();
    roles
        .iter()
        .enumerate()
        .map(|(role, &wr)| {
            if live.contains(&wr) {
                Ok(wr)
            } else {
                avail.next().ok_or(ElasticError::SparesExhausted { role })
            }
        })
        .collect()
}

fn wake_payload(round: u64, dead_at_step: u64) -> Vec<u8> {
    let mut p = round.to_le_bytes().to_vec();
    p.extend_from_slice(&dead_at_step.to_le_bytes());
    p
}

fn parse_wake(p: &[u8]) -> (u64, u64) {
    let r = u64::from_le_bytes(p[0..8].try_into().unwrap());
    let s = u64::from_le_bytes(p[8..16].try_into().unwrap());
    (r, s)
}

/// World ranks currently idle and believed alive (spare pool).
fn idle_spares(world: &Comm, roles: &[usize]) -> Vec<usize> {
    let held: HashSet<usize> = roles.iter().copied().collect();
    (0..world.size())
        .filter(|r| !held.contains(r) && world.is_alive(*r))
        .collect()
}

enum Drive {
    /// Reached the target; model is current.
    Done,
    /// A group member died mid-run; `attempted` is the step being voted.
    PeerDead {
        attempted: u64,
        detect_ns: u64,
    },
    /// This rank is the seeded fatality.
    SelfDead,
    Fail(ElasticError),
}

/// Step the group to the target with a failure-aware vote after every
/// step. Votes travel as `u8` allgathers (control plane: exempt from
/// `f64` fault injection) with the step number as tag salt, and commit
/// only if every role finished cleanly — the same all-or-nothing rule as
/// [`Model::run_steps_resilient`], minus the ability to hang.
fn drive(
    model: &mut Model,
    mgr: &mut CheckpointManager,
    ecfg: &ElasticConfig,
    retry: &RetryPolicy,
    stats: &mut ElasticStats,
    mut replaying_to: u64,
) -> Drive {
    // Generous vote deadline: a full retry budget on top of whatever the
    // slowest rank's halo retries may already have consumed.
    let vote_timeout = retry.budget() * 4;
    const VOTE_SALT: u64 = 0x7C56_0000_0000_0000;
    if model.steps_taken() < ecfg.target_steps {
        if let Err(e) = mgr.save(model) {
            return Drive::Fail(e.into());
        }
    }
    let mut since_ckpt: u64 = 0;
    while model.steps_taken() < ecfg.target_steps {
        let attempted = model.steps_taken() + 1;
        let t_step = Instant::now();
        let ok = model.try_step().is_ok();
        if model.comm().self_failed() {
            return Drive::SelfDead;
        }
        let vote =
            model
                .comm()
                .try_allgather(VOTE_SALT ^ attempted, vec![u8::from(ok)], vote_timeout);
        match vote {
            Ok(votes) => {
                if votes.iter().all(|v| v[0] == 1) {
                    if model.steps_taken() <= replaying_to {
                        stats.recovery_replay_steps += 1;
                    }
                    stats.steps_completed += 1;
                    since_ckpt += 1;
                    if since_ckpt >= ecfg.recovery.checkpoint_every
                        && model.steps_taken() < ecfg.target_steps
                    {
                        if let Err(e) = mgr.save(model) {
                            return Drive::Fail(e.into());
                        }
                        since_ckpt = 0;
                    }
                } else {
                    // Message-fault path: all roles alive, some step
                    // failed — rollback and replay within the group.
                    stats.rollbacks += 1;
                    if stats.rollbacks > ecfg.recovery.max_rollbacks {
                        return Drive::Fail(ElasticError::RollbackBudgetExhausted);
                    }
                    replaying_to = replaying_to.max(attempted - 1);
                    if let Err(e) = mgr.restore_latest_collective(model) {
                        return Drive::Fail(e.into());
                    }
                    since_ckpt = 0;
                }
            }
            Err(CommError::PeerDead { peer, .. }) if peer == model.comm().rank() => {
                return Drive::SelfDead;
            }
            Err(CommError::PeerDead { peer, .. }) => {
                // Every survivor's vote fails the same way, so every
                // survivor's ring carries its own PeerDead observation —
                // what the post-mortem acceptance check looks for.
                model.flight_note(
                    mpi_sim::flight::FlightEventKind::PeerDead,
                    peer as u64,
                    attempted,
                    0,
                );
                return Drive::PeerDead {
                    attempted,
                    detect_ns: t_step.elapsed().as_nanos() as u64,
                };
            }
            Err(e) => return Drive::Fail(ElasticError::Vote(e)),
        }
    }
    Drive::Done
}

/// Run the model elastically on a world with spare ranks. **Every** world
/// rank calls this — compute ranks and spares alike; the function sorts
/// out who does what. Returns this rank's [`ElasticOutcome`]; the gate
/// counters (`rank_deaths_recovered`, `recovery_replay_steps`) come out
/// identical on every rank holding a role at the end — a late-elected
/// spare learns the replay mark from the WAKE payload — and are also
/// published to the final model's timers for the bench gate.
/// `steps_completed` counts this rank's own committed steps.
pub fn run_elastic(
    world: &Comm,
    cfg: ModelConfig,
    space: Space,
    opts: ModelOptions,
    ecfg: &ElasticConfig,
) -> Result<ElasticOutcome, ElasticError> {
    assert!(
        !world.has_view(),
        "run_elastic drives the world communicator itself"
    );
    let retry = opts.retry;
    let me = world.rank();
    let n_compute = world.size() - world.spares();
    assert!(n_compute >= 1, "need at least one compute rank");
    let mut roles: Vec<usize> = (0..n_compute).collect();
    let mut round: u64 = 0;
    let mut stats = ElasticStats::default();
    // Steps the group had attempted when the last death hit; committed
    // steps at-or-below this mark count as replay. Spares learn it from
    // the WAKE payload, survivors from the failed vote — identically.
    let mut replaying_to: u64 = 0;

    loop {
        if !roles.contains(&me) {
            // ---- spare: poll for WAKE / DONE, deadline-free by design —
            // an idle spare holds no resources a corpse could strand.
            match spare_wait(world, round) {
                SpareWake::Done => return Ok(ElasticOutcome::Spared),
                SpareWake::SelfDead => return Ok(ElasticOutcome::Died),
                SpareWake::Wake {
                    round: r,
                    dead_at_step,
                } => {
                    let t_recover = Instant::now();
                    round = r;
                    // The WAKE payload carries the step the group was
                    // attempting, so the spare's replay accounting and
                    // death counter match the survivors' exactly.
                    replaying_to = dead_at_step.saturating_sub(1);
                    stats.rank_deaths_recovered += 1;
                    let survivors = match world.agree_on_survivors(round, &retry) {
                        Ok(s) => s,
                        Err(_) => return Ok(ElasticOutcome::Died),
                    };
                    roles = reassign(&roles, &survivors)?;
                    stats.recovery_wall_ns += t_recover.elapsed().as_nanos() as u64;
                    continue; // elected → compute branch; else keep waiting
                }
            }
        }

        // ---- role holder: form the group, build or restore, drive.
        let group = world.with_members(&roles, round);
        let mut model = Model::new(&group, cfg.clone(), space.clone(), opts.clone());
        let mut mgr = CheckpointManager::new(&ecfg.ckpt_dir, ecfg.ring);
        let t_recover = Instant::now();
        if round > 0 {
            mgr.restore_latest_collective(&mut model)?;
            stats.recovery_wall_ns += t_recover.elapsed().as_nanos() as u64;
        }
        match drive(&mut model, &mut mgr, ecfg, &retry, &mut stats, replaying_to) {
            Drive::Done => {
                // Retire the unused spares. Every role holder sends DONE
                // (duplicates are harmless; a lone sender could die).
                for s in idle_spares(world, &roles) {
                    world.send(s, DONE, vec![1u8]);
                }
                model
                    .timers
                    .add_count("rank_deaths_recovered", stats.rank_deaths_recovered);
                model
                    .timers
                    .add_count("recovery_replay_steps", stats.recovery_replay_steps);
                model
                    .timers
                    .add_count("elastic_rollbacks", u64::from(stats.rollbacks));
                return Ok(ElasticOutcome::Completed {
                    model: Box::new(model),
                    stats,
                });
            }
            Drive::SelfDead => return Ok(ElasticOutcome::Died),
            Drive::Fail(e) => return Err(e),
            Drive::PeerDead {
                attempted,
                detect_ns,
            } => {
                let t_recover = Instant::now();
                round += 1;
                stats.rank_deaths_recovered += 1;
                stats.detection_ns += detect_ns;
                replaying_to = attempted - 1;
                // 1. Wake every idle spare so it joins the consensus.
                for s in idle_spares(world, &roles) {
                    world.send(s, WAKE, wake_payload(round, attempted));
                }
                // 2. Identical survivor set on every live rank.
                let survivors = match world.agree_on_survivors(round, &retry) {
                    Ok(s) => s,
                    Err(_) => return Ok(ElasticOutcome::Died),
                };
                // Black-box the death *after* consensus: the consensus
                // messages give happens-before from every survivor's
                // PeerDead observation to this snapshot, so the single
                // claimed bundle contains all of them plus the dying
                // rank's last recorded step.
                model.flight_note(
                    mpi_sim::flight::FlightEventKind::ConsensusRound,
                    round,
                    survivors.len() as u64,
                    attempted,
                );
                model.dump_flight("rank-death");
                // 3. Deterministic spare election.
                roles = reassign(&roles, &survivors)?;
                stats.recovery_wall_ns += t_recover.elapsed().as_nanos() as u64;
                // 4–5. happen at the top of the loop: re-form, restore,
                // replay. A survivor always keeps its role.
            }
        }
    }
}

enum SpareWake {
    Wake { round: u64, dead_at_step: u64 },
    Done,
    SelfDead,
}

/// Idle-spare loop: poll the world mailboxes for control messages.
/// Duplicate WAKEs (every survivor sends one) and WAKEs for rounds this
/// spare already processed are drained and dropped.
fn spare_wait(world: &Comm, last_round: u64) -> SpareWake {
    loop {
        if world.self_failed() {
            return SpareWake::SelfDead;
        }
        for src in 0..world.size() {
            if world.has_message(src, DONE) {
                let _: Vec<u8> = world.recv(src, DONE);
                return SpareWake::Done;
            }
            if world.has_message(src, WAKE) {
                let p: Vec<u8> = world.recv(src, WAKE);
                let (round, dead_at_step) = parse_wake(&p);
                if round > last_round {
                    return SpareWake::Wake {
                        round,
                        dead_at_step,
                    };
                }
                // Duplicate from an already-processed round: drop.
            }
        }
        std::thread::sleep(Duration::from_micros(200));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reassign_is_deterministic_and_minimal() {
        // Roles 0..3 on world ranks [0,1,2,3]; rank 1 and 3 die; spares
        // 4,5,6 survive. Dead roles adopt the lowest spares in order.
        let roles = vec![0, 1, 2, 3];
        let survivors = vec![0, 2, 4, 5, 6];
        let next = reassign(&roles, &survivors).unwrap();
        assert_eq!(next, vec![0, 4, 2, 5]);
        // Survivor roles never move.
        assert_eq!(next[0], 0);
        assert_eq!(next[2], 2);
    }

    #[test]
    fn reassign_exhaustion_is_typed() {
        let roles = vec![0, 1];
        let survivors = vec![0]; // rank 1 dead, no spare
        match reassign(&roles, &survivors) {
            Err(ElasticError::SparesExhausted { role }) => assert_eq!(role, 1),
            other => panic!("expected SparesExhausted, got {other:?}"),
        }
    }

    #[test]
    fn wake_payload_roundtrips() {
        let p = wake_payload(7, 1234);
        assert_eq!(parse_wake(&p), (7, 1234));
    }
}
