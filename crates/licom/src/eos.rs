//! Equation of state and hydrostatic pressure.
//!
//! The reproduction uses a linearised seawater EOS,
//! `ρ = ρ0 (1 − α(T−T0) + β(S−S0))`, which preserves what the dynamics
//! need — buoyancy gradients driven by temperature and salinity — without
//! the 25-term UNESCO polynomial (a fidelity, not performance, detail).
//! Pressure is the hydrostatic integral of density plus the free-surface
//! contribution `g ρ0 η`.

use kokkos_rs::{
    parallel_for_2d, parallel_for_3d, parallel_for_list, Functor2D, Functor3D, FunctorList,
    IterCost, ListPolicy, MDRangePolicy2, MDRangePolicy3, Space, View1, View2, View3,
};

use ocean_grid::{GRAVITY, RHO0};

use crate::constants::{ALPHA_T, BETA_S, S_REF, T_REF};

/// Pointwise density from the linearised EOS.
pub struct FunctorEos {
    pub t: View3<f64>,
    pub s: View3<f64>,
    pub rho: View3<f64>,
}

impl FunctorEos {
    /// Shared body at a storage-order offset. All three views are root
    /// `[nz, pj, pi]` Right-layout allocations, so their offsets
    /// coincide and the pointwise EOS never needs `(k, j, i)` at all.
    #[inline(always)]
    fn at_offset(&self, off: usize) {
        let t = self.t.get_linear(off);
        let s = self.s.get_linear(off);
        let rho = RHO0 * (1.0 - ALPHA_T * (t - T_REF) + BETA_S * (s - S_REF));
        self.rho.set_linear(off, rho);
    }
}

impl Functor3D for FunctorEos {
    /// Operates on raw padded indices: the model launches it over the
    /// full padded block so halo cells (whose T/S are exchanged) get
    /// valid density/pressure without an extra halo update.
    fn operator(&self, k: usize, jl: usize, il: usize) {
        self.at_offset(self.t.offset([k, jl, il]));
    }

    fn cost(&self) -> IterCost {
        IterCost {
            flops: 6,
            bytes: 24,
        }
    }
}

kokkos_rs::register_for_3d!(kernel_eos, FunctorEos);

/// Active-set EOS: entry `idx` is a packed wet cell `(k·pj + jl)·pi + il`.
/// Density below `kmt` (and on land) is never consumed — `rho` feeds only
/// the pressure integral and the canuto `N²`, both of which stop at the
/// column bottom — so skipping those cells is bitwise neutral.
///
/// The packed index doubles as the storage-order offset of the root
/// `[nz, pj, pi]` state views, so the hot path is division-free.
pub struct FunctorEosList {
    pub f: FunctorEos,
}

impl FunctorList for FunctorEosList {
    fn operator(&self, _n: usize, idx: u32) {
        self.f.at_offset(idx as usize);
    }

    fn cost(&self) -> IterCost {
        self.f.cost()
    }
}

kokkos_rs::register_for_list!(kernel_eos_list, FunctorEosList);

/// Column-wise hydrostatic pressure integral (includes `g ρ0 η`).
pub struct FunctorPressure {
    pub rho: View3<f64>,
    pub eta: View2<f64>,
    pub pressure: View3<f64>,
    pub dz: View1<f64>,
    pub kmt: View2<i32>,
    pub nz: usize,
}

impl Functor2D for FunctorPressure {
    /// Raw padded indices; see [`FunctorEos::operator`].
    fn operator(&self, jl: usize, il: usize) {
        let kmt = self.kmt.at(jl, il) as usize;
        let mut p = GRAVITY * RHO0 * self.eta.at(jl, il);
        let mut prev_rho_dz = 0.0;
        for k in 0..self.nz.min(kmt) {
            let rdz = self.rho.at(k, jl, il) * self.dz.at(k);
            p += GRAVITY * 0.5 * (prev_rho_dz + rdz);
            self.pressure.set_at(k, jl, il, p);
            prev_rho_dz = rdz;
        }
        for k in kmt..self.nz {
            self.pressure.set_at(k, jl, il, p);
        }
    }

    fn cost(&self) -> IterCost {
        IterCost {
            flops: 5 * self.nz as u64,
            bytes: 24 * self.nz as u64,
        }
    }
}

kokkos_rs::register_for_2d!(kernel_pressure, FunctorPressure);

/// Active-set pressure: entry `idx` is a packed wet column `jl·pi + il`.
/// Dry columns keep their initial zero pressure, which is exactly what
/// the dense launch writes there (η ≡ 0 in the baroclinic integral), so
/// the skip is bitwise neutral. The set must span the **padded** block —
/// the momentum stencil reads pressure in the halo columns.
pub struct FunctorPressureList {
    pub f: FunctorPressure,
    pub pi: usize,
}

impl FunctorList for FunctorPressureList {
    fn operator(&self, _n: usize, idx: u32) {
        let idx = idx as usize;
        self.f.operator(idx / self.pi, idx % self.pi);
    }

    fn cost(&self) -> IterCost {
        self.f.cost()
    }
}

kokkos_rs::register_for_list!(kernel_pressure_list, FunctorPressureList);

/// Register this module's functors.
pub fn register() {
    kernel_eos();
    kernel_pressure();
    kernel_eos_list();
    kernel_pressure_list();
}

/// Launch density + pressure over the **full padded block** (`pi × pj`),
/// so pressure halos are valid wherever T/S halos are.
pub fn compute_density_pressure(
    space: &Space,
    pi: usize,
    pj: usize,
    nz: usize,
    f_eos: &FunctorEos,
    f_p: &FunctorPressure,
) {
    parallel_for_3d(space, MDRangePolicy3::new([nz, pj, pi]), f_eos);
    parallel_for_2d(space, MDRangePolicy2::new([pj, pi]), f_p);
}

/// Active-set variant of [`compute_density_pressure`]: density over the
/// packed wet cells, pressure over the packed wet columns (both padded).
pub fn compute_density_pressure_active(
    space: &Space,
    cells: &ListPolicy,
    cols: &ListPolicy,
    f_eos: FunctorEosList,
    f_p: FunctorPressureList,
) {
    parallel_for_list(space, cells, &f_eos);
    parallel_for_list(space, cols, &f_p);
}

#[cfg(test)]
mod tests {
    use super::*;
    use halo_exchange::HALO as H;
    use kokkos_rs::View;

    fn setup(nz: usize, ny: usize, nx: usize) -> (FunctorEos, FunctorPressure) {
        let d3 = [nz, ny + 2 * H, nx + 2 * H];
        let d2 = [ny + 2 * H, nx + 2 * H];
        let t: View3<f64> = View::host("t", d3);
        let s: View3<f64> = View::host("s", d3);
        let rho: View3<f64> = View::host("rho", d3);
        let eta: View2<f64> = View::host("eta", d2);
        let p: View3<f64> = View::host("p", d3);
        let dz: View1<f64> = View::host("dz", [nz]);
        let kmt: View2<i32> = View::host("kmt", d2);
        t.fill(T_REF);
        s.fill(S_REF);
        dz.fill(10.0);
        kmt.fill(nz as i32);
        (
            FunctorEos {
                t: t.clone(),
                s: s.clone(),
                rho: rho.clone(),
            },
            FunctorPressure {
                rho,
                eta,
                pressure: p,
                dz,
                kmt,
                nz,
            },
        )
    }

    #[test]
    fn reference_state_has_reference_density() {
        let (eos, p) = setup(4, 3, 3);
        compute_density_pressure(&Space::serial(), 3 + 2 * H, 3 + 2 * H, 4, &eos, &p);
        assert_eq!(eos.rho.at(0, H, H), RHO0);
    }

    #[test]
    fn warm_water_is_lighter_salty_water_heavier() {
        let (eos, p) = setup(2, 2, 2);
        eos.t.set_at(0, H, H, T_REF + 5.0);
        eos.s.set_at(1, H, H, S_REF + 1.0);
        compute_density_pressure(&Space::serial(), 2 + 2 * H, 2 + 2 * H, 2, &eos, &p);
        assert!(eos.rho.at(0, H, H) < RHO0);
        assert!(eos.rho.at(1, H, H) > RHO0);
    }

    #[test]
    fn pressure_increases_downward_hydrostatically() {
        let (eos, p) = setup(6, 2, 2);
        compute_density_pressure(&Space::serial(), 2 + 2 * H, 2 + 2 * H, 6, &eos, &p);
        let mut prev = 0.0;
        for k in 0..6 {
            let pk = p.pressure.at(k, H, H);
            assert!(pk > prev, "k={k}: {pk} <= {prev}");
            prev = pk;
        }
        // First level: g*rho0*dz/2 within roundoff (eta = 0).
        let want = GRAVITY * RHO0 * 5.0;
        assert!((p.pressure.at(0, H, H) - want).abs() / want < 1e-12);
    }

    #[test]
    fn free_surface_raises_pressure_everywhere() {
        let (eos, p) = setup(3, 2, 2);
        compute_density_pressure(&Space::serial(), 2 + 2 * H, 2 + 2 * H, 3, &eos, &p);
        let base = p.pressure.at(2, H, H);
        p.eta.set_at(H, H, 1.0); // 1 m of extra surface height
        compute_density_pressure(&Space::serial(), 2 + 2 * H, 2 + 2 * H, 3, &eos, &p);
        let lifted = p.pressure.at(2, H, H);
        assert!((lifted - base - GRAVITY * RHO0).abs() < 1e-6);
    }

    #[test]
    fn land_columns_get_flat_extension() {
        let (eos, p) = setup(4, 2, 2);
        p.kmt.set_at(H, H, 2);
        compute_density_pressure(&Space::serial(), 2 + 2 * H, 2 + 2 * H, 4, &eos, &p);
        // Below kmt the pressure is held constant.
        assert_eq!(p.pressure.at(2, H, H), p.pressure.at(1, H, H));
        assert_eq!(p.pressure.at(3, H, H), p.pressure.at(1, H, H));
    }
}
