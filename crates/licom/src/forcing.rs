//! Analytic surface forcing: climatological wind stress and surface
//! restoring.
//!
//! The paper forces LICOMK++ with observed climatologies (a data gate);
//! we substitute smooth analytic profiles with the same structure —
//! easterly trades, mid-latitude westerlies, polar easterlies for the
//! momentum flux, and restoring toward a latitude-dependent SST/SSS
//! target for the thermohaline flux. This drives realistic gyres, western
//! boundary currents and fronts, which is what the submesoscale
//! diagnostics (Fig. 6) feed on.

use kokkos_rs::{Functor2D, FunctorList, IterCost, View1, View2, View3};

use halo_exchange::HALO as H;
use ocean_grid::RHO0;

/// Zonal wind stress (N/m²) as a function of latitude: trades/westerlies
/// pattern peaking at ±0.1 N/m².
pub fn wind_stress_x(lat_deg: f64) -> f64 {
    let phi = lat_deg.to_radians();
    // Classic double-gyre-like profile extended globally.
    -0.1 * (3.0 * phi).cos() * phi.cos().max(0.0)
}

/// Meridional wind stress (N/m²): small cross-equatorial component.
pub fn wind_stress_y(lat_deg: f64) -> f64 {
    0.02 * (2.0 * lat_deg.to_radians()).sin()
}

/// Restoring SST target (°C) by latitude.
pub fn sst_target(lat_deg: f64) -> f64 {
    28.0 * lat_deg.to_radians().cos().powi(2) - 1.0
}

/// Restoring SSS target (psu) by latitude (subtropical salinity maxima).
pub fn sss_target(lat_deg: f64) -> f64 {
    35.0 + 1.2 * (2.0 * lat_deg.to_radians()).cos() - 0.5 * (lat_deg / 60.0).powi(2)
}

/// Restoring timescale for surface tracers, seconds (30 days).
pub const RESTORE_SECONDS: f64 = 30.0 * 86_400.0;

/// Add wind-stress acceleration to the top-layer momentum tendency at
/// B-grid corners: `du/dt += τx / (ρ0 dz0)`.
pub struct FunctorWindStress {
    pub ut: View3<f64>,
    pub vt: View3<f64>,
    pub lat: View1<f64>,
    pub kmu: View2<i32>,
    pub dz0: f64,
}

impl FunctorWindStress {
    /// One corner at **padded** indices (shared launch shapes).
    fn column(&self, jl: usize, il: usize) {
        if self.kmu.at(jl, il) == 0 {
            return;
        }
        // Corner latitude ≈ midpoint of adjacent rows.
        let lat = 0.5 * (self.lat.at(jl) + self.lat.at(jl + 1));
        let fac = 1.0 / (RHO0 * self.dz0);
        self.ut
            .set_at(0, jl, il, self.ut.at(0, jl, il) + wind_stress_x(lat) * fac);
        self.vt
            .set_at(0, jl, il, self.vt.at(0, jl, il) + wind_stress_y(lat) * fac);
    }
}

impl Functor2D for FunctorWindStress {
    fn operator(&self, j: usize, i: usize) {
        self.column(j + H, i + H);
    }

    fn cost(&self) -> IterCost {
        IterCost {
            flops: 20,
            bytes: 48,
        }
    }
}

kokkos_rs::register_for_2d!(kernel_wind_stress, FunctorWindStress);

/// Active-set wind stress: entry `idx` is a packed wet velocity corner;
/// the dense launch's dry-corner early-return is the set's complement.
pub struct FunctorWindStressList {
    pub f: FunctorWindStress,
    pub pi: usize,
}

impl FunctorList for FunctorWindStressList {
    fn operator(&self, _n: usize, idx: u32) {
        let packed = idx as usize;
        self.f.column(packed / self.pi, packed % self.pi);
    }

    fn cost(&self) -> IterCost {
        self.f.cost()
    }
}

kokkos_rs::register_for_list!(kernel_wind_stress_list, FunctorWindStressList);

/// Restore the new-level surface tracers toward the climatological target
/// with timescale [`RESTORE_SECONDS`].
pub struct FunctorSurfaceRestore {
    pub t_new: View3<f64>,
    pub s_new: View3<f64>,
    pub lat: View1<f64>,
    pub kmt: View2<i32>,
    pub dt: f64,
}

impl FunctorSurfaceRestore {
    /// One column at **padded** indices (shared launch shapes).
    fn column(&self, jl: usize, il: usize) {
        if self.kmt.at(jl, il) == 0 {
            return;
        }
        let lat = self.lat.at(jl);
        let gamma = self.dt / RESTORE_SECONDS;
        let t = self.t_new.at(0, jl, il);
        let s = self.s_new.at(0, jl, il);
        self.t_new
            .set_at(0, jl, il, t + gamma * (sst_target(lat) - t));
        self.s_new
            .set_at(0, jl, il, s + gamma * (sss_target(lat) - s));
    }
}

impl Functor2D for FunctorSurfaceRestore {
    fn operator(&self, j: usize, i: usize) {
        self.column(j + H, i + H);
    }

    fn cost(&self) -> IterCost {
        IterCost {
            flops: 16,
            bytes: 48,
        }
    }
}

kokkos_rs::register_for_2d!(kernel_surface_restore, FunctorSurfaceRestore);

/// Active-set surface restoring: entry `idx` is a packed wet T column.
pub struct FunctorSurfaceRestoreList {
    pub f: FunctorSurfaceRestore,
    pub pi: usize,
}

impl FunctorList for FunctorSurfaceRestoreList {
    fn operator(&self, _n: usize, idx: u32) {
        let packed = idx as usize;
        self.f.column(packed / self.pi, packed % self.pi);
    }

    fn cost(&self) -> IterCost {
        self.f.cost()
    }
}

kokkos_rs::register_for_list!(kernel_surface_restore_list, FunctorSurfaceRestoreList);

/// Register this module's functors.
pub fn register() {
    kernel_wind_stress();
    kernel_wind_stress_list();
    kernel_surface_restore();
    kernel_surface_restore_list();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wind_profile_has_trades_and_westerlies() {
        // Trades: easterly (negative) near 15°.
        assert!(wind_stress_x(15.0) < 0.0);
        // Westerlies: positive near 45°.
        assert!(wind_stress_x(45.0) > 0.0);
        // Bounded by 0.11 N/m².
        for lat in -90..=90 {
            assert!(wind_stress_x(lat as f64).abs() <= 0.11);
        }
    }

    #[test]
    fn sst_target_warm_tropics_cold_poles() {
        assert!(sst_target(0.0) > 25.0);
        assert!(sst_target(80.0) < 2.0);
        assert!(sst_target(-80.0) < 2.0);
    }

    #[test]
    fn sss_target_reasonable_range() {
        for lat in -85..=85 {
            let s = sss_target(lat as f64);
            assert!((31.0..37.5).contains(&s), "lat {lat}: {s}");
        }
    }

    #[test]
    fn restore_moves_toward_target() {
        use kokkos_rs::View;
        let d3 = [2, 2 + 2 * H, 2 + 2 * H];
        let d2 = [2 + 2 * H, 2 + 2 * H];
        let t: View3<f64> = View::host("t", d3);
        let s: View3<f64> = View::host("s", d3);
        let lat: View1<f64> = View::host("lat", [2 + 2 * H]);
        let kmt: View2<i32> = View::host("kmt", d2);
        t.fill(0.0);
        s.fill(34.0);
        lat.fill(0.0); // equator: target ~27, salinity ~36.2
        kmt.fill(2);
        let f = FunctorSurfaceRestore {
            t_new: t.clone(),
            s_new: s.clone(),
            lat,
            kmt,
            dt: RESTORE_SECONDS, // gamma = 1: full restoration
        };
        f.operator(0, 0);
        assert!((t.at(0, H, H) - sst_target(0.0)).abs() < 1e-12);
        assert!((s.at(0, H, H) - sss_target(0.0)).abs() < 1e-12);
        // Deeper levels untouched.
        assert_eq!(t.at(1, H, H), 0.0);
    }
}
