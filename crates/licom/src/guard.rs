//! Per-step physics guards: cheap state-health reductions that catch a
//! corrupted or blown-up integration *before* it contaminates a
//! checkpoint.
//!
//! At the paper's machine scale a silent fault (memory corruption, a
//! mangled halo strip that slipped past CRC, an unstable time step) shows
//! up first as non-finite values, runaway velocities, or tracers outside
//! physical bounds. The guard scans the **owned wet sets** every step with
//! [`kokkos_rs::parallel_reduce_list`] — the same active-set machinery the
//! dynamics use, so it runs on all four execution spaces and costs one
//! max-reduction per field.
//!
//! Non-finite values are mapped to `+∞` before the max-join (a plain
//! `f64::max` drops NaN, so a NaN cell would otherwise *pass* the guard).
//!
//! The scan is **local** — no collectives — so a rank can abort a step on
//! a guard trip without stranding its peers in a rendezvous; collective
//! agreement happens at the end-of-step status vote in
//! [`crate::Model::run_steps_resilient`].

use kokkos_rs::{parallel_reduce_list, ReduceFunctorList, Reducer, Space, View3};

use crate::state::State;

/// Guard thresholds. All ranks must use identical values.
#[derive(Debug, Clone, Copy)]
pub struct GuardConfig {
    /// Hard cap on |u|, |v| in m/s (ocean currents peak near 3 m/s;
    /// anything past this is numerical).
    pub max_speed: f64,
    /// Advective CFL cap: the effective speed limit is
    /// `min(max_speed, max_cfl · Δx_min / Δt)`.
    pub max_cfl: f64,
    /// Physical temperature window, °C.
    pub t_bounds: (f64, f64),
    /// Physical salinity window, psu.
    pub s_bounds: (f64, f64),
}

impl Default for GuardConfig {
    fn default() -> Self {
        Self {
            max_speed: 25.0,
            max_cfl: 0.9,
            t_bounds: (-5.0, 45.0),
            s_bounds: (18.0, 50.0),
        }
    }
}

impl GuardConfig {
    /// Effective velocity bound for a grid with smallest spacing `dx_min`
    /// stepped at `dt`.
    pub fn speed_limit(&self, dx_min: f64, dt: f64) -> f64 {
        self.max_speed.min(self.max_cfl * dx_min / dt)
    }
}

/// What the per-step scan observed (all values are rank-local maxima;
/// non-finite cells appear as `+∞`).
#[derive(Debug, Clone, Copy, Default)]
pub struct GuardReport {
    /// max(|u|, |v|) over owned wet velocity cells.
    pub max_speed: f64,
    /// Largest excursion of T outside `t_bounds` (0 = all in bounds).
    pub t_excess: f64,
    /// Largest excursion of S outside `s_bounds` (0 = all in bounds).
    pub s_excess: f64,
}

impl GuardReport {
    /// The violation this report represents under `cfg`, if any.
    pub fn violation(&self, cfg: &GuardConfig, speed_limit: f64) -> Option<GuardViolation> {
        let _ = cfg;
        if self.max_speed > speed_limit || self.t_excess > 0.0 || self.s_excess > 0.0 {
            Some(GuardViolation {
                max_speed: self.max_speed,
                speed_limit,
                t_excess: self.t_excess,
                s_excess: self.s_excess,
            })
        } else {
            None
        }
    }
}

/// Typed guard failure: which invariant broke and by how much.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GuardViolation {
    pub max_speed: f64,
    pub speed_limit: f64,
    pub t_excess: f64,
    pub s_excess: f64,
}

impl std::fmt::Display for GuardViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "state guard tripped: max|u,v| {:.3e} (limit {:.3e}), T excess {:.3e}, S excess {:.3e}",
            self.max_speed, self.speed_limit, self.t_excess, self.s_excess
        )
    }
}

impl std::error::Error for GuardViolation {}

/// Max of |q| over a packed wet-cell list; non-finite → `+∞` so the
/// NaN-dropping max-join cannot hide it. `idx` is the storage offset
/// (wet sets pack `(k·pj + jl)·pi + il`, row-major `[nz, pj, pi]`).
pub struct FunctorGuardMaxAbs {
    pub q: View3<f64>,
}

impl ReduceFunctorList for FunctorGuardMaxAbs {
    fn contribute(&self, _n: usize, idx: u32, acc: &mut f64) {
        let x = self.q.as_slice()[idx as usize];
        let m = if x.is_finite() {
            x.abs()
        } else {
            f64::INFINITY
        };
        *acc = acc.max(m);
    }

    fn cost(&self) -> kokkos_rs::IterCost {
        kokkos_rs::IterCost { flops: 2, bytes: 8 }
    }
}

kokkos_rs::register_reduce_list!(kernel_guard_max_abs, FunctorGuardMaxAbs);

/// Max excursion of q outside `[lo, hi]` over a packed wet-cell list;
/// non-finite → `+∞`.
pub struct FunctorGuardBounds {
    pub q: View3<f64>,
    pub lo: f64,
    pub hi: f64,
}

impl ReduceFunctorList for FunctorGuardBounds {
    fn contribute(&self, _n: usize, idx: u32, acc: &mut f64) {
        let x = self.q.as_slice()[idx as usize];
        let e = if x.is_finite() {
            (x - self.hi).max(self.lo - x).max(0.0)
        } else {
            f64::INFINITY
        };
        *acc = acc.max(e);
    }

    fn cost(&self) -> kokkos_rs::IterCost {
        kokkos_rs::IterCost { flops: 4, bytes: 8 }
    }
}

kokkos_rs::register_reduce_list!(kernel_guard_bounds, FunctorGuardBounds);

/// Scan leapfrog level `lev` of `state` over the owned wet sets.
/// Local only — see the module docs for why there is no collective here.
pub fn scan(
    space: &Space,
    state: &State,
    lev: usize,
    wet_ucells: &kokkos_rs::ListPolicy,
    wet_cells: &kokkos_rs::ListPolicy,
    cfg: &GuardConfig,
) -> GuardReport {
    let c = lev;
    let max_abs = |q: &View3<f64>| {
        parallel_reduce_list(
            space,
            wet_ucells,
            &FunctorGuardMaxAbs { q: q.clone() },
            Reducer::Max,
        )
    };
    let excess = |q: &View3<f64>, (lo, hi): (f64, f64)| {
        parallel_reduce_list(
            space,
            wet_cells,
            &FunctorGuardBounds {
                q: q.clone(),
                lo,
                hi,
            },
            Reducer::Max,
        )
    };
    GuardReport {
        max_speed: max_abs(&state.u[c]).max(max_abs(&state.v[c])).max(0.0),
        t_excess: excess(&state.t[c], cfg.t_bounds).max(0.0),
        s_excess: excess(&state.s[c], cfg.s_bounds).max(0.0),
    }
}

/// Register the guard reduction functors (SwAthread trampoline table).
pub fn register() {
    kernel_guard_max_abs();
    kernel_guard_bounds();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::localgrid::LocalGrid;
    use halo_exchange::Halo2D;
    use kokkos_rs::ListPolicy;
    use mpi_sim::{CartComm, World};
    use ocean_grid::{Bathymetry, GlobalGrid};

    fn setup() -> (LocalGrid, State) {
        let global = GlobalGrid::build(16, 10, 5, &Bathymetry::Flat(4000.0), false);
        World::run(1, |comm| {
            let cart = CartComm::new(comm.clone(), 1, 1, true);
            let halo = Halo2D::new(&cart, 16, 10);
            let g = LocalGrid::build(&global, &halo);
            let mut s = State::new(&g);
            s.init_stratified(&g);
            (g, s)
        })
        .pop()
        .unwrap()
    }

    fn policies(g: &LocalGrid) -> (ListPolicy, ListPolicy) {
        (
            ListPolicy::new(g.wet.ucells3_own.indices.clone()),
            ListPolicy::new(g.wet.cells3_own.indices.clone()),
        )
    }

    #[test]
    fn healthy_state_passes() {
        crate::register_all_kernels();
        let (g, s) = setup();
        let (ucells, cells) = policies(&g);
        let cfg = GuardConfig::default();
        let rep = scan(&Space::serial(), &s, s.cur(), &ucells, &cells, &cfg);
        assert!(rep.violation(&cfg, cfg.max_speed).is_none(), "{rep:?}");
        assert_eq!(rep.t_excess, 0.0);
        assert_eq!(rep.s_excess, 0.0);
    }

    #[test]
    fn nan_in_wet_cell_maps_to_infinity() {
        crate::register_all_kernels();
        let (g, s) = setup();
        let (ucells, cells) = policies(&g);
        let c = s.cur();
        // First wet velocity cell: owned interior corner.
        let idx = g.wet.ucells3_own.indices[0] as usize;
        let mut data = s.u[c].to_vec();
        data[idx] = f64::NAN;
        s.u[c].copy_from_slice(&data);
        let cfg = GuardConfig::default();
        let rep = scan(&Space::serial(), &s, s.cur(), &ucells, &cells, &cfg);
        assert_eq!(rep.max_speed, f64::INFINITY, "NaN must not be dropped");
        assert!(rep.violation(&cfg, cfg.max_speed).is_some());
    }

    #[test]
    fn tracer_out_of_bounds_is_flagged_with_magnitude() {
        crate::register_all_kernels();
        let (g, s) = setup();
        let (ucells, cells) = policies(&g);
        let c = s.cur();
        let idx = g.wet.cells3_own.indices[3] as usize;
        let mut data = s.t[c].to_vec();
        data[idx] = 145.0; // 100 above the 45 °C ceiling
        s.t[c].copy_from_slice(&data);
        let cfg = GuardConfig::default();
        let rep = scan(&Space::serial(), &s, s.cur(), &ucells, &cells, &cfg);
        assert!((rep.t_excess - 100.0).abs() < 1e-12, "{}", rep.t_excess);
        let v = rep.violation(&cfg, cfg.max_speed).unwrap();
        assert!(v.t_excess > 0.0 && v.s_excess == 0.0);
    }

    #[test]
    fn dry_cells_are_ignored() {
        crate::register_all_kernels();
        // Basin bathymetry has land; poison a land cell — guard must pass.
        let global = GlobalGrid::build(
            16,
            10,
            5,
            &Bathymetry::Basin {
                lon0: 60.0,
                lon1: 300.0,
                lat0: -50.0,
                lat1: 50.0,
                depth: 4000.0,
            },
            false,
        );
        let (g, s) = World::run(1, |comm| {
            let cart = CartComm::new(comm.clone(), 1, 1, true);
            let halo = Halo2D::new(&cart, 16, 10);
            let g = LocalGrid::build(&global, &halo);
            let mut s = State::new(&g);
            s.init_stratified(&g);
            (g, s)
        })
        .pop()
        .unwrap();
        let (ucells, cells) = policies(&g);
        let c = s.cur();
        // Find a dry tracer cell in the owned interior.
        let mut dry = None;
        'outer: for k in 0..g.nz {
            for jl in 2..2 + g.ny {
                for il in 2..2 + g.nx {
                    if g.kmt.at(jl, il) as usize <= k {
                        dry = Some((k, jl, il));
                        break 'outer;
                    }
                }
            }
        }
        let (k, jl, il) = dry.expect("basin must have land");
        s.t[c].set_at(k, jl, il, f64::NAN);
        let cfg = GuardConfig::default();
        let rep = scan(&Space::serial(), &s, s.cur(), &ucells, &cells, &cfg);
        assert!(rep.violation(&cfg, cfg.max_speed).is_none(), "{rep:?}");
    }

    #[test]
    fn speed_limit_respects_cfl() {
        let cfg = GuardConfig {
            max_speed: 25.0,
            max_cfl: 0.5,
            ..Default::default()
        };
        // Tight grid: CFL binds. Loose grid: hard cap binds.
        assert_eq!(cfg.speed_limit(1000.0, 100.0), 5.0);
        assert_eq!(cfg.speed_limit(1.0e6, 100.0), 25.0);
    }
}
