//! History output: the model's diagnostic time series.
//!
//! Climate models emit "history files" — regular dumps of globally
//! reduced diagnostics — alongside restarts. This writer appends one CSV
//! row per sampling interval (globally reduced across ranks with the
//! deterministic collectives, so every rank agrees bitwise and only rank
//! 0 writes).

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use mpi_sim::ReduceOp;

use crate::diag::Diagnostics;
use crate::model::Model;

/// CSV history writer (rank 0 writes; all ranks must call `sample`).
pub struct HistoryWriter {
    path: PathBuf,
    rows: u64,
}

/// One globally reduced sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GlobalSample {
    pub step: u64,
    pub simulated_days: f64,
    pub kinetic_energy: f64,
    pub heat_content: f64,
    pub salt_content: f64,
    pub max_speed: f64,
    pub mean_sst: f64,
}

impl HistoryWriter {
    /// Create (truncate) the history file; writes the header on rank 0.
    pub fn create(model: &Model, path: &Path) -> std::io::Result<Self> {
        if model.comm().rank() == 0 {
            if let Some(dir) = path.parent() {
                std::fs::create_dir_all(dir)?;
            }
            let mut f = File::create(path)?;
            writeln!(
                f,
                "step,simulated_days,kinetic_energy,heat_content,salt_content,max_speed,mean_sst"
            )?;
        }
        Ok(Self {
            path: path.to_path_buf(),
            rows: 0,
        })
    }

    /// Collective: reduce the diagnostics globally and append a row
    /// (rank 0 only). Returns the sample every rank computed.
    pub fn sample(&mut self, model: &Model) -> std::io::Result<GlobalSample> {
        let comm = model.comm();
        let d: Diagnostics = model.diagnostics();
        let ke = comm.allreduce_f64(d.kinetic_energy, ReduceOp::Sum);
        let heat = comm.allreduce_f64(d.heat_content, ReduceOp::Sum);
        let salt = comm.allreduce_f64(d.salt_content, ReduceOp::Sum);
        let umax = comm.allreduce_f64(d.max_speed, ReduceOp::Max);
        // Area-weighted SST needs sums of both numerator and area; the
        // per-rank mean is area-weighted locally, so reduce via local
        // (mean × area) — approximate with rank means weighted by wet
        // count for simplicity here (exact where blocks are similar).
        let wet = model.grid.wet_count() as f64;
        let num = comm.allreduce_f64(d.mean_sst * wet, ReduceOp::Sum);
        let den = comm.allreduce_f64(wet, ReduceOp::Sum);
        let sample = GlobalSample {
            step: model.steps_taken(),
            simulated_days: model.steps_taken() as f64 * model.cfg.dt_baroclinic / 86_400.0,
            kinetic_energy: ke,
            heat_content: heat,
            salt_content: salt,
            max_speed: umax,
            mean_sst: if den > 0.0 { num / den } else { 0.0 },
        };
        if comm.rank() == 0 {
            let mut f = OpenOptions::new().append(true).open(&self.path)?;
            writeln!(
                f,
                "{},{:.6},{:.9e},{:.9e},{:.9e},{:.6},{:.4}",
                sample.step,
                sample.simulated_days,
                sample.kinetic_energy,
                sample.heat_content,
                sample.salt_content,
                sample.max_speed,
                sample.mean_sst
            )?;
        }
        self.rows += 1;
        Ok(sample)
    }

    /// Rows written so far.
    pub fn rows(&self) -> u64 {
        self.rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, ModelOptions};
    use mpi_sim::World;
    use ocean_grid::Resolution;

    #[test]
    fn history_records_spinup() {
        let dir = std::env::temp_dir().join("licom_history_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("history.csv");
        let cfg = Resolution::Coarse100km.config().scaled_down(8, 6);
        let samples = World::run(1, {
            let path = path.clone();
            move |comm| {
                let mut m = Model::new(
                    comm,
                    cfg.clone(),
                    kokkos_rs::Space::serial(),
                    ModelOptions::default(),
                );
                let mut h = HistoryWriter::create(&m, &path).unwrap();
                let mut out = Vec::new();
                for _ in 0..3 {
                    m.run_steps(2);
                    out.push(h.sample(&m).unwrap());
                }
                out
            }
        })
        .pop()
        .unwrap();
        // Kinetic energy grows during wind-driven spin-up.
        assert!(samples[2].kinetic_energy > samples[0].kinetic_energy);
        assert_eq!(samples[2].step, 6);
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4, "header + 3 rows: {text}");
        assert!(lines[0].starts_with("step,"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn multi_rank_history_agrees_and_writes_once() {
        let dir = std::env::temp_dir().join("licom_history_mr");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("history.csv");
        let cfg = Resolution::Coarse100km.config().scaled_down(8, 6);
        let samples = World::run(3, {
            let path = path.clone();
            move |comm| {
                let mut m = Model::new(
                    comm,
                    cfg.clone(),
                    kokkos_rs::Space::serial(),
                    ModelOptions::default(),
                );
                let mut h = HistoryWriter::create(&m, &path).unwrap();
                m.run_steps(2);
                h.sample(&m).unwrap()
            }
        });
        // All ranks computed the identical global sample.
        assert_eq!(samples[0], samples[1]);
        assert_eq!(samples[1], samples[2]);
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
