//! Restart I/O: bit-exact checkpoint and resume.
//!
//! The paper's SYPD metric excludes I/O, but a production OGCM lives and
//! dies by restartability: a month-long 1-km campaign is thousands of
//! queue jobs stitched together by restart files. This module writes one
//! binary file per rank holding every prognostic field **by leapfrog
//! role** (old/cur/new), so a resumed run continues bitwise identically —
//! asserted by the round-trip tests.
//!
//! Format (little-endian): magic `LICOMKPP`, version, grid extents, rank
//! geometry, step count, then length-prefixed named `f64` arrays.

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

use kokkos_rs::{View2, View3};

use crate::model::Model;

const MAGIC: &[u8; 8] = b"LICOMKPP";
const VERSION: u32 = 1;

/// Errors from restart I/O.
#[derive(Debug)]
pub enum RestartError {
    Io(std::io::Error),
    /// File is not a LICOMK++ restart or has the wrong version.
    Format(String),
    /// Restart geometry does not match the running model.
    Mismatch(String),
}

impl From<std::io::Error> for RestartError {
    fn from(e: std::io::Error) -> Self {
        RestartError::Io(e)
    }
}

impl std::fmt::Display for RestartError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestartError::Io(e) => write!(f, "restart I/O error: {e}"),
            RestartError::Format(m) => write!(f, "restart format error: {m}"),
            RestartError::Mismatch(m) => write!(f, "restart mismatch: {m}"),
        }
    }
}

impl std::error::Error for RestartError {}

fn write_u64(w: &mut impl Write, v: u64) -> std::io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u64(r: &mut impl Read) -> std::io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn write_field(w: &mut impl Write, name: &str, data: &[f64]) -> std::io::Result<()> {
    write_u64(w, name.len() as u64)?;
    w.write_all(name.as_bytes())?;
    write_u64(w, data.len() as u64)?;
    for &x in data {
        w.write_all(&x.to_le_bytes())?;
    }
    Ok(())
}

fn read_field(
    r: &mut impl Read,
    want_name: &str,
    want_len: usize,
) -> Result<Vec<f64>, RestartError> {
    let nlen = read_u64(r)? as usize;
    let mut name = vec![0u8; nlen];
    r.read_exact(&mut name)?;
    let name = String::from_utf8_lossy(&name).into_owned();
    if name != want_name {
        return Err(RestartError::Format(format!(
            "expected field '{want_name}', found '{name}'"
        )));
    }
    let len = read_u64(r)? as usize;
    if len != want_len {
        return Err(RestartError::Mismatch(format!(
            "field '{name}': {len} values, model expects {want_len}"
        )));
    }
    let mut out = vec![0.0f64; len];
    let mut b = [0u8; 8];
    for x in out.iter_mut() {
        r.read_exact(&mut b)?;
        *x = f64::from_le_bytes(b);
    }
    Ok(out)
}

/// Per-role prognostic fields in write order.
fn roles(m: &Model) -> [(&'static str, usize); 3] {
    [
        ("old", m.state.old()),
        ("cur", m.state.cur()),
        ("new", m.state.new_lev()),
    ]
}

impl Model {
    /// Path of this rank's restart file under `dir`.
    pub fn restart_path(&self, dir: &Path) -> std::path::PathBuf {
        dir.join(format!("restart_{:05}.bin", self.comm().rank()))
    }

    /// Write a checkpoint. Each rank writes its own file; collective only
    /// in the trivial sense (no communication). The write is atomic —
    /// tmp file, fsync, rename — so an interrupted save can never leave a
    /// torn restart in place of a previous good one.
    pub fn save_restart(&self, dir: &Path) -> Result<(), RestartError> {
        std::fs::create_dir_all(dir)?;
        let path = self.restart_path(dir);
        let tmp = path.with_extension("tmp");
        let mut w = BufWriter::new(File::create(&tmp)?);
        w.write_all(MAGIC)?;
        write_u64(&mut w, VERSION as u64)?;
        for v in [
            self.cfg.nx as u64,
            self.cfg.ny as u64,
            self.cfg.nz as u64,
            self.comm().rank() as u64,
            self.comm().size() as u64,
            self.steps_taken(),
        ] {
            write_u64(&mut w, v)?;
        }
        let w3 = |w: &mut BufWriter<File>, name: &str, f: &View3<f64>| {
            write_field(w, name, f.as_slice())
        };
        let w2 = |w: &mut BufWriter<File>, name: &str, f: &View2<f64>| {
            write_field(w, name, f.as_slice())
        };
        for (role, lev) in roles(self) {
            w3(&mut w, &format!("u_{role}"), &self.state.u[lev])?;
            w3(&mut w, &format!("v_{role}"), &self.state.v[lev])?;
            w3(&mut w, &format!("t_{role}"), &self.state.t[lev])?;
            w3(&mut w, &format!("s_{role}"), &self.state.s[lev])?;
            w2(&mut w, &format!("eta_{role}"), &self.state.eta[lev])?;
        }
        w2(&mut w, "ubt", &self.state.ubt)?;
        w2(&mut w, "vbt", &self.state.vbt)?;
        w.flush()?;
        let f = w.into_inner().map_err(|e| RestartError::Io(e.into()))?;
        f.sync_all()?;
        std::fs::rename(&tmp, &path)?;
        Ok(())
    }

    /// Resume from a checkpoint written by [`Model::save_restart`] with
    /// the same configuration and rank count. The continued run is
    /// bitwise identical to an uninterrupted one.
    pub fn load_restart(&mut self, dir: &Path) -> Result<(), RestartError> {
        let mut r = BufReader::new(File::open(self.restart_path(dir))?);
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(RestartError::Format("bad magic".into()));
        }
        let version = read_u64(&mut r)?;
        if version != VERSION as u64 {
            return Err(RestartError::Format(format!("version {version}")));
        }
        let geom: Vec<u64> = (0..6).map(|_| read_u64(&mut r)).collect::<Result<_, _>>()?;
        let want = [
            self.cfg.nx as u64,
            self.cfg.ny as u64,
            self.cfg.nz as u64,
            self.comm().rank() as u64,
            self.comm().size() as u64,
        ];
        if geom[..5] != want {
            return Err(RestartError::Mismatch(format!(
                "file geometry {:?} vs model {:?}",
                &geom[..5],
                want
            )));
        }
        let steps = geom[5];
        for (role, lev) in roles(self) {
            for (name, field) in [
                (format!("u_{role}"), &self.state.u[lev]),
                (format!("v_{role}"), &self.state.v[lev]),
                (format!("t_{role}"), &self.state.t[lev]),
                (format!("s_{role}"), &self.state.s[lev]),
            ] {
                let data = read_field(&mut r, &name, field.len())?;
                field.copy_from_slice(&data);
            }
            let eta = read_field(&mut r, &format!("eta_{role}"), self.state.eta[lev].len())?;
            self.state.eta[lev].copy_from_slice(&eta);
        }
        let ubt = read_field(&mut r, "ubt", self.state.ubt.len())?;
        self.state.ubt.copy_from_slice(&ubt);
        let vbt = read_field(&mut r, "vbt", self.state.vbt.len())?;
        self.state.vbt.copy_from_slice(&vbt);
        self.set_steps_taken(steps);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::model::{Model, ModelOptions};
    use mpi_sim::World;
    use ocean_grid::Resolution;

    fn cfg() -> ocean_grid::ModelConfig {
        Resolution::Coarse100km.config().scaled_down(8, 6)
    }

    #[test]
    fn restart_roundtrip_is_bitwise_exact() {
        let dir = std::env::temp_dir().join("licom_restart_test");
        let _ = std::fs::remove_dir_all(&dir);
        // Reference: 6 uninterrupted steps.
        let reference = World::run(1, |comm| {
            let mut m = Model::new(
                comm,
                cfg(),
                kokkos_rs::Space::serial(),
                ModelOptions::default(),
            );
            m.run_steps(6);
            m.checksum()
        })
        .pop()
        .unwrap();
        // 3 steps, checkpoint, fresh model, resume, 3 more.
        let resumed = {
            let dir = dir.clone();
            World::run(1, move |comm| {
                let mut m = Model::new(
                    comm,
                    cfg(),
                    kokkos_rs::Space::serial(),
                    ModelOptions::default(),
                );
                m.run_steps(3);
                m.save_restart(&dir).unwrap();
                let mut m2 = Model::new(
                    comm,
                    cfg(),
                    kokkos_rs::Space::serial(),
                    ModelOptions::default(),
                );
                m2.load_restart(&dir).unwrap();
                assert_eq!(m2.steps_taken(), 3);
                m2.run_steps(3);
                m2.checksum()
            })
            .pop()
            .unwrap()
        };
        assert_eq!(reference, resumed, "restart broke bitwise reproducibility");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn restart_rejects_wrong_geometry() {
        let dir = std::env::temp_dir().join("licom_restart_geom");
        let _ = std::fs::remove_dir_all(&dir);
        {
            let dir = dir.clone();
            World::run(1, move |comm| {
                let m = Model::new(
                    comm,
                    cfg(),
                    kokkos_rs::Space::serial(),
                    ModelOptions::default(),
                );
                m.save_restart(&dir).unwrap();
            });
        }
        {
            let dir = dir.clone();
            World::run(1, move |comm| {
                let other = Resolution::Coarse100km.config().scaled_down(8, 5); // nz differs
                let mut m = Model::new(
                    comm,
                    other,
                    kokkos_rs::Space::serial(),
                    ModelOptions::default(),
                );
                let err = m.load_restart(&dir).unwrap_err();
                assert!(format!("{err}").contains("mismatch"), "{err}");
            });
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn restart_multi_rank() {
        let dir = std::env::temp_dir().join("licom_restart_mr");
        let _ = std::fs::remove_dir_all(&dir);
        let cfg6 = Resolution::Coarse100km.config().scaled_down(8, 6); // nx=45 → px=3
        let reference = World::run(3, {
            let cfg = cfg6.clone();
            move |comm| {
                let mut m = Model::new(
                    comm,
                    cfg.clone(),
                    kokkos_rs::Space::serial(),
                    ModelOptions::default(),
                );
                m.run_steps(4);
                m.checksum()
            }
        });
        let resumed = World::run(3, {
            let cfg = cfg6.clone();
            let dir = dir.clone();
            move |comm| {
                let mut m = Model::new(
                    comm,
                    cfg.clone(),
                    kokkos_rs::Space::serial(),
                    ModelOptions::default(),
                );
                m.run_steps(2);
                m.save_restart(&dir).unwrap();
                comm.barrier();
                let mut m2 = Model::new(
                    comm,
                    cfg.clone(),
                    kokkos_rs::Space::serial(),
                    ModelOptions::default(),
                );
                m2.load_restart(&dir).unwrap();
                m2.run_steps(2);
                m2.checksum()
            }
        });
        assert_eq!(reference, resumed);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
