//! # licom — LICOMK++: the performance-portable ocean general circulation model
//!
//! The paper's primary contribution, reproduced in Rust on top of the
//! `kokkos-rs` portability layer: a primitive-equation, free-surface OGCM
//! on a tripolar Arakawa-B grid with
//!
//! * a **split-explicit leapfrog** scheme with Asselin filtering
//!   (barotropic substeps inside each baroclinic step, Table III ratios),
//! * **two-step shape-preserving tracer advection** (Yu 1994): an
//!   upstream monotone predictor plus a limited anti-diffusive corrector,
//! * the ***canuto* second-order-closure vertical mixing** scheme with the
//!   paper's §V-C1 **load balancing** over ocean-only columns,
//! * implicit vertical diffusion/viscosity (tridiagonal solves),
//! * halo updates through `halo-exchange` (overlap, 3-D transposes,
//!   batched fields — §V-D),
//! * GPTL-style [`timers`] so experiments report the same per-kernel
//!   breakdown the paper measures.
//!
//! Every kernel is a registered Kokkos-style functor, so the **same model
//! code** runs on `Serial`, `Threads`, `DeviceSim` and `SwAthread`
//! execution spaces — bitwise identically (the integration tests assert
//! it). SYPD throughput is measured exactly as the paper defines it:
//! wall-clock of the daily loop, I/O and initialization excluded.

pub mod advect;
pub mod baroclinic;
pub mod barotropic;
pub mod canuto;
pub mod checkpoint;
pub mod diag;
pub mod elastic;
pub mod eos;
pub mod forcing;
pub mod guard;
pub mod history;
pub mod io;
pub mod localgrid;
pub mod model;
pub mod spectra;
pub mod state;
pub mod telemetry;
pub mod timers;
pub mod vmix;

pub use checkpoint::{
    CheckpointError, CheckpointManager, RecoveryError, RecoveryPolicy, RecoveryStats,
};
pub use elastic::{run_elastic, ElasticConfig, ElasticError, ElasticOutcome, ElasticStats};
pub use guard::{GuardConfig, GuardViolation};
pub use model::{Model, ModelOptions, StepError, StepStats};
pub use state::State;
pub use telemetry::{DriftTrip, StepMonitor, StepObservation, StepSample, TelemetryConfig};
pub use timers::Timers;

/// Physical constants (SI) shared by the dynamics.
pub mod constants {
    /// Thermal expansion coefficient, 1/K (linearised EOS).
    pub const ALPHA_T: f64 = 2.0e-4;
    /// Haline contraction coefficient, 1/psu.
    pub const BETA_S: f64 = 8.0e-4;
    /// Reference temperature, °C.
    pub const T_REF: f64 = 10.0;
    /// Reference salinity, psu.
    pub const S_REF: f64 = 35.0;
    /// Asselin filter coefficient.
    pub const ASSELIN: f64 = 0.1;
    /// Background vertical viscosity, m²/s.
    pub const KM_BACKGROUND: f64 = 1.0e-4;
    /// Background vertical diffusivity, m²/s.
    pub const KH_BACKGROUND: f64 = 1.0e-5;
    /// Bottom drag coefficient (dimensionless, quadratic).
    pub const BOTTOM_DRAG: f64 = 1.2e-3;
    /// Maximum canuto mixing coefficient, m²/s.
    pub const K_MAX: f64 = 5.0e-2;
}

/// Register every model functor with the Kokkos registry. Must run before
/// stepping on the `SwAthread` space — the paper registers its preset
/// functions "during the initialization of Kokkos"; we do the same in
/// [`Model::new`], and expose it for tests.
pub fn register_all_kernels() {
    eos::register();
    baroclinic::register();
    barotropic::register();
    advect::register();
    canuto::register();
    vmix::register();
    forcing::register();
    diag::register();
    guard::register();
    model::register();
}
