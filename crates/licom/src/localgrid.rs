//! Per-rank grid data, extracted from the deterministic global grid.
//!
//! Because the synthetic planet is an analytic function, every rank can
//! materialise its own padded block — including halo-region masks and the
//! north-fold mirror of `kmt` — without communication. Metric arrays in
//! ghost rows are clamped to the nearest owned row; the dynamical
//! operators only evaluate metrics on owned cells.

use kokkos_rs::{View, View1, View2};
use ocean_grid::{ActiveSet, ActiveSet3, GlobalGrid};

use halo_exchange::{Halo2D, HALO as H};

/// Packed wet-point index sets, built once per rank from `kmt`/`kmu` and
/// shared (via `Arc`) with every `ListPolicy` launch. The split between
/// padded and owned sets follows what each kernel needs: pressure must
/// cover halo columns (the momentum gradient reads them), while advection
/// columns and horizontal diffusion only touch owned cells.
pub struct WetSets {
    /// Wet tracer columns over the full padded block (`kmt > 0`),
    /// packed `jl * pi + il`; cost = wet levels.
    pub cols_pad: ActiveSet,
    /// Owned-interior wet tracer columns (same packing as `wet_columns`).
    pub cols_own: ActiveSet,
    /// Owned-interior wet velocity columns (`kmu > 0`); cost = wet levels.
    pub ucols_own: ActiveSet,
    /// Padded 3-D wet tracer cells (`k < kmt`), per-level CSR.
    pub cells3_pad: ActiveSet3,
    /// Owned-interior 3-D wet tracer cells.
    pub cells3_own: ActiveSet3,
    /// Owned-interior 3-D wet velocity cells (`k < kmu`).
    pub ucells3_own: ActiveSet3,
    /// `cells3_own` split into (interior, rim) with a 1-cell horizontal
    /// rim: the interior depends only on locally-valid halo data, so
    /// kernels can run it while an exchange is still in flight and sweep
    /// the rim after. Interior ∪ rim = `cells3_own` exactly.
    pub cells3_own_interior: ActiveSet3,
    pub cells3_own_rim: ActiveSet3,
    /// `ucells3_own` split the same way.
    pub ucells3_own_interior: ActiveSet3,
    pub ucells3_own_rim: ActiveSet3,
}

/// Grid slice owned by one rank, with 2-cell padding, as device-agnostic
/// `View`s ready to be captured by functors.
pub struct LocalGrid {
    /// Owned interior extents.
    pub nx: usize,
    pub ny: usize,
    pub nz: usize,
    /// Padded extents (`ny + 2H`, `nx + 2H`).
    pub pj: usize,
    pub pi: usize,
    /// Global offsets of the first owned cell.
    pub x0: usize,
    pub y0: usize,
    /// Global grid extents.
    pub nxg: usize,
    pub nyg: usize,
    /// Zonal spacing (m) per padded row.
    pub dxt: View1<f64>,
    /// Meridional spacing (m), uniform.
    pub dyt: f64,
    /// Coriolis parameter at B-grid corners, per padded row.
    pub fcor: View1<f64>,
    /// Cell-center latitude (deg) per padded row (clamped in ghosts).
    pub lat: View1<f64>,
    /// Cell-center longitude (deg) per padded column (wrapped).
    pub lon: View1<f64>,
    /// Active tracer levels per padded cell (0 = land), with correct
    /// periodic / fold values in the halo.
    pub kmt: View2<i32>,
    /// Active velocity levels per padded corner.
    pub kmu: View2<i32>,
    /// Layer thicknesses (m).
    pub dz: View1<f64>,
    /// Layer center depths (m, positive down).
    pub z_t: View1<f64>,
    /// Total water depth (m) per padded cell (0 on land).
    pub depth: View2<f64>,
    /// Packed owned wet-column indices `jl * pi + il` (canuto work list).
    pub wet_columns: View1<i32>,
    /// Active-set index lists for wet-point iteration.
    pub wet: WetSets,
}

impl LocalGrid {
    /// Extract this rank's padded block from the global grid.
    pub fn build(global: &GlobalGrid, halo: &Halo2D) -> Self {
        let (nx, ny, nz) = (halo.nx, halo.ny, global.nz());
        let (pj, pi) = halo.padded();
        let (nxg, nyg) = (global.nx(), global.ny());
        let (x0, y0) = (halo.x0, halo.y0);

        // Global lookup with periodic x, closed south, folded north.
        let glob = |jl: usize, il: usize| -> Option<(usize, usize)> {
            let jg = y0 as i64 + jl as i64 - H as i64;
            let ig = x0 as i64 + il as i64 - H as i64;
            let iw = ig.rem_euclid(nxg as i64) as usize;
            if jg < 0 {
                None
            } else if (jg as usize) < nyg {
                Some((jg as usize, iw))
            } else {
                let d = jg - nyg as i64;
                if d >= H as i64 {
                    None
                } else {
                    let src_i = (nxg as i64 - 1 - ig).rem_euclid(nxg as i64) as usize;
                    Some((nyg - 1 - d as usize, src_i))
                }
            }
        };

        let dxt: View1<f64> = View::host("dxt", [pj]);
        let fcor: View1<f64> = View::host("fcor", [pj]);
        let lat: View1<f64> = View::host("lat", [pj]);
        for jl in 0..pj {
            let jg = (y0 as i64 + jl as i64 - H as i64).clamp(0, nyg as i64 - 1) as usize;
            dxt.set_at(jl, global.horiz.dx_t(jg));
            fcor.set_at(jl, global.horiz.coriolis_u(jg));
            lat.set_at(jl, global.horiz.lat_t(jg));
        }
        let lon: View1<f64> = View::host("lon", [pi]);
        for il in 0..pi {
            let ig = (x0 as i64 + il as i64 - H as i64).rem_euclid(nxg as i64) as usize;
            lon.set_at(il, global.horiz.lon_t(ig));
        }

        let kmt: View2<i32> = View::host("kmt", [pj, pi]);
        let kmu: View2<i32> = View::host("kmu", [pj, pi]);
        let depth: View2<f64> = View::host("depth", [pj, pi]);
        for jl in 0..pj {
            for il in 0..pi {
                match glob(jl, il) {
                    Some((jg, ig)) => {
                        kmt.set_at(jl, il, global.kmt[global.idx(jg, ig)] as i32);
                        kmu.set_at(jl, il, global.kmu[global.idx(jg, ig)] as i32);
                        depth.set_at(jl, il, global.depth[global.idx(jg, ig)]);
                    }
                    None => {
                        kmt.set_at(jl, il, 0);
                        kmu.set_at(jl, il, 0);
                        depth.set_at(jl, il, 0.0);
                    }
                }
            }
        }

        let dz: View1<f64> = View::host("dz", [nz]);
        let z_t: View1<f64> = View::host("z_t", [nz]);
        for k in 0..nz {
            dz.set_at(k, global.vert.dz[k]);
            z_t.set_at(k, global.vert.z_t[k]);
        }

        let mut wet = Vec::new();
        for jl in H..H + ny {
            for il in H..H + nx {
                if kmt.at(jl, il) > 0 {
                    wet.push((jl * pi + il) as i32);
                }
            }
        }
        let wet_columns: View1<i32> = View::host("wet_columns", [wet.len()]);
        wet_columns.copy_from_slice(&wet);

        let kmt_at = |jl: usize, il: usize| kmt.at(jl, il).max(0) as u32;
        let kmu_at = |jl: usize, il: usize| kmu.at(jl, il).max(0) as u32;
        let (cells3_own_interior, cells3_own_rim) =
            ActiveSet3::build_cells_split(nz, pj, pi, H..H + ny, H..H + nx, 1, kmt_at);
        let (ucells3_own_interior, ucells3_own_rim) =
            ActiveSet3::build_cells_split(nz, pj, pi, H..H + ny, H..H + nx, 1, kmu_at);
        let wet_sets = WetSets {
            cols_pad: ActiveSet::build_columns(pi, 0..pj, 0..pi, kmt_at),
            cols_own: ActiveSet::build_columns(pi, H..H + ny, H..H + nx, kmt_at),
            ucols_own: ActiveSet::build_columns(pi, H..H + ny, H..H + nx, kmu_at),
            cells3_pad: ActiveSet3::build_cells(nz, pj, pi, 0..pj, 0..pi, kmt_at),
            cells3_own: ActiveSet3::build_cells(nz, pj, pi, H..H + ny, H..H + nx, kmt_at),
            ucells3_own: ActiveSet3::build_cells(nz, pj, pi, H..H + ny, H..H + nx, kmu_at),
            cells3_own_interior,
            cells3_own_rim,
            ucells3_own_interior,
            ucells3_own_rim,
        };

        Self {
            nx,
            ny,
            nz,
            pj,
            pi,
            x0,
            y0,
            nxg,
            nyg,
            dxt,
            dyt: global.horiz.dy_t(),
            fcor,
            lat,
            lon,
            kmt,
            kmu,
            dz,
            z_t,
            depth,
            wet_columns,
            wet: wet_sets,
        }
    }

    /// Owned wet columns.
    pub fn wet_count(&self) -> usize {
        self.wet_columns.len()
    }

    /// Smallest zonal spacing among owned rows (CFL/polar-filter input).
    pub fn min_dx(&self) -> f64 {
        (H..H + self.ny)
            .map(|j| self.dxt.at(j))
            .fold(f64::INFINITY, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpi_sim::{CartComm, World};
    use ocean_grid::Bathymetry;

    #[test]
    fn halo_kmt_matches_global_semantics() {
        let global = GlobalGrid::build(24, 12, 6, &Bathymetry::earth_like(), false);
        World::run(4, |comm| {
            let cart = CartComm::new(comm.clone(), 2, 2, true);
            let halo = Halo2D::new(&cart, 24, 12);
            let lg = LocalGrid::build(&global, &halo);
            // Interior cells agree with the global grid.
            for j in 0..lg.ny {
                for i in 0..lg.nx {
                    let want = global.kmt[global.idx(lg.y0 + j, lg.x0 + i)] as i32;
                    assert_eq!(lg.kmt.at(H + j, H + i), want);
                }
            }
            // South ghosts of the bottom row are land-walled.
            if lg.y0 == 0 {
                for r in 0..H {
                    for il in 0..lg.pi {
                        assert_eq!(lg.kmt.at(r, il), 0);
                    }
                }
            }
        });
    }

    #[test]
    fn fold_halo_mirrors_kmt() {
        let global = GlobalGrid::build(16, 8, 5, &Bathymetry::earth_like(), false);
        World::run(1, |comm| {
            let cart = CartComm::new(comm.clone(), 1, 1, true);
            let halo = Halo2D::new(&cart, 16, 8);
            let lg = LocalGrid::build(&global, &halo);
            // Ghost row above the fold equals the mirrored top row.
            for il in H..H + 16 {
                let ig = il - H;
                let want = global.kmt[global.idx(7, 15 - ig)] as i32;
                assert_eq!(lg.kmt.at(H + 8, il), want, "il={il}");
            }
        });
    }

    #[test]
    fn wet_columns_counts_only_interior_ocean() {
        let global = GlobalGrid::build(16, 8, 5, &Bathymetry::Flat(4000.0), false);
        World::run(2, |comm| {
            let cart = CartComm::new(comm.clone(), 2, 1, true);
            let halo = Halo2D::new(&cart, 16, 8);
            let lg = LocalGrid::build(&global, &halo);
            assert_eq!(lg.wet_count(), lg.nx * lg.ny);
        });
    }

    #[test]
    fn wet_sets_agree_with_wet_columns_and_masks() {
        let global = GlobalGrid::build(24, 12, 6, &Bathymetry::earth_like(), false);
        World::run(1, |comm| {
            let cart = CartComm::new(comm.clone(), 1, 1, true);
            let halo = Halo2D::new(&cart, 24, 12);
            let lg = LocalGrid::build(&global, &halo);
            // Owned wet tracer columns match the canuto list exactly.
            let legacy: Vec<u32> = lg.wet_columns.to_vec().iter().map(|&p| p as u32).collect();
            assert_eq!(legacy, **lg.wet.cols_own.indices);
            // Column costs sum to the wet-cell total.
            let wet_cells: u64 = (0..lg.pj)
                .flat_map(|j| (0..lg.pi).map(move |i| (j, i)))
                .map(|(j, i)| lg.kmt.at(j, i).max(0) as u64)
                .sum();
            assert_eq!(lg.wet.cols_pad.total_cost(), wet_cells);
            assert_eq!(lg.wet.cells3_pad.len() as u64, wet_cells);
            // Per-level CSR: level k holds the padded cells with kmt > k.
            for k in 0..lg.nz {
                let (lo, hi) = lg.wet.cells3_pad.level_range(k);
                let want = (0..lg.pj)
                    .flat_map(|j| (0..lg.pi).map(move |i| (j, i)))
                    .filter(|&(j, i)| lg.kmt.at(j, i) > k as i32)
                    .count();
                assert_eq!(hi - lo, want, "level {k}");
            }
            // Velocity sets follow kmu.
            let wet_u: usize = (H..H + lg.ny)
                .flat_map(|j| (H..H + lg.nx).map(move |i| (j, i)))
                .filter(|&(j, i)| lg.kmu.at(j, i) > 0)
                .count();
            assert_eq!(lg.wet.ucols_own.len(), wet_u);
        });
    }

    #[test]
    fn split_sets_partition_owned_sets() {
        let global = GlobalGrid::build(24, 12, 6, &Bathymetry::earth_like(), false);
        World::run(4, |comm| {
            let cart = CartComm::new(comm.clone(), 2, 2, true);
            let halo = Halo2D::new(&cart, 24, 12);
            let lg = LocalGrid::build(&global, &halo);
            for (dense, int, rim) in [
                (
                    &lg.wet.cells3_own,
                    &lg.wet.cells3_own_interior,
                    &lg.wet.cells3_own_rim,
                ),
                (
                    &lg.wet.ucells3_own,
                    &lg.wet.ucells3_own_interior,
                    &lg.wet.ucells3_own_rim,
                ),
            ] {
                assert_eq!(int.len() + rim.len(), dense.len());
                let mut merged: Vec<u32> = int
                    .indices
                    .iter()
                    .chain(rim.indices.iter())
                    .copied()
                    .collect();
                merged.sort_unstable();
                let mut want: Vec<u32> = dense.indices.to_vec();
                want.sort_unstable();
                assert_eq!(merged, want);
            }
        });
    }

    #[test]
    fn min_dx_positive() {
        let global = GlobalGrid::build(24, 12, 4, &Bathymetry::Flat(4000.0), false);
        World::run(1, |comm| {
            let cart = CartComm::new(comm.clone(), 1, 1, true);
            let halo = Halo2D::new(&cart, 24, 12);
            let lg = LocalGrid::build(&global, &halo);
            assert!(lg.min_dx() > 0.0);
            assert!(lg.min_dx() < lg.dxt.at(H + 6)); // polar rows are tighter
        });
    }
}
